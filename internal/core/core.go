// Package core wires the PRIVATE-IYE components into a deployable system:
// a set of privacy-preserving sources (in-process or remote HTTP nodes)
// behind one privacy-preserving mediation engine. It is the composition
// the paper's Figure 2 draws — everything below it lives in the sibling
// packages, and the public module root (package privateiye) re-exports the
// types defined here.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/durable"
	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/psi"
	"privateiye/internal/resilience"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// RemoteSource names a source node reachable over HTTP.
type RemoteSource struct {
	Name string
	URL  string
}

// SystemConfig assembles a full deployment.
type SystemConfig struct {
	// Sources are built in-process from their configurations.
	Sources []source.Config
	// Remotes are source nodes already running elsewhere.
	Remotes []RemoteSource
	// LinkageSalt is the shared linking secret for private duplicate
	// elimination and blocking; required when any dedup is configured.
	LinkageSalt []byte
	// PSIGroup selects the DH group (DefaultGroup when nil; TestGroup in
	// tests/benchmarks for speed).
	PSIGroup *psi.Group
	// PSISuite selects the PSI ciphersuite the mediator prefers at
	// negotiation ("" = psi.DefaultSuiteName, the P-256 elliptic-curve
	// suite). Naming a MODP suite additionally pins every in-process
	// source to it — each local advertises only that suite, so a fleet
	// configured this way can never negotiate up to the curve.
	PSISuite string
	// DedupColumn / DedupThreshold configure the Result Integrator's
	// fuzzy duplicate elimination.
	DedupColumn    string
	DedupThreshold float64
	// WarehouseCapacity / WarehouseTTL enable hybrid mediation.
	WarehouseCapacity int
	WarehouseTTL      int64
	// MaxDisclosure is the Privacy Control threshold for aggregate
	// releases.
	MaxDisclosure float64
	// SourceTimeout bounds each per-source call during mediation (0 =
	// no deadline): a source that misses it is reported in Denied with
	// a timeout reason instead of stalling the whole query.
	SourceTimeout time.Duration
	// Resilience, when non-nil, wraps every endpoint with retry/backoff
	// and a per-source circuit breaker (see internal/resilience).
	Resilience *resilience.EndpointConfig
	// StateDir, when non-empty, persists the mediator's inference-control
	// state (release ledger + query history) under StateDir/mediator and
	// replays it on startup, so a restart cannot reset the combination
	// controls. Empty keeps state in memory.
	StateDir string
	// Fsync selects the WAL sync policy when StateDir is set ("",
	// meaning "always", or one of durable.ParseFsyncPolicy's names).
	Fsync durable.FsyncPolicy
	// FsyncInterval applies under the "interval" policy (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery is the snapshot/compaction cadence in WAL appends
	// (default 256).
	SnapshotEvery int
	// GroupCommit batches concurrent WAL appends into one fsync under
	// the "always" policy: a release is still acknowledged only after
	// the fsync covering its batch returns, but concurrent requesters
	// share that fsync instead of queueing one each. GroupMaxBatch caps
	// the appends per batched fsync (default 64); GroupMaxHold is how
	// long the committer may hold a batch open for stragglers (default
	// 0: commit as soon as the committer runs).
	GroupCommit   bool
	GroupMaxBatch int
	GroupMaxHold  time.Duration
	// Coalesce merges concurrent identical queries from the same
	// requester into one shared mediation pipeline execution. Per-caller
	// privacy controls (loss control, release ledger, history) still run
	// for every caller; different requesters never share.
	Coalesce bool
	// Workers sizes the worker pools behind the compute kernels — PSI
	// blinding/exponentiation, Bloom encoding, the ledger's inference
	// solver — at the mediator and at every in-process source that does
	// not set its own (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// PlanCache caps the mediator's parse cache and, for every
	// in-process source that does not set its own, the source's
	// parse/plan cache (entries; 0 disables caching).
	PlanCache int
	// Admission, when non-nil and enabled, gates the mediator query path
	// with admission control: per-requester rate limiting, an adaptive
	// (AIMD) concurrency limit and deadline-aware queueing (see
	// internal/admission). Sheds are distinguishable from privacy
	// refusals end to end (refusal.Overloaded / refusal.RateLimited,
	// HTTP 429/503 with Retry-After).
	Admission *admission.Config
	// Brownout answers Overloaded sheds from the warehouse, staleness
	// allowed and marked, instead of failing them. Needs a warehouse.
	Brownout bool
	// SourceAdmission, when non-nil, gates every in-process source's
	// execute path that does not configure its own admission.
	SourceAdmission *admission.Config
	// Replica, when non-nil, replicates the mediator's durable log
	// to/from a peer mediator and arbitrates failover with a persisted
	// fencing epoch (see mediator.ReplicaConfig). Requires StateDir.
	Replica *mediator.ReplicaConfig
	// Shard, when non-nil, places the mediator in a sharded tier: its
	// ownership gate refuses requesters the ring assigns to a peer
	// shard, fail-closed (see mediator.ShardConfig and internal/shard).
	Shard *mediator.ShardConfig
	// Obs, when non-nil, collects metrics from the mediator and every
	// in-process source into one registry (see internal/obs).
	Obs *obs.Registry
	// Trace, when non-nil, records per-query stage traces at the
	// mediator. In-process sources deliberately do not share it: their
	// spans already appear as "source" spans on the mediator's traces,
	// and a shared ring would interleave the two pipelines.
	Trace *obs.Tracer
}

// System is a running PRIVATE-IYE deployment.
type System struct {
	med    *mediator.Mediator
	locals []*source.Local
	eps    []source.Endpoint
}

// NewSystem builds sources, connects remotes, and starts the mediator
// (including the initial mediated schema generation).
func NewSystem(cfg SystemConfig) (*System, error) {
	if len(cfg.Sources) == 0 && len(cfg.Remotes) == 0 {
		return nil, fmt.Errorf("core: no sources configured")
	}
	salt := cfg.LinkageSalt
	if len(salt) == 0 {
		salt = []byte("privateiye-default-linking-salt")
	}
	group := cfg.PSIGroup
	if group == nil {
		group = psi.DefaultGroup()
	}
	if cfg.PSISuite != "" {
		if _, err := psi.SuiteByName(cfg.PSISuite); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	sys := &System{}
	for _, sc := range cfg.Sources {
		// System-wide performance knobs reach every source that did not
		// choose its own.
		if sc.Workers == 0 {
			sc.Workers = cfg.Workers
		}
		if sc.PlanCache == 0 {
			sc.PlanCache = cfg.PlanCache
		}
		if sc.Obs == nil {
			sc.Obs = cfg.Obs
		}
		if sc.Admission == nil && cfg.SourceAdmission != nil {
			ac := *cfg.SourceAdmission
			sc.Admission = &ac
		}
		src, err := source.New(sc)
		if err != nil {
			return nil, fmt.Errorf("core: source %s: %w", sc.Name, err)
		}
		local, err := source.NewLocal(src, salt, group)
		if err != nil {
			return nil, err
		}
		// Coalesce reaches the sources too: concurrent identical
		// whole-column linkage calls share one computation.
		local.Coalesce = cfg.Coalesce
		// A MODP-pinned fleet advertises only its pinned suite, so suite
		// negotiation fails closed to it instead of picking the curve.
		if cfg.PSISuite != "" && cfg.PSISuite != psi.SuiteNameP256 {
			local.AdvertisedSuites = []string{cfg.PSISuite}
		}
		sys.locals = append(sys.locals, local)
		sys.eps = append(sys.eps, local)
	}
	for _, r := range cfg.Remotes {
		if r.Name == "" || r.URL == "" {
			return nil, fmt.Errorf("core: remote source needs name and url: %+v", r)
		}
		sys.eps = append(sys.eps, source.NewClient(r.URL, r.Name))
	}
	var dur *mediator.DurabilityConfig
	if cfg.StateDir != "" {
		dur = &mediator.DurabilityConfig{
			Dir:           filepath.Join(cfg.StateDir, "mediator"),
			Fsync:         cfg.Fsync,
			FsyncInterval: cfg.FsyncInterval,
			SnapshotEvery: cfg.SnapshotEvery,
			GroupCommit:   cfg.GroupCommit,
			GroupMaxBatch: cfg.GroupMaxBatch,
			GroupMaxHold:  cfg.GroupMaxHold,
		}
	}
	med, err := mediator.New(mediator.Config{
		Endpoints:         sys.eps,
		LinkageSalt:       salt,
		DedupColumn:       cfg.DedupColumn,
		DedupThreshold:    cfg.DedupThreshold,
		WarehouseCapacity: cfg.WarehouseCapacity,
		WarehouseTTL:      cfg.WarehouseTTL,
		MaxDisclosure:     cfg.MaxDisclosure,
		PSISuite:          cfg.PSISuite,
		SourceTimeout:     cfg.SourceTimeout,
		Resilience:        cfg.Resilience,
		Durability:        dur,
		Workers:           cfg.Workers,
		PlanCache:         cfg.PlanCache,
		Coalesce:          cfg.Coalesce,
		Obs:               cfg.Obs,
		Trace:             cfg.Trace,
		Admission:         cfg.Admission,
		Brownout:          cfg.Brownout,
		Replica:           cfg.Replica,
		Shard:             cfg.Shard,
	})
	if err != nil {
		return nil, err
	}
	sys.med = med
	return sys, nil
}

// Query runs one PIQL query through the mediation engine with a
// background context.
func (s *System) Query(piqlText, requester string) (*mediator.Integrated, error) {
	return s.med.Query(piqlText, requester)
}

// QueryContext runs one PIQL query through the mediation engine under
// the caller's context: cancellation and deadlines propagate to every
// source call.
func (s *System) QueryContext(ctx context.Context, piqlText, requester string) (*mediator.Integrated, error) {
	return s.med.QueryContext(ctx, piqlText, requester)
}

// Mediator exposes the mediation engine (privacy control, history,
// warehouse statistics).
func (s *System) Mediator() *mediator.Mediator { return s.med }

// Close flushes and closes the mediator's durable state, if configured.
// A system without a StateDir closes as a no-op.
func (s *System) Close() error { return s.med.Close() }

// Schema returns the current mediated schema.
func (s *System) Schema() *xmltree.Summary { return s.med.MediatedSchema() }

// Endpoints returns the connected source endpoints, in configuration
// order (locals first).
func (s *System) Endpoints() []source.Endpoint {
	return append([]source.Endpoint(nil), s.eps...)
}

// Locals returns the in-process sources (nil entries never occur).
func (s *System) Locals() []*source.Local {
	return append([]*source.Local(nil), s.locals...)
}
