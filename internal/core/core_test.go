package core

import (
	"net/http/httptest"
	"sync"
	"testing"

	"privateiye/internal/clinical"
	"privateiye/internal/policy"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

func sourceConfig(t *testing.T, name string, seed uint64, n int) source.Config {
	t.Helper()
	g := clinical.NewGenerator(seed)
	cat := relational.NewCatalog()
	patients, err := g.Patients("patients", n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(patients); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(name, policy.Deny,
		policy.Rule{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
		policy.Rule{Item: "//patients/row/sex", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	return source.Config{Name: name, Catalog: cat, Policy: pol, Seed: seed}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("empty system should fail")
	}
	if _, err := NewSystem(SystemConfig{Remotes: []RemoteSource{{Name: "x"}}}); err == nil {
		t.Error("remote without url should fail")
	}
	bad := sourceConfig(t, "s", 1, 10)
	bad.Policy = nil
	if _, err := NewSystem(SystemConfig{Sources: []source.Config{bad}}); err == nil {
		t.Error("bad source config should fail")
	}
}

func TestInProcessSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Sources:  []source.Config{sourceConfig(t, "A", 1, 50), sourceConfig(t, "B", 2, 30)},
		PSIGroup: psi.TestGroup(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Endpoints()) != 2 || len(sys.Locals()) != 2 {
		t.Fatalf("endpoints/locals = %d/%d", len(sys.Endpoints()), len(sys.Locals()))
	}
	if !sys.Schema().Has("/patients/row/age") {
		t.Error("mediated schema missing age")
	}
	in, err := sys.Query("FOR //patients/row WHERE //age >= 60 RETURN //age PURPOSE research MAXLOSS 0.9", "dr")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Errorf("answered = %v", in.Answered)
	}
	if len(in.Result.Rows) == 0 {
		t.Error("no rows integrated")
	}
}

func TestMixedLocalAndRemoteSystem(t *testing.T) {
	// Start one source as an HTTP node, mix with one in-process source.
	remoteSrc, err := source.New(sourceConfig(t, "remoteB", 9, 25))
	if err != nil {
		t.Fatal(err)
	}
	local, err := source.NewLocal(remoteSrc, []byte("privateiye-default-linking-salt"), psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(source.NewHandler(local))
	defer server.Close()

	sys, err := NewSystem(SystemConfig{
		Sources:  []source.Config{sourceConfig(t, "localA", 3, 40)},
		Remotes:  []RemoteSource{{Name: "remoteB", URL: server.URL}},
		PSIGroup: psi.TestGroup(),
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.Query("FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1", "dr")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Errorf("answered = %v, denied = %v", in.Answered, in.Denied)
	}
}

// The cross-query amortization knobs ride SystemConfig end to end: group
// commit reaches the mediator's WAL, Coalesce reaches both the mediator
// pipeline and every local's whole-column linkage path, and concurrent
// identical queries still each leave a history entry.
func TestSystemAmortizationKnobsEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Sources:     []source.Config{sourceConfig(t, "A", 1, 50)},
		PSIGroup:    psi.TestGroup(),
		StateDir:    t.TempDir(),
		GroupCommit: true,
		Coalesce:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, l := range sys.Locals() {
		if !l.Coalesce {
			t.Error("SystemConfig.Coalesce did not reach the local endpoint")
		}
	}
	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sys.Query("FOR //patients/row WHERE //age >= 60 RETURN //age PURPOSE research MAXLOSS 0.9", "dr")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := len(sys.Mediator().History()); got != callers {
		t.Errorf("history has %d entries, want one per caller (%d)", got, callers)
	}
}
