package nlp

import (
	"math"
	"testing"
)

func box(dim int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, dim)
	h := make([]float64, dim)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return l, h
}

func TestValidate(t *testing.T) {
	lo, hi := box(2, 0, 1)
	cases := []*Problem{
		{Dim: 0, Objective: func(x []float64) float64 { return 0 }, Lower: lo, Upper: hi},
		{Dim: 2, Objective: nil, Lower: lo, Upper: hi},
		{Dim: 2, Objective: func(x []float64) float64 { return 0 }, Lower: lo[:1], Upper: hi},
		{Dim: 2, Objective: func(x []float64) float64 { return 0 }, Lower: []float64{2, 0}, Upper: []float64{1, 1}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	lo, hi := box(3, -10, 10)
	p := &Problem{
		Dim: 3,
		Objective: func(x []float64) float64 {
			return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2) + x[2]*x[2]
		},
		Lower: lo, Upper: hi,
	}
	sol, err := Minimize(p, []float64{5, 5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0}
	for i := range want {
		if math.Abs(sol.X[i]-want[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, sol.X[i], want[i])
		}
	}
}

func TestBoxBindingMinimum(t *testing.T) {
	// Unconstrained minimum at x=-5 but the box is [0,10]: expect 0.
	lo, hi := box(1, 0, 10)
	p := &Problem{
		Dim:       1,
		Objective: func(x []float64) float64 { return (x[0] + 5) * (x[0] + 5) },
		Lower:     lo, Upper: hi,
	}
	sol, err := Minimize(p, []float64{7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]) > 1e-6 {
		t.Errorf("x = %v, want 0 (box-bound)", sol.X[0])
	}
}

func TestEqualityConstrained(t *testing.T) {
	// min x^2 + y^2 s.t. x + y = 2 -> (1, 1).
	lo, hi := box(2, -10, 10)
	p := &Problem{
		Dim:        2,
		Objective:  func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		Equalities: []Constraint{func(x []float64) float64 { return x[0] + x[1] - 2 }},
		Lower:      lo, Upper: hi,
	}
	sol, err := MultiStart(p, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatalf("did not converge; violation %v", sol.MaxViolation)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(sol.X[i]-1) > 1e-2 {
			t.Errorf("x[%d] = %v, want 1", i, sol.X[i])
		}
	}
}

func TestInequalityConstrained(t *testing.T) {
	// min x s.t. x >= 3 (g = 3 - x <= 0) -> 3.
	lo, hi := box(1, -100, 100)
	p := &Problem{
		Dim:          1,
		Objective:    func(x []float64) float64 { return x[0] },
		Inequalities: []Constraint{func(x []float64) float64 { return 3 - x[0] }},
		Lower:        lo, Upper: hi,
	}
	sol, err := MultiStart(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-3) > 1e-2 {
		t.Errorf("x = %v, want 3", sol.X[0])
	}
}

func TestNonConvexMultiStartFindsGlobal(t *testing.T) {
	// f(x) = (x^2 - 1)^2 + 0.1*x has minima near x = ±1; global is x ≈ -1.
	lo, hi := box(1, -2, 2)
	p := &Problem{
		Dim: 1,
		Objective: func(x []float64) float64 {
			v := x[0]*x[0] - 1
			return v*v + 0.1*x[0]
		},
		Lower: lo, Upper: hi,
	}
	sol, err := MultiStart(p, Options{Starts: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] > 0 {
		t.Errorf("multi-start stuck in local minimum: x = %v", sol.X[0])
	}
}

func TestCoordinateIntervalCircle(t *testing.T) {
	// Feasible set: x^2 + y^2 = 1 in box [-2,2]^2. Each coordinate spans
	// [-1, 1].
	lo, hi := box(2, -2, 2)
	p := &Problem{
		Dim:        2,
		Objective:  func(x []float64) float64 { return 0 },
		Equalities: []Constraint{func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] - 1 }},
		Lower:      lo, Upper: hi,
	}
	iv, err := CoordinateInterval(p, 0, Options{Starts: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Lo+1) > 0.02 || math.Abs(iv.Hi-1) > 0.02 {
		t.Errorf("interval = [%v, %v], want [-1, 1]", iv.Lo, iv.Hi)
	}
	if !iv.Contains(0) || iv.Contains(1.5) {
		t.Error("Contains misbehaves")
	}
	if math.Abs(iv.Width()-2) > 0.05 {
		t.Errorf("width = %v, want 2", iv.Width())
	}
}

func TestCoordinateIntervalLinearSystem(t *testing.T) {
	// x + y = 10, x - y = 2 -> unique point (6, 4); intervals collapse.
	lo, hi := box(2, 0, 100)
	p := &Problem{
		Dim:       2,
		Objective: func(x []float64) float64 { return 0 },
		Equalities: []Constraint{
			func(x []float64) float64 { return x[0] + x[1] - 10 },
			func(x []float64) float64 { return x[0] - x[1] - 2 },
		},
		Lower: lo, Upper: hi,
	}
	ivs, err := AllCoordinateIntervals(p, Options{Starts: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ivs[0].Lo-6) > 0.01 || math.Abs(ivs[0].Hi-6) > 0.01 {
		t.Errorf("x interval = %+v, want [6,6]", ivs[0])
	}
	if math.Abs(ivs[1].Lo-4) > 0.01 || math.Abs(ivs[1].Hi-4) > 0.01 {
		t.Errorf("y interval = %+v, want [4,4]", ivs[1])
	}
}

func TestCoordinateIntervalErrors(t *testing.T) {
	lo, hi := box(1, 0, 1)
	p := &Problem{Dim: 1, Objective: func(x []float64) float64 { return 0 }, Lower: lo, Upper: hi}
	if _, err := CoordinateInterval(p, 5, Options{}); err == nil {
		t.Error("out-of-range coordinate should error")
	}
	// Infeasible constraints: x = 0 and x = 1 simultaneously.
	p.Equalities = []Constraint{
		func(x []float64) float64 { return x[0] },
		func(x []float64) float64 { return x[0] - 1 },
	}
	if _, err := CoordinateInterval(p, 0, Options{MaxOuter: 5, Starts: 2}); err == nil {
		t.Error("infeasible problem should report non-convergence")
	}
}

func TestMinimizeBadInputs(t *testing.T) {
	lo, hi := box(2, 0, 1)
	p := &Problem{Dim: 2, Objective: func(x []float64) float64 { return 0 }, Lower: lo, Upper: hi}
	if _, err := Minimize(p, []float64{0}, Options{}); err == nil {
		t.Error("wrong x0 length should error")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	lo, hi := box(2, -5, 5)
	sol, err := NelderMead(rosen, []float64{-1.2, 1}, lo, hi, 5000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-1) > 5e-3 || math.Abs(sol.X[1]-1) > 5e-3 {
		t.Errorf("NelderMead = %v, want (1,1)", sol.X)
	}
}

func TestNelderMeadRespectsBox(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] + 10) * (x[0] + 10) }
	lo, hi := box(1, 0, 5)
	sol, err := NelderMead(f, []float64{3}, lo, hi, 1000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] < 0 || math.Abs(sol.X[0]) > 1e-3 {
		t.Errorf("x = %v, want 0", sol.X[0])
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	if _, err := NelderMead(func(x []float64) float64 { return 0 }, nil, nil, nil, 10, 0); err == nil {
		t.Error("empty start should error")
	}
}

// The shape of the Figure 1 problem in miniature: 3 values with known sum
// and sum of squares; verify the feasible interval of one coordinate
// matches the analytic circle bounds.
func TestSumAndSigmaIntervalMatchesAnalytic(t *testing.T) {
	sum := 257.0
	sumsq := 22060.96
	lo, hi := box(3, 0, 100)
	p := &Problem{
		Dim:       3,
		Objective: func(x []float64) float64 { return 0 },
		Equalities: []Constraint{
			func(x []float64) float64 { return x[0] + x[1] + x[2] - sum },
			func(x []float64) float64 {
				return (x[0]*x[0] + x[1]*x[1] + x[2]*x[2] - sumsq) / 100 // scale for conditioning
			},
		},
		Lower: lo, Upper: hi,
	}
	iv, err := CoordinateInterval(p, 0, Options{Starts: 40, Seed: 13, MaxInner: 400, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: on the circle with centroid c = sum/3 and radius
	// r = sqrt(sumsq - sum^2/3), a coordinate spans [c - r*sqrt(2/3), c + r*sqrt(2/3)]
	// when the box is not binding.
	c := sum / 3
	r := math.Sqrt(sumsq - sum*sum/3)
	wantLo := c - r*math.Sqrt(2.0/3.0)
	wantHi := c + r*math.Sqrt(2.0/3.0)
	if math.Abs(iv.Lo-wantLo) > 0.2 || math.Abs(iv.Hi-wantHi) > 0.2 {
		t.Errorf("interval = [%.3f, %.3f], want [%.3f, %.3f]", iv.Lo, iv.Hi, wantLo, wantHi)
	}
}

// The parallel multi-start must return a bit-identical solution to the
// serial path: starts are drawn serially and merged in start order, so
// worker count cannot move Figure 1(d) intervals.
func TestMultiStartParallelBitIdenticalToSerial(t *testing.T) {
	p := &Problem{
		Dim:       3,
		Objective: func(x []float64) float64 { return x[0] },
		Equalities: []Constraint{
			func(x []float64) float64 { return x[0] + x[1] + x[2] - 150 },
		},
		Inequalities: []Constraint{
			func(x []float64) float64 { return 40 - x[1] },
		},
		Lower: []float64{0, 0, 0},
		Upper: []float64{100, 100, 100},
	}
	base := Options{Starts: 12, Seed: 7}

	serialOpt := base
	serialOpt.Workers = 1
	serial, err := MultiStart(p, serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		opt := base
		opt.Workers = w
		par, err := MultiStart(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if par.F != serial.F || par.MaxViolation != serial.MaxViolation || par.Converged != serial.Converged {
			t.Fatalf("workers=%d: solution header differs: %+v vs %+v", w, par, serial)
		}
		for i := range serial.X {
			if par.X[i] != serial.X[i] {
				t.Fatalf("workers=%d: X[%d] = %v, serial %v (must be bit-identical)", w, i, par.X[i], serial.X[i])
			}
		}
	}
}
