// Package nlp is a from-scratch constrained nonlinear programming solver.
//
// Figure 1 of the paper shows a snooping HMO inferring other parties'
// confidential test-compliance rates from published aggregates "using a
// Non-Linear Programming technique". The paper names no solver; this
// package provides one: an augmented-Lagrangian outer loop around a
// projected-gradient inner minimizer with numerical gradients, plus a
// Nelder-Mead simplex fallback and deterministic multi-start. The attack
// engine (internal/attack) and the mediator's disclosure auditor both use
// it to compute the min/max feasible value of each hidden quantity.
package nlp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"privateiye/internal/parallel"
	"privateiye/internal/stats"
)

// Constraint is a scalar constraint function. Equalities want c(x) = 0,
// inequalities want c(x) <= 0.
type Constraint func(x []float64) float64

// Problem is a box-constrained nonlinear program:
//
//	minimize   Objective(x)
//	subject to h(x) = 0 for h in Equalities
//	           g(x) <= 0 for g in Inequalities
//	           Lower <= x <= Upper
type Problem struct {
	Dim          int
	Objective    func(x []float64) float64
	Equalities   []Constraint
	Inequalities []Constraint
	Lower, Upper []float64 // length Dim; required (the attack domain is [0,100]^n)
}

// Validate checks the problem is well-formed.
func (p *Problem) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("nlp: dimension %d", p.Dim)
	}
	if p.Objective == nil {
		return errors.New("nlp: nil objective")
	}
	if len(p.Lower) != p.Dim || len(p.Upper) != p.Dim {
		return fmt.Errorf("nlp: bounds length %d/%d, want %d", len(p.Lower), len(p.Upper), p.Dim)
	}
	for i := range p.Lower {
		if p.Lower[i] > p.Upper[i] {
			return fmt.Errorf("nlp: empty box at dim %d: [%v,%v]", i, p.Lower[i], p.Upper[i])
		}
	}
	return nil
}

// Options tunes the solver. The zero value is usable; Defaults fills in
// standard settings.
type Options struct {
	MaxOuter   int     // augmented-Lagrangian iterations (default 40)
	MaxInner   int     // gradient steps per outer iteration (default 200)
	Tol        float64 // constraint-violation tolerance (default 1e-6)
	Penalty    float64 // initial penalty rho (default 10)
	Starts     int     // multi-start count (default 16)
	Seed       uint64  // PRNG seed for multi-start (default 1)
	GradStep   float64 // finite-difference step (default 1e-6)
	InitialTau float64 // initial step length (default 1.0)
	// Workers bounds the multi-start fan-out: each start is an
	// independent deterministic descent, so they run concurrently and
	// merge in start order — results are bit-identical to the serial
	// path at any width. 0 means GOMAXPROCS; 1 forces serial.
	Workers int
}

func (o Options) defaults() Options {
	if o.MaxOuter == 0 {
		o.MaxOuter = 40
	}
	if o.MaxInner == 0 {
		o.MaxInner = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.Penalty == 0 {
		o.Penalty = 10
	}
	if o.Starts == 0 {
		o.Starts = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GradStep == 0 {
		o.GradStep = 1e-6
	}
	if o.InitialTau == 0 {
		o.InitialTau = 1.0
	}
	return o
}

// Solution is a solver result.
type Solution struct {
	X            []float64
	F            float64 // objective at X
	MaxViolation float64 // max |h| and positive g at X
	Converged    bool    // violation within tolerance
}

// Minimize solves the problem starting from x0 using the augmented
// Lagrangian method. x0 is clamped into the box.
func Minimize(p *Problem, x0 []float64, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.Dim {
		return nil, fmt.Errorf("nlp: x0 length %d, want %d", len(x0), p.Dim)
	}
	opt = opt.defaults()

	x := make([]float64, p.Dim)
	copy(x, x0)
	clamp(x, p.Lower, p.Upper)

	lambda := make([]float64, len(p.Equalities)) // equality multipliers
	mu := make([]float64, len(p.Inequalities))   // inequality multipliers
	rho := opt.Penalty

	augmented := func(x []float64) float64 {
		v := p.Objective(x)
		for i, h := range p.Equalities {
			hv := h(x)
			v += lambda[i]*hv + 0.5*rho*hv*hv
		}
		for j, g := range p.Inequalities {
			gv := g(x)
			t := math.Max(0, mu[j]+rho*gv)
			v += (t*t - mu[j]*mu[j]) / (2 * rho)
		}
		return v
	}

	prevViol := math.Inf(1)
	for outer := 0; outer < opt.MaxOuter; outer++ {
		projectedGradientDescent(augmented, x, p.Lower, p.Upper, opt)

		viol := maxViolation(p, x)
		if viol <= opt.Tol {
			break
		}
		// Multiplier updates.
		for i, h := range p.Equalities {
			lambda[i] += rho * h(x)
		}
		for j, g := range p.Inequalities {
			mu[j] = math.Max(0, mu[j]+rho*g(x))
		}
		// If the violation is not shrinking fast enough, raise the penalty.
		if viol > 0.5*prevViol {
			rho *= 4
		}
		prevViol = viol
	}

	return &Solution{
		X:            x,
		F:            p.Objective(x),
		MaxViolation: maxViolation(p, x),
		Converged:    maxViolation(p, x) <= opt.Tol*10,
	}, nil
}

// MultiStart runs Minimize from Starts random points in the box plus the
// box centre and returns the best feasible solution found (or the least
// infeasible one if none converged).
//
// Starts are generated serially from the seeded PRNG and then descend
// concurrently (Options.Workers wide): each descent is deterministic
// given its start point, and the best-of fold walks results in start
// order, so the returned solution — every bit of it — matches the
// serial path. Figure 1(d) intervals therefore do not move when the
// solver goes parallel.
func MultiStart(p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opt = opt.defaults()
	rng := stats.NewRand(opt.Seed)

	better := func(a, b *Solution) bool {
		if b == nil {
			return true
		}
		if a.Converged != b.Converged {
			return a.Converged
		}
		if a.Converged {
			return a.F < b.F
		}
		return a.MaxViolation < b.MaxViolation
	}

	starts := make([][]float64, 0, opt.Starts+1)
	centre := make([]float64, p.Dim)
	for i := range centre {
		centre[i] = 0.5 * (p.Lower[i] + p.Upper[i])
	}
	starts = append(starts, centre)
	for s := 0; s < opt.Starts; s++ {
		x := make([]float64, p.Dim)
		for i := range x {
			x[i] = rng.Uniform(p.Lower[i], p.Upper[i])
		}
		starts = append(starts, x)
	}

	sols, err := parallel.Map(context.Background(), len(starts), opt.Workers,
		func(i int) (*Solution, error) { return Minimize(p, starts[i], opt) })
	if err != nil {
		return nil, err
	}
	var best *Solution
	for _, sol := range sols { // deterministic: folded in start order
		if better(sol, best) {
			best = sol
		}
	}
	return best, nil
}

// projectedGradientDescent minimizes f over the box in place, using
// central-difference gradients and backtracking line search.
func projectedGradientDescent(f func([]float64) float64, x, lo, hi []float64, opt Options) {
	n := len(x)
	grad := make([]float64, n)
	trial := make([]float64, n)
	fx := f(x)

	for iter := 0; iter < opt.MaxInner; iter++ {
		// Central-difference gradient respecting the box.
		for i := 0; i < n; i++ {
			h := opt.GradStep * math.Max(1, math.Abs(x[i]))
			xi := x[i]
			a, b := xi+h, xi-h
			if a > hi[i] {
				a = hi[i]
			}
			if b < lo[i] {
				b = lo[i]
			}
			if a == b {
				grad[i] = 0
				continue
			}
			x[i] = a
			fa := f(x)
			x[i] = b
			fb := f(x)
			x[i] = xi
			grad[i] = (fa - fb) / (a - b)
		}

		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-12 {
			return
		}

		// Backtracking line search on the projected step.
		tau := opt.InitialTau
		improved := false
		for bt := 0; bt < 30; bt++ {
			for i := 0; i < n; i++ {
				trial[i] = x[i] - tau*grad[i]
			}
			clamp(trial, lo, hi)
			ft := f(trial)
			if ft < fx-1e-12 {
				copy(x, trial)
				fx = ft
				improved = true
				break
			}
			tau /= 2
		}
		if !improved {
			return
		}
	}
}

func clamp(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		}
		if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

func maxViolation(p *Problem, x []float64) float64 {
	v := 0.0
	for _, h := range p.Equalities {
		v = math.Max(v, math.Abs(h(x)))
	}
	for _, g := range p.Inequalities {
		v = math.Max(v, math.Max(0, g(x)))
	}
	return v
}
