package nlp

import "fmt"

// Interval is a closed numeric interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// CoordinateInterval computes the feasible interval of coordinate i over
// the constraint set of p (p.Objective is ignored): it minimizes and
// maximizes x[i] subject to p's constraints via multi-start. This is
// exactly the snooping computation of Figure 1(d): the tightest bounds an
// adversary can place on one hidden value given published aggregates.
func CoordinateInterval(p *Problem, i int, opt Options) (Interval, error) {
	if i < 0 || i >= p.Dim {
		return Interval{}, fmt.Errorf("nlp: coordinate %d out of range [0,%d)", i, p.Dim)
	}
	minP := *p
	minP.Objective = func(x []float64) float64 { return x[i] }
	lo, err := MultiStart(&minP, opt)
	if err != nil {
		return Interval{}, err
	}
	maxP := *p
	maxP.Objective = func(x []float64) float64 { return -x[i] }
	hi, err := MultiStart(&maxP, opt)
	if err != nil {
		return Interval{}, err
	}
	if !lo.Converged || !hi.Converged {
		return Interval{}, fmt.Errorf("nlp: coordinate %d: solver did not converge (violations %g, %g)",
			i, lo.MaxViolation, hi.MaxViolation)
	}
	return Interval{Lo: lo.X[i], Hi: hi.X[i]}, nil
}

// AllCoordinateIntervals computes CoordinateInterval for every dimension.
func AllCoordinateIntervals(p *Problem, opt Options) ([]Interval, error) {
	out := make([]Interval, p.Dim)
	for i := 0; i < p.Dim; i++ {
		iv, err := CoordinateInterval(p, i, opt)
		if err != nil {
			return nil, err
		}
		out[i] = iv
	}
	return out, nil
}
