package nlp

import (
	"errors"
	"math"
	"sort"
)

// NelderMead minimizes f without derivatives from the start point x0 using
// the downhill-simplex method with standard coefficients (reflection 1,
// expansion 2, contraction 0.5, shrink 0.5). It is the fallback inner
// solver for non-smooth objectives (the loss metrics in internal/loss are
// piecewise and gradient-free). Box bounds are enforced by clamping.
func NelderMead(f func([]float64) float64, x0, lo, hi []float64, maxIter int, tol float64) (*Solution, error) {
	n := len(x0)
	if n == 0 {
		return nil, errors.New("nlp: empty start point")
	}
	if maxIter <= 0 {
		maxIter = 500 * n
	}
	if tol <= 0 {
		tol = 1e-9
	}
	clampTo := func(x []float64) {
		if lo != nil && hi != nil {
			clamp(x, lo, hi)
		}
	}

	// Initial simplex: x0 plus a perturbation along each axis.
	simplex := make([][]float64, n+1)
	fvals := make([]float64, n+1)
	for i := range simplex {
		pt := make([]float64, n)
		copy(pt, x0)
		if i > 0 {
			step := 0.05 * math.Max(1, math.Abs(pt[i-1]))
			pt[i-1] += step
		}
		clampTo(pt)
		simplex[i] = pt
		fvals[i] = f(pt)
	}

	order := func() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return fvals[idx[a]] < fvals[idx[b]] })
		ns := make([][]float64, n+1)
		nf := make([]float64, n+1)
		for i, j := range idx {
			ns[i] = simplex[j]
			nf[i] = fvals[j]
		}
		simplex, fvals = ns, nf
	}

	centroid := make([]float64, n)
	point := func(coef float64) []float64 {
		// centroid + coef*(centroid - worst)
		out := make([]float64, n)
		worst := simplex[n]
		for i := 0; i < n; i++ {
			out[i] = centroid[i] + coef*(centroid[i]-worst[i])
		}
		clampTo(out)
		return out
	}

	for iter := 0; iter < maxIter; iter++ {
		order()
		if math.Abs(fvals[n]-fvals[0]) < tol {
			break
		}
		for i := range centroid {
			centroid[i] = 0
		}
		for _, pt := range simplex[:n] {
			for i, v := range pt {
				centroid[i] += v / float64(n)
			}
		}

		refl := point(1)
		fr := f(refl)
		switch {
		case fr < fvals[0]:
			exp := point(2)
			fe := f(exp)
			if fe < fr {
				simplex[n], fvals[n] = exp, fe
			} else {
				simplex[n], fvals[n] = refl, fr
			}
		case fr < fvals[n-1]:
			simplex[n], fvals[n] = refl, fr
		default:
			con := point(-0.5)
			fc := f(con)
			if fc < fvals[n] {
				simplex[n], fvals[n] = con, fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[0][j] + 0.5*(simplex[i][j]-simplex[0][j])
					}
					clampTo(simplex[i])
					fvals[i] = f(simplex[i])
				}
			}
		}
	}
	order()
	return &Solution{X: simplex[0], F: fvals[0], Converged: true}, nil
}
