package e2e

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// slowComplianceNode is a compliance source whose /query answers after a
// fixed delay — a believably slow autonomous remote. The delay is what
// makes a concurrent burst of identical queries genuinely overlap inside
// the mediator, so coalescing is deterministic rather than a scheduling
// accident.
func slowComplianceNode(t *testing.T, name string, delay time.Duration) *httptest.Server {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(name, policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{Name: name, Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	local, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	inner := source.NewHandler(local)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/query") {
			time.Sleep(delay)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestAmortizationEndToEnd drives the batch paths over real HTTP: a
// mediator with group commit and coalescing on, a slow remote source,
// and a gated burst of identical queries from one requester. It pins
// the operator-visible story: every caller answered, execution shared
// (coalesce counters on /metrics), audit per caller (history has one
// entry per query), and the WAL's group-commit metrics exposed.
func TestAmortizationEndToEnd(t *testing.T) {
	node := slowComplianceNode(t, "alpha", 50*time.Millisecond)

	dir := t.TempDir()
	reg := obs.NewRegistry()
	med, err := mediator.New(mediator.Config{
		Endpoints:       []source.Endpoint{source.NewClient(node.URL, "alpha")},
		LinkageSalt:     salt,
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		SourceTimeout:   10 * time.Second,
		PlanCache:       64,
		Coalesce:        true,
		Durability:      &mediator.DurabilityConfig{Dir: dir, GroupCommit: true, GroupMaxBatch: 8},
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	medSrv := httptest.NewServer(mediator.NewHandler(med))
	t.Cleanup(medSrv.Close)

	// One identical query, eight concurrent callers, one requester. The
	// release is an aggregate the ledger allows any number of times (an
	// identical equation adds no disclosure).
	const burst = 8
	gate := make(chan struct{})
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			req, err := http.NewRequest(http.MethodPost, medSrv.URL+"/query", strings.NewReader(perTestQuery))
			if err != nil {
				errs <- err
				return
			}
			req.Header.Set("X-Requester", "analyst")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("burst query: %d %s", resp.StatusCode, body)
			}
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Execution shared: every caller took a coalesce role, and with the
	// source parked for 50ms at least one follower joined the leader's
	// flight. (The exact split is scheduling; the sum is not.)
	samples := scrape(t, medSrv.URL)
	leaders := samples[`piye_mediator_coalesce_total{role="leader"}`]
	followers := samples[`piye_mediator_coalesce_total{role="follower"}`]
	if leaders+followers != burst {
		t.Errorf("coalesce roles sum to %v, want %d", leaders+followers, burst)
	}
	wantAtLeast(t, samples, `piye_mediator_coalesce_total{role="leader"}`, 1)
	wantAtLeast(t, samples, `piye_mediator_coalesce_total{role="follower"}`, 1)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="answered"}`, burst)

	// Controls per caller: one history entry (and its WAL record) per
	// coalesced caller, not per execution.
	if got := len(med.History()); got != burst {
		t.Errorf("history has %d entries, want %d (per-caller audit lost)", got, burst)
	}

	// The WAL's group-commit surface is live: appends flowed (ledger
	// release + history records), fsyncs were paid, and the batch-size
	// histogram observed every synced batch.
	wantAtLeast(t, samples, `piye_wal_appends_total{log="mediator"}`, float64(burst))
	wantAtLeast(t, samples, `piye_wal_fsyncs_total{log="mediator"}`, 1)
	wantAtLeast(t, samples, `piye_wal_group_batch_size_count{log="mediator"}`, 1)
	if _, ok := samples[`piye_wal_group_fsyncs_saved_total{log="mediator"}`]; !ok {
		t.Error("piye_wal_group_fsyncs_saved_total absent from scrape")
	}
	if _, ok := samples[`piye_plan_cache_hit_ratio{scope="mediator"}`]; !ok {
		t.Error("piye_plan_cache_hit_ratio absent from scrape")
	}

	// The durable tail of a coalesced burst still recovers: a restart
	// replays one release equation and eight history entries.
	if err := med.Close(); err != nil {
		t.Fatal(err)
	}
	med2, err := mediator.New(mediator.Config{
		Endpoints:       []source.Endpoint{source.NewClient(node.URL, "alpha")},
		LinkageSalt:     salt,
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		Durability:      &mediator.DurabilityConfig{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer med2.Close()
	if got := len(med2.History()); got != burst {
		t.Errorf("recovered history has %d entries, want %d", got, burst)
	}
	// And the replayed sigma release still arms the ledger: the Figure 1
	// combination is refused after restart, coalesced burst or not.
	if _, err := med2.Query(perHMOQuery, "analyst"); err == nil {
		t.Error("Figure 1 combination must still be refused after recovering a coalesced burst")
	}
}
