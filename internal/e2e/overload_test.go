// Overload end to end: a mediator with admission control and brownout
// in front of a real HTTP source node that can be slowed on demand. The
// scenario floods the mediator past its concurrency limit and checks
// the full contract: sheds answer 429/503 with Retry-After, brownout
// serves marked-stale warehouse answers, privacy refusals stay
// distinguishable from sheds in status codes, metrics and traces, and
// the system returns to normal service once the flood passes.
package e2e

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// slowableNode is complianceNode with a tap: while delayNs is non-zero,
// every /query call sleeps that long before executing, simulating a
// backend that overload has made slow.
func slowableNode(t *testing.T, name string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(name, policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{
		Name: name, Catalog: cat, Policy: pol, Registry: preserve.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	var delayNs atomic.Int64
	h := source.NewHandler(local)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := delayNs.Load(); d > 0 && strings.HasPrefix(r.URL.Path, "/query") {
			time.Sleep(time.Duration(d))
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &delayNs
}

// postRaw is postQuery returning the full response, for header checks.
func postRaw(t *testing.T, base, query, requester string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Requester", requester)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatalf("%d response without Retry-After", resp.StatusCode)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("Retry-After %q is not delay-seconds: %v", v, err)
	}
	return n
}

func TestOverloadAdmissionEndToEnd(t *testing.T) {
	node, delayNs := slowableNode(t, "alpha")
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(32)
	med, err := mediator.New(mediator.Config{
		Endpoints:         []source.Endpoint{source.NewClient(node.URL, "alpha")},
		LinkageSalt:       salt,
		MaxDisclosure:     0.9,
		LedgerTolerance:   0.05,
		SourceTimeout:     10 * time.Second,
		WarehouseCapacity: 8,
		WarehouseTTL:      1,
		PlanCache:         64,
		Admission: &admission.Config{
			MaxConcurrent: 1,
			QueueCapacity: -1, // shed immediately at the limit
			RatePerSec:    0.2,
			Burst:         4,
		},
		Brownout: true,
		Obs:      reg,
		Trace:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	medSrv := httptest.NewServer(mediator.NewHandler(med))
	defer medSrv.Close()

	// --- Normal service: release, then a privacy refusal ----------------

	// The release also materializes analyst's warehouse entry — the
	// stale copy brownout will serve during the flood.
	if code, body := postQuery(t, medSrv.URL, perTestQuery, "analyst"); code != http.StatusOK {
		t.Fatalf("baseline release: %d %s", code, body)
	}
	code, body := postQuery(t, medSrv.URL, perHMOQuery, "analyst")
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("Figure 1 combination must still be refused (403): %d %s", code, body)
	}

	// --- Rate limiting: the fifth query in a burst answers 429 ----------

	var resp *http.Response
	for i := 0; i < 5; i++ {
		resp, body = postRaw(t, medSrv.URL, perTestQuery, "flooder")
		if i < 4 && resp.StatusCode != http.StatusOK {
			t.Fatalf("flooder query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overflow = %d %s, want 429", resp.StatusCode, body)
	}
	if !strings.Contains(body, "rate limit") {
		t.Fatalf("429 body should say rate limit: %s", body)
	}
	if ra := retryAfterSeconds(t, resp); ra < 1 {
		t.Fatalf("429 Retry-After = %d, want >= 1s", ra)
	}

	// --- Concurrency flood: shed, brownout, and recovery ----------------

	delayNs.Store(int64(400 * time.Millisecond))
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		if code, body := postQuery(t, medSrv.URL, perTestQuery, "occupier"); code != http.StatusOK {
			t.Errorf("occupier (admitted, slow): %d %s", code, body)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for med.AdmissionStats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("occupier never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	// analyst has a (stale, TTL 1) warehouse entry: brownout serves it,
	// marked, instead of shedding.
	resp, body = postRaw(t, medSrv.URL, perTestQuery, "analyst")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("brownout answer: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `stale="true"`) || !strings.Contains(body, "stale-age") {
		t.Fatalf("brownout answer is not marked stale: %s", body)
	}

	// A requester with nothing materialized is shed: 503 + Retry-After.
	resp, body = postRaw(t, medSrv.URL, perTestQuery, "stranger")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("flood shed = %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(body, "overloaded") {
		t.Fatalf("503 body should say overloaded: %s", body)
	}
	retryAfterSeconds(t, resp)

	<-occupied
	delayNs.Store(0)

	// Flood over: normal service resumes, nothing stays wedged.
	if code, body := postQuery(t, medSrv.URL, perTestQuery, "prober"); code != http.StatusOK {
		t.Fatalf("post-flood query: %d %s", code, body)
	}
	if s := med.AdmissionStats(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("admission did not drain: %+v", s)
	}

	// --- Metrics: sheds and refusals never share a series ----------------

	samples := scrape(t, medSrv.URL)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="refused"}`, 1)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="shed"}`, 2)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="brownout"}`, 1)
	wantSample(t, samples, `piye_mediator_refusals_total{reason="ledger-combination"}`, 1)
	wantSample(t, samples, `piye_mediator_refusals_total{reason="ratelimited"}`, 1)
	wantSample(t, samples, `piye_mediator_refusals_total{reason="overloaded"}`, 1)
	wantSample(t, samples, `piye_admission_shed_total{scope="mediator",cause="ratelimited"}`, 1)
	wantSample(t, samples, `piye_admission_shed_total{scope="mediator",cause="queue-full"}`, 2)
	wantSample(t, samples, `piye_admission_inflight{scope="mediator"}`, 0)
	wantSample(t, samples, `piye_admission_queue_depth{scope="mediator"}`, 0)
	wantAtLeast(t, samples, `piye_admission_limit{scope="mediator"}`, 1)
	wantAtLeast(t, samples, `piye_admission_admitted_total{scope="mediator"}`, 7)

	// --- Traces: each outcome tells its own story ------------------------

	var sawRateLimited, sawOverloaded, sawRefusal, sawBrownout bool
	for _, tr := range getTraces(t, medSrv.URL, 32) {
		switch {
		case tr.Outcome == "refused:ratelimited" && tr.Requester == "flooder":
			sawRateLimited = true
		case tr.Outcome == "refused:overloaded" && tr.Requester == "stranger":
			sawOverloaded = true
		case tr.Outcome == "refused:ledger-combination" && tr.Requester == "analyst":
			sawRefusal = true
		case tr.Outcome == "answered" && tr.Requester == "analyst" && tr.Query == perTestQuery:
			sawBrownout = true
		}
	}
	if !sawRateLimited || !sawOverloaded || !sawRefusal || !sawBrownout {
		t.Errorf("traces missing outcomes: ratelimited=%v overloaded=%v refusal=%v brownout=%v",
			sawRateLimited, sawOverloaded, sawRefusal, sawBrownout)
	}
}
