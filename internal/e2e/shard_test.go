// The sharded-tier end-to-end test: two HTTP source nodes, three
// mediator shards (each with its own durable state directory and its
// own ownership gate), and a piye-router front. What it locks in is the
// PR's core safety claim: sharding the tier never weakens a refusal.
// The Figure 1 combination refusal happens on the one shard that holds
// the requester's ledger, survives router retries, survives a drain,
// and a requester can never dodge it by reaching a shard that has not
// seen their history — misrouted queries answer 503 not-owner, never a
// fresh-ledger 200 and never a spurious 403.
package e2e

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/resilience"
	"privateiye/internal/shard"
	"privateiye/internal/source"
)

var shardPeers = []string{"shard-a", "shard-b", "shard-c"}

// newShardMediator builds one mediator shard over the given source
// nodes: durable state under dir, the ownership gate armed with the
// tier's peer list, and its own registry and tracer (each shard is its
// own process in deployment; sharing a registry would fuse their
// metrics).
func newShardMediator(t *testing.T, dir, id string, nodes map[string]*httptest.Server) (*mediator.Mediator, *httptest.Server, *obs.Registry) {
	t.Helper()
	var eps []source.Endpoint
	for _, name := range []string{"alpha", "beta"} {
		eps = append(eps, source.NewClient(nodes[name].URL, name))
	}
	reg := obs.NewRegistry()
	med, err := mediator.New(mediator.Config{
		Endpoints:         eps,
		LinkageSalt:       salt,
		MaxDisclosure:     0.9,
		LedgerTolerance:   0.05,
		SourceTimeout:     10 * time.Second,
		WarehouseCapacity: 8,
		WarehouseTTL:      100,
		PlanCache:         64,
		Resilience: &resilience.EndpointConfig{
			Policy:  resilience.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute},
		},
		Durability: &mediator.DurabilityConfig{Dir: dir},
		Obs:        reg,
		Trace:      obs.NewTracer(32),
		Shard: &mediator.ShardConfig{
			ID:    id,
			Peers: shardPeers,
			Seed:  shard.DefaultSeed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	srv := httptest.NewServer(mediator.NewHandler(med))
	t.Cleanup(srv.Close)
	return med, srv, reg
}

// historyRequesters lists the distinct requesters in one shard's
// /history.
func historyRequesters(t *testing.T, base string) map[string]bool {
	t.Helper()
	resp, err := http.Get(base + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]bool{}
	// The history is XML; requester is an attribute. String-scan rather
	// than parse: the exact shape is pinned elsewhere.
	b := make([]byte, 1<<20)
	n, _ := resp.Body.Read(b)
	for _, part := range strings.Split(string(b[:n]), `requester="`)[1:] {
		if i := strings.IndexByte(part, '"'); i > 0 {
			out[part[:i]] = true
		}
	}
	return out
}

// ownedBy finds n fresh requester names the reference ring places on
// the given shard.
func ownedBy(t *testing.T, ring *shard.Ring, owner, prefix string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 10000; i++ {
		cand := fmt.Sprintf("%s-%04d", prefix, i)
		if o, err := ring.Lookup(cand); err != nil {
			t.Fatal(err)
		} else if o == owner {
			out = append(out, cand)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d requesters owned by %s", len(out), n, owner)
	}
	return out
}

// routerShards decodes the router's GET /shards admin view.
func routerShards(t *testing.T, base string) map[string]struct {
	Draining bool
	Healthy  bool
} {
	t.Helper()
	resp, err := http.Get(base + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Shards []struct {
			Name     string `json:"name"`
			Draining bool   `json:"draining"`
			Healthy  bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	out := map[string]struct {
		Draining bool
		Healthy  bool
	}{}
	for _, s := range view.Shards {
		out[s.Name] = struct {
			Draining bool
			Healthy  bool
		}{s.Draining, s.Healthy}
	}
	return out
}

// TestShardedTierEndToEnd drives the full tier through stickiness,
// misrouting, the Figure 1 refusal, drain/re-route, and a shard death.
// Sub-steps share the deployment and run in order.
func TestShardedTierEndToEnd(t *testing.T) {
	nodes := map[string]*httptest.Server{}
	for _, name := range []string{"alpha", "beta"} {
		srv, _ := complianceNode(t, name)
		nodes[name] = srv
	}

	shardSrvs := map[string]*httptest.Server{}
	shardRegs := map[string]*obs.Registry{}
	shardMeds := map[string]*mediator.Mediator{}
	for _, id := range shardPeers {
		med, srv, reg := newShardMediator(t, t.TempDir(), id, nodes)
		shardSrvs[id] = srv
		shardRegs[id] = reg
		shardMeds[id] = med
	}
	// Peer URLs arm the drain-claim verification and the undrain strand
	// check (unknown until every shard's server is up, hence set late).
	peerURLs := map[string]string{}
	for _, id := range shardPeers {
		peerURLs[id] = shardSrvs[id].URL
	}
	for _, id := range shardPeers {
		if err := shardMeds[id].SetShardPeerURLs(peerURLs); err != nil {
			t.Fatal(err)
		}
	}

	var backends []shard.Backend
	for _, id := range shardPeers {
		backends = append(backends, shard.Backend{Name: id, URL: shardSrvs[id].URL})
	}
	rtReg := obs.NewRegistry()
	rt, err := shard.NewRouter(shard.RouterConfig{
		Shards:      backends,
		Seed:        shard.DefaultSeed,
		Retry:       resilience.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Breaker:     resilience.BreakerConfig{FailureThreshold: 3, OpenFor: 200 * time.Millisecond},
		HealthEvery: 100 * time.Millisecond,
		Obs:         rtReg,
		Trace:       obs.NewTracer(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtSrv := httptest.NewServer(rt.Handler())
	defer rtSrv.Close()

	// The reference ring: what every shard and the router compute.
	ref := shard.New(shard.DefaultSeed, 0)
	for _, id := range shardPeers {
		if err := ref.Add(id); err != nil {
			t.Fatal(err)
		}
	}

	// --- Requester stickiness through the router ------------------------

	requesters := []string{}
	for i := 0; i < 12; i++ {
		requesters = append(requesters, fmt.Sprintf("clinician-%02d", i))
	}
	for _, req := range requesters {
		for rep := 0; rep < 2; rep++ {
			if code, body := postQuery(t, rtSrv.URL, perTestQuery, req); code != http.StatusOK {
				t.Fatalf("routed query for %s: %d %s", req, code, body)
			}
		}
	}
	for _, req := range requesters {
		owner, err := ref.Lookup(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range shardPeers {
			has := historyRequesters(t, shardSrvs[id].URL)[req]
			if id == owner && !has {
				t.Errorf("requester %s missing from owner %s's history", req, id)
			}
			if id != owner && has {
				t.Errorf("requester %s leaked onto non-owner %s", req, id)
			}
		}
	}
	// Every shard's trace carries its shard id.
	for _, id := range shardPeers {
		traces := getTraces(t, shardSrvs[id].URL, 1)
		if len(traces) == 1 && traces[0].Shard != id {
			t.Errorf("shard %s stamps traces with %q", id, traces[0].Shard)
		}
	}

	// --- Misrouted requester: 503 not-owner, never 403 ------------------

	stray := ownedBy(t, ref, "shard-a", "stray", 1)[0]
	code, body := postQuery(t, shardSrvs["shard-b"].URL, perTestQuery, stray)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("wrong-shard query answered %d %s, want 503 (403 would masquerade as a privacy refusal)", code, body)
	}
	if !strings.Contains(body, "is not the owner of requester") {
		t.Errorf("not-owner refusal body: %q", body)
	}
	bSamples := scrape(t, shardSrvs["shard-b"].URL)
	wantAtLeast(t, bSamples, `piye_shard_not_owner_total{shard="shard-b"}`, 1)
	wantSample(t, bSamples, `piye_shard_draining{shard="shard-b"}`, 0)

	// --- Forged drain claim: the header is not a credential --------------

	// The HTTP surface accepts X-Shard-Rerouted-From from anyone, so a
	// client can name the true owner and knock on a non-owner's door
	// directly. shard-a is NOT draining: shard-b must confirm the claim
	// against shard-a's own /shard/status and refuse — serving would
	// hand the requester a fresh ledger, the exact refusal-weakening
	// sharding exists to prevent.
	freq, err := http.NewRequest(http.MethodPost, shardSrvs["shard-b"].URL+"/query", strings.NewReader(perTestQuery))
	if err != nil {
		t.Fatal(err)
	}
	freq.Header.Set("X-Requester", stray)
	freq.Header.Set("X-Shard-Rerouted-From", "shard-a")
	fresp, err := http.DefaultClient.Do(freq)
	if err != nil {
		t.Fatal(err)
	}
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(fbody), "is not the owner of requester") {
		t.Fatalf("forged drain claim against a non-draining owner answered %d %s, want 503 not-owner", fresp.StatusCode, fbody)
	}
	bSamples = scrape(t, shardSrvs["shard-b"].URL)
	wantAtLeast(t, bSamples, `piye_shard_reroute_denied_total{shard="shard-b"}`, 1)

	// --- Figure 1 refusal on the owning shard, through the router -------

	snooper := ownedBy(t, ref, "shard-c", "snooper", 1)[0]
	if code, body := postQuery(t, rtSrv.URL, perTestQuery, snooper); code != http.StatusOK {
		t.Fatalf("Figure 1a release should pass: %d %s", code, body)
	}
	code, body = postQuery(t, rtSrv.URL, perHMOQuery, snooper)
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("Figure 1 combination must be refused through the router: %d %s", code, body)
	}
	// A retry cannot shake the refusal loose (the router must not have
	// retried the 403 onto some other shard, and the ledger is durable).
	code, body = postQuery(t, rtSrv.URL, perHMOQuery, snooper)
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("repeated Figure 1b must stay refused: %d %s", code, body)
	}

	// --- Drain: the refusal survives, new requesters re-route -----------

	resp, err := http.Post(rtSrv.URL+"/shards/drain?name=shard-c", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drain admin answered %d", resp.StatusCode)
	}
	if view := routerShards(t, rtSrv.URL); !view["shard-c"].Draining {
		t.Fatal("router view does not show shard-c draining")
	}
	cSamples := scrape(t, shardSrvs["shard-c"].URL)
	wantSample(t, cSamples, `piye_shard_draining{shard="shard-c"}`, 1)

	// THE acceptance check: the snooper's ledger refusal is not lost
	// across the drain. The draining shard still owns the snooper's
	// state and still refuses the combination.
	code, body = postQuery(t, rtSrv.URL, perHMOQuery, snooper)
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("REFUSAL LOST ACROSS DRAIN: Figure 1b answered %d %s (a drain must never reset the ledger)", code, body)
	}

	// A new requester owned by the draining shard re-routes to the
	// drain-adjusted owner and answers 200 there.
	newcomer := ownedBy(t, ref, "shard-c", "newcomer", 1)[0]
	adjOwner, err := ref.LookupExcluding(newcomer, []string{"shard-c"})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := postQuery(t, rtSrv.URL, perTestQuery, newcomer); code != http.StatusOK {
		t.Fatalf("drain re-route for %s: %d %s", newcomer, code, body)
	}
	if !historyRequesters(t, shardSrvs[adjOwner].URL)[newcomer] {
		t.Errorf("newcomer did not land on the drain-adjusted owner %s", adjOwner)
	}
	if historyRequesters(t, shardSrvs["shard-c"].URL)[newcomer] {
		t.Error("newcomer was served by the draining shard")
	}
	adjSamples := scrape(t, shardSrvs[adjOwner].URL)
	wantAtLeast(t, adjSamples, fmt.Sprintf(`piye_shard_rerouted_accepted_total{shard=%q}`, adjOwner), 1)
	cSamples = scrape(t, shardSrvs["shard-c"].URL)
	wantAtLeast(t, cSamples, `piye_shard_draining_refusals_total{shard="shard-c"}`, 1)

	// Undrain is NOT the safe reverse of drain any more: the newcomer's
	// ledger and history now live on the drain-adjusted owner, and
	// undraining would hand the newcomer back to shard-c's fresh
	// ledger. The shard checks its peers and refuses (409, passed back
	// through the router verbatim), naming the stranded requester.
	resp, err = http.Post(rtSrv.URL+"/shards/undrain?name=shard-c", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ubody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("undrain with stranded re-routed state answered %d %s, want 409", resp.StatusCode, ubody)
	}
	if !strings.Contains(string(ubody), "undrain refused") || !strings.Contains(string(ubody), newcomer) {
		t.Fatalf("undrain refusal %q does not name the stranded requester %s", ubody, newcomer)
	}
	if view := routerShards(t, rtSrv.URL); !view["shard-c"].Draining {
		t.Fatal("refused undrain cleared the router's drain mark")
	}

	// The operator force-undrains (accepting or having migrated the
	// newcomer's state); established state never moved, so the
	// snooper's ledger refusal survives.
	resp, err = http.Post(rtSrv.URL+"/shards/undrain?name=shard-c&force=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("forced undrain admin answered %d", resp.StatusCode)
	}
	code, body = postQuery(t, rtSrv.URL, perHMOQuery, snooper)
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("refusal lost across undrain: %d %s", code, body)
	}

	// --- Dead shard: its requesters 503, everyone else keeps working ----

	shardSrvs["shard-b"].CloseClientConnections()
	shardSrvs["shard-b"].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if view := routerShards(t, rtSrv.URL); !view["shard-b"].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never noticed shard-b dying")
		}
		time.Sleep(20 * time.Millisecond)
	}
	orphan := ownedBy(t, ref, "shard-b", "orphan", 1)[0]
	code, body = postQuery(t, rtSrv.URL, perTestQuery, orphan)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead shard's requester answered %d %s, want 503 (its ledger is unreachable; serving elsewhere could weaken a refusal)", code, body)
	}
	survivor := ownedBy(t, ref, "shard-a", "survivor", 1)[0]
	if code, body := postQuery(t, rtSrv.URL, perTestQuery, survivor); code != http.StatusOK {
		t.Fatalf("surviving shard's requester should keep working: %d %s", code, body)
	}
}
