package e2e

import (
	"context"
	"testing"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"

	"net/http/httptest"
)

// suiteNode serves one compliance source over HTTP with an explicit PSI
// suite advertisement (nil = the default: p256 preferred, MODP floor).
// It models the fleet-upgrade scenario: a node still running the
// pre-curve build advertises only its MODP group.
func suiteNode(t *testing.T, name string, advertised []string) *httptest.Server {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(name, policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{Name: name, Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	local, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	local.AdvertisedSuites = advertised
	srv := httptest.NewServer(source.NewHandler(local))
	t.Cleanup(srv.Close)
	return srv
}

func suiteMediator(t *testing.T, nodes map[string]*httptest.Server) *mediator.Mediator {
	t.Helper()
	var eps []source.Endpoint
	for name, srv := range nodes {
		eps = append(eps, source.NewClient(srv.URL, name))
	}
	med, err := mediator.New(mediator.Config{
		Endpoints:     eps,
		LinkageSalt:   salt,
		SourceTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// TestMixedSuiteFleetNegotiatesDown is the interop acceptance test for
// the suite rollout: one legacy MODP-only source and one current source
// behind an EC-preferring mediator. The fleet must negotiate down to
// the legacy group, private overlap must still be exact, and ordinary
// mediated queries must keep answering — a mixed fleet degrades, it
// does not break.
func TestMixedSuiteFleetNegotiatesDown(t *testing.T) {
	legacy := suiteNode(t, "legacy", []string{psi.SuiteNameModP768})
	modern := suiteNode(t, "modern", nil)
	med := suiteMediator(t, map[string]*httptest.Server{"legacy": legacy, "modern": modern})

	if got := med.PSISuite(); got != psi.SuiteNameModP768 {
		t.Fatalf("negotiated suite = %q, want %q (the legacy source cannot do better)", got, psi.SuiteNameModP768)
	}

	ctx := context.Background()
	n, err := med.Overlap(ctx, "legacy", "modern", "hmo")
	if err != nil {
		t.Fatalf("overlap on the downgraded suite: %v", err)
	}
	if n != len(clinical.HMOs) {
		t.Fatalf("overlap = %d distinct hmo values, want %d", n, len(clinical.HMOs))
	}

	// The protocol messages really are in the negotiated group: the
	// envelope names it and every element is one 768-bit residue.
	cli := source.NewClient(legacy.URL, "legacy")
	elems, err := cli.PSIBlinded(ctx, "hmo", med.PSISuite())
	if err != nil {
		t.Fatal(err)
	}
	if got := psi.WireSuiteName(elems); got != psi.SuiteNameModP768 {
		t.Fatalf("envelope suite = %q, want %q", got, psi.SuiteNameModP768)
	}
	for _, e := range elems.ChildrenNamed("e") {
		if len(e.Text) != 2*96 {
			t.Fatalf("element width %d hex chars, want %d", len(e.Text), 2*96)
		}
	}

	// And the rest of the mediation pipeline is untouched by the
	// downgrade: an aggregate query still answers through both sources.
	out, err := med.Query(perTestQuery, "analyst")
	if err != nil {
		t.Fatalf("mediated query on the mixed fleet: %v", err)
	}
	if len(out.Answered) != 2 {
		t.Fatalf("answered sources = %v, want both", out.Answered)
	}
}

// TestMixedSuiteAllECFleetPrefersP256 is the matching upgrade-complete
// case: when every source advertises the curve, negotiation picks it
// and the wire carries 33-byte compressed points.
func TestMixedSuiteAllECFleetPrefersP256(t *testing.T) {
	a := suiteNode(t, "alpha", nil)
	b := suiteNode(t, "beta", nil)
	med := suiteMediator(t, map[string]*httptest.Server{"alpha": a, "beta": b})

	if got := med.PSISuite(); got != psi.SuiteNameP256 {
		t.Fatalf("negotiated suite = %q, want %q", got, psi.SuiteNameP256)
	}

	ctx := context.Background()
	n, err := med.Overlap(ctx, "alpha", "beta", "hmo")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(clinical.HMOs) {
		t.Fatalf("overlap = %d, want %d", n, len(clinical.HMOs))
	}

	cli := source.NewClient(a.URL, "alpha")
	elems, err := cli.PSIBlinded(ctx, "hmo", med.PSISuite())
	if err != nil {
		t.Fatal(err)
	}
	if got := psi.WireSuiteName(elems); got != psi.SuiteNameP256 {
		t.Fatalf("envelope suite = %q, want %q", got, psi.SuiteNameP256)
	}
	for _, e := range elems.ChildrenNamed("e") {
		if len(e.Text) != 2*33 {
			t.Fatalf("element width %d hex chars, want %d (compressed point)", len(e.Text), 2*33)
		}
	}
}
