// Failover end to end: a primary mediator and a warm standby over real
// HTTP, live query load, a primary kill, a fenced promotion, and a
// revived old primary that must be refused — asserted through the same
// /metrics, /readyz, /replica/status and ledger surfaces an operator
// would use.
package e2e

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/resilience"
	"privateiye/internal/source"
)

// newReplicaMediator builds one mediator of the failover pair. An empty
// primaryURL makes it the primary; otherwise it is a warm standby of
// that URL. Fast heartbeats keep the test quick.
func newReplicaMediator(t *testing.T, dir string, reg *obs.Registry, nodes map[string]*httptest.Server, primaryURL string) *mediator.Mediator {
	t.Helper()
	var eps []source.Endpoint
	for _, name := range []string{"alpha", "beta", "gamma"} {
		eps = append(eps, source.NewClient(nodes[name].URL, name))
	}
	med, err := mediator.New(mediator.Config{
		Endpoints:       eps,
		LinkageSalt:     salt,
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		SourceTimeout:   10 * time.Second,
		PlanCache:       64,
		Resilience: &resilience.EndpointConfig{
			Policy:  resilience.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
			Breaker: resilience.BreakerConfig{FailureThreshold: 10, OpenFor: time.Minute},
		},
		Durability: &mediator.DurabilityConfig{Dir: dir},
		Replica: &mediator.ReplicaConfig{
			PrimaryURL: primaryURL,
			Heartbeat:  20 * time.Millisecond,
			Reconnect:  20 * time.Millisecond,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// serveAt serves h on a specific address, retrying the bind briefly —
// the revived old primary must come back on the address the fencer and
// the standby already know.
func serveAt(t *testing.T, addr string, h http.Handler) *httptest.Server {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("binding %s: %v", addr, err)
	}
	srv := httptest.NewUnstartedServer(h)
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	return srv
}

// waitReady polls /readyz until it answers 200 — the same startup wait a
// deployment script or orchestrator performs.
func waitReady(t *testing.T, base, who string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			last = fmt.Sprintf("%d %s", resp.StatusCode, body)
		} else {
			last = err.Error()
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready: %s", who, last)
}

// replicaStatus fetches /replica/status.
func replicaStatus(t *testing.T, base string) mediator.ReplicaStatus {
	t.Helper()
	resp, err := http.Get(base + "/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st mediator.ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// tryQuery is postQuery without t.Fatal — load goroutines tolerate the
// failover window.
func tryQuery(base, query, requester string) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(query))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("X-Requester", requester)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

func TestFailoverUnderLoadEndToEnd(t *testing.T) {
	nodes := map[string]*httptest.Server{}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		srv, _ := complianceNode(t, name)
		nodes[name] = srv
		// Source liveness is part of the harness startup wait too.
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("source %s health: %v %v", name, resp, err)
		}
		resp.Body.Close()
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	regA, regB := obs.NewRegistry(), obs.NewRegistry()

	// --- Primary A up, standby B tailing it -----------------------------

	medA := newReplicaMediator(t, dirA, regA, nodes, "")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA := l.Addr().String()
	l.Close()
	srvA := serveAt(t, addrA, mediator.NewHandler(medA))
	urlA := "http://" + addrA
	waitReady(t, urlA, "primary A")

	medB := newReplicaMediator(t, dirB, regB, nodes, urlA)
	defer medB.Close()
	srvB := httptest.NewServer(mediator.NewHandler(medB))
	defer srvB.Close()
	urlB := srvB.URL

	// The release granted BEFORE failover: snooper takes Figure 1a on A.
	if code, body := postQuery(t, urlA, perTestQuery, "snooper"); code != http.StatusOK {
		t.Fatalf("pre-failover release should pass: %d %s", code, body)
	}
	waitReady(t, urlB, "standby B")

	// A standby refuses queries (503, retry against the primary) and
	// counts the refusal under its own reason.
	code, body := postQuery(t, urlB, perTestQuery, "snooper")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "not primary") {
		t.Fatalf("standby must refuse with 503 not-primary: %d %s", code, body)
	}
	wantAtLeast(t, scrape(t, urlB), `piye_mediator_refusals_total{reason="not-primary"}`, 1)
	if st := replicaStatus(t, urlB); st.Role != "standby" || st.Replication == nil || !st.Replication.CaughtUp {
		t.Fatalf("standby status = %+v", st)
	}

	// --- Live load, then kill the primary -------------------------------

	var answered, lost atomic.Int64
	target := atomic.Value{}
	target.Store(urlA)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, _, err := tryQuery(target.Load().(string), perTestQuery, fmt.Sprintf("load-%d-%d", w, i))
				if err == nil && code == http.StatusOK {
					answered.Add(1)
				} else {
					lost.Add(1)
					time.Sleep(5 * time.Millisecond) // the dead-primary window
				}
			}
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for answered.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if answered.Load() < 3 {
		t.Fatal("load never got going against the primary")
	}

	// Kill A: connections die mid-flight, the process exits.
	srvA.CloseClientConnections()
	srvA.Close()
	if err := medA.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Promote B; load continues against it ---------------------------

	resp, err := http.Post(urlB+"/replica/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !promoted.Promoted || promoted.Epoch != 2 {
		t.Fatalf("promote = %+v, want epoch 2", promoted)
	}
	waitReady(t, urlB, "promoted B")
	target.Store(urlB)

	preB := answered.Load()
	deadline = time.Now().Add(10 * time.Second)
	for answered.Load() < preB+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if answered.Load() < preB+3 {
		t.Fatal("the promoted standby never served the load")
	}
	t.Logf("load: %d answered, %d lost during failover", answered.Load(), lost.Load())

	// --- No double-grant: the pre-failover release binds B's ledger -----

	code, body = postQuery(t, urlB, perHMOQuery, "snooper")
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("promoted standby must refuse the replicated Figure 1 combination: %d %s", code, body)
	}
	// A requester with no replicated releases is unaffected.
	if code, body := postQuery(t, urlB, perHMOQuery, "bystander"); code != http.StatusOK {
		t.Fatalf("bystander on B: %d %s", code, body)
	}
	// The replicated history carries the pre-failover query.
	hresp, err := http.Get(urlB + "/history")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), "snooper") {
		t.Error("standby history lost the pre-failover entry")
	}

	samplesB := scrape(t, urlB)
	wantSample(t, samplesB, `piye_replica_promotions_total`, 1)
	wantSample(t, samplesB, `piye_replica_epoch`, 2)
	wantSample(t, samplesB, `piye_replica_role`, 0) // primary
	wantAtLeast(t, samplesB, `piye_replica_frames_applied_total`, 1)

	// --- The revived old primary is fenced, its writes rejected ---------

	// A restarted process starts with a fresh registry; reusing medA's
	// would leave its gauges reading the dead node's closures.
	regA2 := obs.NewRegistry()
	medA2 := newReplicaMediator(t, dirA, regA2, nodes, "")
	defer medA2.Close()
	srvA2 := serveAt(t, addrA, mediator.NewHandler(medA2))
	defer srvA2.Close()

	// B's background fencer has been retrying this address since the
	// promotion; once A answers, the fence lands and A demotes itself.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if replicaStatus(t, urlA).Role == "fenced" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stA := replicaStatus(t, urlA)
	if stA.Role != "fenced" || stA.Epoch != 2 {
		t.Fatalf("revived old primary = %+v, want fenced at epoch 2", stA)
	}

	// Every write from the stale generation is rejected — the release
	// snooper already burned, and any fresh grant that B's ledger would
	// never learn about.
	code, body = postQuery(t, urlA, perHMOQuery, "snooper")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "fenced") {
		t.Fatalf("fenced old primary must refuse with 503 fenced: %d %s", code, body)
	}
	if code, _ := postQuery(t, urlA, perTestQuery, "opportunist"); code != http.StatusServiceUnavailable {
		t.Fatalf("fenced old primary granted a fresh release: %d", code)
	}

	samplesA := scrape(t, urlA)
	wantSample(t, samplesA, `piye_replica_role`, 3) // fenced
	wantSample(t, samplesA, `piye_replica_epoch`, 2)
	wantAtLeast(t, samplesA, `piye_replica_fences_total`, 1)
	wantAtLeast(t, samplesA, `piye_mediator_refusals_total{reason="fenced"}`, 2)

	// The successor saw its fence acknowledged.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v := scrape(t, urlB)[`piye_replica_fence_acks_total`]; v >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("the promoted standby never received the old primary's fence acknowledgement")
}
