// Package e2e locks the observability layer in with a full-system test:
// three source nodes behind real HTTP servers, a mediator fanning out to
// them, and assertions against the same /metrics and /debug/trace
// surfaces an operator would scrape. The scenario walks the pipeline
// through every interesting outcome — an answered aggregate release, a
// warehouse-served repeat, a ledger combination refusal, a restart that
// must replay the refusal, and a dead source tripping its circuit
// breaker — and checks that counters, histograms, gauges and trace spans
// all tell that story.
package e2e

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/resilience"
	"privateiye/internal/source"
)

var salt = []byte("e2e-linkage-salt")

// The paper's Figure 1 as a query pair: per-test statistics (1a) then
// per-HMO means (1b). Individually authorized, jointly an interval
// inference attack the ledger must refuse.
const (
	perTestQuery = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9"
	perHMOQuery  = "FOR //compliance/row GROUP BY //hmo RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
)

// complianceNode builds one source node (with its own registry and
// tracer) holding the Figure 1 compliance table, and serves it over HTTP.
func complianceNode(t *testing.T, name string) (*httptest.Server, *obs.Registry) {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(name, policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	src, err := source.New(source.Config{
		Name:     name,
		Catalog:  cat,
		Policy:   pol,
		Registry: preserve.NewRegistry(),
		Obs:      reg,
		Trace:    obs.NewTracer(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(source.NewHandler(local))
	t.Cleanup(srv.Close)
	return srv, reg
}

// newMediator assembles the mediator over the three nodes: durable state
// under dir, a shared registry and tracer, retries and a fast breaker.
func newMediator(t *testing.T, dir string, reg *obs.Registry, tracer *obs.Tracer, nodes map[string]*httptest.Server) *mediator.Mediator {
	t.Helper()
	var eps []source.Endpoint
	for _, name := range []string{"alpha", "beta", "gamma"} {
		eps = append(eps, source.NewClient(nodes[name].URL, name))
	}
	med, err := mediator.New(mediator.Config{
		Endpoints:         eps,
		LinkageSalt:       salt,
		MaxDisclosure:     0.9,
		LedgerTolerance:   0.05,
		SourceTimeout:     10 * time.Second,
		WarehouseCapacity: 8,
		WarehouseTTL:      100,
		PlanCache:         64,
		Resilience: &resilience.EndpointConfig{
			Policy:  resilience.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute},
		},
		Durability: &mediator.DurabilityConfig{Dir: dir},
		Obs:        reg,
		Trace:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// postQuery runs one PIQL query against the mediator's HTTP surface.
func postQuery(t *testing.T, base, query, requester string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Requester", requester)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// scrape fetches /metrics and parses every sample line into a
// series -> value map (comments skipped).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// families counts distinct metric families in a scrape.
func families(samples map[string]float64) map[string]bool {
	fams := map[string]bool{}
	for series := range samples {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		name = strings.TrimSuffix(name, "_bucket")
		name = strings.TrimSuffix(name, "_sum")
		name = strings.TrimSuffix(name, "_count")
		fams[name] = true
	}
	return fams
}

// wantSample asserts one series' value.
func wantSample(t *testing.T, samples map[string]float64, series string, want float64) {
	t.Helper()
	got, ok := samples[series]
	if !ok {
		t.Fatalf("series %s absent from scrape", series)
	}
	if got != want {
		t.Errorf("%s = %v, want %v", series, got, want)
	}
}

// wantAtLeast asserts a series exists with value >= min.
func wantAtLeast(t *testing.T, samples map[string]float64, series string, min float64) {
	t.Helper()
	got, ok := samples[series]
	if !ok {
		t.Fatalf("series %s absent from scrape", series)
	}
	if got < min {
		t.Errorf("%s = %v, want >= %v", series, got, min)
	}
}

// traceJSON mirrors the /debug/trace wire shape.
type traceJSON struct {
	Requester string `json:"requester"`
	Query     string `json:"query"`
	Shard     string `json:"shard"`
	Outcome   string `json:"outcome"`
	Spans     []struct {
		Stage   string `json:"stage"`
		Source  string `json:"source"`
		Outcome string `json:"outcome"`
	} `json:"spans"`
}

func getTraces(t *testing.T, base string, last int) []traceJSON {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/debug/trace?last=%d", base, last))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []traceJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding traces: %v", err)
	}
	return out
}

func (tr traceJSON) span(stage string) (string, bool) {
	for _, sp := range tr.Spans {
		if sp.Stage == stage {
			return sp.Outcome, true
		}
	}
	return "", false
}

// TestPipelineObservabilityEndToEnd is the full scenario. Sub-steps
// share state (the same deployment) so they run in order, not parallel.
func TestPipelineObservabilityEndToEnd(t *testing.T) {
	nodes := map[string]*httptest.Server{}
	srcRegs := map[string]*obs.Registry{}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		srv, reg := complianceNode(t, name)
		nodes[name] = srv
		srcRegs[name] = reg
	}

	dir := t.TempDir()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(32)
	med := newMediator(t, dir, reg, tracer, nodes)
	medSrv := httptest.NewServer(mediator.NewHandler(med))

	// --- Answered release, warehouse repeat, ledger refusal -------------

	if code, body := postQuery(t, medSrv.URL, perTestQuery, "snooper"); code != http.StatusOK {
		t.Fatalf("Figure 1a release should pass: %d %s", code, body)
	}
	if code, _ := postQuery(t, medSrv.URL, perTestQuery, "snooper"); code != http.StatusOK {
		t.Fatalf("warehouse repeat should pass: %d", code)
	}
	code, body := postQuery(t, medSrv.URL, perHMOQuery, "snooper")
	if code != http.StatusForbidden {
		t.Fatalf("Figure 1 combination must be refused: %d %s", code, body)
	}
	if !strings.Contains(body, "combined") {
		t.Errorf("refusal should explain the combination: %s", body)
	}

	samples := scrape(t, medSrv.URL)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="answered"}`, 1)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="warehouse"}`, 1)
	wantSample(t, samples, `piye_mediator_queries_total{outcome="refused"}`, 1)
	wantSample(t, samples, `piye_mediator_refusals_total{reason="ledger-combination"}`, 1)
	wantSample(t, samples, `piye_mediator_refusals_total{reason="timeout"}`, 0)
	// Three parses (the warehouse hit still parses), one warehouse hit.
	wantSample(t, samples, `piye_mediator_stage_seconds_count{stage="parse"}`, 3)
	wantSample(t, samples, `piye_warehouse_hits_total`, 1)
	wantAtLeast(t, samples, `piye_plan_cache_hits_total{scope="mediator"}`, 1)
	// Both fan-outs reached all three sources.
	for _, name := range []string{"alpha", "beta", "gamma"} {
		wantSample(t, samples, fmt.Sprintf(`piye_mediator_source_calls_total{source=%q,outcome="answered"}`, name), 2)
		wantSample(t, samples, fmt.Sprintf(`piye_breaker_state{source=%q}`, name), 0)
	}
	// The ledgered release and history entries hit the WAL.
	wantAtLeast(t, samples, `piye_wal_appends_total{log="mediator"}`, 1)
	wantAtLeast(t, samples, `piye_wal_fsyncs_total{log="mediator"}`, 1)
	if n := len(families(samples)); n < 12 {
		t.Errorf("mediator scrape exposes %d metric families, want >= 12", n)
	}

	// --- Traces: the three queries, newest first ------------------------

	traces := getTraces(t, medSrv.URL, 10)
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	refusedTr, whTr, answeredTr := traces[0], traces[1], traces[2]
	if refusedTr.Outcome != "refused:ledger-combination" {
		t.Errorf("refused trace outcome = %q", refusedTr.Outcome)
	}
	if out, ok := refusedTr.span("ledger"); !ok || out != "refused:ledger-combination" {
		t.Errorf("refused trace ledger span = %q, %v", out, ok)
	}
	if whTr.Outcome != "answered" {
		t.Errorf("warehouse trace outcome = %q", whTr.Outcome)
	}
	if out, ok := whTr.span("warehouse"); !ok || out != "answered" {
		t.Errorf("warehouse span = %q, %v", out, ok)
	}
	if out, ok := answeredTr.span("warehouse"); !ok || out != "skipped" {
		t.Errorf("first query's warehouse span = %q, %v (want a recorded miss)", out, ok)
	}
	nSource := 0
	for _, sp := range answeredTr.Spans {
		if sp.Stage == "source" {
			nSource++
			if sp.Outcome != "answered" {
				t.Errorf("source span %s outcome = %q", sp.Source, sp.Outcome)
			}
		}
	}
	if nSource != 3 {
		t.Errorf("answered trace has %d source spans, want 3", nSource)
	}
	for _, stage := range []string{"parse", "route", "fanout", "integrate", "control", "ledger"} {
		if _, ok := answeredTr.span(stage); !ok {
			t.Errorf("answered trace missing %q span", stage)
		}
	}

	// --- Source-side surfaces -------------------------------------------

	srcSamples := scrape(t, nodes["beta"].URL)
	wantSample(t, srcSamples, `piye_source_queries_total{source="beta",outcome="answered"}`, 2)
	wantSample(t, srcSamples, `piye_source_queries_total{source="beta",outcome="refused"}`, 0)
	for _, stage := range []string{"plan", "execute", "preserve"} {
		wantAtLeast(t, srcSamples, fmt.Sprintf(`piye_source_stage_seconds_count{source="beta",stage=%q}`, stage), 2)
	}
	srcTraces := getTraces(t, nodes["beta"].URL, 5)
	if len(srcTraces) != 2 {
		t.Fatalf("beta recorded %d traces, want 2", len(srcTraces))
	}
	for _, stage := range []string{"plan", "execute", "preserve"} {
		if out, ok := srcTraces[0].span(stage); !ok || out != "answered" {
			t.Errorf("beta trace %q span = %q, %v", stage, out, ok)
		}
	}

	// --- Restart: the replayed ledger still refuses, counters continue --

	medSrv.Close()
	if err := med.Close(); err != nil {
		t.Fatal(err)
	}
	med = newMediator(t, dir, reg, tracer, nodes)
	defer med.Close()
	medSrv = httptest.NewServer(mediator.NewHandler(med))
	defer medSrv.Close()

	code, body = postQuery(t, medSrv.URL, perHMOQuery, "snooper")
	if code != http.StatusForbidden || !strings.Contains(body, "combined") {
		t.Fatalf("restarted mediator must replay the refusal: %d %s", code, body)
	}
	samples = scrape(t, medSrv.URL)
	// Same registry, same series: the counter continued across restart.
	wantSample(t, samples, `piye_mediator_refusals_total{reason="ledger-combination"}`, 2)

	// --- Dead source: retries fail, the breaker opens -------------------

	nodes["alpha"].CloseClientConnections()
	nodes["alpha"].Close()
	for i := 0; i < 4; i++ {
		// Distinct requesters bypass the warehouse, forcing fan-out; the
		// two surviving sources keep the system answering.
		code, body := postQuery(t, medSrv.URL, perTestQuery, fmt.Sprintf("prober%d", i))
		if code != http.StatusOK {
			t.Fatalf("prober%d: system should degrade, not fail: %d %s", i, code, body)
		}
	}
	samples = scrape(t, medSrv.URL)
	wantSample(t, samples, `piye_breaker_state{source="alpha"}`, 2)
	wantAtLeast(t, samples, `piye_breaker_transitions_total{source="alpha",to="open"}`, 1)
	wantAtLeast(t, samples, `piye_mediator_source_calls_total{source="alpha",outcome="denied"}`, 2)
	wantSample(t, samples, `piye_breaker_state{source="beta"}`, 0)

	// The last trace shows the skipped source alongside two answers.
	traces = getTraces(t, medSrv.URL, 1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	skipped := 0
	for _, sp := range traces[0].Spans {
		if sp.Stage == "source" && sp.Source == "alpha" && sp.Outcome == "skipped" {
			skipped++
		}
	}
	if skipped != 1 {
		t.Errorf("last trace records %d skipped alpha spans, want 1 (spans: %+v)", skipped, traces[0].Spans)
	}
}
