// Package admission keeps an overloaded node healthy by refusing work
// early, cheaply and distinguishably. Privacy-preserving query plans are
// orders of magnitude more expensive than plain selects (rewriting,
// auditing, ledger checks, PSI), so offered load beyond capacity is the
// common case for a popular mediator, not a corner case. Without
// admission control every arriving query joins an unbounded backlog:
// latency grows without bound, per-source deadlines fire after the work
// was already done, and the WAL'd audit path burns disk for callers that
// gave up long ago.
//
// The controller composes three mechanisms in front of a protected
// stage (the mediator query path, the source execute path):
//
//  1. A per-requester token bucket. A single greedy requester is
//     throttled (refusal.RateLimited) before it can crowd out everyone
//     else, independent of total system load.
//  2. An adaptive concurrency limiter. The limit follows AIMD — add one
//     slot after a limit's worth of healthy completions, halve on pain
//     (a deadline miss or a completion slower than the latency target)
//     — between a configured floor and hard ceiling, so the node probes
//     for capacity but backs off multiplicatively when it finds the
//     cliff.
//  3. A deadline-aware bounded FIFO queue. A request that cannot run
//     immediately waits only if the estimated queue wait (queue position
//     x EWMA service time / current limit — Little's law applied to the
//     limiter) fits inside the caller's remaining context deadline;
//     otherwise it is shed now (refusal.Overloaded) instead of timing
//     out later having wasted a slot.
//
// Sheds are typed ShedErrors: they classify themselves for metrics
// (RefusalReason), advertise a pacing hint (RetryAfterHint, surfaced as
// HTTP Retry-After), and are explicitly NOT breaker failures (Shed) —
// an overloaded node is alive, and tripping the circuit on sheds would
// turn a brownout into a blackout.
//
// The zero *Controller is valid and admits everything: callers gate
// with a nil check nowhere, matching the nil-safe obs.Registry idiom.
package admission

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"privateiye/internal/obs"
	"privateiye/internal/refusal"
)

// Config tunes a Controller. The zero value disables everything.
type Config struct {
	// MaxConcurrent is the hard ceiling on in-flight requests. <= 0
	// disables the concurrency limiter (the token bucket may still be
	// active).
	MaxConcurrent int
	// MinConcurrent is the AIMD floor; the adaptive limit never drops
	// below it. Defaults to 1.
	MinConcurrent int
	// InitialConcurrent is the starting limit. Defaults to
	// MaxConcurrent (optimistic start; the first pain signal halves it).
	InitialConcurrent int
	// QueueCapacity bounds the FIFO wait queue. 0 means 2x
	// MaxConcurrent; negative means no queue (shed immediately when the
	// limit is reached).
	QueueCapacity int
	// LatencyTarget is the service-time budget: completions slower than
	// this count as pain for AIMD even when no deadline fired. 0 means
	// only deadline misses and cancellations count.
	LatencyTarget time.Duration
	// RatePerSec is the per-requester token refill rate. <= 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the token bucket capacity. Defaults to
	// max(RatePerSec, 1).
	Burst float64
	// Clock overrides time.Now in tests.
	Clock func() time.Time
}

// Enabled reports whether the config would gate anything at all.
func (c Config) Enabled() bool { return c.MaxConcurrent > 0 || c.RatePerSec > 0 }

// decreaseCooldown spaces multiplicative decreases: one burst of queued
// deadline misses reflects ONE overload episode, and halving once per
// completion in that burst would crash the limit straight to the floor.
const decreaseCooldown = 100 * time.Millisecond

// ewmaAlpha weights the newest service-time observation.
const ewmaAlpha = 0.2

// maxBuckets bounds the per-requester bucket map; beyond it the map is
// reset wholesale. Forgetting buckets only ever gives requesters a
// fresh burst, so the failure mode of an adversarial requester-name
// flood is brief over-admission, not memory exhaustion.
const maxBuckets = 4096

// Controller is an admission gate: Acquire before the protected stage,
// Release the returned Grant after. Nil receivers admit everything.
type Controller struct {
	cfg Config
	now func() time.Time

	mu           sync.Mutex
	limit        float64
	inflight     int
	waiters      *list.List // of *waiter, FIFO
	ewmaNs       float64    // EWMA observed service time
	successes    int        // healthy completions since the last limit change
	lastDecrease time.Time
	buckets      map[string]*bucket

	admitted          uint64
	shedRateLimited   uint64
	shedQueueFull     uint64
	shedPredictedWait uint64
	shedExpired       uint64
}

type waiter struct {
	ch  chan struct{} // closed by pop() once a slot is assigned
	enq time.Time
}

// New builds a controller. A nil return (with nil error) means the
// config gates nothing, so callers can store the result unconditionally.
func New(cfg Config) (*Controller, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	if cfg.MinConcurrent <= 0 {
		cfg.MinConcurrent = 1
	}
	if cfg.MaxConcurrent > 0 && cfg.MinConcurrent > cfg.MaxConcurrent {
		return nil, fmt.Errorf("admission: min concurrency %d above ceiling %d", cfg.MinConcurrent, cfg.MaxConcurrent)
	}
	if cfg.InitialConcurrent <= 0 {
		cfg.InitialConcurrent = cfg.MaxConcurrent
	}
	if cfg.MaxConcurrent > 0 && cfg.InitialConcurrent > cfg.MaxConcurrent {
		cfg.InitialConcurrent = cfg.MaxConcurrent
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 2 * cfg.MaxConcurrent
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.RatePerSec, 1)
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Controller{
		cfg:     cfg,
		now:     now,
		limit:   float64(cfg.InitialConcurrent),
		waiters: list.New(),
		buckets: map[string]*bucket{},
	}, nil
}

// Grant is one admitted slot. Release it exactly once with the outcome
// error of the protected stage (nil on success); the error feeds AIMD.
type Grant struct {
	c     *Controller
	start time.Time
	once  sync.Once
}

// Acquire admits, queues or sheds a request. A nil error means the
// caller holds a slot and must Release the grant. Shed requests fail
// with a *ShedError; a context expiring while queued fails with the
// context's error (a timeout, not a shed — the caller gave up).
func (c *Controller) Acquire(ctx context.Context, requester string) (*Grant, error) {
	if c == nil {
		return nil, nil
	}
	now := c.now()
	if c.cfg.RatePerSec > 0 {
		if wait, ok := c.takeToken(requester, now); !ok {
			c.mu.Lock()
			c.shedRateLimited++
			c.mu.Unlock()
			return nil, &ShedError{
				Reason:     refusal.RateLimited,
				Requester:  requester,
				RetryAfter: wait,
			}
		}
	}
	if c.cfg.MaxConcurrent <= 0 {
		c.mu.Lock()
		c.inflight++
		c.admitted++
		c.mu.Unlock()
		return &Grant{c: c, start: now}, nil
	}

	c.mu.Lock()
	// Fast path: a free slot and no one queued ahead.
	if c.inflight < int(c.limit) && c.waiters.Len() == 0 {
		c.inflight++
		c.admitted++
		c.mu.Unlock()
		return &Grant{c: c, start: now}, nil
	}
	// Saturated: queue if the wait plausibly fits, shed otherwise.
	estWait := c.estimateWaitLocked(c.waiters.Len() + 1)
	if c.cfg.QueueCapacity < 0 || c.waiters.Len() >= c.cfg.QueueCapacity {
		c.shedQueueFull++
		inflight, limit := c.inflight, int(c.limit)
		c.mu.Unlock()
		return nil, &ShedError{
			Reason:     refusal.Overloaded,
			Requester:  requester,
			Detail:     fmt.Sprintf("%d in flight at limit %d, queue full", inflight, limit),
			RetryAfter: estWait,
		}
	}
	if dl, ok := ctx.Deadline(); ok && estWait > 0 && estWait > dl.Sub(now) {
		c.shedPredictedWait++
		c.mu.Unlock()
		return nil, &ShedError{
			Reason:     refusal.Overloaded,
			Requester:  requester,
			Detail:     fmt.Sprintf("estimated queue wait %s exceeds remaining deadline %s", estWait.Round(time.Millisecond), dl.Sub(now).Round(time.Millisecond)),
			RetryAfter: estWait,
		}
	}
	w := &waiter{ch: make(chan struct{}), enq: now}
	el := c.waiters.PushBack(w)
	c.mu.Unlock()

	select {
	case <-w.ch:
		// pop() assigned us a slot (inflight already counted).
		return &Grant{c: c, start: c.now()}, nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.ch:
			// Lost the race: a slot was assigned as the context fired.
			// Give it back and wake the next waiter.
			c.inflight--
			c.popLocked()
		default:
			c.waiters.Remove(el)
			c.shedExpired++
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Release frees the slot and feeds the outcome to AIMD. Safe on a nil
// grant and idempotent, so callers can defer it unconditionally.
func (g *Grant) Release(err error) {
	if g == nil || g.c == nil {
		return
	}
	g.once.Do(func() { g.c.release(g.start, err) })
}

func (c *Controller) release(start time.Time, err error) {
	now := c.now()
	observed := now.Sub(start)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight--
	if c.ewmaNs == 0 {
		c.ewmaNs = float64(observed)
	} else {
		c.ewmaNs = (1-ewmaAlpha)*c.ewmaNs + ewmaAlpha*float64(observed)
	}
	if c.cfg.MaxConcurrent > 0 {
		pain := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
			(c.cfg.LatencyTarget > 0 && observed > c.cfg.LatencyTarget)
		if pain {
			if now.Sub(c.lastDecrease) >= decreaseCooldown {
				c.limit = math.Max(float64(c.cfg.MinConcurrent), math.Floor(c.limit/2))
				c.lastDecrease = now
				c.successes = 0
			}
		} else {
			c.successes++
			if c.successes >= int(c.limit) {
				c.successes = 0
				if c.limit < float64(c.cfg.MaxConcurrent) {
					c.limit++
				}
			}
		}
	}
	c.popLocked()
}

// popLocked hands freed slots to queued waiters in FIFO order.
func (c *Controller) popLocked() {
	for c.inflight < int(c.limit) {
		el := c.waiters.Front()
		if el == nil {
			return
		}
		c.waiters.Remove(el)
		c.inflight++
		c.admitted++
		close(el.Value.(*waiter).ch)
	}
}

// estimateWaitLocked predicts the queue wait at the given queue
// position: pos completions must happen, each taking ~EWMA, limit of
// them in parallel. Zero until the first completion is observed (no
// data, no shedding by prediction).
func (c *Controller) estimateWaitLocked(pos int) time.Duration {
	if c.ewmaNs == 0 || c.limit < 1 {
		return 0
	}
	return time.Duration(float64(pos) * c.ewmaNs / c.limit)
}

// Stats is a consistent snapshot of limiter state, for tests,
// experiments and the metric closures.
type Stats struct {
	Limit             int
	InFlight          int
	QueueDepth        int
	Admitted          uint64
	ShedRateLimited   uint64
	ShedQueueFull     uint64
	ShedPredictedWait uint64
	ShedExpired       uint64
}

// Stats snapshots the controller. Zero on a nil controller.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Limit:             int(c.limit),
		InFlight:          c.inflight,
		QueueDepth:        c.waiters.Len(),
		Admitted:          c.admitted,
		ShedRateLimited:   c.shedRateLimited,
		ShedQueueFull:     c.shedQueueFull,
		ShedPredictedWait: c.shedPredictedWait,
		ShedExpired:       c.shedExpired,
	}
}

// Register exports limiter state on the registry, labelled with the
// scope ("mediator" or the source name). Gauges and counters are
// sampled at scrape time from Stats, so the hot path pays nothing
// beyond its existing mutex. Nil-safe on both sides.
func (c *Controller) Register(reg *obs.Registry, scope string) {
	if c == nil || reg == nil {
		return
	}
	reg.Help("piye_admission_limit", "Current adaptive concurrency limit (AIMD between floor and ceiling).")
	reg.GaugeFunc("piye_admission_limit", func() float64 { return float64(c.Stats().Limit) }, "scope", scope)
	reg.Help("piye_admission_inflight", "Requests currently holding an admission slot.")
	reg.GaugeFunc("piye_admission_inflight", func() float64 { return float64(c.Stats().InFlight) }, "scope", scope)
	reg.Help("piye_admission_queue_depth", "Requests waiting in the admission queue.")
	reg.GaugeFunc("piye_admission_queue_depth", func() float64 { return float64(c.Stats().QueueDepth) }, "scope", scope)
	reg.Help("piye_admission_admitted_total", "Requests admitted past the gate.")
	reg.CounterFunc("piye_admission_admitted_total", func() float64 { return float64(c.Stats().Admitted) }, "scope", scope)
	reg.Help("piye_admission_shed_total", "Requests shed at the gate, by cause.")
	reg.CounterFunc("piye_admission_shed_total", func() float64 { return float64(c.Stats().ShedRateLimited) }, "scope", scope, "cause", "ratelimited")
	reg.CounterFunc("piye_admission_shed_total", func() float64 { return float64(c.Stats().ShedQueueFull) }, "scope", scope, "cause", "queue-full")
	reg.CounterFunc("piye_admission_shed_total", func() float64 { return float64(c.Stats().ShedPredictedWait) }, "scope", scope, "cause", "predicted-wait")
	reg.CounterFunc("piye_admission_shed_total", func() float64 { return float64(c.Stats().ShedExpired) }, "scope", scope, "cause", "expired")
}

// ShedError is an admission refusal. It carries everything the layers
// above need to keep sheds distinguishable from privacy refusals:
// RefusalReason feeds the metrics vocabulary, HTTPStatus picks 429 vs
// 503, RetryAfterHint paces retries, and Shed tells the circuit
// breaker this was not a failure of the protected stage.
type ShedError struct {
	// Scope names the shedding node in messages once wrapped by the
	// mediator or source ("mediator", source name); empty until then.
	Scope string
	// Reason is refusal.Overloaded or refusal.RateLimited.
	Reason refusal.Reason
	// Requester is the rate-limited principal (RateLimited only).
	Requester string
	// Detail explains an Overloaded shed.
	Detail string
	// RetryAfter is the pacing hint: time to the next token, or the
	// estimated drain time of the current backlog.
	RetryAfter time.Duration
}

// Error implements error. The "rate limit" / "overloaded" substrings
// are wire contract: refusal.ClassifyString recovers the reason from
// the message after an HTTP crossing.
func (e *ShedError) Error() string {
	scope := e.Scope
	if scope == "" {
		scope = "admission"
	}
	if e.Reason == refusal.RateLimited {
		return fmt.Sprintf("%s: rate limit exceeded for requester %s: retry after %s", scope, e.Requester, e.RetryAfter.Round(time.Millisecond))
	}
	return fmt.Sprintf("%s: overloaded: %s", scope, e.Detail)
}

// RefusalReason implements refusal.Reasoner.
func (e *ShedError) RefusalReason() refusal.Reason { return e.Reason }

// Shed marks the error as load shedding: the circuit breaker must not
// count it as a failure (the node answered, fast, with "not now").
func (e *ShedError) Shed() bool { return true }

// Retryable implements the resilience layer's optional interface:
// backing off and retrying a shed can succeed.
func (e *ShedError) Retryable() bool { return true }

// RetryAfterHint implements the resilience layer's pacing interface.
func (e *ShedError) RetryAfterHint() (time.Duration, bool) {
	if e.RetryAfter > 0 {
		return e.RetryAfter, true
	}
	return 0, false
}

// HTTPStatus is the transport mapping: 429 for per-requester
// throttling, 503 for node saturation.
func (e *ShedError) HTTPStatus() int {
	if e.Reason == refusal.RateLimited {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// IsShed reports whether any error in the chain is load shedding
// (implements Shed() bool returning true). This is how the breaker and
// the HTTP handlers recognize sheds without importing this package's
// concrete type across process boundaries.
func IsShed(err error) bool {
	var sh interface{ Shed() bool }
	return errors.As(err, &sh) && sh.Shed()
}

var _ refusal.Reasoner = (*ShedError)(nil)
