package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"privateiye/internal/obs"
	"privateiye/internal/refusal"
)

// fakeClock is a manually advanced clock for deterministic AIMD and
// token-bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	g, err := c.Acquire(context.Background(), "anyone")
	if err != nil {
		t.Fatalf("nil controller refused: %v", err)
	}
	g.Release(nil) // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestDisabledConfigBuildsNil(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c != nil {
		t.Fatal("zero config should build a nil (pass-through) controller")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxConcurrent: 2, MinConcurrent: 5}); err == nil {
		t.Fatal("min above ceiling should fail")
	}
}

func TestConcurrencyCeilingAndQueueFullShed(t *testing.T) {
	c, err := New(Config{MaxConcurrent: 2, QueueCapacity: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	g1, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	g2, err := c.Acquire(ctx, "b")
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	_, err = c.Acquire(ctx, "c")
	var sh *ShedError
	if !errors.As(err, &sh) {
		t.Fatalf("third acquire = %v, want ShedError", err)
	}
	if sh.Reason != refusal.Overloaded {
		t.Fatalf("reason = %v", sh.Reason)
	}
	if !IsShed(err) {
		t.Fatal("IsShed should see the shed")
	}
	if refusal.Classify(err) != refusal.Overloaded {
		t.Fatalf("Classify = %v", refusal.Classify(err))
	}
	if s := c.Stats(); s.InFlight != 2 || s.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v", s)
	}
	g1.Release(nil)
	g2.Release(nil)
	if s := c.Stats(); s.InFlight != 0 {
		t.Fatalf("inflight after release = %d", s.InFlight)
	}
}

func TestQueueAdmitsFIFOWhenSlotFrees(t *testing.T) {
	c, err := New(Config{MaxConcurrent: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	g1, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	got := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Acquire(ctx, "b")
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			got <- i
			g.Release(nil)
		}(i)
		// Wait until waiter i is queued before spawning the next, so
		// the FIFO order under test is deterministic.
		depth := i
		waitFor(t, func() bool { return c.Stats().QueueDepth == depth })
	}
	g1.Release(nil)
	wg.Wait()
	if first := <-got; first != 1 {
		t.Fatalf("queue order: waiter %d ran first", first)
	}
}

func TestQueuedContextExpiryIsTimeoutNotShed(t *testing.T) {
	c, err := New(Config{MaxConcurrent: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g1, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Acquire(ctx, "b")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued expiry = %v, want deadline exceeded", err)
	}
	if IsShed(err) {
		t.Fatal("context expiry must not read as a shed")
	}
	if s := c.Stats(); s.ShedExpired != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
	g1.Release(nil)
	// The freed slot must not be burned on the departed waiter.
	g2, err := c.Acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	g2.Release(nil)
}

func TestDeadlineAwareShedding(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{MaxConcurrent: 1, QueueCapacity: 8, Clock: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Teach the EWMA a 100ms service time.
	g, _ := c.Acquire(context.Background(), "a")
	clk.advance(100 * time.Millisecond)
	g.Release(nil)

	g, _ = c.Acquire(context.Background(), "a") // occupy the slot
	// A caller with 10ms of budget faces a ~100ms predicted wait.
	ctx, cancel := context.WithDeadline(context.Background(), clk.now().Add(10*time.Millisecond))
	defer cancel()
	_, err = c.Acquire(ctx, "b")
	var sh *ShedError
	if !errors.As(err, &sh) || sh.Reason != refusal.Overloaded {
		t.Fatalf("deadline-doomed acquire = %v, want overloaded shed", err)
	}
	if !strings.Contains(err.Error(), "exceeds remaining deadline") {
		t.Fatalf("detail = %q", err)
	}
	if hint, ok := sh.RetryAfterHint(); !ok || hint <= 0 {
		t.Fatalf("hint = %v %v", hint, ok)
	}
	if s := c.Stats(); s.ShedPredictedWait != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A caller with plenty of budget queues instead.
	done := make(chan error, 1)
	go func() {
		// Real-time deadline: far beyond the fake clock, so the
		// predicted wait fits and the context timer never fires.
		ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
		defer cancel2()
		g2, err := c.Acquire(ctx2, "c")
		g2.Release(nil)
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })
	g.Release(nil)
	if err := <-done; err != nil {
		t.Fatalf("patient caller: %v", err)
	}
}

func TestAIMDDecreasesOnPainIncreasesOnSuccess(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{MaxConcurrent: 8, MinConcurrent: 1, LatencyTarget: 50 * time.Millisecond, Clock: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c.Stats().Limit; got != 8 {
		t.Fatalf("initial limit = %d", got)
	}
	// One slow completion halves the limit.
	g, _ := c.Acquire(context.Background(), "a")
	clk.advance(200 * time.Millisecond)
	g.Release(nil)
	if got := c.Stats().Limit; got != 4 {
		t.Fatalf("limit after pain = %d, want 4", got)
	}
	// A second pain inside the cooldown is the same episode: no change.
	g, _ = c.Acquire(context.Background(), "a")
	clk.advance(decreaseCooldown / 2)
	g.Release(context.DeadlineExceeded)
	if got := c.Stats().Limit; got != 4 {
		t.Fatalf("limit inside cooldown = %d, want 4", got)
	}
	// Pain after the cooldown halves again.
	g, _ = c.Acquire(context.Background(), "a")
	clk.advance(decreaseCooldown)
	g.Release(context.DeadlineExceeded)
	if got := c.Stats().Limit; got != 2 {
		t.Fatalf("limit after second episode = %d, want 2", got)
	}
	// limit healthy completions raise it by one (additive increase).
	for i := 0; i < 2; i++ {
		g, _ = c.Acquire(context.Background(), "a")
		clk.advance(time.Millisecond)
		g.Release(nil)
	}
	if got := c.Stats().Limit; got != 3 {
		t.Fatalf("limit after additive increase = %d, want 3", got)
	}
	// The floor holds.
	for i := 0; i < 10; i++ {
		g, _ = c.Acquire(context.Background(), "a")
		clk.advance(decreaseCooldown + time.Millisecond)
		g.Release(context.DeadlineExceeded)
	}
	if got := c.Stats().Limit; got != 1 {
		t.Fatalf("limit floor = %d, want 1", got)
	}
	// The ceiling holds.
	for i := 0; i < 100; i++ {
		g, _ = c.Acquire(context.Background(), "a")
		clk.advance(time.Millisecond)
		g.Release(nil)
	}
	if got := c.Stats().Limit; got != 8 {
		t.Fatalf("limit ceiling = %d, want 8", got)
	}
}

func TestTokenBucketPerRequester(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{RatePerSec: 1, Burst: 2, Clock: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		g, err := c.Acquire(ctx, "greedy")
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		g.Release(nil)
	}
	_, err = c.Acquire(ctx, "greedy")
	var sh *ShedError
	if !errors.As(err, &sh) || sh.Reason != refusal.RateLimited {
		t.Fatalf("over-rate acquire = %v, want ratelimited shed", err)
	}
	if hint, ok := sh.RetryAfterHint(); !ok || hint <= 0 || hint > time.Second {
		t.Fatalf("hint = %v %v, want (0, 1s]", hint, ok)
	}
	if refusal.Classify(err) != refusal.RateLimited {
		t.Fatalf("Classify = %v", refusal.Classify(err))
	}
	// Other requesters are unaffected.
	if g, err := c.Acquire(ctx, "polite"); err != nil {
		t.Fatalf("other requester throttled: %v", err)
	} else {
		g.Release(nil)
	}
	// Tokens refill with time.
	clk.advance(1100 * time.Millisecond)
	if g, err := c.Acquire(ctx, "greedy"); err != nil {
		t.Fatalf("post-refill acquire: %v", err)
	} else {
		g.Release(nil)
	}
	if s := c.Stats(); s.ShedRateLimited != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBucketMapBounded(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{RatePerSec: 1, Clock: clk.now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < maxBuckets+10; i++ {
		g, err := c.Acquire(context.Background(), "req"+string(rune('a'+i%26))+fmtInt(i))
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		g.Release(nil)
	}
	c.mu.Lock()
	n := len(c.buckets)
	c.mu.Unlock()
	if n > maxBuckets {
		t.Fatalf("bucket map grew to %d, cap is %d", n, maxBuckets)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	g.Release(nil)
	g.Release(nil)
	if s := c.Stats(); s.InFlight != 0 {
		t.Fatalf("double release leaked: %+v", s)
	}
}

func TestRegisterExportsState(t *testing.T) {
	c, err := New(Config{MaxConcurrent: 3, RatePerSec: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := obs.NewRegistry()
	c.Register(reg, "mediator")
	g, _ := c.Acquire(context.Background(), "a")
	defer g.Release(nil)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`piye_admission_limit{scope="mediator"} 3`,
		`piye_admission_inflight{scope="mediator"} 1`,
		`piye_admission_queue_depth{scope="mediator"} 0`,
		`piye_admission_admitted_total{scope="mediator"} 1`,
		`piye_admission_shed_total{scope="mediator",cause="ratelimited"} 0`,
		`piye_admission_shed_total{scope="mediator",cause="queue-full"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}

func TestShedErrorHTTPMapping(t *testing.T) {
	over := &ShedError{Reason: refusal.Overloaded, Detail: "queue full", RetryAfter: 1500 * time.Millisecond}
	if over.HTTPStatus() != 503 {
		t.Fatalf("overloaded status = %d", over.HTTPStatus())
	}
	rl := &ShedError{Reason: refusal.RateLimited, Requester: "x", RetryAfter: time.Second}
	if rl.HTTPStatus() != 429 {
		t.Fatalf("ratelimited status = %d", rl.HTTPStatus())
	}
	if !rl.Retryable() || !over.Retryable() {
		t.Fatal("sheds should be retryable (after backoff)")
	}
	// The message survives an HTTP crossing and still classifies.
	if got := refusal.ClassifyString("source lab: 503 Service Unavailable: " + over.Error()); got != refusal.Overloaded {
		t.Fatalf("wire classify = %v", got)
	}
	if got := refusal.ClassifyString("source lab: 429 Too Many Requests: " + rl.Error()); got != refusal.RateLimited {
		t.Fatalf("wire classify = %v", got)
	}
}

// waitFor polls until cond holds or the test deadline looms.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func fmtInt(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
