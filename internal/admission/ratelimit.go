package admission

import (
	"math"
	"time"
)

// bucket is one requester's token bucket. Guarded by Controller.mu: the
// per-request work is a map lookup and a handful of float ops, far
// cheaper than the parse/rewrite/audit pipeline behind the gate.
type bucket struct {
	tokens float64
	last   time.Time
}

// takeToken refills and debits the requester's bucket. On refusal it
// returns how long until the next token accrues — the Retry-After hint.
func (c *Controller) takeToken(requester string, now time.Time) (wait time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.buckets[requester]
	if b == nil {
		if len(c.buckets) >= maxBuckets {
			// See maxBuckets: forgetting everyone briefly over-admits,
			// which is the safe direction.
			c.buckets = map[string]*bucket{}
		}
		b = &bucket{tokens: c.cfg.Burst, last: now}
		c.buckets[requester] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(c.cfg.Burst, b.tokens+elapsed*c.cfg.RatePerSec)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / c.cfg.RatePerSec * float64(time.Second)), false
}
