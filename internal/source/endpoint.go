package source

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"

	"privateiye/internal/linkage"
	"privateiye/internal/obs"
	"privateiye/internal/psi"
	"privateiye/internal/schemamatch"
	"privateiye/internal/xmltree"
)

// psiBatchBuckets are the batch-size histogram bounds for whole-column
// PSI calls (items per call, powers of two).
var psiBatchBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// Endpoint is the mediator's view of a remote source: everything the
// mediation engine of Figure 2(b) needs, whether the source runs
// in-process or behind HTTP. All payloads are XML nodes, so the two
// transports are byte-identical in behaviour.
//
// Every call takes a context: sources are autonomous and therefore
// slow, flaky or dead in practice, and the mediator bounds each call
// with a per-source deadline. Implementations must return promptly once
// the context is done (internal/resilience additionally abandons
// implementations that do not).
type Endpoint interface {
	// Name identifies the source.
	Name() string
	// FetchSummary returns the redacted structural summary (partial
	// schema).
	FetchSummary(ctx context.Context) (*xmltree.Summary, error)
	// FetchProfiles returns shareable field profiles for schema matching.
	FetchProfiles(ctx context.Context) ([]schemamatch.FieldProfile, error)
	// Query executes a PIQL fragment and returns the tagged XML answer.
	Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error)
	// PSISuites lists the PSI group suites this source supports, in
	// preference order. The mediator intersects these across the fleet
	// during schema refresh and fails closed to MODP when a peer
	// predates suite negotiation.
	PSISuites(ctx context.Context) ([]string, error)
	// PSIBlinded returns the source's blinded linkage items for a
	// field, in the named suite ("" = the source's preferred suite).
	PSIBlinded(ctx context.Context, field, suite string) (*xmltree.Node, error)
	// PSIExponentiate raises peer-blinded elements to this source's
	// secret, preserving order.
	PSIExponentiate(ctx context.Context, elems *xmltree.Node) (*xmltree.Node, error)
	// LinkageRecords returns Bloom-encoded records for fuzzy matching on
	// a field.
	LinkageRecords(ctx context.Context, field string) ([]linkage.EncodedRecord, error)
}

// linkageDefaults are the standard Bloom parameters (see internal/linkage).
const (
	linkageM = 1000
	linkageK = 20
	linkageQ = 2
)

// Local wraps a Source as an in-process Endpoint. The LinkageSalt must be
// shared by every source participating in integration (it is the linking
// secret); the PSI group likewise.
type Local struct {
	Src         *Source
	LinkageSalt []byte
	Group       *psi.Group

	// AdvertisedSuites lists the PSI suites this source offers, in
	// preference order; nil means the default advertisement — the fast
	// EC suite first, then the Group's MODP suite as the interop floor.
	// A legacy MODP-only deployment pins this to just its MODP name.
	AdvertisedSuites []string

	// Coalesce merges concurrent identical whole-column calls —
	// PSIBlinded and LinkageRecords for the same field — into one shared
	// computation. Unlike query coalescing at the mediator, nothing here
	// is per-requester (neither call even carries one), so sharing the
	// result is unconditionally safe; the knob exists because the win
	// only materializes when several integration rounds race.
	Coalesce bool

	mu      sync.Mutex
	parties map[string]*psi.Party // one per suite, lazily keyed by suite name
	mBatch  *obs.Histogram        // items per whole-column PSI call; nil-safe

	colMu  sync.Mutex
	colFly map[string]*colFlight
}

// colFlight is one in-progress shared column computation.
type colFlight struct {
	done chan struct{}
	val  any
	err  error
}

// sharedColumn runs compute once per concurrent burst of identical
// column requests: the first caller computes, the rest wait and share.
func (l *Local) sharedColumn(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	if !l.Coalesce {
		return compute()
	}
	l.colMu.Lock()
	if l.colFly == nil {
		l.colFly = map[string]*colFlight{}
	}
	if f, ok := l.colFly[key]; ok {
		l.colMu.Unlock()
		l.colObs(false)
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &colFlight{done: make(chan struct{})}
	l.colFly[key] = f
	l.colMu.Unlock()
	l.colObs(true)
	f.val, f.err = compute()
	l.colMu.Lock()
	delete(l.colFly, key)
	l.colMu.Unlock()
	close(f.done)
	return f.val, f.err
}

// colObs counts one coalesced-column participant by role.
func (l *Local) colObs(leader bool) {
	reg := l.Src.cfg.Obs
	if reg == nil {
		return
	}
	role := "follower"
	if leader {
		role = "leader"
	}
	reg.Help("piye_source_coalesce_total", "Coalesced whole-column linkage computations: leaders computed, followers shared one in flight.")
	reg.Counter("piye_source_coalesce_total", "source", l.Src.Name(), "role", role).Inc()
}

// NewLocal builds a local endpoint.
func NewLocal(src *Source, linkageSalt []byte, group *psi.Group) (*Local, error) {
	if src == nil {
		return nil, fmt.Errorf("source: nil source")
	}
	if len(linkageSalt) == 0 {
		return nil, fmt.Errorf("source: empty linkage salt")
	}
	if group == nil {
		group = psi.DefaultGroup()
	}
	return &Local{Src: src, LinkageSalt: linkageSalt, Group: group}, nil
}

// Name implements Endpoint.
func (l *Local) Name() string { return l.Src.Name() }

// FetchSummary implements Endpoint.
func (l *Local) FetchSummary(ctx context.Context) (*xmltree.Summary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Src.Summary(), nil
}

// FetchProfiles implements Endpoint.
func (l *Local) FetchProfiles(ctx context.Context) ([]schemamatch.FieldProfile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Src.Profiles(), nil
}

// Query implements Endpoint.
func (l *Local) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := l.Src.ParseCached(piqlText)
	if err != nil {
		return nil, fmt.Errorf("source: bad query: %w", err)
	}
	ans, err := l.Src.ExecuteContext(ctx, q, requester)
	if err != nil {
		return nil, err
	}
	return ans.Node, nil
}

// modpSuiteName is the wire name of the Group's safe-prime suite.
func (l *Local) modpSuiteName() string { return psi.ModPSuite(l.Group).Name() }

// advertised returns the suites this source offers, in preference
// order. Every resolvable name in AdvertisedSuites is honoured; by
// default the source leads with the EC suite and keeps its MODP group
// as the floor every peer can fall back to.
func (l *Local) advertised() []string {
	if len(l.AdvertisedSuites) > 0 {
		return l.AdvertisedSuites
	}
	return []string{psi.SuiteNameP256, l.modpSuiteName()}
}

// PSISuites implements Endpoint.
func (l *Local) PSISuites(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return append([]string(nil), l.advertised()...), nil
}

// suiteFor resolves a requested suite name against the advertisement:
// "" means the source's preferred (first advertised) suite, and a name
// the source does not advertise is refused — a source never serves a
// group its operator did not opt into.
func (l *Local) suiteFor(name string) (psi.Suite, error) {
	adv := l.advertised()
	if name == "" {
		name = adv[0]
	}
	ok := false
	for _, a := range adv {
		if a == name {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("source %s: psi suite %q not advertised (have %v)", l.Src.Name(), name, adv)
	}
	if name == l.modpSuiteName() {
		return psi.ModPSuite(l.Group), nil
	}
	return psi.SuiteByName(name)
}

func (l *Local) psiParty(suite psi.Suite) (*psi.Party, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.parties[suite.Name()]; ok {
		return p, nil
	}
	p, err := psi.NewParty(suite, rand.Reader)
	if err != nil {
		return nil, err
	}
	p.SetWorkers(l.Src.cfg.Workers)
	if l.parties == nil {
		l.parties = map[string]*psi.Party{}
	}
	l.parties[suite.Name()] = p
	if reg := l.Src.cfg.Obs; reg != nil {
		// Sampled at scrape time from the party's atomic counters.
		// The party lives as long as the endpoint, so the closures
		// never outlive their subject.
		name, sName, party := l.Src.Name(), suite.Name(), p
		reg.Help("piye_psi_blind_items_total", "Items blinded in PSI rounds (cache hits included).")
		reg.CounterFunc("piye_psi_blind_items_total", func() float64 {
			b, _, _ := party.Stats()
			return float64(b)
		}, "source", name, "suite", sName)
		reg.CounterFunc("piye_psi_blind_cache_hits_total", func() float64 {
			_, h, _ := party.Stats()
			return float64(h)
		}, "source", name, "suite", sName)
		reg.CounterFunc("piye_psi_exponentiate_items_total", func() float64 {
			_, _, e := party.Stats()
			return float64(e)
		}, "source", name, "suite", sName)
		if l.mBatch == nil {
			reg.Help("piye_psi_batch_items", "Items per whole-column PSI call (batched kernel entry).")
			l.mBatch = reg.Histogram("piye_psi_batch_items", psiBatchBuckets, "source", name)
		}
	}
	return p, nil
}

// items returns the linkage items of a field along with their record ids.
func (l *Local) items(field string) (ids, values []string) {
	vals := l.Src.fieldValues(field, 1<<20)
	ids = make([]string, len(vals))
	for i := range vals {
		ids[i] = fmt.Sprintf("%s#%d", l.Src.Name(), i)
	}
	return ids, vals
}

// PSIBlinded implements Endpoint.
func (l *Local) PSIBlinded(ctx context.Context, field, suite string) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := l.suiteFor(suite)
	if err != nil {
		return nil, err
	}
	v, err := l.sharedColumn(ctx, "psi-blind\x00"+s.Name()+"\x00"+field, func() (any, error) {
		p, err := l.psiParty(s)
		if err != nil {
			return nil, err
		}
		_, vals := l.items(field)
		l.mBatch.Observe(float64(len(vals)))
		return psi.MarshalElems(s, p.BlindBatch(vals)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*xmltree.Node), nil
}

// PSIExponentiate implements Endpoint. The suite is read off the
// envelope; envelopes from peers predating negotiation carry no suite
// attribute and are decoded against this source's MODP group.
func (l *Local) PSIExponentiate(ctx context.Context, elems *xmltree.Node) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	name := psi.WireSuiteName(elems)
	if name == "" {
		name = l.modpSuiteName() // legacy peer: fail closed to MODP
	}
	s, err := l.suiteFor(name)
	if err != nil {
		return nil, err
	}
	p, err := l.psiParty(s)
	if err != nil {
		return nil, err
	}
	in, err := psi.UnmarshalElems(elems, s)
	if err != nil {
		return nil, err
	}
	l.mBatch.Observe(float64(len(in)))
	out, err := p.ExponentiateBatch(in)
	if err != nil {
		return nil, err
	}
	return psi.MarshalElems(s, out), nil
}

// LinkageRecords implements Endpoint.
func (l *Local) LinkageRecords(ctx context.Context, field string) ([]linkage.EncodedRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := l.sharedColumn(ctx, "linkage\x00"+field, func() (any, error) {
		enc, err := linkage.NewEncoder(linkageM, linkageK, linkageQ, l.LinkageSalt)
		if err != nil {
			return nil, err
		}
		ids, vals := l.items(field)
		return enc.EncodeRecords(ids, vals, l.Src.cfg.Workers)
	})
	if err != nil {
		return nil, err
	}
	return v.([]linkage.EncodedRecord), nil
}

// PSIDoubleBlind is a convenience for tests and the mediator: it completes
// the initiator side against a responder endpoint in the named suite
// ("" = the initiator's preferred suite). It returns the double-blinded
// versions of this endpoint's items (order-preserving) and of the
// responder's items.
func PSIDoubleBlind(ctx context.Context, initiator *Local, responder Endpoint, field, suite string) (own, theirs []psi.Element, err error) {
	s, err := initiator.suiteFor(suite)
	if err != nil {
		return nil, nil, err
	}
	p, err := initiator.psiParty(s)
	if err != nil {
		return nil, nil, err
	}
	_, vals := initiator.items(field)
	initiator.mBatch.Observe(float64(len(vals)))
	blindedOwn := psi.MarshalElems(s, p.BlindBatch(vals))
	ownDouble, err := responder.PSIExponentiate(ctx, blindedOwn)
	if err != nil {
		return nil, nil, err
	}
	own, err = psi.UnmarshalElems(ownDouble, s)
	if err != nil {
		return nil, nil, err
	}
	theirBlinded, err := responder.PSIBlinded(ctx, field, s.Name())
	if err != nil {
		return nil, nil, err
	}
	theirElems, err := psi.UnmarshalElems(theirBlinded, s)
	if err != nil {
		return nil, nil, err
	}
	theirs, err = p.ExponentiateBatch(theirElems)
	if err != nil {
		return nil, nil, err
	}
	return own, theirs, nil
}
