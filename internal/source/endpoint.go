package source

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"

	"privateiye/internal/linkage"
	"privateiye/internal/psi"
	"privateiye/internal/schemamatch"
	"privateiye/internal/xmltree"
)

// Endpoint is the mediator's view of a remote source: everything the
// mediation engine of Figure 2(b) needs, whether the source runs
// in-process or behind HTTP. All payloads are XML nodes, so the two
// transports are byte-identical in behaviour.
//
// Every call takes a context: sources are autonomous and therefore
// slow, flaky or dead in practice, and the mediator bounds each call
// with a per-source deadline. Implementations must return promptly once
// the context is done (internal/resilience additionally abandons
// implementations that do not).
type Endpoint interface {
	// Name identifies the source.
	Name() string
	// FetchSummary returns the redacted structural summary (partial
	// schema).
	FetchSummary(ctx context.Context) (*xmltree.Summary, error)
	// FetchProfiles returns shareable field profiles for schema matching.
	FetchProfiles(ctx context.Context) ([]schemamatch.FieldProfile, error)
	// Query executes a PIQL fragment and returns the tagged XML answer.
	Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error)
	// PSIBlinded returns the source's blinded linkage items for a field.
	PSIBlinded(ctx context.Context, field string) (*xmltree.Node, error)
	// PSIExponentiate raises peer-blinded elements to this source's
	// secret, preserving order.
	PSIExponentiate(ctx context.Context, elems *xmltree.Node) (*xmltree.Node, error)
	// LinkageRecords returns Bloom-encoded records for fuzzy matching on
	// a field.
	LinkageRecords(ctx context.Context, field string) ([]linkage.EncodedRecord, error)
}

// linkageDefaults are the standard Bloom parameters (see internal/linkage).
const (
	linkageM = 1000
	linkageK = 20
	linkageQ = 2
)

// Local wraps a Source as an in-process Endpoint. The LinkageSalt must be
// shared by every source participating in integration (it is the linking
// secret); the PSI group likewise.
type Local struct {
	Src         *Source
	LinkageSalt []byte
	Group       *psi.Group

	mu    sync.Mutex
	party *psi.Party
}

// NewLocal builds a local endpoint.
func NewLocal(src *Source, linkageSalt []byte, group *psi.Group) (*Local, error) {
	if src == nil {
		return nil, fmt.Errorf("source: nil source")
	}
	if len(linkageSalt) == 0 {
		return nil, fmt.Errorf("source: empty linkage salt")
	}
	if group == nil {
		group = psi.DefaultGroup()
	}
	return &Local{Src: src, LinkageSalt: linkageSalt, Group: group}, nil
}

// Name implements Endpoint.
func (l *Local) Name() string { return l.Src.Name() }

// FetchSummary implements Endpoint.
func (l *Local) FetchSummary(ctx context.Context) (*xmltree.Summary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Src.Summary(), nil
}

// FetchProfiles implements Endpoint.
func (l *Local) FetchProfiles(ctx context.Context) ([]schemamatch.FieldProfile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Src.Profiles(), nil
}

// Query implements Endpoint.
func (l *Local) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := l.Src.ParseCached(piqlText)
	if err != nil {
		return nil, fmt.Errorf("source: bad query: %w", err)
	}
	ans, err := l.Src.ExecuteContext(ctx, q, requester)
	if err != nil {
		return nil, err
	}
	return ans.Node, nil
}

func (l *Local) psiParty() (*psi.Party, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.party == nil {
		p, err := psi.NewParty(l.Group, rand.Reader)
		if err != nil {
			return nil, err
		}
		l.party = p.SetWorkers(l.Src.cfg.Workers)
		if reg := l.Src.cfg.Obs; reg != nil {
			// Sampled at scrape time from the party's atomic counters.
			// The party lives as long as the endpoint, so the closures
			// never outlive their subject.
			name, party := l.Src.Name(), l.party
			reg.Help("piye_psi_blind_items_total", "Items blinded in PSI rounds (cache hits included).")
			reg.CounterFunc("piye_psi_blind_items_total", func() float64 {
				b, _, _ := party.Stats()
				return float64(b)
			}, "source", name)
			reg.CounterFunc("piye_psi_blind_cache_hits_total", func() float64 {
				_, h, _ := party.Stats()
				return float64(h)
			}, "source", name)
			reg.CounterFunc("piye_psi_exponentiate_items_total", func() float64 {
				_, _, e := party.Stats()
				return float64(e)
			}, "source", name)
		}
	}
	return l.party, nil
}

// items returns the linkage items of a field along with their record ids.
func (l *Local) items(field string) (ids, values []string) {
	vals := l.Src.fieldValues(field, 1<<20)
	ids = make([]string, len(vals))
	for i := range vals {
		ids[i] = fmt.Sprintf("%s#%d", l.Src.Name(), i)
	}
	return ids, vals
}

// PSIBlinded implements Endpoint.
func (l *Local) PSIBlinded(ctx context.Context, field string) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := l.psiParty()
	if err != nil {
		return nil, err
	}
	_, vals := l.items(field)
	return psi.MarshalElems(p.Blind(vals)), nil
}

// PSIExponentiate implements Endpoint.
func (l *Local) PSIExponentiate(ctx context.Context, elems *xmltree.Node) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := l.psiParty()
	if err != nil {
		return nil, err
	}
	in, err := psi.UnmarshalElems(elems, l.Group)
	if err != nil {
		return nil, err
	}
	out, err := p.Exponentiate(in)
	if err != nil {
		return nil, err
	}
	return psi.MarshalElems(out), nil
}

// LinkageRecords implements Endpoint.
func (l *Local) LinkageRecords(ctx context.Context, field string) ([]linkage.EncodedRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enc, err := linkage.NewEncoder(linkageM, linkageK, linkageQ, l.LinkageSalt)
	if err != nil {
		return nil, err
	}
	ids, vals := l.items(field)
	return enc.EncodeRecords(ids, vals, l.Src.cfg.Workers)
}

// PSIDoubleBlind is a convenience for tests and the mediator: it completes
// the initiator side against a responder endpoint. It returns the double-
// blinded versions of this endpoint's items (order-preserving) and of the
// responder's items.
func PSIDoubleBlind(ctx context.Context, initiator *Local, responder Endpoint, field string) (own, theirs []*big.Int, err error) {
	p, err := initiator.psiParty()
	if err != nil {
		return nil, nil, err
	}
	_, vals := initiator.items(field)
	blindedOwn := psi.MarshalElems(p.Blind(vals))
	ownDouble, err := responder.PSIExponentiate(ctx, blindedOwn)
	if err != nil {
		return nil, nil, err
	}
	own, err = psi.UnmarshalElems(ownDouble, initiator.Group)
	if err != nil {
		return nil, nil, err
	}
	theirBlinded, err := responder.PSIBlinded(ctx, field)
	if err != nil {
		return nil, nil, err
	}
	theirElems, err := psi.UnmarshalElems(theirBlinded, initiator.Group)
	if err != nil {
		return nil, nil, err
	}
	theirs, err = p.Exponentiate(theirElems)
	if err != nil {
		return nil, nil, err
	}
	return own, theirs, nil
}
