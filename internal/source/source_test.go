package source

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privateiye/internal/anonymity"
	"privateiye/internal/audit"
	"privateiye/internal/clinical"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/xmltree"
)

// bg is the background context for endpoint calls that need no deadline.
var bg = context.Background()

func hospitalSource(t *testing.T) *Source {
	t.Helper()
	g := clinical.NewGenerator(41)
	cat := relational.NewCatalog()
	patients, err := g.Patients("patients", 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(patients); err != nil {
		t.Fatal(err)
	}
	comp, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(comp); err != nil {
		t.Fatal(err)
	}

	pol, err := policy.NewPolicy("hospitalA", policy.Deny,
		policy.Rule{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
		policy.Rule{Item: "//patients/row/sex", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
		policy.Rule{Item: "//patients/row/zip", Purpose: "research", Form: policy.Range, Effect: policy.Allow, MaxLoss: 0.7},
		policy.Rule{Item: "//patients/row/diagnosis", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.5},
		policy.Rule{Item: "//patients/row/name", Purpose: "treatment", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
		policy.Rule{Item: "//patients/row/id", Purpose: "any", Effect: policy.Deny},
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.8},
	)
	if err != nil {
		t.Fatal(err)
	}
	view, err := policy.NewPrivacyView("hospitalA-private",
		policy.ViewItem{Item: "//patients/row/name", Sensitivity: policy.High},
		policy.ViewItem{Item: "//patients/row/id", Sensitivity: policy.High},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(Config{
		Name:    "hospitalA",
		Catalog: cat,
		Policy:  pol,
		View:    view,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestNewValidation(t *testing.T) {
	pol, _ := policy.NewPolicy("p", policy.Deny)
	if _, err := New(Config{Catalog: relational.NewCatalog(), Policy: pol}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := New(Config{Name: "s", Catalog: relational.NewCatalog()}); err == nil {
		t.Error("missing policy should fail")
	}
	if _, err := New(Config{Name: "s", Policy: pol}); err == nil {
		t.Error("no data should fail")
	}
}

func TestSummaryRedaction(t *testing.T) {
	src := hospitalSource(t)
	shared := src.Summary()
	if shared.Has("/patients/row/name") {
		t.Error("private name path leaked into shared summary")
	}
	if !shared.Has("/patients/row/age") {
		t.Error("public age path missing from summary")
	}
	// The full internal summary still knows the name path (the rewriter
	// needs it).
	if !src.summary.Has("/patients/row/name") {
		t.Error("internal summary should be complete")
	}
}

func TestExecuteRelationalAggregate(t *testing.T) {
	src := hospitalSource(t)
	q := piql.MustParse("FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.8")
	ans, err := src.Execute(q, "researcher")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Result.Rows) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(ans.Result.Rows), ans.Result.Rows)
	}
	// The aggregate-inference mitigation applies (cluster KB routes
	// grouped aggregates over rates there): avg_rate is rounded to
	// integers.
	for _, row := range ans.Result.Rows {
		if strings.Contains(row[1], ".") {
			t.Errorf("avg_rate %q should be rounded by mitigation (technique %s)", row[1], ans.Technique)
		}
	}
	if ans.Plan == nil || ans.Node == nil {
		t.Error("answer missing plan or tagged node")
	}
	if got, _ := ans.Node.Attr("source"); got != "hospitalA" {
		t.Errorf("tag source = %q", got)
	}
}

func TestExecuteDeniesIdentifiers(t *testing.T) {
	src := hospitalSource(t)
	// id is denied for any purpose.
	q := piql.MustParse("FOR //patients/row RETURN //id PURPOSE research")
	if _, err := src.Execute(q, "researcher"); err == nil {
		t.Fatal("id query should be fully denied")
	}
	// Mixed query survives with id dropped.
	q = piql.MustParse("FOR //patients/row WHERE //age > 40 RETURN //id, //age PURPOSE research MAXLOSS 0.9")
	ans, err := src.Execute(q, "researcher")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ans.Result.Columns {
		if c == "id" {
			t.Error("id column survived")
		}
	}
	if len(ans.Rewrite.DroppedReturns) != 1 {
		t.Errorf("dropped = %+v", ans.Rewrite.DroppedReturns)
	}
}

func TestExecutePurposeMatters(t *testing.T) {
	src := hospitalSource(t)
	q := piql.MustParse("FOR //patients/row RETURN //name PURPOSE treatment MAXLOSS 0.9")
	if _, err := src.Execute(q, "doc"); err != nil {
		t.Errorf("name for treatment should pass: %v", err)
	}
	q = piql.MustParse("FOR //patients/row RETURN //name PURPOSE marketing")
	if _, err := src.Execute(q, "doc"); err == nil {
		t.Error("name for marketing should be denied")
	}
}

func TestExecuteApproximateTagResolution(t *testing.T) {
	src := hospitalSource(t)
	// "gender" is a synonym of the source's "sex" column.
	q := piql.MustParse("FOR //patients/row WHERE //gender = 'F' RETURN //age PURPOSE research MAXLOSS 0.9")
	ans, err := src.Execute(q, "researcher")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Result.Rows) == 0 {
		t.Fatal("resolver should map gender->sex and find rows")
	}
	// Roughly half the 200 patients are F.
	if len(ans.Result.Rows) < 60 || len(ans.Result.Rows) > 140 {
		t.Errorf("F rows = %d, want around 100", len(ans.Result.Rows))
	}
}

func TestExecuteXMLDocsSource(t *testing.T) {
	doc, err := xmltree.ParseString(`
<clinic>
  <patient><name>Ana</name><age>44</age><diagnosis>diabetes</diagnosis></patient>
  <patient><name>Ben</name><age>61</age><diagnosis>asthma</diagnosis></patient>
</clinic>`)
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := policy.NewPolicy("clinic", policy.Deny,
		policy.Rule{Item: "//patient/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
	)
	src, err := New(Config{Name: "clinic", Docs: []*xmltree.Node{doc}, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	q := piql.MustParse("FOR //patient WHERE //age > 50 RETURN //age PURPOSE research")
	ans, err := src.Execute(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	// One patient matches; age is a quasi-identifier, so the identity-
	// disclosure mitigation generalizes it to a band containing 61.
	if len(ans.Result.Rows) != 1 || ans.Result.Rows[0][0] != "60-69" {
		t.Errorf("XML source rows = %v (technique %s)", ans.Result.Rows, ans.Technique)
	}
}

func TestAuditStopsRepeatedAggregates(t *testing.T) {
	g := clinical.NewGenerator(5)
	cat := relational.NewCatalog()
	patients, _ := g.Patients("patients", 50, 2)
	if err := cat.Add(patients); err != nil {
		t.Fatal(err)
	}
	pol, _ := policy.NewPolicy("s", policy.Allow)
	log, err := audit.NewLog(audit.Config{Population: 50, MinSetSize: 3, MaxOverlap: 5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(Config{Name: "s", Catalog: cat, Policy: pol, Audit: log})
	if err != nil {
		t.Fatal(err)
	}
	q := piql.MustParse("FOR //patients/row WHERE //age > 30 RETURN AVG(//age) AS a PURPOSE research")
	if _, err := src.Execute(q, "snooper"); err != nil {
		t.Fatalf("first aggregate should pass: %v", err)
	}
	// The same query again overlaps itself completely: refused.
	if _, err := src.Execute(q, "snooper"); err == nil {
		t.Fatal("repeated aggregate should be refused by overlap control")
	}
	// A different requester is unaffected.
	if _, err := src.Execute(q, "other"); err != nil {
		t.Errorf("other requester should pass: %v", err)
	}
}

func TestProfilesRespectPrivacyView(t *testing.T) {
	src := hospitalSource(t)
	for _, p := range src.Profiles() {
		if p.Name == "name" || p.Name == "id" {
			t.Errorf("private field %q profiled for sharing", p.Name)
		}
	}
}

func TestTransformToRelational(t *testing.T) {
	src := hospitalSource(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"FOR //patients/row WHERE //age > 40 RETURN //age", true},
		{"FOR //patients/row GROUP BY //sex RETURN COUNT(*) AS n, AVG(//age) AS a", true},
		{"FOR //patients/row WHERE //name CONTAINS 'An' RETURN //age", true},
		{"FOR //patients/row WHERE NOT //age > 40 RETURN //age", true},
		{"FOR //patients/row WHERE EXISTS //age RETURN //age", false},  // EXISTS: XML path
		{"FOR //unknown/row RETURN //age", false},                      // unknown table
		{"FOR //patients/row RETURN //age, COUNT(*)", false},           // mixed plain+agg
		{"FOR //patients/row WHERE //age = 'abc' RETURN //age", false}, // untypeable literal
	}
	for _, tc := range cases {
		q := piql.MustParse(tc.src)
		_, ok := TransformToRelational(q, src.cfg.Catalog, src.resolver)
		if ok != tc.want {
			t.Errorf("TransformToRelational(%q) = %v, want %v", tc.src, ok, tc.want)
		}
	}
}

func TestTransformedSQLAgreesWithXMLFallback(t *testing.T) {
	src := hospitalSource(t)
	// Same query through both engines gives identical row counts.
	q := piql.MustParse("FOR //patients/row WHERE //age >= 40 AND //sex = 'F' RETURN //age, //sex PURPOSE research MAXLOSS 0.9")
	rq, ok := TransformToRelational(q, src.cfg.Catalog, src.resolver)
	if !ok {
		t.Fatal("should transform")
	}
	relRes, err := rq.Execute(src.cfg.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := src.cfg.Catalog.Table("patients")
	doc := relational.TableToXML(tab)
	xmlRes, err := q.Evaluate(doc, piql.EvalOptions{Resolver: src.resolver})
	if err != nil {
		t.Fatal(err)
	}
	if len(relRes.Rows) != len(xmlRes.Rows) {
		t.Errorf("engines disagree: relational %d rows, xml %d rows", len(relRes.Rows), len(xmlRes.Rows))
	}
	if len(relRes.Rows) == 0 {
		t.Error("test query matched nothing")
	}
}

func TestHTTPEndpointParity(t *testing.T) {
	src := hospitalSource(t)
	local, err := NewLocal(src, []byte("salt"), psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(NewHandler(local))
	defer server.Close()
	client := NewClient(server.URL, "hospitalA")

	// Summary parity.
	ls, _ := local.FetchSummary(bg)
	cs, err := client.FetchSummary(bg)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Len() != cs.Len() {
		t.Errorf("summary sizes differ: %d vs %d", ls.Len(), cs.Len())
	}

	// Profiles parity.
	lp, _ := local.FetchProfiles(bg)
	cp, err := client.FetchProfiles(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != len(cp) {
		t.Errorf("profiles differ: %d vs %d", len(lp), len(cp))
	}

	// Query over HTTP.
	qs := "FOR //patients/row WHERE //age > 40 RETURN //age PURPOSE research MAXLOSS 0.9"
	node, err := client.Query(bg, qs, "researcher")
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "answer" {
		t.Errorf("answer root = %q", node.Name)
	}
	// Denied query maps to an HTTP error.
	if _, err := client.Query(bg, "FOR //patients/row RETURN //id PURPOSE research", "researcher"); err == nil {
		t.Error("denied query should error over HTTP")
	}
	if _, err := client.Query(bg, "not piql at all", "researcher"); err == nil {
		t.Error("bad query text should error")
	}

	// PSI round trip over HTTP.
	blinded, err := client.PSIBlinded(bg, "sex", "")
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := client.PSIExponentiate(bg, blinded)
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled.ChildrenNamed("e")) != len(blinded.ChildrenNamed("e")) {
		t.Error("psi exponentiate changed cardinality")
	}

	// Linkage records over HTTP.
	recs, err := client.LinkageRecords(bg, "sex")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Errorf("linkage records = %d, want 200", len(recs))
	}
}

func TestPSIDoubleBlindIntersection(t *testing.T) {
	// Two sources sharing some patients by name; PSI finds the overlap.
	mk := func(name string, names []string) *Local {
		root := xmltree.NewElem("reg")
		for _, n := range names {
			root.Append(xmltree.NewElem("patient").Append(xmltree.NewText("name", n)))
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		s, err := New(Config{Name: name, Docs: []*xmltree.Node{root}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLocal(s, []byte("shared"), psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a := mk("A", []string{"alice", "bob", "carol"})
	b := mk("B", []string{"carol", "dave", "alice"})
	own, theirs, err := PSIDoubleBlind(bg, a, b, "name", "")
	if err != nil {
		t.Fatal(err)
	}
	suite := psi.P256Suite() // both sources default-prefer the EC suite
	inB := map[string]bool{}
	for _, e := range theirs {
		inB[string(suite.AppendElement(nil, e))] = true
	}
	matches := 0
	for _, e := range own {
		if inB[string(suite.AppendElement(nil, e))] {
			matches++
		}
	}
	if matches != 2 {
		t.Errorf("psi overlap = %d, want 2", matches)
	}
}

func TestNewLocalValidation(t *testing.T) {
	src := hospitalSource(t)
	if _, err := NewLocal(nil, []byte("s"), nil); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := NewLocal(src, nil, nil); err == nil {
		t.Error("empty salt should fail")
	}
	l, err := NewLocal(src, []byte("s"), nil)
	if err != nil || l.Group == nil {
		t.Errorf("default group expected: %v", err)
	}
}

func TestAddPreferenceTightensDisclosure(t *testing.T) {
	src := hospitalSource(t)
	q := piql.MustParse("FOR //patients/row RETURN //age PURPOSE research MAXLOSS 0.9")
	if _, err := src.Execute(q, "r"); err != nil {
		t.Fatalf("age should pass before the preference: %v", err)
	}
	// A data subject registers a preference that forbids research use of
	// age entirely.
	pref, err := policy.NewPolicy("subject-7", policy.Deny,
		policy.Rule{Item: "//patients/row/age", Purpose: "research", Effect: policy.Deny},
		policy.Rule{Item: "//patients//*", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
		policy.Rule{Item: "//compliance//*", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddPreference(pref); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Execute(q, "r"); err == nil {
		t.Fatal("preference should now deny research use of age")
	}
	// Other purposes covered by the preference still pass.
	q2 := piql.MustParse("FOR //patients/row RETURN //age PURPOSE treatment MAXLOSS 0.9")
	if _, err := src.Execute(q2, "r"); err != nil {
		t.Errorf("treatment should still pass: %v", err)
	}
	if err := src.AddPreference(nil); err == nil {
		t.Error("nil preference should error")
	}
	if got := len(src.Preferences()); got != 1 {
		t.Errorf("preferences = %d", got)
	}
}

func TestPreferencesOverHTTP(t *testing.T) {
	src := hospitalSource(t)
	local, err := NewLocal(src, []byte("salt"), psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(NewHandler(local))
	defer server.Close()

	prefXML := `<policy owner="subject-9" default="allow">
  <rule item="//patients/row/age" purpose="research" effect="deny"/>
</policy>`
	resp, err := server.Client().Post(server.URL+"/preferences", "application/xml", strings.NewReader(prefXML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	client := NewClient(server.URL, "hospitalA")
	if _, err := client.Query(bg, "FOR //patients/row RETURN //age PURPOSE research MAXLOSS 0.9", "r"); err == nil {
		t.Error("preference registered over HTTP should deny")
	}
	// Bad payloads rejected.
	resp, _ = server.Client().Post(server.URL+"/preferences", "application/xml", strings.NewReader("<notpolicy/>"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad policy status = %d", resp.StatusCode)
	}
}

func TestSourceWithCertifiedKAnonymity(t *testing.T) {
	// A source whose preservation KB routes identity breaches to the
	// certified k-anonymizer: every released identifying result is
	// provably k-anonymous, not just heuristically coarsened.
	g := clinical.NewGenerator(77)
	cat := relational.NewCatalog()
	patients, err := g.Patients("patients", 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(patients); err != nil {
		t.Fatal(err)
	}
	pol, _ := policy.NewPolicy("s", policy.Allow)
	reg := preserve.NewRegistry()
	kcfg := anonymity.Config{
		K: 5,
		QIs: []anonymity.QuasiIdentifier{
			{Column: "age", Hierarchy: preserve.AgeHierarchy()},
			{Column: "zip", Hierarchy: preserve.ZipHierarchy()},
			{Column: "sex", Hierarchy: preserve.SexHierarchy()},
		},
		MaxSuppression: 0.05,
	}
	reg.Register(preserve.BreachIdentity, anonymity.Technique{Cfg: kcfg})
	reg.Register(preserve.BreachAttribute, anonymity.Technique{Cfg: kcfg})
	src, err := New(Config{Name: "s", Catalog: cat, Policy: pol, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	q := piql.MustParse("FOR //patients/row RETURN //age, //zip, //sex, //diagnosis PURPOSE research MAXLOSS 0.9")
	ans, err := src.Execute(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Technique != "kanonymize(k=5,datafly)" {
		t.Fatalf("technique = %s (breach %s)", ans.Technique, ans.Breach)
	}
	ok, min, err := anonymity.Verify(ans.Result, []string{"age", "zip", "sex"}, 5)
	if err != nil || !ok {
		t.Errorf("released result not 5-anonymous: min class %d, %v", min, err)
	}
}

func TestTransformerLiteralTypes(t *testing.T) {
	// Typed-literal coverage: float, int (with decimal point), bool and
	// failure modes, exercised through full queries on a mixed-type table.
	cat := relational.NewCatalog()
	tab := relational.NewTable("m", relational.MustSchema(
		relational.Column{Name: "f", Type: relational.TFloat},
		relational.Column{Name: "i", Type: relational.TInt},
		relational.Column{Name: "b", Type: relational.TBool},
		relational.Column{Name: "s", Type: relational.TString},
	))
	for j := 0; j < 4; j++ {
		if err := tab.Insert(relational.Row{
			relational.Float(float64(j) + 0.5),
			relational.Int(int64(j)),
			relational.Bool(j%2 == 0),
			relational.Str(fmt.Sprintf("v%d", j)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		where string
		ok    bool
		rows  int
	}{
		{"//f > 1.4", true, 3},
		{"//i = 2.0", true, 1}, // decimal-point integer literal
		{"//i <= 2", true, 3},
		{"//b = true", true, 2},
		{"//s != 'v0'", true, 3},
		{"//i = 1.5", false, 0}, // fractional int: XML fallback
		{"//b = maybe", false, 0},
		{"//f = notanum", false, 0},
		{"//f > 1 OR //i = 0", true, 4},
	}
	for _, tc := range cases {
		q := piql.MustParse("FOR //m/row WHERE " + tc.where + " RETURN //s")
		rq, ok := TransformToRelational(q, cat, nil)
		if ok != tc.ok {
			t.Errorf("WHERE %s: transformable = %v, want %v", tc.where, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		res, err := rq.Execute(cat)
		if err != nil {
			t.Fatalf("WHERE %s: %v", tc.where, err)
		}
		if len(res.Rows) != tc.rows {
			t.Errorf("WHERE %s: rows = %d, want %d", tc.where, len(res.Rows), tc.rows)
		}
	}
}

func TestTransformerOrderByVariants(t *testing.T) {
	src := hospitalSource(t)
	cases := []struct {
		q    string
		want bool
	}{
		{"FOR //patients/row RETURN //age ORDER BY age LIMIT 5", true},
		{"FOR //patients/row RETURN //age ORDER BY age DESC", false}, // desc: XML path
		{"FOR //patients/row RETURN //age ORDER BY nosuch", false},   // unknown col
		{"FOR //patients/row GROUP BY //sex RETURN COUNT(*) AS n ORDER BY n", true},
		{"FOR //patients/row GROUP BY //sex RETURN COUNT(*) AS n ORDER BY sex", true},
	}
	for _, tc := range cases {
		q := piql.MustParse(tc.q)
		_, ok := TransformToRelational(q, src.cfg.Catalog, src.resolver)
		if ok != tc.want {
			t.Errorf("%s: transformable = %v, want %v", tc.q, ok, tc.want)
		}
	}
}

func TestExecuteRelationalOnlyXMLFallback(t *testing.T) {
	// A relational-only source answering an EXISTS query (no SQL shape)
	// must fall back to evaluating over the XML projection of its tables.
	src := hospitalSource(t)
	q := piql.MustParse("FOR //patients/row WHERE EXISTS //age RETURN //age PURPOSE research MAXLOSS 0.9")
	ans, err := src.Execute(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Result.Rows) != 200 {
		t.Errorf("fallback rows = %d, want 200", len(ans.Result.Rows))
	}
}

func TestClientErrorPaths(t *testing.T) {
	// A client pointed at nothing reports transport errors with context.
	c := NewClient("http://127.0.0.1:1", "ghost")
	if c.Name() != "ghost" {
		t.Errorf("name = %q", c.Name())
	}
	if _, err := c.FetchSummary(bg); err == nil {
		t.Error("dead node should error")
	}
	if _, err := c.FetchProfiles(bg); err == nil {
		t.Error("dead node should error")
	}
	if _, err := c.Query(bg, "FOR //x RETURN //y", "r"); err == nil {
		t.Error("dead node should error")
	}
	if _, err := c.LinkageRecords(bg, "name"); err == nil {
		t.Error("dead node should error")
	}
	// nil HTTP falls back to the default client.
	c.HTTP = nil
	if c.httpClient() == nil {
		t.Error("httpClient fallback")
	}
}

func TestHandlerBadRequests(t *testing.T) {
	src := hospitalSource(t)
	local, err := NewLocal(src, []byte("salt"), psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(NewHandler(local))
	defer server.Close()
	client := server.Client()

	// Missing field params.
	for _, path := range []string{"/psi/blinded", "/linkage/records"} {
		resp, err := client.Get(server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s without field: status %d", path, resp.StatusCode)
		}
	}
	// Bad PSI payload.
	resp, err := client.Post(server.URL+"/psi/exponentiate", "application/xml", strings.NewReader("<psi-elems><e>zz</e></psi-elems>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad psi payload: status %d", resp.StatusCode)
	}
	// Missing requester on query.
	resp, err = client.Post(server.URL+"/query", "text/plain", strings.NewReader("FOR //x RETURN //y"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing requester: status %d", resp.StatusCode)
	}
}

func TestLocalEndpointName(t *testing.T) {
	src := hospitalSource(t)
	local, _ := NewLocal(src, []byte("s"), psi.TestGroup())
	if local.Name() != "hospitalA" {
		t.Errorf("name = %q", local.Name())
	}
}

func TestClientPSISuitesLegacyServer(t *testing.T) {
	// A pre-curve server has no /psi/suites route; the client must
	// report the MODP floor, not an error, so negotiation fails closed
	// instead of failing the refresh.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer legacy.Close()
	c := NewClient(legacy.URL, "legacy")
	suites, err := c.PSISuites(bg)
	if err != nil {
		t.Fatalf("legacy 404 should downgrade, not error: %v", err)
	}
	if len(suites) != 1 || suites[0] != psi.SuiteNameModP2048 {
		t.Fatalf("suites = %v, want [%s]", suites, psi.SuiteNameModP2048)
	}

	// A current server advertises the curve first.
	src := hospitalSource(t)
	local, err := NewLocal(src, []byte("salt"), psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(NewHandler(local))
	defer server.Close()
	got, err := NewClient(server.URL, "hospitalA").PSISuites(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != psi.SuiteNameP256 || got[1] != psi.SuiteNameModP768 {
		t.Fatalf("advertised = %v, want [p256 modp768]", got)
	}
}
