package source

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"privateiye/internal/accesscontrol"
	"privateiye/internal/admission"
	"privateiye/internal/audit"
	"privateiye/internal/cluster"
	"privateiye/internal/obs"
	"privateiye/internal/optimizer"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/qcache"
	"privateiye/internal/relational"
	"privateiye/internal/rewrite"
	"privateiye/internal/schemamatch"
	"privateiye/internal/stats"
	"privateiye/internal/xmltree"
)

// Config assembles a source's data and privacy machinery. Zero-value
// optional fields get sensible defaults from New.
type Config struct {
	Name string
	// Catalog holds relational tables; Docs holds XML documents. At least
	// one must be non-empty.
	Catalog *relational.Catalog
	Docs    []*xmltree.Node
	// Policy is the source's own policy (required). Preferences are
	// data-subject policies that additionally constrain disclosures.
	Policy      *policy.Policy
	Preferences []*policy.Policy
	// View declares which paths are private at all; it drives summary
	// redaction. Optional.
	View *policy.PrivacyView
	// Purposes defaults to policy.DefaultPurposes.
	Purposes *policy.PurposeTree
	// Access is the RBAC+MLS store. Optional.
	Access *accesscontrol.Store
	// ClusterKB routes queries to breach classes; Registry maps breach
	// classes to techniques. Both default to trained/standard instances.
	ClusterKB *cluster.KB
	Registry  *preserve.Registry
	// Audit guards aggregate query sequences. Optional.
	Audit *audit.Log
	// Seed drives the deterministic random stream for perturbation.
	Seed uint64
	// Workers bounds the per-item fan-out of this source's compute
	// kernels (PSI blinding/exponentiation, Bloom-filter linkage
	// encoding): 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// PlanCache is the capacity (entries) of the parse/plan cache:
	// repeated (requester, query) pairs skip rewriting, cluster matching
	// and optimization. Privacy enforcement is NOT cached — sequence
	// auditing, preservation and loss accounting run on every
	// execution. 0 disables caching.
	PlanCache int
	// Obs, when non-nil, receives this source's metrics (query and
	// refusal counters, stage latencies, plan-cache and PSI counters)
	// under piye_source_* / piye_psi_* series labelled with the source
	// name. Trace, when non-nil, records one trace per executed query
	// with a span per pipeline stage. Both nil = zero instrumentation
	// cost beyond one nil check per stage.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Admission, when non-nil and enabled, gates ExecuteContext with a
	// per-source admission controller: per-requester rate limiting,
	// adaptive (AIMD) concurrency limiting and deadline-aware queueing.
	// Sheds surface as *admission.ShedError (429/503 over HTTP), which
	// the mediator's breaker and retry policy treat as "alive but busy",
	// never as a source failure.
	Admission *admission.Config
}

// Source is a running remote source.
type Source struct {
	cfg      Config
	matcher  *schemamatch.Matcher
	resolver piql.Resolver
	rng      *stats.Rand
	summary  *xmltree.Summary      // full (unredacted) structural summary
	plans    *qcache.Cache         // parse/plan cache; nil when disabled
	obs      *srcObs               // metric handles; nil when uninstrumented
	admit    *admission.Controller // nil = admit everything

	mu    sync.RWMutex
	prefs []*policy.Policy // registered data-subject preferences
}

// planEntry is a cached planning outcome for one (requester, query)
// pair: everything Execute computes before it touches per-execution
// privacy state. The sequence audit, execution, preservation and loss
// accounting are deliberately outside — they must run every time.
type planEntry struct {
	outcome   *rewrite.Outcome
	breach    preserve.BreachClass
	technique preserve.Technique
	plan      *optimizer.Plan
}

// Answer is a fully processed query response.
type Answer struct {
	// Result is the preserved result.
	Result *piql.Result
	// Node is the tagged XML answer (Metadata Tagger output).
	Node *xmltree.Node
	// Breach is the predicted breach class; Technique names the applied
	// mitigation.
	Breach    preserve.BreachClass
	Technique string
	// Plan is the optimizer's explain output.
	Plan *optimizer.Plan
	// Rewrite is the policy rewriting outcome.
	Rewrite *rewrite.Outcome
	// EstimatedLoss is the planner-side information-loss estimate.
	EstimatedLoss float64
}

// New validates the configuration and builds the source.
func New(cfg Config) (*Source, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("source: empty name")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("source %s: no policy (privacy-preserving sources fail closed)", cfg.Name)
	}
	if cfg.Catalog == nil && len(cfg.Docs) == 0 {
		return nil, fmt.Errorf("source %s: no data", cfg.Name)
	}
	if cfg.Purposes == nil {
		cfg.Purposes = policy.DefaultPurposes()
	}
	if cfg.Registry == nil {
		cfg.Registry = preserve.DefaultRegistry()
	}
	if cfg.ClusterKB == nil {
		train, err := cluster.SyntheticWorkload(210, 1)
		if err != nil {
			return nil, fmt.Errorf("source %s: default cluster KB: %w", cfg.Name, err)
		}
		kb, err := cluster.BuildKMeans(train, 8, 1)
		if err != nil {
			return nil, fmt.Errorf("source %s: default cluster KB: %w", cfg.Name, err)
		}
		cfg.ClusterKB = kb
	}
	s := &Source{
		cfg:     cfg,
		matcher: schemamatch.NewMatcher(),
		rng:     stats.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15),
		plans:   qcache.New(cfg.PlanCache),
	}
	s.summary = s.buildSummary()
	s.resolver = s.matcher.ResolverFor(s.summary.LeafNames())
	s.prefs = append(s.prefs, cfg.Preferences...)
	s.obs = newSrcObs(cfg.Name, cfg.Obs, cfg.Trace)
	if cfg.Admission != nil {
		ctl, err := admission.New(*cfg.Admission)
		if err != nil {
			return nil, fmt.Errorf("source %s: %w", cfg.Name, err)
		}
		s.admit = ctl
		ctl.Register(cfg.Obs, "source:"+cfg.Name)
	}
	if cfg.Obs != nil {
		scope := "source:" + cfg.Name
		cfg.Obs.Help("piye_plan_cache_hits_total", "Plan/parse cache hits.")
		cfg.Obs.Help("piye_plan_cache_misses_total", "Plan/parse cache misses.")
		cfg.Obs.CounterFunc("piye_plan_cache_hits_total", func() float64 {
			h, _ := s.plans.Stats()
			return float64(h)
		}, "scope", scope)
		cfg.Obs.CounterFunc("piye_plan_cache_misses_total", func() float64 {
			_, m := s.plans.Stats()
			return float64(m)
		}, "scope", scope)
		cfg.Obs.GaugeFunc("piye_plan_cache_entries", func() float64 {
			return float64(s.plans.Len())
		}, "scope", scope)
		cfg.Obs.Help("piye_plan_cache_hit_ratio", "Plan/parse cache lifetime hit ratio (0 until the first lookup).")
		cfg.Obs.GaugeFunc("piye_plan_cache_hit_ratio", func() float64 {
			return s.plans.HitRate()
		}, "scope", scope)
	}
	return s, nil
}

// Observability exposes the source's metrics registry and tracer (nil
// when not configured); the HTTP handler mounts them.
func (s *Source) Observability() (*obs.Registry, *obs.Tracer) {
	return s.cfg.Obs, s.cfg.Trace
}

// AddPreference registers a data-subject preference policy at runtime —
// the paper's user preference language in action: "the source or user
// specifies its privacy policies ... that are stored in the remote
// source" (Section 3). Every subsequent disclosure must satisfy it in
// addition to the source policy.
func (s *Source) AddPreference(p *policy.Policy) error {
	if p == nil {
		return fmt.Errorf("source %s: nil preference", s.cfg.Name)
	}
	s.mu.Lock()
	s.prefs = append(s.prefs, p)
	s.mu.Unlock()
	// A new preference changes what rewriting may disclose: every cached
	// plan is stale the moment it lands.
	s.plans.Purge()
	return nil
}

// Preferences returns the registered preference policies.
func (s *Source) Preferences() []*policy.Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*policy.Policy(nil), s.prefs...)
}

// Name returns the source name.
func (s *Source) Name() string { return s.cfg.Name }

// buildSummary folds every table and document into one structural summary.
func (s *Source) buildSummary() *xmltree.Summary {
	sum := xmltree.NewSummary()
	if s.cfg.Catalog != nil {
		for _, name := range s.cfg.Catalog.Names() {
			tab, err := s.cfg.Catalog.Table(name)
			if err != nil {
				continue
			}
			sum.Merge(relational.TableSummary(tab))
		}
	}
	for _, d := range s.cfg.Docs {
		sum.AddDocument(d)
	}
	return sum
}

// Summary returns the structural summary the source is willing to share:
// the full summary with every path covered by the privacy view removed.
// This is the "partial schema" of Figure 2 — the reason the mediated
// schema "may not contain sufficient information to formulate exact
// queries".
func (s *Source) Summary() *xmltree.Summary {
	if s.cfg.View == nil {
		return s.summary.Redact(func(string) bool { return false })
	}
	return s.summary.Redact(func(p string) bool {
		_, private := s.cfg.View.Covers(p)
		return private
	})
}

// Profiles returns shareable field profiles for schema matching: one per
// non-private leaf path, profiled over that field's values.
func (s *Source) Profiles() []schemamatch.FieldProfile {
	shared := s.Summary()
	var out []schemamatch.FieldProfile
	for _, name := range shared.LeafNames() {
		out = append(out, schemamatch.ProfileValues(name, s.fieldValues(name, 200)))
	}
	return out
}

// fieldValues samples up to limit values of a leaf field across stores.
func (s *Source) fieldValues(name string, limit int) []string {
	var out []string
	if s.cfg.Catalog != nil {
		for _, tn := range s.cfg.Catalog.Names() {
			tab, err := s.cfg.Catalog.Table(tn)
			if err != nil || tab.Schema().Index(name) < 0 {
				continue
			}
			for i, row := range tab.Rows() {
				if i >= limit || len(out) >= limit {
					break
				}
				out = append(out, row[tab.Schema().Index(name)].String())
			}
		}
	}
	pat, err := xmltree.CompilePattern("//" + name)
	if err == nil {
		for _, d := range s.cfg.Docs {
			if len(out) >= limit {
				break
			}
			for _, n := range pat.SelectNodes(d) {
				if len(out) >= limit {
					break
				}
				out = append(out, n.Text)
			}
		}
	}
	return out
}

// ParseCached parses PIQL text through the source's plan cache (a
// direct parse when caching is disabled). The returned query is shared
// between cache hits and must be treated as immutable — parsed queries
// are never mutated after Parse, so this is safe by construction.
func (s *Source) ParseCached(text string) (*piql.Query, error) {
	key := "parse\x00" + qcache.Normalize(text)
	if v, ok := s.plans.Get(key); ok {
		return v.(*piql.Query), nil
	}
	q, err := piql.Parse(strings.TrimSpace(text))
	if err != nil {
		return nil, err // parse errors are cheap to re-produce; never cached
	}
	s.plans.Put(key, q)
	return q, nil
}

// PlanCacheStats exposes the parse/plan cache counters (zeroes when
// caching is disabled).
func (s *Source) PlanCacheStats() (hits, misses uint64, size int) {
	h, m := s.plans.Stats()
	return h, m, s.plans.Len()
}

// planFor runs the pure planning prefix of the pipeline — rewriting,
// cluster matching, optimization — through the plan cache. The key
// includes the requester because rewriting is requester-specific; the
// cache is purged whenever a preference lands (AddPreference). Planning
// errors and full denials are recomputed every time: they are rare, and
// caching only successes keeps the entry type simple.
func (s *Source) planFor(q *piql.Query, requester string) (*planEntry, error) {
	key := "plan\x00" + requester + "\x00" + qcache.Normalize(q.String())
	if v, ok := s.plans.Get(key); ok {
		return v.(*planEntry), nil
	}

	// 1. Privacy-preserving query rewriting against policies + ACLs.
	rw := &rewrite.Rewriter{
		Policies: append([]*policy.Policy{s.cfg.Policy}, s.Preferences()...),
		Purposes: s.cfg.Purposes,
		Access:   s.cfg.Access,
		Paths:    summaryPaths(s.summary),
		Resolver: s.resolver,
	}
	outcome, err := rw.Rewrite(q, requester)
	if err != nil {
		return nil, err
	}
	if outcome.FullyDenied() {
		return nil, fmt.Errorf("source %s: query fully denied: %s", s.cfg.Name, denialReason(outcome))
	}
	rq := outcome.Query

	// 2. Cluster matching: predict the breach class from query features
	// alone and pick the preservation technique.
	cl, _, err := s.cfg.ClusterKB.Map(rq)
	if err != nil {
		return nil, fmt.Errorf("source %s: cluster matching: %w", s.cfg.Name, err)
	}
	technique := s.cfg.Registry.For(cl.Breach)

	// 3. Loss computation + privacy-conscious optimization; the budget
	// from rewriting caps what preservation may destroy, and execution is
	// refused outright when they cannot meet.
	plan, err := optimizer.Optimize(rq, technique, optimizer.Stats{Rows: s.rowEstimate(rq)}, outcome.Budget)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.cfg.Name, err)
	}

	entry := &planEntry{outcome: outcome, breach: cl.Breach, technique: technique, plan: plan}
	s.plans.Put(key, entry)
	return entry, nil
}

// Execute runs the full pipeline of Figure 2(a) on one query fragment.
// The planning prefix (rewrite → cluster match → optimize) may come
// from the plan cache; everything stateful — sequence auditing,
// execution, preservation, loss accounting — runs unconditionally.
func (s *Source) Execute(q *piql.Query, requester string) (*Answer, error) {
	t0 := time.Now()
	trace := s.obs.startTrace(requester, q)
	ans, err := s.executeStages(q, requester, trace)
	s.obs.finish(trace, t0, err)
	return ans, err
}

// ExecuteContext is Execute behind the admission gate: the request is
// rate-limited per requester, counted against the adaptive concurrency
// limit, and queued only while the estimated wait fits the context's
// remaining deadline. Without an Admission config it is exactly
// Execute. The context bounds only the wait for admission — the
// pipeline itself is synchronous CPU work and runs to completion once
// admitted (its duration feeds the AIMD limit).
func (s *Source) ExecuteContext(ctx context.Context, q *piql.Query, requester string) (*Answer, error) {
	if s.admit == nil {
		return s.Execute(q, requester)
	}
	grant, err := s.admit.Acquire(ctx, requester)
	if err != nil {
		var sh *admission.ShedError
		if errors.As(err, &sh) {
			sh.Scope = "source " + s.cfg.Name
			s.obs.shed(requester, q, sh)
		}
		return nil, err
	}
	ans, err := s.Execute(q, requester)
	grant.Release(err)
	return ans, err
}

// AdmissionStats snapshots the admission controller (zero when the
// source runs ungated), for experiments and tests.
func (s *Source) AdmissionStats() admission.Stats { return s.admit.Stats() }

// executeStages is the pipeline body, with one span per stage.
func (s *Source) executeStages(q *piql.Query, requester string, trace *obs.Trace) (*Answer, error) {
	ts := s.obs.now()
	entry, err := s.planFor(q, requester)
	s.obs.stage(trace, "plan", ts, spanOutcome(err))
	if err != nil {
		return nil, err
	}
	outcome, technique := entry.outcome, entry.technique
	rq := outcome.Query

	// 4. Sequence auditing for aggregate queries. The check and the
	// commit are one atomic step: two concurrent queries for the same
	// requester must not both pass the check before either records.
	if s.cfg.Audit != nil && rq.IsAggregate() {
		set, ok := s.contextIndexSet(rq)
		if ok && len(set) > 0 {
			ts = s.obs.now()
			err := s.cfg.Audit.For(requester).CheckAndCommit(set)
			s.obs.stage(trace, "audit", ts, spanOutcome(err))
			if err != nil {
				return nil, fmt.Errorf("source %s: %w", s.cfg.Name, err)
			}
		}
	}

	// 5. Execution: native relational when transformable, XML evaluation
	// otherwise.
	ts = s.obs.now()
	raw, err := s.executeRaw(rq)
	s.obs.stage(trace, "execute", ts, spanOutcome(err))
	if err != nil {
		return nil, fmt.Errorf("source %s: execute: %w", s.cfg.Name, err)
	}

	// 6. Privacy preservation on the results.
	ts = s.obs.now()
	preserved, err := technique.Apply(raw, s.rng)
	s.obs.stage(trace, "preserve", ts, spanOutcome(err))
	if err != nil {
		return nil, fmt.Errorf("source %s: preservation: %w", s.cfg.Name, err)
	}

	// 7. XML transformation + metadata tagging.
	ans := &Answer{
		Result:        preserved,
		Breach:        entry.breach,
		Technique:     technique.Name(),
		Plan:          entry.plan,
		Rewrite:       outcome,
		EstimatedLoss: estimateLoss(raw, preserved),
	}
	ans.Node = s.tag(ans)
	return ans, nil
}

// executeRaw runs the rewritten query against local stores.
func (s *Source) executeRaw(q *piql.Query) (*piql.Result, error) {
	if s.cfg.Catalog != nil {
		if rq, ok := TransformToRelational(q, s.cfg.Catalog, s.resolver); ok {
			res, err := rq.Execute(s.cfg.Catalog)
			if err != nil {
				return nil, err
			}
			return ResultToPIQL(res), nil
		}
	}
	merged := &piql.Result{}
	opts := piql.EvalOptions{Resolver: s.resolver}
	docs := s.cfg.Docs
	if len(docs) == 0 && s.cfg.Catalog != nil {
		// Relational-only source answering a non-transformable query:
		// evaluate PIQL over the XML projection of each table.
		for _, name := range s.cfg.Catalog.Names() {
			tab, err := s.cfg.Catalog.Table(name)
			if err != nil {
				continue
			}
			docs = append(docs, relational.TableToXML(tab))
		}
	}
	for _, d := range docs {
		res, err := q.Evaluate(d, opts)
		if err != nil {
			return nil, err
		}
		if merged.Columns == nil {
			merged.Columns = res.Columns
		}
		merged.Rows = append(merged.Rows, res.Rows...)
	}
	if merged.Columns == nil {
		merged.Columns = []string{}
	}
	return merged, nil
}

// rowEstimate counts candidate context rows for the optimizer.
func (s *Source) rowEstimate(q *piql.Query) int {
	n := 0
	if s.cfg.Catalog != nil {
		for _, name := range s.cfg.Catalog.Names() {
			if tab, err := s.cfg.Catalog.Table(name); err == nil {
				n += tab.Len()
			}
		}
	}
	for _, d := range s.cfg.Docs {
		n += len(d.Children)
	}
	if n == 0 {
		n = 1
	}
	return n
}

// contextIndexSet computes which row indices an aggregate query touches,
// for the sequence auditor. Only relational-transformable queries get
// exact sets; others return ok=false (audited conservatively elsewhere).
func (s *Source) contextIndexSet(q *piql.Query) ([]int, bool) {
	if s.cfg.Catalog == nil {
		return nil, false
	}
	rq, ok := TransformToRelational(q, s.cfg.Catalog, s.resolver)
	if !ok {
		return nil, false
	}
	tab, err := s.cfg.Catalog.Table(rq.From)
	if err != nil {
		return nil, false
	}
	var set []int
	schema := tab.Schema()
	for i, row := range tab.Rows() {
		if rq.Where == nil {
			set = append(set, i)
			continue
		}
		v, err := rq.Where.Eval(schema, row)
		if err != nil {
			return nil, false
		}
		if !v.IsNull && v.Kind == relational.TBool && v.B {
			set = append(set, i)
		}
	}
	return set, true
}

// tag is the Metadata Tagger: it annotates the XML answer with the
// privacy metadata the mediator needs for its second-level checks.
func (s *Source) tag(a *Answer) *xmltree.Node {
	root := xmltree.NewElem("answer").
		SetAttr("source", s.cfg.Name).
		SetAttr("breach", a.Breach.String()).
		SetAttr("technique", a.Technique).
		SetAttr("budget", strconv.FormatFloat(a.Rewrite.Budget, 'g', -1, 64)).
		SetAttr("estloss", strconv.FormatFloat(a.EstimatedLoss, 'g', -1, 64))
	for _, d := range a.Rewrite.DroppedReturns {
		root.Append(xmltree.NewText("dropped", d.What).SetAttr("reason", d.Reason))
	}
	root.Append(a.Result.ToNode())
	return root
}

// estimateLoss is the post-hoc information-loss measure shipped with the
// answer. Cells the preservation removed entirely (dropped column,
// suppressed row, or masked to "*") count as fully lost; cells that were
// merely coarsened (generalized, rounded, perturbed) count half — the
// requester still learns the band, just not the point value.
func estimateLoss(before, after *piql.Result) float64 {
	if len(before.Rows) == 0 || len(before.Columns) == 0 {
		return 0
	}
	afterCol := map[string]int{}
	for i, c := range after.Columns {
		afterCol[c] = i
	}
	var lost float64
	total := float64(len(before.Rows) * len(before.Columns))
	for r, row := range before.Rows {
		for c, name := range before.Columns {
			j, ok := afterCol[name]
			if !ok || r >= len(after.Rows) {
				lost++
				continue
			}
			switch got := after.Rows[r][j]; {
			case got == row[c]:
				// intact
			case got == "*" || got == "":
				lost++
			default:
				lost += 0.5
			}
		}
	}
	return lost / total
}

func summaryPaths(sum *xmltree.Summary) []string {
	infos := sum.Paths()
	out := make([]string, len(infos))
	for i, p := range infos {
		out[i] = p.Path
	}
	return out
}

func denialReason(o *rewrite.Outcome) string {
	var parts []string
	for _, d := range o.DroppedReturns {
		parts = append(parts, d.What+": "+d.Reason)
	}
	if len(parts) == 0 {
		return "no return item allowed"
	}
	return strings.Join(parts, "; ")
}
