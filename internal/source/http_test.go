package source

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/refusal"
)

func TestHTTPErrorRetryClassification(t *testing.T) {
	cases := []struct {
		status    int
		retryable bool
		shed      bool
	}{
		{http.StatusInternalServerError, true, false},
		{http.StatusBadGateway, true, false},
		{http.StatusServiceUnavailable, true, true},
		{http.StatusTooManyRequests, true, true},
		// 501 is permanent: the node will not grow the endpoint
		// between attempts.
		{http.StatusNotImplemented, false, false},
		{http.StatusForbidden, false, false},
		{http.StatusBadRequest, false, false},
	}
	for _, c := range cases {
		e := &HTTPError{Source: "s", Status: c.status}
		if e.Retryable() != c.retryable {
			t.Errorf("status %d: Retryable = %v, want %v", c.status, e.Retryable(), c.retryable)
		}
		if e.Shed() != c.shed {
			t.Errorf("status %d: Shed = %v, want %v", c.status, e.Shed(), c.shed)
		}
	}
}

func TestHTTPErrorRetryAfterHint(t *testing.T) {
	e := &HTTPError{Status: 429, RetryAfter: 2 * time.Second}
	if hint, ok := e.RetryAfterHint(); !ok || hint != 2*time.Second {
		t.Fatalf("hint = %v %v", hint, ok)
	}
	if _, ok := (&HTTPError{Status: 429}).RetryAfterHint(); ok {
		t.Fatal("absent header must yield no hint")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{" 10 ", 10 * time.Second},
		{"-1", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0}, // HTTP-date form unsupported
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClientSurfacesRetryAfterAndShed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "mediator: overloaded: queue full", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, "busy")
	_, err := c.Query(context.Background(), "FOR $p IN //x RETURN $p", "alice")
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want HTTPError", err)
	}
	if he.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v", he.RetryAfter)
	}
	if !he.Shed() || !he.Retryable() {
		t.Fatalf("503 should read as a retryable shed: %+v", he)
	}
	// The shed reason survives the wire: only the message crossed.
	if got := refusal.Classify(err); got != refusal.Overloaded {
		t.Fatalf("Classify = %v", got)
	}
}

func TestWriteShed(t *testing.T) {
	rec := httptest.NewRecorder()
	sh := &admission.ShedError{Reason: refusal.RateLimited, Requester: "alice", RetryAfter: 1500 * time.Millisecond}
	if !WriteShed(rec, sh) {
		t.Fatal("shed not recognized")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" { // 1.5s rounds up
		t.Fatalf("Retry-After = %q", got)
	}
	// Non-shed errors are left alone.
	if WriteShed(httptest.NewRecorder(), errors.New("policy denial")) {
		t.Fatal("plain error treated as shed")
	}
}
