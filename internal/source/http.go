package source

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/linkage"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/psi"
	"privateiye/internal/schemamatch"
	"privateiye/internal/xmltree"
)

// The HTTP transport makes a source a standalone node (cmd/piye-source).
// Every payload is the same XML that flows in-process, so the mediator
// treats local and remote sources identically.

// NewHandler exposes a Local endpoint over HTTP. Handlers pass the
// request context down, so a client that gives up (or a server shutdown
// drain) cancels the work.
func NewHandler(l *Local) http.Handler {
	mux := http.NewServeMux()

	writeNode := func(w http.ResponseWriter, n *xmltree.Node) {
		w.Header().Set("Content-Type", "application/xml")
		if err := n.Encode(w); err != nil {
			// Headers are already sent; nothing more to do.
			return
		}
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		http.Error(w, err.Error(), code)
	}

	mux.HandleFunc("GET /summary", func(w http.ResponseWriter, r *http.Request) {
		sum, err := l.FetchSummary(r.Context())
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, sum.ToNode())
	})

	mux.HandleFunc("GET /profiles", func(w http.ResponseWriter, r *http.Request) {
		ps, err := l.FetchProfiles(r.Context())
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, schemamatch.ProfilesToNode(ps))
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		requester := r.Header.Get("X-Requester")
		if requester == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing X-Requester header"))
			return
		}
		node, err := l.Query(r.Context(), string(body), requester)
		if err != nil {
			// Admission sheds are 429/503 with Retry-After — the caller
			// should back off, not conclude it was forbidden.
			if WriteShed(w, err) {
				return
			}
			// Policy denials and audit refusals are forbidden, not broken.
			fail(w, http.StatusForbidden, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("POST /preferences", func(w http.ResponseWriter, r *http.Request) {
		node, err := readNode(r.Body)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		pol, err := policy.PolicyFromNode(node)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		if err := l.Src.AddPreference(pol); err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /psi/suites", func(w http.ResponseWriter, r *http.Request) {
		suites, err := l.PSISuites(r.Context())
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, suitesToNode(suites))
	})

	mux.HandleFunc("GET /psi/blinded", func(w http.ResponseWriter, r *http.Request) {
		field := r.URL.Query().Get("field")
		if field == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing field"))
			return
		}
		node, err := l.PSIBlinded(r.Context(), field, r.URL.Query().Get("suite"))
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("POST /psi/exponentiate", func(w http.ResponseWriter, r *http.Request) {
		in, err := readNode(r.Body)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		node, err := l.PSIExponentiate(r.Context(), in)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("GET /linkage/records", func(w http.ResponseWriter, r *http.Request) {
		field := r.URL.Query().Get("field")
		if field == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing field"))
			return
		}
		recs, err := l.LinkageRecords(r.Context(), field)
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, linkage.RecordsToNode(recs, linkageM))
	})

	// Liveness/readiness: a constructed Local has finished loading its
	// data and replaying any audit WAL, so reachable = ready.
	obs.AttachHealth(mux, nil)

	// /metrics and /debug/trace, when the source was built with a
	// registry or tracer.
	reg, tracer := l.Src.Observability()
	obs.Attach(mux, reg, tracer)

	return mux
}

func readNode(r io.Reader) (*xmltree.Node, error) {
	return xmltree.Parse(io.LimitReader(r, 16<<20))
}

// WriteShed writes a load-shed error as 429/503 with a Retry-After
// header and reports whether it did. Non-shed errors are left to the
// caller's normal error mapping. Shared by the source and mediator
// handlers so both daemons speak the same overload dialect.
func WriteShed(w http.ResponseWriter, err error) bool {
	var sh *admission.ShedError
	if !errors.As(err, &sh) {
		return false
	}
	secs := int(math.Ceil(sh.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, err.Error(), sh.HTTPStatus())
	return true
}

// parseRetryAfter reads a Retry-After header's delay-seconds form (the
// form this repo emits; the HTTP-date form is ignored).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// defaultTransport backs every default client. The stock
// http.DefaultTransport keeps only 2 idle connections per host
// (DefaultMaxIdleConnsPerHost), so a mediator fanning a query stream out
// to a handful of source nodes re-dials almost every call; under load
// that is a three-way handshake (and TLS, when terminated upstream) on
// the hot path. Raising the per-host idle pool to the mediator's
// realistic concurrency reuses connections instead.
var defaultTransport = newTunedTransport()

func newTunedTransport() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		t = &http.Transport{}
	}
	t = t.Clone() // keep proxy/dialer defaults; never mutate the global
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 32
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// defaultHTTPClient backs every Client whose HTTP field is nil. It has a
// generous overall timeout as a last line of defence; per-call deadlines
// come from the caller's context (the mediator's per-source deadline).
var defaultHTTPClient = &http.Client{
	Timeout:   30 * time.Second,
	Transport: defaultTransport,
}

// HTTPError is a non-200 response from a source node. It implements the
// optional Retryable interface the resilience layer looks for: server
// errors and throttling are transient, everything else (policy denials,
// bad requests, unimplemented endpoints) is permanent and must not be
// retried.
type HTTPError struct {
	Source string
	Status int
	Msg    string
	// RetryAfter is the server's Retry-After hint on 429/503 responses
	// (zero when the header was absent or unparsable).
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("source %s: %d %s: %s", e.Source, e.Status, http.StatusText(e.Status), e.Msg)
}

// Retryable reports whether retrying the call could help. 501 Not
// Implemented is permanent: the node will not grow the endpoint between
// attempts.
func (e *HTTPError) Retryable() bool {
	return (e.Status >= 500 && e.Status != http.StatusNotImplemented) ||
		e.Status == http.StatusTooManyRequests
}

// Shed reports whether the response was load shedding (throttling or
// saturation) rather than a failure: the circuit breaker ignores sheds,
// because a node answering 429/503 promptly is alive, not down.
func (e *HTTPError) Shed() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryAfterHint implements the resilience layer's pacing interface:
// the retry loop never sleeps less than the server asked for.
func (e *HTTPError) RetryAfterHint() (time.Duration, bool) {
	if e.RetryAfter > 0 {
		return e.RetryAfter, true
	}
	return 0, false
}

// Client is an Endpoint over HTTP.
type Client struct {
	// BaseURL is the source node's address, e.g. http://localhost:7101.
	BaseURL string
	// SourceName is the remote source's declared name.
	SourceName string
	// HTTP is the underlying client; a default with a 30s timeout is
	// used when nil.
	HTTP *http.Client
}

// NewClient returns a client endpoint.
func NewClient(baseURL, sourceName string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		SourceName: sourceName,
		HTTP:       defaultHTTPClient,
	}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.SourceName }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) getNode(ctx context.Context, path string) (*xmltree.Node, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

func (c *Client) postNode(ctx context.Context, path, contentType string, body string) (*xmltree.Node, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.do(req)
}

func (c *Client) do(req *http.Request) (*xmltree.Node, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Surface a context deadline/cancellation undecorated so the
		// mediator can classify the denial as a timeout.
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return nil, fmt.Errorf("source %s: %w", c.SourceName, ctxErr)
		}
		return nil, fmt.Errorf("source %s: %w", c.SourceName, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &HTTPError{
			Source:     c.SourceName,
			Status:     resp.StatusCode,
			Msg:        strings.TrimSpace(string(msg)),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return readNode(resp.Body)
}

// FetchSummary implements Endpoint.
func (c *Client) FetchSummary(ctx context.Context) (*xmltree.Summary, error) {
	n, err := c.getNode(ctx, "/summary")
	if err != nil {
		return nil, err
	}
	return xmltree.SummaryFromNode(n), nil
}

// FetchProfiles implements Endpoint.
func (c *Client) FetchProfiles(ctx context.Context) ([]schemamatch.FieldProfile, error) {
	n, err := c.getNode(ctx, "/profiles")
	if err != nil {
		return nil, err
	}
	return schemamatch.ProfilesFromNode(n)
}

// Query implements Endpoint.
func (c *Client) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/query", strings.NewReader(piqlText))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Requester", requester)
	return c.do(req)
}

// suitesToNode encodes a suite advertisement:
//
//	<psi-suites><s>p256</s><s>modp2048</s></psi-suites>
func suitesToNode(suites []string) *xmltree.Node {
	root := xmltree.NewElem("psi-suites")
	for _, s := range suites {
		root.Append(xmltree.NewText("s", s))
	}
	return root
}

// suitesFromNode decodes a suite advertisement.
func suitesFromNode(n *xmltree.Node) ([]string, error) {
	if n.Name != "psi-suites" {
		return nil, fmt.Errorf("source: expected <psi-suites>, got <%s>", n.Name)
	}
	var out []string
	for _, c := range n.ChildrenNamed("s") {
		if c.Text != "" {
			out = append(out, c.Text)
		}
	}
	return out, nil
}

// PSISuites implements Endpoint. Nodes predating suite negotiation have
// no /psi/suites route; their 404/405/501 answers mean "MODP-2048
// only", the suite every deployment supported before negotiation
// existed — the fail-closed floor, not an error.
func (c *Client) PSISuites(ctx context.Context) ([]string, error) {
	n, err := c.getNode(ctx, "/psi/suites")
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) {
			switch he.Status {
			case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
				return []string{psi.SuiteNameModP2048}, nil
			}
		}
		return nil, err
	}
	return suitesFromNode(n)
}

// PSIBlinded implements Endpoint.
func (c *Client) PSIBlinded(ctx context.Context, field, suite string) (*xmltree.Node, error) {
	path := "/psi/blinded?field=" + url.QueryEscape(field)
	if suite != "" {
		path += "&suite=" + url.QueryEscape(suite)
	}
	return c.getNode(ctx, path)
}

// PSIExponentiate implements Endpoint.
func (c *Client) PSIExponentiate(ctx context.Context, elems *xmltree.Node) (*xmltree.Node, error) {
	return c.postNode(ctx, "/psi/exponentiate", "application/xml", elems.String())
}

// LinkageRecords implements Endpoint.
func (c *Client) LinkageRecords(ctx context.Context, field string) ([]linkage.EncodedRecord, error) {
	n, err := c.getNode(ctx, "/linkage/records?field="+url.QueryEscape(field))
	if err != nil {
		return nil, err
	}
	return linkage.RecordsFromNode(n)
}

// Interface checks.
var (
	_ Endpoint = (*Local)(nil)
	_ Endpoint = (*Client)(nil)
)
