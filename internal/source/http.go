package source

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"privateiye/internal/linkage"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/schemamatch"
	"privateiye/internal/xmltree"
)

// The HTTP transport makes a source a standalone node (cmd/piye-source).
// Every payload is the same XML that flows in-process, so the mediator
// treats local and remote sources identically.

func parsePIQL(text string) (*piql.Query, error) {
	q, err := piql.Parse(strings.TrimSpace(text))
	if err != nil {
		return nil, fmt.Errorf("source: bad query: %w", err)
	}
	return q, nil
}

// NewHandler exposes a Local endpoint over HTTP.
func NewHandler(l *Local) http.Handler {
	mux := http.NewServeMux()

	writeNode := func(w http.ResponseWriter, n *xmltree.Node) {
		w.Header().Set("Content-Type", "application/xml")
		if err := n.Encode(w); err != nil {
			// Headers are already sent; nothing more to do.
			return
		}
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		http.Error(w, err.Error(), code)
	}

	mux.HandleFunc("GET /summary", func(w http.ResponseWriter, r *http.Request) {
		sum, err := l.FetchSummary()
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, sum.ToNode())
	})

	mux.HandleFunc("GET /profiles", func(w http.ResponseWriter, r *http.Request) {
		ps, err := l.FetchProfiles()
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, schemamatch.ProfilesToNode(ps))
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		requester := r.Header.Get("X-Requester")
		if requester == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing X-Requester header"))
			return
		}
		node, err := l.Query(string(body), requester)
		if err != nil {
			// Policy denials and audit refusals are forbidden, not broken.
			fail(w, http.StatusForbidden, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("POST /preferences", func(w http.ResponseWriter, r *http.Request) {
		node, err := readNode(r.Body)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		pol, err := policy.PolicyFromNode(node)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		if err := l.Src.AddPreference(pol); err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /psi/blinded", func(w http.ResponseWriter, r *http.Request) {
		field := r.URL.Query().Get("field")
		if field == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing field"))
			return
		}
		node, err := l.PSIBlinded(field)
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("POST /psi/exponentiate", func(w http.ResponseWriter, r *http.Request) {
		in, err := readNode(r.Body)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		node, err := l.PSIExponentiate(in)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		writeNode(w, node)
	})

	mux.HandleFunc("GET /linkage/records", func(w http.ResponseWriter, r *http.Request) {
		field := r.URL.Query().Get("field")
		if field == "" {
			fail(w, http.StatusBadRequest, fmt.Errorf("source: missing field"))
			return
		}
		recs, err := l.LinkageRecords(field)
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeNode(w, linkage.RecordsToNode(recs, linkageM))
	})

	return mux
}

func readNode(r io.Reader) (*xmltree.Node, error) {
	return xmltree.Parse(io.LimitReader(r, 16<<20))
}

// Client is an Endpoint over HTTP.
type Client struct {
	// BaseURL is the source node's address, e.g. http://localhost:7101.
	BaseURL string
	// SourceName is the remote source's declared name.
	SourceName string
	// HTTP is the underlying client; a default with timeouts is used when
	// nil.
	HTTP *http.Client
}

// NewClient returns a client endpoint.
func NewClient(baseURL, sourceName string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		SourceName: sourceName,
		HTTP:       &http.Client{Timeout: 30 * time.Second},
	}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.SourceName }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) getNode(path string) (*xmltree.Node, error) {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", c.SourceName, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("source %s: %s: %s", c.SourceName, resp.Status, strings.TrimSpace(string(msg)))
	}
	return readNode(resp.Body)
}

func (c *Client) postNode(path, contentType string, body string) (*xmltree.Node, error) {
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.do(req)
}

func (c *Client) do(req *http.Request) (*xmltree.Node, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", c.SourceName, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("source %s: %s: %s", c.SourceName, resp.Status, strings.TrimSpace(string(msg)))
	}
	return readNode(resp.Body)
}

// FetchSummary implements Endpoint.
func (c *Client) FetchSummary() (*xmltree.Summary, error) {
	n, err := c.getNode("/summary")
	if err != nil {
		return nil, err
	}
	return xmltree.SummaryFromNode(n), nil
}

// FetchProfiles implements Endpoint.
func (c *Client) FetchProfiles() ([]schemamatch.FieldProfile, error) {
	n, err := c.getNode("/profiles")
	if err != nil {
		return nil, err
	}
	return schemamatch.ProfilesFromNode(n)
}

// Query implements Endpoint.
func (c *Client) Query(piqlText, requester string) (*xmltree.Node, error) {
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/query", strings.NewReader(piqlText))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Requester", requester)
	return c.do(req)
}

// PSIBlinded implements Endpoint.
func (c *Client) PSIBlinded(field string) (*xmltree.Node, error) {
	return c.getNode("/psi/blinded?field=" + field)
}

// PSIExponentiate implements Endpoint.
func (c *Client) PSIExponentiate(elems *xmltree.Node) (*xmltree.Node, error) {
	return c.postNode("/psi/exponentiate", "application/xml", elems.String())
}

// LinkageRecords implements Endpoint.
func (c *Client) LinkageRecords(field string) ([]linkage.EncodedRecord, error) {
	n, err := c.getNode("/linkage/records?field=" + field)
	if err != nil {
		return nil, err
	}
	return linkage.RecordsFromNode(n)
}

// Interface checks.
var (
	_ Endpoint = (*Local)(nil)
	_ Endpoint = (*Client)(nil)
)
