package source

// Observability hooks for the source pipeline. All handles resolve once
// at construction; a source built without a Registry or Tracer carries a
// nil *srcObs whose methods are no-ops, so Execute's instrumentation is
// unconditional and the uninstrumented hot path pays one nil check per
// stage.

import (
	"time"

	"privateiye/internal/obs"
	"privateiye/internal/piql"
	"privateiye/internal/refusal"
)

// sourceStages are the per-stage span and histogram names of the
// Figure 2(a) pipeline: plan covers rewrite → cluster match → optimize
// (possibly served by the plan cache), audit the sequence controls,
// execute the local evaluation, preserve the mitigation + tagging.
var sourceStages = []string{"plan", "audit", "execute", "preserve"}

// srcObs holds one source's pre-resolved metric handles.
type srcObs struct {
	tracer *obs.Tracer

	answered *obs.Counter
	refused  *obs.Counter
	shedded  *obs.Counter
	latency  *obs.Histogram
	refusals map[refusal.Reason]*obs.Counter
	stages   map[string]*obs.Histogram
}

func newSrcObs(name string, reg *obs.Registry, tracer *obs.Tracer) *srcObs {
	if reg == nil && tracer == nil {
		return nil
	}
	reg.Help("piye_source_queries_total", "Queries executed by this source, by outcome.")
	reg.Help("piye_source_refusals_total", "Queries this source refused, by normalized reason.")
	reg.Help("piye_source_query_seconds", "Full pipeline latency per query at this source.")
	reg.Help("piye_source_stage_seconds", "Per-stage latency of the source pipeline.")
	o := &srcObs{
		tracer:   tracer,
		answered: reg.Counter("piye_source_queries_total", "source", name, "outcome", "answered"),
		refused:  reg.Counter("piye_source_queries_total", "source", name, "outcome", "refused"),
		shedded:  reg.Counter("piye_source_queries_total", "source", name, "outcome", "shed"),
		latency:  reg.Histogram("piye_source_query_seconds", nil, "source", name),
		refusals: map[refusal.Reason]*obs.Counter{},
		stages:   map[string]*obs.Histogram{},
	}
	// Pre-register every refusal reason so /metrics shows zero counts
	// instead of absent series.
	for _, rs := range refusal.All() {
		o.refusals[rs] = reg.Counter("piye_source_refusals_total", "source", name, "reason", rs.String())
	}
	for _, st := range sourceStages {
		o.stages[st] = reg.Histogram("piye_source_stage_seconds", nil, "source", name, "stage", st)
	}
	return o
}

// startTrace begins a per-query trace (nil when tracing is disabled;
// a nil *obs.Trace is valid everywhere downstream).
func (o *srcObs) startTrace(requester string, q *piql.Query) *obs.Trace {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.Start(requester, q.String())
}

// now returns the stage start time (zero when observability is off, so
// uninstrumented sources skip even the clock read).
func (o *srcObs) now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// stage records one finished pipeline stage: the stage histogram and the
// trace span, off a single clock read. A direct method rather than a
// returned closure: closures capturing the stage state escape to the
// heap, and the plan stage sits on the cached-query hot path.
func (o *srcObs) stage(trace *obs.Trace, name string, t0 time.Time, outcome string) {
	if o == nil {
		return
	}
	d := time.Since(t0)
	o.stages[name].Observe(d.Seconds())
	trace.Record(name, "", t0, d, outcome)
}

// finish closes the query: outcome counters, total latency, and the
// trace's overall outcome.
func (o *srcObs) finish(trace *obs.Trace, t0 time.Time, err error) {
	if o == nil {
		return
	}
	o.latency.Observe(time.Since(t0).Seconds())
	if err == nil {
		o.answered.Inc()
		trace.Finish(obs.OutcomeAnswered)
		return
	}
	reason := refusal.Classify(err)
	o.refused.Inc()
	o.refusals[reason].Inc()
	trace.Finish(obs.RefusedOutcome(reason.String()))
}

// shed records a load shed at the admission gate. The query never
// entered the pipeline, but the outcome must still be visible — and
// distinguishable from privacy refusals — in both metrics (its own
// outcome label, plus the overloaded/ratelimited reason series) and
// traces.
func (o *srcObs) shed(requester string, q *piql.Query, err error) {
	if o == nil {
		return
	}
	reason := refusal.Classify(err)
	o.shedded.Inc()
	o.refusals[reason].Inc()
	if o.tracer != nil {
		o.tracer.Start(requester, q.String()).Finish(obs.RefusedOutcome(reason.String()))
	}
}

// spanOutcome renders a stage error as a span outcome, reusing the
// refusal vocabulary so spans and refusal counters tell the same story.
func spanOutcome(err error) string {
	if err == nil {
		return obs.OutcomeAnswered
	}
	return obs.RefusedOutcome(refusal.Classify(err).String())
}
