// Package source implements the remote-source side of PRIVATE-IYE: the
// entire privacy-preserving query processing framework of Figure 2(a).
// A Source owns local data (relational tables and XML documents), its
// privacy policies, views and access rules, and runs the paper's pipeline
// on every incoming query fragment:
//
//	Query Transformer -> Query Rewriter -> Cluster Matching ->
//	Loss Computation -> Query Optimization -> execution ->
//	Privacy Preservation -> XML Transformer -> Metadata Tagger
//
// plus the sequence auditor guarding aggregate query histories.
package source

import (
	"strconv"
	"strings"

	"privateiye/internal/piql"
	"privateiye/internal/relational"
)

// TransformToRelational is the Query Transformer for relational
// destinations (Section 4: "if an RDBMS is being queried, then it
// generates SQL"). It compiles a PIQL fragment into a relational query
// when the fragment targets a table in the catalog — FOR //<table>/row or
// //<table>//row — and every construct has a relational equivalent.
// The bool result reports success; on false the caller falls back to the
// XML evaluator, which handles everything.
//
// The resolver implements approximate tag matching during transformation:
// a PIQL path naming //dateOfBirth compiles to the table's dob column.
func TransformToRelational(q *piql.Query, cat *relational.Catalog, resolver piql.Resolver) (*relational.Query, bool) {
	tableName, ok := forTable(q, cat)
	if !ok {
		return nil, false
	}
	tab, err := cat.Table(tableName)
	if err != nil {
		return nil, false
	}
	schema := tab.Schema()

	resolveCol := func(p interface{ LastStep() string }) (string, bool) {
		name := p.LastStep()
		if name == "*" {
			return "", false
		}
		if schema.Index(name) >= 0 {
			return name, true
		}
		if resolver != nil {
			for _, alt := range resolver(name) {
				if schema.Index(alt) >= 0 {
					return alt, true
				}
			}
		}
		return "", false
	}

	rq := &relational.Query{From: tableName}

	if q.Where != nil {
		expr, ok := condToExpr(q.Where, schema, resolveCol)
		if !ok {
			return nil, false
		}
		rq.Where = expr
	}

	for _, g := range q.GroupBy {
		col, ok := resolveCol(g)
		if !ok {
			return nil, false
		}
		rq.GroupBy = append(rq.GroupBy, col)
	}

	for _, ri := range q.Return {
		if ri.Agg == piql.AggNone {
			col, ok := resolveCol(ri.Path)
			if !ok {
				return nil, false
			}
			rq.Select = append(rq.Select, col)
			continue
		}
		var fn relational.AggFunc
		switch ri.Agg {
		case piql.AggCount:
			fn = relational.Count
		case piql.AggSum:
			fn = relational.Sum
		case piql.AggAvg:
			fn = relational.Avg
		case piql.AggMin:
			fn = relational.Min
		case piql.AggMax:
			fn = relational.Max
		case piql.AggStdDev:
			fn = relational.StdDev
		default:
			return nil, false
		}
		agg := relational.Aggregate{Func: fn, As: ri.Name()}
		if ri.Path != nil {
			col, ok := resolveCol(ri.Path)
			if !ok {
				return nil, false
			}
			agg.Col = col
		} else if fn != relational.Count {
			return nil, false
		}
		rq.Aggregates = append(rq.Aggregates, agg)
	}
	// Mixed plain+aggregate returns have no direct SQL shape here.
	if len(rq.Aggregates) > 0 && len(rq.Select) > 0 {
		return nil, false
	}
	// ORDER BY names an output column; plain outputs use the (resolved)
	// column name, aggregates their alias, both of which the relational
	// engine sorts on directly.
	if q.OrderBy != "" {
		found := false
		for _, c := range append(append([]string(nil), rq.Select...), rq.GroupBy...) {
			if c == q.OrderBy {
				found = true
			}
		}
		for _, a := range rq.Aggregates {
			if a.As == q.OrderBy {
				found = true
			}
		}
		if !found || q.OrderDesc {
			// Descending order has no relational plan shape here; fall
			// back to the XML evaluator, which handles it.
			return nil, false
		}
		rq.OrderBy = []string{q.OrderBy}
	}
	rq.Limit = q.Limit
	return rq, true
}

// forTable matches FOR //table/row (or //table//row) against the catalog.
func forTable(q *piql.Query, cat *relational.Catalog) (string, bool) {
	src := q.For.String()
	src = strings.TrimPrefix(src, "//")
	src = strings.TrimPrefix(src, "/")
	segs := strings.Split(src, "/")
	// Accept "table", "table/row", "table//row".
	name := segs[0]
	if name == "" || name == "*" {
		return "", false
	}
	for _, n := range cat.Names() {
		if n == name {
			if len(segs) == 1 {
				return name, true
			}
			last := segs[len(segs)-1]
			if last == "row" || last == "" {
				return name, true
			}
			return "", false
		}
	}
	return "", false
}

func condToExpr(c piql.Cond, schema *relational.Schema, resolveCol func(interface{ LastStep() string }) (string, bool)) (relational.Expr, bool) {
	switch v := c.(type) {
	case *piql.Comparison:
		col, ok := resolveCol(v.Path)
		if !ok {
			return nil, false
		}
		t := schema.Columns[schema.Index(col)].Type
		val, ok := literalValue(v.Value, t)
		if !ok {
			return nil, false
		}
		var op relational.CmpOp
		switch v.Op {
		case piql.OpEq:
			op = relational.Eq
		case piql.OpNe:
			op = relational.Ne
		case piql.OpLt:
			op = relational.Lt
		case piql.OpLe:
			op = relational.Le
		case piql.OpGt:
			op = relational.Gt
		case piql.OpGe:
			op = relational.Ge
		default:
			return nil, false
		}
		return relational.Cmp{Op: op, L: relational.ColRef{Name: col}, R: relational.Lit{V: val}}, true
	case *piql.Contains:
		col, ok := resolveCol(v.Path)
		if !ok {
			return nil, false
		}
		return relational.Contains{Col: col, Substr: v.Substr}, true
	case *piql.And:
		l, ok := condToExpr(v.L, schema, resolveCol)
		if !ok {
			return nil, false
		}
		r, ok := condToExpr(v.R, schema, resolveCol)
		if !ok {
			return nil, false
		}
		return relational.And{Terms: []relational.Expr{l, r}}, true
	case *piql.Or:
		l, ok := condToExpr(v.L, schema, resolveCol)
		if !ok {
			return nil, false
		}
		r, ok := condToExpr(v.R, schema, resolveCol)
		if !ok {
			return nil, false
		}
		return relational.Or{Terms: []relational.Expr{l, r}}, true
	case *piql.Not:
		inner, ok := condToExpr(v.C, schema, resolveCol)
		if !ok {
			return nil, false
		}
		return relational.Not{E: inner}, true
	default:
		// EXISTS has no faithful per-row translation here; XML fallback.
		return nil, false
	}
}

// literalValue types a PIQL literal for a column.
func literalValue(lit string, t relational.Type) (relational.Value, bool) {
	switch t {
	case relational.TString:
		return relational.Str(lit), true
	case relational.TFloat:
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return relational.Value{}, false
		}
		return relational.Float(f), true
	case relational.TInt:
		// PIQL numbers may carry a decimal point; accept exact integers.
		if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return relational.Int(i), true
		}
		if f, err := strconv.ParseFloat(lit, 64); err == nil && f == float64(int64(f)) {
			return relational.Int(int64(f)), true
		}
		return relational.Value{}, false
	case relational.TBool:
		b, err := strconv.ParseBool(lit)
		if err != nil {
			return relational.Value{}, false
		}
		return relational.Bool(b), true
	}
	return relational.Value{}, false
}

// ResultToPIQL converts a relational result to the framework's wire
// result shape (the XML Transformer's job for relational answers).
func ResultToPIQL(res *relational.Result) *piql.Result {
	out := &piql.Result{Columns: res.Schema.Names()}
	for _, row := range res.Rows {
		r := make([]string, len(row))
		for i, v := range row {
			r[i] = v.String()
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}
