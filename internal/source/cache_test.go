package source

import (
	"testing"

	"privateiye/internal/audit"
	"privateiye/internal/clinical"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/relational"
)

func auditedCachingSource(t *testing.T) *Source {
	t.Helper()
	g := clinical.NewGenerator(5)
	cat := relational.NewCatalog()
	patients, _ := g.Patients("patients", 50, 2)
	if err := cat.Add(patients); err != nil {
		t.Fatal(err)
	}
	pol, _ := policy.NewPolicy("s", policy.Allow)
	log, err := audit.NewLog(audit.Config{Population: 50, MinSetSize: 3, MaxOverlap: 5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(Config{Name: "s", Catalog: cat, Policy: pol, Audit: log, PlanCache: 64})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// The plan cache covers only the pure planning prefix (rewrite, cluster
// match, optimize); sequence auditing is stateful and must run on every
// execution. A repeated aggregate whose plan comes straight from the
// cache is still refused by overlap control.
func TestPlanCacheHitStillAudited(t *testing.T) {
	src := auditedCachingSource(t)
	q := piql.MustParse("FOR //patients/row WHERE //age > 30 RETURN AVG(//age) AS a PURPOSE research")
	if _, err := src.Execute(q, "snooper"); err != nil {
		t.Fatalf("first aggregate should pass: %v", err)
	}
	h0, _, _ := src.PlanCacheStats()
	if _, err := src.Execute(q, "snooper"); err == nil {
		t.Fatal("repeated aggregate should be refused even on a plan-cache hit")
	}
	h1, _, _ := src.PlanCacheStats()
	if h1 <= h0 {
		t.Fatalf("repeat should be a plan-cache hit: hits %d -> %d", h0, h1)
	}
}

// A preference landing at runtime purges the cache, so a previously
// cached plan cannot outlive the policy state it was computed under.
func TestPlanCachePurgedOnAddPreference(t *testing.T) {
	src := auditedCachingSource(t)
	q := piql.MustParse("FOR //patients/row WHERE //age > 30 RETURN //age PURPOSE research")
	if _, err := src.Execute(q, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, size := src.PlanCacheStats(); size == 0 {
		t.Fatal("execution should have populated the plan cache")
	}
	pref, err := policy.NewPolicy("subject", policy.Deny)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddPreference(pref); err != nil {
		t.Fatal(err)
	}
	if _, _, size := src.PlanCacheStats(); size != 0 {
		t.Fatalf("AddPreference should purge the plan cache, %d entries remain", size)
	}
	// The deny-default preference now refuses what the cached plan allowed.
	if _, err := src.Execute(q, "alice"); err == nil {
		t.Fatal("query should be denied after the deny preference lands")
	}
}

// Plans are keyed per requester: a hit for one requester must not leak
// another requester's rewrite outcome.
func TestPlanCacheKeyedPerRequester(t *testing.T) {
	src := auditedCachingSource(t)
	q := piql.MustParse("FOR //patients/row WHERE //age > 30 RETURN AVG(//age) AS a PURPOSE research")
	if _, err := src.Execute(q, "alice"); err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := src.PlanCacheStats()
	if _, err := src.Execute(q, "bob"); err != nil {
		t.Fatal(err)
	}
	h1, m1, _ := src.PlanCacheStats()
	if h1 != h0 {
		t.Fatalf("different requester must miss, hits %d -> %d", h0, h1)
	}
	if m1 <= m0 {
		t.Fatalf("different requester should record a miss: misses %d -> %d", m0, m1)
	}
}
