package piql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"privateiye/internal/stats"
	"privateiye/internal/xmltree"
)

// Resolver maps a tag name that matched nothing to candidate alternatives,
// implementing the paper's loose-query requirement: a requester asking for
// //patient//dateOfBirth must still reach a source whose element is named
// dob. Sources back this with their schema-matching vocabulary
// (internal/schemamatch); nil disables approximate matching.
type Resolver func(name string) []string

// EvalOptions tunes query evaluation.
type EvalOptions struct {
	Resolver Resolver
}

// Result is an evaluated query result: named columns over string cells.
// Multiple matches of a value path within one context are joined with
// "; " so the result stays rectangular.
type Result struct {
	Columns []string
	Rows    [][]string
}

// ToNode renders the result in the wire shape shared with the relational
// engine: <result><row><col>…</col></row></result>.
func (r *Result) ToNode() *xmltree.Node {
	root := xmltree.NewElem("result")
	for _, row := range r.Rows {
		rn := xmltree.NewElem("row")
		for i, col := range r.Columns {
			rn.Append(xmltree.NewText(col, row[i]))
		}
		root.Append(rn)
	}
	return root
}

// ResultFromNode parses the ToNode encoding.
func ResultFromNode(n *xmltree.Node) (*Result, error) {
	if n.Name != "result" {
		return nil, fmt.Errorf("piql: expected <result>, got <%s>", n.Name)
	}
	res := &Result{}
	for _, rowNode := range n.ChildrenNamed("row") {
		if res.Columns == nil {
			for _, c := range rowNode.Children {
				res.Columns = append(res.Columns, c.Name)
			}
		}
		row := make([]string, len(res.Columns))
		for i, col := range res.Columns {
			row[i] = rowNode.ChildText(col)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Evaluate runs the query against one document tree. The document node is
// treated as the root of the path space regardless of any parent pointers.
func (q *Query) Evaluate(doc *xmltree.Node, opt EvalOptions) (*Result, error) {
	if len(q.Return) == 0 {
		return nil, fmt.Errorf("piql: query has no return items")
	}
	contexts := selectFrom(doc, q.For, opt.Resolver)
	var kept []*xmltree.Node
	for _, ctx := range contexts {
		ok, err := evalCond(q.Where, ctx, opt.Resolver)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, ctx)
		}
	}
	var res *Result
	var err error
	if q.IsAggregate() {
		res, err = q.evalAggregate(kept, opt)
	} else {
		res, err = q.evalPlain(kept, opt)
	}
	if err != nil {
		return nil, err
	}
	if q.OrderBy != "" {
		if err := res.Sort(q.OrderBy, q.OrderDesc); err != nil {
			return nil, fmt.Errorf("piql: ORDER BY: %w", err)
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// Sort orders the result rows by the named column (numeric-aware,
// stable); desc selects descending order. The mediator re-applies a
// query's ORDER BY through this after integration, because per-source
// ordering does not survive merging.
func (r *Result) Sort(column string, desc bool) error {
	col := -1
	for i, c := range r.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return fmt.Errorf("piql: sort on unknown column %q", column)
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		if desc {
			return cellLess(r.Rows[b][col], r.Rows[a][col])
		}
		return cellLess(r.Rows[a][col], r.Rows[b][col])
	})
	return nil
}

// cellLess orders cells numerically when both parse as numbers, and
// lexicographically otherwise.
func cellLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		return fa < fb
	}
	return a < b
}

func (q *Query) evalPlain(contexts []*xmltree.Node, opt EvalOptions) (*Result, error) {
	res := &Result{}
	for _, ri := range q.Return {
		res.Columns = append(res.Columns, ri.Name())
	}
	for _, ctx := range contexts {
		row := make([]string, len(q.Return))
		for i, ri := range q.Return {
			nodes := selectFrom(ctx, ri.Path, opt.Resolver)
			var vals []string
			for _, n := range nodes {
				vals = append(vals, n.Text)
			}
			row[i] = strings.Join(vals, "; ")
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (q *Query) evalAggregate(contexts []*xmltree.Node, opt EvalOptions) (*Result, error) {
	res := &Result{}
	for _, g := range q.GroupBy {
		res.Columns = append(res.Columns, lastName(g))
	}
	for _, ri := range q.Return {
		res.Columns = append(res.Columns, ri.Name())
	}

	type group struct {
		key    []string
		values [][]float64 // per return item
		count  int
	}
	groups := map[string]*group{}
	var order []string
	for _, ctx := range contexts {
		key := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			nodes := selectFrom(ctx, g, opt.Resolver)
			if len(nodes) > 0 {
				key[i] = nodes[0].Text
			}
		}
		k := strings.Join(key, "\x00")
		gr, ok := groups[k]
		if !ok {
			gr = &group{key: key, values: make([][]float64, len(q.Return))}
			groups[k] = gr
			order = append(order, k)
		}
		gr.count++
		for i, ri := range q.Return {
			if ri.Agg == AggNone || ri.Path == nil {
				continue
			}
			for _, n := range selectFrom(ctx, ri.Path, opt.Resolver) {
				if v, err := strconv.ParseFloat(strings.TrimSpace(n.Text), 64); err == nil {
					gr.values[i] = append(gr.values[i], v)
				}
			}
		}
	}
	sort.Strings(order)

	for _, k := range order {
		gr := groups[k]
		row := append([]string(nil), gr.key...)
		for i, ri := range q.Return {
			cell, err := aggCell(ri, gr.values[i], gr.count)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func aggCell(ri ReturnItem, vals []float64, count int) (string, error) {
	format := func(v float64, err error) (string, error) {
		if err != nil {
			return "", nil // undefined aggregate over empty set -> empty cell
		}
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	}
	switch ri.Agg {
	case AggCount:
		if ri.Path == nil {
			return strconv.Itoa(count), nil
		}
		return strconv.Itoa(len(vals)), nil
	case AggSum:
		if len(vals) == 0 {
			return "", nil
		}
		return strconv.FormatFloat(stats.Sum(vals), 'g', -1, 64), nil
	case AggAvg:
		v, err := stats.Mean(vals)
		return format(v, err)
	case AggMin:
		v, err := stats.Min(vals)
		return format(v, err)
	case AggMax:
		v, err := stats.Max(vals)
		return format(v, err)
	case AggStdDev:
		v, err := stats.SampleStdDev(vals)
		return format(v, err)
	case AggNone:
		return "", fmt.Errorf("piql: plain return item in aggregate query: %s", ri.Name())
	}
	return "", fmt.Errorf("piql: unknown aggregate %v", ri.Agg)
}

// evalCond evaluates a condition at a context node. A nil condition is
// true.
func evalCond(c Cond, ctx *xmltree.Node, res Resolver) (bool, error) {
	switch v := c.(type) {
	case nil:
		return true, nil
	case *Comparison:
		for _, n := range selectFrom(ctx, v.Path, res) {
			if compareText(n.Text, v.Op, v.Value) {
				return true, nil
			}
		}
		return false, nil
	case *Contains:
		for _, n := range selectFrom(ctx, v.Path, res) {
			if strings.Contains(n.Text, v.Substr) {
				return true, nil
			}
		}
		return false, nil
	case *Exists:
		return len(selectFrom(ctx, v.Path, res)) > 0, nil
	case *And:
		l, err := evalCond(v.L, ctx, res)
		if err != nil || !l {
			return false, err
		}
		return evalCond(v.R, ctx, res)
	case *Or:
		l, err := evalCond(v.L, ctx, res)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalCond(v.R, ctx, res)
	case *Not:
		inner, err := evalCond(v.C, ctx, res)
		return !inner, err
	}
	return false, fmt.Errorf("piql: unknown condition type %T", c)
}

// compareText compares a node's text with a literal: numerically when both
// parse as numbers, lexicographically otherwise.
func compareText(text string, op CmpOp, lit string) bool {
	a, errA := strconv.ParseFloat(strings.TrimSpace(text), 64)
	b, errB := strconv.ParseFloat(lit, 64)
	var d int
	if errA == nil && errB == nil {
		switch {
		case a < b:
			d = -1
		case a > b:
			d = 1
		}
	} else {
		d = strings.Compare(text, lit)
	}
	switch op {
	case OpEq:
		return d == 0
	case OpNe:
		return d != 0
	case OpLt:
		return d < 0
	case OpLe:
		return d <= 0
	case OpGt:
		return d > 0
	case OpGe:
		return d >= 0
	}
	return false
}

// selectFrom selects nodes under root matching the pattern, computing
// paths from root itself (root contributes the first segment). When
// nothing matches and a resolver is available, the final step is rewritten
// through the resolver's suggestions and the first alternative that
// matches anything wins — the approximate tag matching of Section 5.
func selectFrom(root *xmltree.Node, pat *xmltree.PathPattern, res Resolver) []*xmltree.Node {
	out := selectExact(root, pat)
	if len(out) > 0 || res == nil {
		return out
	}
	last := pat.LastStep()
	if last == "*" {
		return nil
	}
	for _, alt := range res(last) {
		if alt == last {
			continue
		}
		altPat, err := pat.WithLastStep(alt)
		if err != nil {
			continue
		}
		if out := selectExact(root, altPat); len(out) > 0 {
			return out
		}
	}
	return nil
}

func selectExact(root *xmltree.Node, pat *xmltree.PathPattern) []*xmltree.Node {
	var out []*xmltree.Node
	var walk func(n *xmltree.Node, path string)
	walk = func(n *xmltree.Node, path string) {
		p := path + "/" + n.Name
		if pat.Matches(p) {
			out = append(out, n)
		}
		if !pat.MatchesPrefix(p) {
			return
		}
		for _, c := range n.Children {
			walk(c, p)
		}
	}
	walk(root, "")
	return out
}

func lastName(p *xmltree.PathPattern) string {
	s := p.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
