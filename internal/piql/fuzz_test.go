package piql

import "testing"

// FuzzParse feeds arbitrary text to the PIQL parser, which sits directly
// on the untrusted query path of every source and the mediator. Three
// properties: the parser never panics, every accepted query re-parses
// from its own String() form, and that canonical form is a fixed point
// (String of the re-parse is byte-identical).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"FOR //patient WHERE //diagnosis = 'diabetes' RETURN //name, //age PURPOSE research MAXLOSS 0.3",
		"FOR //patient GROUP BY //diagnosis RETURN COUNT(*) AS n, AVG(//age) AS avg_age, STDDEV(//visits//cost)",
		"FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9",
		"FOR //x RETURN //y ORDER BY //y DESC LIMIT 10",
		"FOR //a/b WHERE //c > 40 AND //d = 'x' OR //e < 2 RETURN //f",
		"FOR //x",
		"FOR //x RETURN //y MAXLOSS 2",
		"FOR",
		"",
		"FOR //x WHERE //y CONTAINS 'a''b' RETURN //z",
		"for //x return //y purpose research",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		canonical := q.String()
		q2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form of accepted query does not re-parse:\n  input: %q\n  canonical: %q\n  error: %v", src, canonical, err)
		}
		if again := q2.String(); again != canonical {
			t.Fatalf("String() is not a fixed point:\n  first:  %q\n  second: %q", canonical, again)
		}
	})
}
