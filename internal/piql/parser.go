package piql

import (
	"fmt"
	"strconv"
	"strings"

	"privateiye/internal/xmltree"
)

// token kinds
type tokKind int

const (
	tokEOF tokKind = iota
	tokKeyword
	tokIdent
	tokPath
	tokString
	tokNumber
	tokOp     // comparison operators
	tokComma  // ,
	tokLParen // (
	tokRParen // )
	tokStar   // *
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"FOR": true, "WHERE": true, "GROUP": true, "BY": true, "RETURN": true,
	"ORDER": true, "DESC": true, "LIMIT": true,
	"PURPOSE": true, "MAXLOSS": true, "AND": true, "OR": true, "NOT": true,
	"CONTAINS": true, "EXISTS": true, "AS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "STDDEV": true,
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			j := i
			// A path runs until whitespace or a delimiter that cannot be
			// part of a path.
			for j < len(src) && !strings.ContainsRune(" \t\n\r,()=!<>'", rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokPath, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("piql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("piql: stray '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c >= '0' && c <= '9' || c == '-' || c == '.':
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			if _, err := strconv.ParseFloat(src[i:j], 64); err != nil {
				return nil, fmt.Errorf("piql: bad number %q at offset %d", src[i:j], i)
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		default:
			if !isIdentStart(c) {
				return nil, fmt.Errorf("piql: unexpected character %q at offset %d", c, i)
			}
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("piql: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) parsePath() (*xmltree.PathPattern, error) {
	t := p.next()
	if t.kind != tokPath {
		return nil, fmt.Errorf("piql: expected path at offset %d, got %q", t.pos, t.text)
	}
	pat, err := xmltree.CompilePattern(t.text)
	if err != nil {
		return nil, fmt.Errorf("piql: %w", err)
	}
	return pat, nil
}

// Parse parses PIQL source text into a Query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{MaxLoss: 1}

	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	if q.For, err = p.parsePath(); err != nil {
		return nil, err
	}

	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		if q.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "GROUP" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, g)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	for {
		ri, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		q.Return = append(q.Return, ri)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if p.peek().kind == tokKeyword && p.peek().text == "ORDER" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("piql: expected output column after ORDER BY at offset %d", t.pos)
		}
		q.OrderBy = t.text
		if p.peek().kind == tokKeyword && p.peek().text == "DESC" {
			p.next()
			q.OrderDesc = true
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "LIMIT" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("piql: expected number after LIMIT at offset %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("piql: LIMIT must be a positive integer, got %q", t.text)
		}
		q.Limit = n
	}
	if p.peek().kind == tokKeyword && p.peek().text == "PURPOSE" {
		p.next()
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("piql: expected purpose name at offset %d", t.pos)
		}
		q.Purpose = t.text
	}
	if p.peek().kind == tokKeyword && p.peek().text == "MAXLOSS" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("piql: expected number after MAXLOSS at offset %d", t.pos)
		}
		v, _ := strconv.ParseFloat(t.text, 64)
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("piql: MAXLOSS %v out of [0,1]", v)
		}
		q.MaxLoss = v
	}
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("piql: trailing input %q at offset %d", t.text, t.pos)
	}
	if len(q.GroupBy) > 0 && !q.IsAggregate() {
		return nil, fmt.Errorf("piql: GROUP BY requires aggregate return items")
	}
	return q, nil
}

// MustParse is Parse that panics, for statically known queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	t := p.peek()
	aggs := map[string]Agg{
		"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg,
		"MIN": AggMin, "MAX": AggMax, "STDDEV": AggStdDev,
	}
	var ri ReturnItem
	if t.kind == tokKeyword {
		agg, ok := aggs[t.text]
		if !ok {
			return ri, fmt.Errorf("piql: unexpected keyword %q in RETURN at offset %d", t.text, t.pos)
		}
		p.next()
		if tok := p.next(); tok.kind != tokLParen {
			return ri, fmt.Errorf("piql: expected '(' after %s at offset %d", t.text, tok.pos)
		}
		ri.Agg = agg
		if agg == AggCount && p.peek().kind == tokStar {
			p.next()
		} else {
			path, err := p.parsePath()
			if err != nil {
				return ri, err
			}
			ri.Path = path
		}
		if tok := p.next(); tok.kind != tokRParen {
			return ri, fmt.Errorf("piql: expected ')' at offset %d", tok.pos)
		}
	} else {
		path, err := p.parsePath()
		if err != nil {
			return ri, err
		}
		ri.Path = path
	}
	if p.peek().kind == tokKeyword && p.peek().text == "AS" {
		p.next()
		t := p.next()
		if t.kind != tokIdent {
			return ri, fmt.Errorf("piql: expected name after AS at offset %d", t.pos)
		}
		ri.As = t.text
	}
	return ri, nil
}

func (p *parser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Cond, error) {
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		p.next()
		c, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{C: c}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if t := p.next(); t.kind != tokRParen {
			return nil, fmt.Errorf("piql: expected ')' at offset %d", t.pos)
		}
		return c, nil
	}
	return p.parsePred()
}

func (p *parser) parsePred() (Cond, error) {
	if p.peek().kind == tokKeyword && p.peek().text == "EXISTS" {
		p.next()
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &Exists{Path: path}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind == tokKeyword && t.text == "CONTAINS" {
		v := p.next()
		if v.kind != tokString {
			return nil, fmt.Errorf("piql: CONTAINS needs a string at offset %d", v.pos)
		}
		return &Contains{Path: path, Substr: v.text}, nil
	}
	if t.kind != tokOp {
		return nil, fmt.Errorf("piql: expected comparison operator at offset %d, got %q", t.pos, t.text)
	}
	ops := map[string]CmpOp{"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	op, ok := ops[t.text]
	if !ok {
		return nil, fmt.Errorf("piql: unknown operator %q", t.text)
	}
	v := p.next()
	if v.kind != tokString && v.kind != tokNumber && v.kind != tokIdent {
		return nil, fmt.Errorf("piql: expected literal at offset %d, got %q", v.pos, v.text)
	}
	return &Comparison{Path: path, Op: op, Value: v.text}, nil
}
