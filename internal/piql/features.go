package piql

import "strings"

// Features is the query characteristics vector the paper's Cluster
// Matching module analyzes "to determine the characteristics of the query
// results (without executing the query) and corresponding privacy
// breaches" (Section 4). Every field is derivable from the query text
// alone.
type Features struct {
	// Predicate structure.
	EqPredicates       int
	RangePredicates    int
	ContainsPredicates int
	ExistsPredicates   int
	Negations          int
	// Output structure.
	PlainReturns int
	AggReturns   int
	GroupBys     int
	// Semantic flags from the return paths.
	ReturnsIdentifier bool // name, id, ssn, dob, address, ...
	ReturnsSensitive  bool // diagnosis, medication, rate, salary, ...
	// Requester-declared loss budget.
	MaxLoss float64
	// LimitN is the LIMIT clause value (0 = none); tiny limits on plain
	// queries signal record-targeting.
	LimitN int
}

// identifierTags are element names that directly or nearly identify an
// individual (the quasi-identifier vocabulary of the k-anonymity
// literature plus direct identifiers).
var identifierTags = map[string]bool{
	"id": true, "ssn": true, "name": true, "dob": true, "dateofbirth": true,
	"birthdate": true, "zip": true, "zipcode": true, "address": true,
	"phone": true, "email": true, "age": true, "sex": true,
}

// sensitiveTags are element names whose values are confidential payloads.
var sensitiveTags = map[string]bool{
	"diagnosis": true, "disease": true, "medication": true, "treatment": true,
	"rate": true, "salary": true, "income": true, "hiv": true, "result": true,
	"cases": true, "syndrome": true,
}

// ExtractFeatures analyzes the query.
func (q *Query) ExtractFeatures() Features {
	f := Features{MaxLoss: q.MaxLoss, GroupBys: len(q.GroupBy), LimitN: q.Limit}
	var walk func(Cond)
	walk = func(c Cond) {
		switch v := c.(type) {
		case *Comparison:
			if v.Op == OpEq || v.Op == OpNe {
				f.EqPredicates++
			} else {
				f.RangePredicates++
			}
		case *Contains:
			f.ContainsPredicates++
		case *Exists:
			f.ExistsPredicates++
		case *And:
			walk(v.L)
			walk(v.R)
		case *Or:
			walk(v.L)
			walk(v.R)
		case *Not:
			f.Negations++
			walk(v.C)
		}
	}
	if q.Where != nil {
		walk(q.Where)
	}
	for _, ri := range q.Return {
		if ri.Agg == AggNone {
			f.PlainReturns++
		} else {
			f.AggReturns++
		}
		if ri.Path == nil {
			continue
		}
		tag := strings.ToLower(ri.Path.LastStep())
		if identifierTags[tag] {
			f.ReturnsIdentifier = true
		}
		if sensitiveTags[tag] {
			f.ReturnsSensitive = true
		}
	}
	return f
}

// Vector renders the features as a numeric vector for clustering. Counts
// are lightly damped so one pathological query with 50 predicates does not
// dominate the metric; booleans weigh heavily because identifier/sensitive
// output is the privacy-relevant distinction.
func (f Features) Vector() []float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	damp := func(n int) float64 {
		v := float64(n)
		if v > 5 {
			v = 5 + (v-5)/4
		}
		return v
	}
	return []float64{
		damp(f.EqPredicates),
		damp(f.RangePredicates),
		damp(f.ContainsPredicates),
		damp(f.ExistsPredicates),
		damp(f.Negations),
		damp(f.PlainReturns),
		damp(f.AggReturns),
		damp(f.GroupBys),
		3 * b(f.ReturnsIdentifier),
		3 * b(f.ReturnsSensitive),
		f.MaxLoss,
		b(f.LimitN > 0 && f.LimitN <= 5),
	}
}
