// Package piql implements PIQL, the Privacy-conscious Integration Query
// Language of PRIVATE-IYE.
//
// Section 5 of the paper requires "a declarative language that supports
// loosely structured queries" over the mediated schema, extended so "the
// requester should be able to provide the purpose of the query and the
// maximum information loss he/she is willing to accommodate". PIQL is that
// language: an XQuery-flavoured FOR/WHERE/RETURN form whose path
// expressions are loose (descendant axes, wildcards, and resolver-assisted
// approximate tag matching, so //patient//dateOfBirth can still find a
// source's dob), plus the two privacy clauses, PURPOSE and MAXLOSS.
//
// Grammar (keywords case-insensitive):
//
//	query   := FOR path [WHERE cond] [GROUP BY path {, path}]
//	           RETURN item {, item} [ORDER BY ident [DESC]] [LIMIT number]
//	           [PURPOSE ident] [MAXLOSS number]
//	item    := path [AS ident] | agg '(' path ')' [AS ident] | COUNT '(' '*' ')' [AS ident]
//	agg     := COUNT | SUM | AVG | MIN | MAX | STDDEV
//	cond    := or
//	or      := and {OR and}
//	and     := not {AND not}
//	not     := NOT not | '(' cond ')' | pred
//	pred    := path op literal | path CONTAINS string | EXISTS path
//	op      := = | != | < | <= | > | >=
//	path    := ('/'|'//') step {('/'|'//') step}   (step may be '*')
package piql

import (
	"fmt"
	"strconv"
	"strings"

	"privateiye/internal/xmltree"
)

// Agg enumerates PIQL aggregate functions. AggNone marks a plain value
// return.
type Agg int

// Aggregates.
const (
	AggNone Agg = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStdDev
)

// String returns the keyword for the aggregate.
func (a Agg) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggStdDev:
		return "STDDEV"
	}
	return fmt.Sprintf("Agg(%d)", int(a))
}

// ReturnItem is one output of a query.
type ReturnItem struct {
	Agg  Agg
	Path *xmltree.PathPattern // nil only for COUNT(*)
	As   string               // output name; derived from path if empty
}

// Name returns the output column name.
func (ri ReturnItem) Name() string {
	if ri.As != "" {
		return ri.As
	}
	if ri.Path == nil {
		return "count"
	}
	p := ri.Path.String()
	if i := strings.LastIndex(p, "/"); i >= 0 {
		p = p[i+1:]
	}
	if ri.Agg != AggNone {
		return strings.ToLower(ri.Agg.String()) + "_" + p
	}
	return p
}

// CmpOp is a comparison operator in predicates.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Cond is a boolean condition over a context node.
type Cond interface {
	// String renders the condition in PIQL syntax.
	String() string
}

// Comparison compares the text of nodes selected by Path against a
// literal. It holds (existential semantics) if any selected node
// satisfies the comparison. Numeric comparison applies when both sides
// parse as numbers.
type Comparison struct {
	Path  *xmltree.PathPattern
	Op    CmpOp
	Value string
}

// String implements Cond.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Path, c.Op, quoteLiteral(c.Value))
}

// Contains holds if any node selected by Path has text containing Substr.
type Contains struct {
	Path   *xmltree.PathPattern
	Substr string
}

// String implements Cond.
func (c *Contains) String() string {
	return fmt.Sprintf("%s CONTAINS %s", c.Path, quoteLiteral(c.Substr))
}

// Exists holds if Path selects at least one node.
type Exists struct {
	Path *xmltree.PathPattern
}

// String implements Cond.
func (c *Exists) String() string { return "EXISTS " + c.Path.String() }

// And is conjunction.
type And struct{ L, R Cond }

// String implements Cond.
func (c *And) String() string { return "(" + c.L.String() + " AND " + c.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Cond }

// String implements Cond.
func (c *Or) String() string { return "(" + c.L.String() + " OR " + c.R.String() + ")" }

// Not is negation.
type Not struct{ C Cond }

// String implements Cond.
func (c *Not) String() string { return "NOT " + c.C.String() }

// Query is a parsed PIQL query.
type Query struct {
	// For selects the context nodes ("rows").
	For *xmltree.PathPattern
	// Where filters context nodes; nil means all.
	Where Cond
	// GroupBy groups context nodes by the text of these paths.
	GroupBy []*xmltree.PathPattern
	// Return lists the outputs.
	Return []ReturnItem
	// OrderBy names an output column to sort by ("" = document order);
	// OrderDesc selects descending order.
	OrderBy   string
	OrderDesc bool
	// Limit truncates the result to the first Limit rows (0 = no limit).
	Limit int
	// Purpose is the requester's stated purpose (PURPOSE clause); empty
	// means unstated, which privacy policies treat as unknown (fail
	// closed).
	Purpose string
	// MaxLoss is the maximum information loss the requester tolerates in
	// the results (MAXLOSS clause); 1 if unstated.
	MaxLoss float64
}

// IsAggregate reports whether any return item aggregates.
func (q *Query) IsAggregate() bool {
	for _, ri := range q.Return {
		if ri.Agg != AggNone {
			return true
		}
	}
	return false
}

// String renders the query in canonical PIQL syntax; Parse(q.String()) is
// equivalent to q.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("FOR " + q.For.String())
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		parts := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	parts := make([]string, len(q.Return))
	for i, ri := range q.Return {
		switch {
		case ri.Agg == AggCount && ri.Path == nil:
			parts[i] = "COUNT(*)"
		case ri.Agg != AggNone:
			parts[i] = fmt.Sprintf("%s(%s)", ri.Agg, ri.Path)
		default:
			parts[i] = ri.Path.String()
		}
		if ri.As != "" {
			parts[i] += " AS " + ri.As
		}
	}
	b.WriteString(" RETURN " + strings.Join(parts, ", "))
	if q.OrderBy != "" {
		b.WriteString(" ORDER BY " + q.OrderBy)
		if q.OrderDesc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(q.Limit))
	}
	if q.Purpose != "" {
		b.WriteString(" PURPOSE " + q.Purpose)
	}
	if q.MaxLoss < 1 {
		b.WriteString(" MAXLOSS " + strconv.FormatFloat(q.MaxLoss, 'g', -1, 64))
	}
	return b.String()
}

// ReturnPaths lists the path patterns the query outputs (skipping
// COUNT(*)).
func (q *Query) ReturnPaths() []*xmltree.PathPattern {
	var out []*xmltree.PathPattern
	for _, ri := range q.Return {
		if ri.Path != nil {
			out = append(out, ri.Path)
		}
	}
	return out
}

// WherePaths lists the path patterns referenced by the condition tree.
func (q *Query) WherePaths() []*xmltree.PathPattern {
	var out []*xmltree.PathPattern
	var walk func(Cond)
	walk = func(c Cond) {
		switch v := c.(type) {
		case *Comparison:
			out = append(out, v.Path)
		case *Contains:
			out = append(out, v.Path)
		case *Exists:
			out = append(out, v.Path)
		case *And:
			walk(v.L)
			walk(v.R)
		case *Or:
			walk(v.L)
			walk(v.R)
		case *Not:
			walk(v.C)
		}
	}
	if q.Where != nil {
		walk(q.Where)
	}
	return out
}

func quoteLiteral(s string) string {
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
