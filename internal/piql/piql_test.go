package piql

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"privateiye/internal/xmltree"
)

const hospitalDoc = `
<hospital>
  <patient>
    <name>Alice Ang</name>
    <dob>1971-03-05</dob>
    <age>54</age>
    <diagnosis>diabetes</diagnosis>
    <visits><visit><cost>120.5</cost></visit><visit><cost>80</cost></visit></visits>
  </patient>
  <patient>
    <name>Bob Baker</name>
    <dob>1980-11-30</dob>
    <age>45</age>
    <diagnosis>asthma</diagnosis>
    <visits><visit><cost>60</cost></visit></visits>
  </patient>
  <patient>
    <name>Cara Diaz</name>
    <dob>1990-01-15</dob>
    <age>35</age>
    <diagnosis>diabetes</diagnosis>
    <visits><visit><cost>200</cost></visit></visits>
  </patient>
</hospital>`

func doc(t *testing.T) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(hospitalDoc)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseBasic(t *testing.T) {
	q, err := Parse("FOR //patient WHERE //diagnosis = 'diabetes' RETURN //name, //age PURPOSE research MAXLOSS 0.3")
	if err != nil {
		t.Fatal(err)
	}
	if q.For.String() != "//patient" {
		t.Errorf("For = %q", q.For)
	}
	if q.Purpose != "research" || q.MaxLoss != 0.3 {
		t.Errorf("privacy clauses: %q %v", q.Purpose, q.MaxLoss)
	}
	if len(q.Return) != 2 || q.Return[0].Name() != "name" {
		t.Errorf("returns: %+v", q.Return)
	}
	if q.IsAggregate() {
		t.Error("not an aggregate query")
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("FOR //patient GROUP BY //diagnosis RETURN COUNT(*) AS n, AVG(//age) AS avg_age, STDDEV(//visits//cost)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregate() || len(q.GroupBy) != 1 {
		t.Fatalf("aggregate parse: %+v", q)
	}
	if q.Return[0].Agg != AggCount || q.Return[0].Path != nil || q.Return[0].As != "n" {
		t.Errorf("COUNT(*): %+v", q.Return[0])
	}
	if q.Return[2].Name() != "stddev_cost" {
		t.Errorf("derived name = %q", q.Return[2].Name())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOR",
		"FOR //x",                          // no RETURN
		"FOR //x RETURN",                   // empty return
		"FOR //x WHERE RETURN //y",         // empty where
		"FOR //x RETURN //y MAXLOSS 2",     // out of range
		"FOR //x RETURN //y MAXLOSS",       // missing number
		"FOR //x RETURN //y PURPOSE",       // missing purpose
		"FOR //x GROUP BY //g RETURN //y",  // group by without aggregates
		"FOR //x RETURN //y trailing",      // trailing input
		"FOR //x WHERE //a ~ 3 RETURN //y", // bad operator
		"FOR //x WHERE //a = 'unclosed RETURN //y",
		"FOR //x RETURN SUM //y",                  // missing parens
		"FOR //x RETURN AVG(//y",                  // unclosed paren
		"FOR //x WHERE //a CONTAINS 3 RETURN //y", // contains needs string
		"FOR //x RETURN //y AS 'str'",             // AS needs ident
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCanonicalStringRoundTrip(t *testing.T) {
	srcs := []string{
		"FOR //patient WHERE //diagnosis = 'diabetes' AND //age >= 40 RETURN //name, //dob PURPOSE epidemiology MAXLOSS 0.25",
		"FOR //patient GROUP BY //diagnosis RETURN COUNT(*), AVG(//age) AS mean_age",
		"FOR //patient WHERE NOT (//age < 30 OR //name CONTAINS 'Bob') RETURN //diagnosis",
		"FOR //patient WHERE EXISTS //visits//cost RETURN //name AS who",
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("canonical form unstable:\n%s\n%s", q.String(), q2.String())
		}
	}
}

func TestEvaluatePlain(t *testing.T) {
	q := MustParse("FOR //patient WHERE //diagnosis = 'diabetes' RETURN //name, //age")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0] != "Alice Ang" || res.Rows[1][0] != "Cara Diaz" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEvaluateNumericPredicates(t *testing.T) {
	cases := []struct {
		where string
		want  int
	}{
		{"//age >= 45", 2},
		{"//age > 45", 1},
		{"//age <= 35", 1},
		{"//age != 54", 2},
		{"//age = 35", 1},
		{"//visits//cost > 150", 1},
		{"//age > 30 AND //diagnosis = 'diabetes'", 2},
		{"//age < 40 OR //diagnosis = 'asthma'", 2},
		{"NOT //diagnosis = 'diabetes'", 1},
		{"//name CONTAINS 'a'", 2}, // Bob Baker, Cara Diaz ("Alice Ang" has no lowercase a)
		{"EXISTS //visits", 3},
		{"EXISTS //allergies", 0},
	}
	for _, tc := range cases {
		q := MustParse("FOR //patient WHERE " + tc.where + " RETURN //name")
		res, err := q.Evaluate(doc(t), EvalOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.where, err)
		}
		if len(res.Rows) != tc.want {
			t.Errorf("WHERE %s: rows = %d, want %d", tc.where, len(res.Rows), tc.want)
		}
	}
}

func TestEvaluateAggregate(t *testing.T) {
	q := MustParse("FOR //patient GROUP BY //diagnosis RETURN COUNT(*) AS n, AVG(//age) AS avg_age, SUM(//visits//cost) AS total")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	// Groups sort lexicographically: asthma, diabetes.
	if res.Rows[0][0] != "asthma" || res.Rows[1][0] != "diabetes" {
		t.Fatalf("group order: %v", res.Rows)
	}
	if res.Rows[1][1] != "2" {
		t.Errorf("diabetes count = %q", res.Rows[1][1])
	}
	avg, _ := strconv.ParseFloat(res.Rows[1][2], 64)
	if math.Abs(avg-44.5) > 1e-9 {
		t.Errorf("diabetes avg age = %v, want 44.5", avg)
	}
	total, _ := strconv.ParseFloat(res.Rows[1][3], 64)
	if math.Abs(total-400.5) > 1e-9 {
		t.Errorf("diabetes total cost = %v, want 400.5", total)
	}
}

func TestEvaluateGlobalAggregate(t *testing.T) {
	q := MustParse("FOR //patient RETURN COUNT(*) AS n, MIN(//age) AS lo, MAX(//age) AS hi, STDDEV(//age) AS sd")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0] != "3" || res.Rows[0][1] != "35" || res.Rows[0][2] != "54" {
		t.Errorf("aggregates = %v", res.Rows[0])
	}
	sd, _ := strconv.ParseFloat(res.Rows[0][3], 64)
	if math.Abs(sd-9.504) > 0.01 {
		t.Errorf("stddev = %v, want about 9.504 (sample)", sd)
	}
}

func TestEvaluateAggregateOverEmptyGroupIsEmptyCell(t *testing.T) {
	q := MustParse("FOR //patient WHERE //age > 200 RETURN AVG(//age) AS a")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("no contexts -> no groups, got %v", res.Rows)
	}
}

func TestEvaluateResolverApproximateTag(t *testing.T) {
	// Requester uses //dateOfBirth; document calls it dob.
	q := MustParse("FOR //patient RETURN //dateOfBirth AS dob")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "" {
		t.Fatalf("without resolver the loose tag should miss, got %q", res.Rows[0][0])
	}
	resolver := func(name string) []string {
		if strings.EqualFold(name, "dateOfBirth") {
			return []string{"dob", "birthdate"}
		}
		return nil
	}
	res, err = q.Evaluate(doc(t), EvalOptions{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "1971-03-05" {
		t.Errorf("resolver should map dateOfBirth->dob, got %q", res.Rows[0][0])
	}
	// Resolver also applies in predicates.
	q2 := MustParse("FOR //patient WHERE //dateOfBirth CONTAINS '1980' RETURN //name")
	res2, err := q2.Evaluate(doc(t), EvalOptions{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "Bob Baker" {
		t.Errorf("resolved predicate rows = %v", res2.Rows)
	}
}

func TestEvaluateMultiValueJoin(t *testing.T) {
	q := MustParse("FOR //patient WHERE //name = 'Alice Ang' RETURN //visits//cost AS costs")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "120.5; 80" {
		t.Errorf("multi-value cell = %q", res.Rows[0][0])
	}
}

func TestResultXMLRoundTrip(t *testing.T) {
	q := MustParse("FOR //patient RETURN //name, //diagnosis")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ResultFromNode(res.ToNode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || len(back.Columns) != len(res.Columns) {
		t.Fatalf("round trip shape: %v vs %v", back, res)
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if res.Rows[i][j] != back.Rows[i][j] {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, back.Rows[i][j], res.Rows[i][j])
			}
		}
	}
	if _, err := ResultFromNode(xmltree.NewElem("x")); err == nil {
		t.Error("wrong root should fail")
	}
}

func TestExtractFeatures(t *testing.T) {
	q := MustParse("FOR //patient WHERE //age >= 40 AND //diagnosis = 'diabetes' AND NOT //name CONTAINS 'X' GROUP BY //diagnosis RETURN AVG(//visits//cost) AS c, COUNT(*) AS n MAXLOSS 0.4")
	f := q.ExtractFeatures()
	if f.RangePredicates != 1 || f.EqPredicates != 1 || f.ContainsPredicates != 1 || f.Negations != 1 {
		t.Errorf("predicate features: %+v", f)
	}
	if f.AggReturns != 2 || f.PlainReturns != 0 || f.GroupBys != 1 {
		t.Errorf("return features: %+v", f)
	}
	if f.MaxLoss != 0.4 {
		t.Errorf("maxloss feature: %v", f.MaxLoss)
	}

	ident := MustParse("FOR //patient RETURN //name, //ssn").ExtractFeatures()
	if !ident.ReturnsIdentifier {
		t.Error("name/ssn should flag identifier")
	}
	sens := MustParse("FOR //patient RETURN //diagnosis").ExtractFeatures()
	if !sens.ReturnsSensitive || sens.ReturnsIdentifier {
		t.Errorf("diagnosis flags: %+v", sens)
	}
}

func TestFeatureVectorShapeAndDamping(t *testing.T) {
	f := Features{EqPredicates: 50}
	v := f.Vector()
	if len(v) != 12 {
		t.Fatalf("vector length = %d", len(v))
	}
	if v[0] >= 50 {
		t.Errorf("damping failed: %v", v[0])
	}
	g := Features{EqPredicates: 2}
	if g.Vector()[0] != 2 {
		t.Errorf("small counts undamped: %v", g.Vector()[0])
	}
}

func TestWhereAndReturnPaths(t *testing.T) {
	q := MustParse("FOR //patient WHERE //age > 3 AND (EXISTS //dob OR //name CONTAINS 'a') RETURN //diagnosis, COUNT(*)")
	if got := len(q.WherePaths()); got != 3 {
		t.Errorf("where paths = %d, want 3", got)
	}
	if got := len(q.ReturnPaths()); got != 1 {
		t.Errorf("return paths = %d, want 1 (COUNT(*) has none)", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic")
		}
	}()
	MustParse("not a query")
}

func TestParseOrderByAndLimit(t *testing.T) {
	q := MustParse("FOR //patient RETURN //name, //age ORDER BY age DESC LIMIT 2 PURPOSE research")
	if q.OrderBy != "age" || !q.OrderDesc || q.Limit != 2 {
		t.Fatalf("clauses: %q %v %d", q.OrderBy, q.OrderDesc, q.Limit)
	}
	// Canonical string round trips.
	q2 := MustParse(q.String())
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
	for _, bad := range []string{
		"FOR //x RETURN //y ORDER BY",
		"FOR //x RETURN //y ORDER //y",
		"FOR //x RETURN //y LIMIT 0",
		"FOR //x RETURN //y LIMIT -3",
		"FOR //x RETURN //y LIMIT two",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestEvaluateOrderByAndLimit(t *testing.T) {
	q := MustParse("FOR //patient RETURN //name, //age ORDER BY age DESC LIMIT 2")
	res, err := q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit gave %d rows", len(res.Rows))
	}
	if res.Rows[0][1] != "54" || res.Rows[1][1] != "45" {
		t.Errorf("descending ages = %v", res.Rows)
	}
	// Ascending, string column.
	q = MustParse("FOR //patient RETURN //name ORDER BY name LIMIT 1")
	res, err = q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "Alice Ang" {
		t.Errorf("ascending first = %v", res.Rows)
	}
	// Unknown order column errors.
	q = MustParse("FOR //patient RETURN //name ORDER BY nosuch")
	if _, err := q.Evaluate(doc(t), EvalOptions{}); err == nil {
		t.Error("unknown ORDER BY column should error")
	}
	// ORDER BY applies to aggregate output too.
	q = MustParse("FOR //patient GROUP BY //diagnosis RETURN COUNT(*) AS n ORDER BY n DESC LIMIT 1")
	res, err = q.Evaluate(doc(t), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "diabetes" {
		t.Errorf("top group = %v", res.Rows)
	}
}

func TestLimitFeature(t *testing.T) {
	f := MustParse("FOR //patient RETURN //name LIMIT 2").ExtractFeatures()
	if f.LimitN != 2 {
		t.Errorf("LimitN = %d", f.LimitN)
	}
	v := f.Vector()
	if v[len(v)-1] != 1 {
		t.Errorf("tiny limit should flag: %v", v)
	}
	g := MustParse("FOR //patient RETURN //name LIMIT 100").ExtractFeatures()
	if g.Vector()[len(v)-1] != 0 {
		t.Error("large limit should not flag")
	}
}

// Property over a mixed workload: Parse(q.String()) is a fixpoint — the
// canonical rendering re-parses to the identical canonical rendering.
func TestCanonicalFormFixpointProperty(t *testing.T) {
	srcs := []string{
		"FOR //patient WHERE //age >= 40 AND //diagnosis = 'diabetes' RETURN //name, //dob PURPOSE epidemiology MAXLOSS 0.25",
		"FOR //patient GROUP BY //diagnosis RETURN COUNT(*), AVG(//age) AS mean_age ORDER BY mean_age DESC LIMIT 3",
		"FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS a, STDDEV(//rate) AS s PURPOSE research MAXLOSS 0.1",
		"FOR //patient WHERE NOT (//age < 30 OR //name CONTAINS 'x''y') RETURN //zip LIMIT 7",
		"FOR //e WHERE EXISTS //visits//cost RETURN MAX(//visits//cost) AS hi, MIN(//visits//cost) AS lo",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c1 := q1.String()
		q2, err := Parse(c1)
		if err != nil {
			t.Fatalf("reparse %q: %v", c1, err)
		}
		if c2 := q2.String(); c2 != c1 {
			t.Errorf("not a fixpoint:\n  %s\n  %s", c1, c2)
		}
	}
}

// Robustness: Parse never panics, whatever bytes arrive — it returns an
// error or a query. (The HTTP endpoint feeds it raw request bodies.)
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// And a few adversarial shapes quick.Check is unlikely to draw.
	for _, src := range []string{
		"FOR", "FOR ", "FOR //", "FOR //a RETURN", "FOR //a RETURN //b AS",
		"FOR //a WHERE //b = RETURN //c",
		"FOR //a RETURN //b LIMIT 99999999999999999999",
		"FOR //a RETURN COUNT(", "FOR //a RETURN COUNT(*", "'''",
		"FOR //a WHERE ((((//b = 1 RETURN //c",
		strings.Repeat("FOR //a ", 1000),
	} {
		if _, err := Parse(src); err == nil && src != "" {
			// Errors are expected; success is fine too as long as no panic.
			_ = err
		}
	}
}
