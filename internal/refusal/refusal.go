// Package refusal normalizes the many ways the pipeline can say "no"
// into a small, closed enum. Before it existed, the audit log and the
// release ledger returned bare formatted strings; a metrics layer
// counting refusals by reason would have minted a new label per message
// (unbounded cardinality) and every rewording would have broken
// dashboards. The enum is the stable vocabulary: typed errors classify
// themselves via the Reasoner interface, and denials that crossed an
// HTTP boundary (where only the message survives) are classified by
// their stable prefixes.
//
// The package is a leaf — it imports only the standard library — so
// every layer (audit, mediator, source, obs consumers) can share it
// without cycles.
package refusal

import (
	"context"
	"errors"
	"strings"
)

// Reason is one normalized refusal reason. The string form is the
// metric label and the trace-outcome suffix.
type Reason string

// The closed reason vocabulary. Adding a value here is an interface
// change: tests pin the mapping, and DESIGN.md §9 inventories the
// labels.
const (
	// Timeout: a source missed its per-call deadline.
	Timeout Reason = "timeout"
	// Canceled: the caller abandoned the query mid-flight.
	Canceled Reason = "canceled"
	// BreakerOpen: the circuit breaker skipped a presumed-dead source.
	BreakerOpen Reason = "breaker-open"
	// Policy: query rewriting denied every return item (source policy,
	// preference or ACL).
	Policy Reason = "policy-denied"
	// AuditSetSize: the sequence auditor's query-set-size control.
	AuditSetSize Reason = "audit-set-size"
	// AuditOverlap: the sequence auditor's overlap control.
	AuditOverlap Reason = "audit-overlap"
	// AuditCompromise: the sequence auditor's exact linear-system audit.
	AuditCompromise Reason = "audit-compromise"
	// LedgerCombination: the release ledger's cross-query combination
	// attack check.
	LedgerCombination Reason = "ledger-combination"
	// Unrecordable: a durable store could not log the disclosure, and
	// the release failed closed.
	Unrecordable Reason = "unrecordable"
	// LossBudget: integrated information loss exceeded the requester's
	// MAXLOSS, or the optimizer could not meet the rewrite budget.
	LossBudget Reason = "loss-budget"
	// Parse: the PIQL text did not parse.
	Parse Reason = "parse-error"
	// NoSource: no source holds data matching the query, or every
	// source failed.
	NoSource Reason = "no-source"
	// Overloaded: admission control shed the request because the node is
	// saturated (concurrency limit reached, queue full, or the estimated
	// queue wait exceeds the caller's remaining deadline). Not a privacy
	// refusal: the caller may retry after backing off.
	Overloaded Reason = "overloaded"
	// RateLimited: the per-requester token bucket refused the request.
	// Not a privacy refusal: the caller may retry after Retry-After.
	RateLimited Reason = "ratelimited"
	// NotPrimary: the query reached a replication standby (or a node
	// mid-promotion); the caller should retry against the primary. Not a
	// privacy refusal.
	NotPrimary Reason = "not-primary"
	// Fenced: this node was deposed by a newer primary epoch and fails
	// every release closed — granting here could double-grant what the
	// successor's ledger does not know about.
	Fenced Reason = "fenced"
	// NotOwner: in a sharded mediator tier, the requester hashes to a
	// different shard — this shard's ledger does not hold the
	// requester's release history, so granting here could miss a
	// combination the owning shard would refuse. Fail-closed and
	// retryable via the router (503, never 403): the query is fine, it
	// just knocked on the wrong door. A draining shard declining a new
	// requester classifies here too — it is shedding ownership.
	NotOwner Reason = "not-owner"
	// Other: an error outside the closed vocabulary (transport faults,
	// internal errors). A growing "other" count is a signal to look at
	// the traces, not to mint labels.
	Other Reason = "other"
)

// String returns the metric-label form.
func (r Reason) String() string { return string(r) }

// All lists every reason, for tests and for pre-registering counter
// series so /metrics shows zero counts rather than absent series.
func All() []Reason {
	return []Reason{
		Timeout, Canceled, BreakerOpen, Policy,
		AuditSetSize, AuditOverlap, AuditCompromise,
		LedgerCombination, Unrecordable, LossBudget,
		Parse, NoSource, Overloaded, RateLimited,
		NotPrimary, Fenced, NotOwner, Other,
	}
}

// Reasoner is implemented by typed refusal errors that know their own
// reason (audit.Refusal, mediator.CombinationRefusal).
type Reasoner interface {
	RefusalReason() Reason
}

// Classify maps an error to its Reason: typed errors first (Reasoner
// anywhere in the chain, then the context sentinels), the stable string
// vocabulary as a fallback for errors that crossed a process boundary.
func Classify(err error) Reason {
	if err == nil {
		return Other
	}
	var rr Reasoner
	if errors.As(err, &rr) {
		return rr.RefusalReason()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Timeout
	}
	if errors.Is(err, context.Canceled) {
		return Canceled
	}
	return ClassifyString(err.Error())
}

// ClassifyString maps a refusal message to its Reason. Denial reasons
// recorded by the mediator (and anything read back from the HTTP wire)
// are plain strings; the substrings matched here are part of each
// error's wire contract and are pinned by TestClassifyString.
func ClassifyString(s string) Reason {
	switch {
	case strings.Contains(s, "timeout:") || strings.Contains(s, "deadline exceeded"):
		return Timeout
	case strings.Contains(s, "canceled:") || strings.Contains(s, "context canceled"):
		return Canceled
	case strings.Contains(s, "circuit open"):
		return BreakerOpen
	case strings.Contains(s, "refused by set-size control"):
		return AuditSetSize
	case strings.Contains(s, "refused by overlap control"):
		return AuditOverlap
	case strings.Contains(s, "refused by compromise control"):
		return AuditCompromise
	case strings.Contains(s, "refusing unrecordable release"):
		return Unrecordable
	case strings.Contains(s, "combined with your earlier"):
		return LedgerCombination
	case strings.Contains(s, "fully denied"):
		return Policy
	case strings.Contains(s, "exceeds the requester's MAXLOSS"),
		strings.Contains(s, "requester budget"):
		return LossBudget
	case strings.Contains(s, "piql:") || strings.Contains(s, "bad query"):
		return Parse
	case strings.Contains(s, "no source holds data") || strings.Contains(s, "every source refused"):
		return NoSource
	case strings.Contains(s, "rate limit"):
		return RateLimited
	case strings.Contains(s, "overloaded"):
		return Overloaded
	// "fenced" before "not primary": a fenced node's message may name
	// its role ("not primary (role fenced...)") and the sharper reason
	// wins.
	case strings.Contains(s, "fenced"):
		return Fenced
	case strings.Contains(s, "not primary"):
		return NotPrimary
	// Shard-routing refusals: the wrong-door refusal and a draining
	// shard declining to take ownership of a new requester.
	case strings.Contains(s, "not the owner of requester"),
		strings.Contains(s, "draining: not accepting"):
		return NotOwner
	default:
		return Other
	}
}
