package refusal

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// reasoned is a stand-in for a typed refusal error.
type reasoned struct{ r Reason }

func (e *reasoned) Error() string         { return "typed refusal" }
func (e *reasoned) RefusalReason() Reason { return e.r }

func TestClassifyTypedErrors(t *testing.T) {
	if got := Classify(&reasoned{r: AuditOverlap}); got != AuditOverlap {
		t.Fatalf("Reasoner = %v, want %v", got, AuditOverlap)
	}
	// Wrapped Reasoner still classifies.
	wrapped := fmt.Errorf("source hospitalA: %w", &reasoned{r: LedgerCombination})
	if got := Classify(wrapped); got != LedgerCombination {
		t.Fatalf("wrapped Reasoner = %v", got)
	}
	if got := Classify(context.DeadlineExceeded); got != Timeout {
		t.Fatalf("deadline = %v", got)
	}
	if got := Classify(fmt.Errorf("calling: %w", context.Canceled)); got != Canceled {
		t.Fatalf("canceled = %v", got)
	}
	if got := Classify(nil); got != Other {
		t.Fatalf("nil = %v", got)
	}
	if got := Classify(errors.New("the disk caught fire")); got != Other {
		t.Fatalf("unknown = %v", got)
	}
}

// TestClassifyString pins the wire-message vocabulary: these substrings
// are produced by the audit log, the release ledger, the rewriter, the
// optimizer, the mediator's denial classifier and the PIQL parser. If
// one of these cases fails, either the message changed (update the
// producer or this map deliberately) or the classifier regressed.
func TestClassifyString(t *testing.T) {
	cases := []struct {
		msg  string
		want Reason
	}{
		// mediator.denialReason renderings.
		{"timeout: no answer within 10s", Timeout},
		{"canceled: context canceled", Canceled},
		{"skipped: source hospitalB: circuit open (source presumed down)", BreakerOpen},
		// audit.Refusal.Error renderings.
		{"source lab: audit: refused by set-size control: query set has 2 individuals, minimum is 3", AuditSetSize},
		{"audit: refused by overlap control: overlaps a previous query in 4 individuals, maximum is 2", AuditOverlap},
		{"audit: refused by compromise control: answering would determine individual 7 exactly", AuditCompromise},
		// release-ledger renderings.
		{"mediator: refusing release: combined with your earlier rate-by-test statistics it would pin hidden rate values to 99.0% of their prior range (threshold 90.0%)", LedgerCombination},
		{"mediator: refusing unrecordable release: durable: wal fsync: disk gone", Unrecordable},
		{"audit: refusing unrecordable release: durable: log closed", Unrecordable},
		// rewriting, optimization, integration control.
		{"source hospitalA: query fully denied: //row/id: denied by policy", Policy},
		{"mediator: integrated information loss 0.80 exceeds the requester's MAXLOSS 0.50", LossBudget},
		{"optimizer: requester budget 0.10 below the 0.50 loss the required preservation necessarily causes", LossBudget},
		// parsing and routing.
		{"mediator: piql: expected FOR at offset 0, got \"SELECT\"", Parse},
		{"source: bad query: piql: unterminated string at offset 12", Parse},
		{"mediator: no source holds data matching //nothing", NoSource},
		{"mediator: every source refused: a: down; b: down", NoSource},
		// admission control (shed, not a privacy refusal).
		{"mediator: overloaded: 4 queries in flight at limit 4, queue full", Overloaded},
		{"source hospitalA: 503 Service Unavailable: source hospitalA: overloaded: estimated queue wait 120ms exceeds remaining deadline 50ms", Overloaded},
		{"mediator: rate limit exceeded for requester drWho: retry after 1s", RateLimited},
		{"source lab: 429 Too Many Requests: source lab: rate limit exceeded for requester drWho", RateLimited},
		// replication role refusals (retry against the primary).
		{"mediator: not primary (role standby, epoch 3): this node mirrors the primary and does not grant releases", NotPrimary},
		{"mediator: fenced at epoch 4: a newer primary exists; refusing to grant releases", Fenced},
		// A fenced node naming its role still classifies as fenced.
		{"not primary (role fenced, epoch 4)", Fenced},
		// Shard-routing refusals (retry via the router, 503 never 403).
		{"mediator: shard shard-b is not the owner of requester drWho (owner shard-a)", NotOwner},
		{"mediator: shard shard-a draining: not accepting new requesters", NotOwner},
		{"source front: 503 Service Unavailable: mediator: shard shard-c is not the owner of requester drWho (owner shard-a)", NotOwner},
		// HTTP 503 from a dead node: transport noise, not a known reason.
		{"source hospitalC: 503 Service Unavailable: upstream reset", Other},
	}
	for _, c := range cases {
		if got := ClassifyString(c.msg); got != c.want {
			t.Errorf("ClassifyString(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

func TestAllCoversEveryReasonOnce(t *testing.T) {
	seen := map[Reason]bool{}
	for _, r := range All() {
		if seen[r] {
			t.Fatalf("duplicate reason %v", r)
		}
		seen[r] = true
	}
	if len(seen) != 18 {
		t.Fatalf("All() lists %d reasons; update the test when the vocabulary deliberately grows", len(seen))
	}
}

// TestEnumStaysClosed asserts every reason in All() (except the Other
// catch-all and the two context sentinels, which Classify handles by
// errors.Is) has a wire-string exemplar that ClassifyString maps back to
// it. Adding a reason to the enum without classifier coverage fails
// here: a reason the classifier cannot recover from a message would
// silently degrade to Other the moment the refusal crosses an HTTP hop.
func TestEnumStaysClosed(t *testing.T) {
	exemplar := map[Reason]string{
		Timeout:           "timeout: no answer within 10s",
		Canceled:          "canceled: context canceled",
		BreakerOpen:       "circuit open (source presumed down)",
		Policy:            "query fully denied: //row/id: denied by policy",
		AuditSetSize:      "audit: refused by set-size control: query set has 2 individuals",
		AuditOverlap:      "audit: refused by overlap control: overlaps a previous query",
		AuditCompromise:   "audit: refused by compromise control: answering would determine individual 7",
		LedgerCombination: "refusing release: combined with your earlier rate-by-test statistics",
		Unrecordable:      "refusing unrecordable release: durable: wal fsync: disk gone",
		LossBudget:        "integrated information loss 0.80 exceeds the requester's MAXLOSS 0.50",
		Parse:             "piql: expected FOR at offset 0",
		NoSource:          "no source holds data matching //nothing",
		Overloaded:        "overloaded: 4 queries in flight at limit 4, queue full",
		RateLimited:       "rate limit exceeded for requester drWho",
		NotPrimary:        "not primary (role standby, epoch 3)",
		Fenced:            "fenced at epoch 4: a newer primary exists",
		NotOwner:          "shard shard-b is not the owner of requester drWho (owner shard-a)",
	}
	for _, r := range All() {
		if r == Other {
			continue
		}
		msg, ok := exemplar[r]
		if !ok {
			t.Errorf("reason %q has no wire-string exemplar: add one here and a ClassifyString case, or the reason is lost across HTTP hops", r)
			continue
		}
		if got := ClassifyString(msg); got != r {
			t.Errorf("ClassifyString(%q) = %v, want %v", msg, got, r)
		}
	}
	for r := range exemplar {
		found := false
		for _, a := range All() {
			if a == r {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exemplar for %q is not in All()", r)
		}
	}
}
