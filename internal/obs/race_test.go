package obs

// Race-detector coverage (satellite task): concurrent counter, gauge
// and histogram writes during live /metrics scrapes, and trace
// recording under concurrent ring-buffer reads. These tests assert
// little — their job is to give `go test -race` interleavings to chew
// on at every registry and tracer lock.

import (
	"io"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestConcurrentMetricsWritesDuringScrape(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("piye_func_total", func() float64 { return 1 })
	const writers = 8
	const perWriter = 500
	var wg, scrapers sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: continuous /metrics renders while writers are hot. They
	// run until stop closes, so they wait on their own group — adding
	// them to wg would deadlock wg.Wait against close(stop).
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			h := MetricsHandler(r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				_, _ = io.ReadAll(rec.Result().Body)
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the writers hammer one shared series, half register
			// fresh series mid-scrape.
			shared := r.Counter("piye_race_total", "kind", "shared")
			hist := r.Histogram("piye_race_seconds", nil, "kind", "shared")
			for i := 0; i < perWriter; i++ {
				shared.Inc()
				hist.Observe(float64(i) / 1000)
				r.Gauge("piye_race_gauge", "writer", string(rune('a'+w))).Set(float64(i))
				if w%2 == 0 && i%50 == 0 {
					r.Counter("piye_race_total", "kind", "fresh", "i", string(rune('a'+i%26))).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	if got := r.Counter("piye_race_total", "kind", "shared").Value(); got != writers*perWriter {
		t.Fatalf("shared counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("piye_race_seconds", nil, "kind", "shared").Count(); got != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", got, writers*perWriter)
	}
}

func TestConcurrentTracesDuringRingReads(t *testing.T) {
	tr := NewTracer(16)
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Readers: continuous ring reads and JSON renders (own group; see
	// the scraper note above).
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			h := TraceHandler(tr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.Last(8)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?last=4", nil))
			}
		}()
	}

	// Writers: traces whose spans land from two goroutines, as in the
	// mediator's fan-out.
	const traces = 300
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < traces; i++ {
				trace := tr.Start("racer", "q")
				var spans sync.WaitGroup
				for s := 0; s < 2; s++ {
					spans.Add(1)
					go func(s int) {
						defer spans.Done()
						done := trace.StartSpan("fanout", "src")
						done(OutcomeAnswered)
					}(s)
				}
				spans.Wait()
				trace.Finish(OutcomeAnswered)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	got := tr.Last(16)
	if len(got) != 16 {
		t.Fatalf("ring holds %d traces, want 16", len(got))
	}
	for _, trc := range got {
		if len(trc.Spans) != 2 {
			t.Fatalf("trace %d has %d spans, want 2", trc.ID, len(trc.Spans))
		}
	}
}
