package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text format. A nil
// registry serves an empty (valid) exposition.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler serves the last N finished traces (?last=N, default 16,
// capped at the ring size) as a JSON array, newest first.
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 16
		if s := req.URL.Query().Get("last"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "obs: last must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		traces := tr.Last(n)
		if traces == nil {
			traces = []*Trace{}
		}
		_ = enc.Encode(traces)
	})
}

// Attach mounts the observability surface on an existing mux:
// GET /metrics and GET /debug/trace.
func Attach(mux *http.ServeMux, r *Registry, tr *Tracer) {
	mux.Handle("GET /metrics", MetricsHandler(r))
	mux.Handle("GET /debug/trace", TraceHandler(tr))
}

// AttachHealth mounts the standard health surface on an existing mux:
// GET /healthz (liveness: the process answers) and GET /readyz
// (readiness: ready() returns nil; a nil ready means always ready).
// Readiness failures answer 503 with the reason in the body so an
// orchestrator's probe log says why the node was out of rotation.
func AttachHealth(mux *http.ServeMux, ready func() error) {
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ready\n"))
	})
}

// DebugHandler builds the standalone debug surface served behind the
// daemons' -debug-addr flag: /metrics, /debug/trace and the
// net/http/pprof suite. The pprof handlers are mounted explicitly so
// nothing leaks onto http.DefaultServeMux.
func DebugHandler(r *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	Attach(mux, r, tr)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
