package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("piye_test_total", "reason", "policy-denied")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same (name, labels) resolves to the same series.
	if r.Counter("piye_test_total", "reason", "policy-denied") != c {
		t.Fatal("re-resolving a series must return the same counter")
	}
	g := r.Gauge("piye_test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("piye_test_seconds", []float64{0.01, 0.1, 1}, "stage", "parse")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // above every bound: only +Inf
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 5.054 || got > 5.056 {
		t.Fatalf("hist sum = %v, want ~5.055", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("piye_q_total", "queries")
	r.Counter("piye_q_total", "outcome", "answered").Add(7)
	r.Counter("piye_q_total", "outcome", "refused").Add(2)
	r.Gauge("piye_up").Set(1)
	r.Histogram("piye_lat_seconds", []float64{0.1, 1}).Observe(0.5)
	r.CounterFunc("piye_hits_total", func() float64 { return 41 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP piye_q_total queries",
		"# TYPE piye_q_total counter",
		`piye_q_total{outcome="answered"} 7`,
		`piye_q_total{outcome="refused"} 2`,
		"# TYPE piye_up gauge",
		"piye_up 1",
		`piye_lat_seconds_bucket{le="0.1"} 0`,
		`piye_lat_seconds_bucket{le="1"} 1`,
		`piye_lat_seconds_bucket{le="+Inf"} 1`,
		"piye_lat_seconds_sum 0.5",
		"piye_lat_seconds_count 1",
		"piye_hits_total 41",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several series.
	if n := strings.Count(out, "# TYPE piye_q_total"); n != 1 {
		t.Errorf("family piye_q_total has %d TYPE headers, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("piye_esc_total", "msg", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `msg="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", nil).Observe(1)
	r.CounterFunc("f", func() float64 { return 1 })
	r.Help("x", "h")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	trace := tr.Start("alice", "FOR //x RETURN //y")
	done := trace.StartSpan("parse", "")
	done(OutcomeAnswered)
	trace.Finish(OutcomeAnswered)
	if got := tr.Last(5); got != nil {
		t.Fatalf("nil tracer Last = %v, want nil", got)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		trace := tr.Start("alice", "q")
		done := trace.StartSpan("parse", "")
		time.Sleep(time.Millisecond)
		done(OutcomeAnswered)
		trace.Finish(OutcomeAnswered)
	}
	got := tr.Last(10)
	if len(got) != 3 {
		t.Fatalf("ring keeps %d traces, want 3", len(got))
	}
	// Newest first, ids descending.
	if got[0].ID != 5 || got[1].ID != 4 || got[2].ID != 3 {
		t.Fatalf("ids = %d,%d,%d, want 5,4,3", got[0].ID, got[1].ID, got[2].ID)
	}
	if len(got[0].Spans) != 1 || got[0].Spans[0].Stage != "parse" {
		t.Fatalf("spans = %+v", got[0].Spans)
	}
	if got[0].Spans[0].Duration <= 0 || got[0].Duration <= 0 {
		t.Fatal("durations must be positive")
	}
	if got := tr.Last(2); len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("Last(2) = %d traces, first id %d", len(got), got[0].ID)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.Start("bob", "FOR //compliance/row RETURN AVG(//rate)")
	trace.StartSpan("fanout", "hospitalA")(OutcomeTimeout)
	trace.Finish(RefusedOutcome("timeout"))

	rec := httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?last=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var out []struct {
		Requester string `json:"requester"`
		Outcome   string `json:"outcome"`
		Spans     []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json: %v\n%s", err, rec.Body.String())
	}
	if len(out) != 1 || out[0].Requester != "bob" || out[0].Outcome != "refused:timeout" {
		t.Fatalf("traces = %+v", out)
	}
	if len(out[0].Spans) != 1 || out[0].Spans[0].Source != "hospitalA" {
		t.Fatalf("spans = %+v", out[0].Spans)
	}

	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?last=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad last: status %d, want 400", rec.Code)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("piye_h_total").Add(9)
	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "piye_h_total 9") {
		t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
}
