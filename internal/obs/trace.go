package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span outcomes. Per-stage outcomes reuse the refusal-reason vocabulary
// where one applies: "refused:<reason>" keeps the trace and the
// refusal-reason counters telling the same story.
const (
	OutcomeAnswered = "answered"
	OutcomeTimeout  = "timeout"
	OutcomeSkipped  = "skipped"
	OutcomeError    = "error"
)

// RefusedOutcome renders a refusal outcome for a span or trace:
// "refused:<reason>".
func RefusedOutcome(reason string) string { return "refused:" + reason }

// Span is one pipeline stage of one query: stage name, optional source
// (for per-source fan-out spans), duration and outcome.
type Span struct {
	Stage    string        `json:"stage"`
	Source   string        `json:"source,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  string        `json:"outcome"`
}

// Trace is the record of one query through the pipeline. All methods
// are safe on a nil *Trace (tracing disabled) and for concurrent use —
// fan-out spans are recorded from per-source goroutines.
type Trace struct {
	ID        uint64    `json:"id"`
	Requester string    `json:"requester"`
	Query     string    `json:"query"`
	Shard     string    `json:"shard,omitempty"`
	Begin     time.Time `json:"begin"`

	mu       sync.Mutex
	Spans    []Span        `json:"spans"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  string        `json:"outcome"`

	tracer *Tracer
}

// StartSpan begins a span for stage; call the returned func with the
// span's outcome to record it. The typical call site is
//
//	done := tr.StartSpan("rewrite", "")
//	... work ...
//	done(obs.OutcomeAnswered)
func (t *Trace) StartSpan(stage, source string) func(outcome string) {
	if t == nil {
		return func(string) {}
	}
	start := time.Now()
	return func(outcome string) {
		sp := Span{Stage: stage, Source: source, Start: start, Duration: time.Since(start), Outcome: outcome}
		t.mu.Lock()
		t.Spans = append(t.Spans, sp)
		t.mu.Unlock()
	}
}

// SetShard stamps the trace with the shard that served the query, so a
// tier-wide trace search can attribute each query to its shard.
// Nil-safe; call before Finish.
func (t *Trace) SetShard(shard string) {
	if t == nil || shard == "" {
		return
	}
	t.mu.Lock()
	t.Shard = shard
	t.mu.Unlock()
}

// Record appends an already-timed span. Instrumented components that
// time a stage for a latency histogram anyway use this instead of
// StartSpan to avoid a second clock read. Nil-safe.
func (t *Trace) Record(stage, source string, start time.Time, d time.Duration, outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Spans = append(t.Spans, Span{Stage: stage, Source: source, Start: start, Duration: d, Outcome: outcome})
	t.mu.Unlock()
}

// Finish closes the trace with its overall outcome and publishes it to
// the tracer's ring buffer. Finish must be called exactly once.
func (t *Trace) Finish(outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Duration = time.Since(t.Begin)
	t.Outcome = outcome
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.push(t)
	}
}

// snapshot returns a copy safe to serialize while new traces are being
// recorded. The trace itself is finished (immutable) by the time it is
// in the ring, but copying keeps the reader decoupled anyway.
func (t *Trace) snapshot() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Trace{
		ID:        t.ID,
		Requester: t.Requester,
		Query:     t.Query,
		Shard:     t.Shard,
		Begin:     t.Begin,
		Spans:     append([]Span(nil), t.Spans...),
		Duration:  t.Duration,
		Outcome:   t.Outcome,
	}
}

// Tracer hands out per-query traces and keeps the last Capacity
// finished ones in a ring buffer for /debug/trace. A nil *Tracer is
// valid and disables tracing.
type Tracer struct {
	next atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // ring[next%cap] is the oldest slot
	n    uint64   // finished traces ever pushed
}

// DefaultTraceRing is the default ring capacity.
const DefaultTraceRing = 64

// NewTracer returns a tracer keeping the last capacity finished traces
// (DefaultTraceRing when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// Start begins a trace for one query. Returns nil (a valid no-op trace)
// on a nil tracer.
func (tr *Tracer) Start(requester, query string) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{
		ID:        tr.next.Add(1),
		Requester: requester,
		Query:     query,
		Begin:     time.Now(),
		// Pre-size for a typical pipeline (7 mediator stages + a few
		// source spans) so recording spans does not regrow the slice.
		Spans:  make([]Span, 0, 8),
		tracer: tr,
	}
}

func (tr *Tracer) push(t *Trace) {
	tr.mu.Lock()
	tr.ring[tr.n%uint64(len(tr.ring))] = t
	tr.n++
	tr.mu.Unlock()
}

// Last returns up to n most recent finished traces, newest first.
func (tr *Tracer) Last(n int) []*Trace {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	capN := uint64(len(tr.ring))
	have := tr.n
	if have > capN {
		have = capN
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]*Trace, 0, have)
	for i := uint64(0); i < have; i++ {
		t := tr.ring[(tr.n-1-i)%capN]
		out = append(out, t.snapshot())
	}
	return out
}
