package obs

import "runtime"

// RegisterProcessMetrics adds process-level series sampled at scrape
// time: goroutine count, heap in use, and completed GC cycles. Call it
// once per process on the registry behind /metrics.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.Help("piye_goroutines", "Current number of goroutines.")
	r.GaugeFunc("piye_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Help("piye_heap_alloc_bytes", "Bytes of allocated heap objects.")
	r.GaugeFunc("piye_heap_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.Help("piye_gc_cycles_total", "Completed garbage-collection cycles.")
	r.CounterFunc("piye_gc_cycles_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
