// Package obs is the observability layer of the deployment: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms exported in Prometheus text format)
// plus a lightweight per-query trace that records one span per pipeline
// stage (trace.go) and serves the last N traces from a ring buffer
// (http.go).
//
// Design constraints, in order:
//
//   - the instrumented hot path must stay hot: counters and histograms
//     are resolved once at construction and updated with single atomic
//     operations, never under the registry lock;
//   - instrumentation must be unconditional in the instrumented code:
//     every method is a safe no-op on a nil receiver, so a component
//     built without a Registry pays one nil check per event and the
//     call sites carry no `if obs != nil` noise;
//   - scrapes must not distort what they observe: WritePrometheus reads
//     atomics and takes the registry lock only to snapshot the series
//     list, so a scrape never blocks a query.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry is valid everywhere and yields nil
// metrics whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	series map[string]metric // fully-qualified series id -> metric
	order  []string          // ids in registration order (sorted at export)
	help   map[string]string // family name -> help text
}

// metric is anything the exporter can render.
type metric interface {
	family() string
	labels() string // rendered {k="v",...} or ""
	write(b *strings.Builder, family, labels string)
	kind() string // "counter" | "gauge" | "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]metric{}, help: map[string]string{}}
}

// seriesID builds the canonical identity of one series: family plus the
// label pairs in the order given. Call sites use fixed label orders, so
// no sorting is needed for identity.
func seriesID(name string, kv []string) string {
	if len(kv) == 0 {
		return name
	}
	return name + "{" + renderLabels(kv) + "}"
}

func renderLabels(kv []string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the existing metric under id or installs make().
func (r *Registry) register(id string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[id]; ok {
		return m
	}
	m := mk()
	r.series[id] = m
	r.order = append(r.order, id)
	return m
}

// Help sets the HELP text for a metric family (optional).
func (r *Registry) Help(family, text string) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
	return r
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct {
	fam string
	lbl string
	v   atomic.Uint64
}

func (c *Counter) family() string { return c.fam }
func (c *Counter) labels() string { return c.lbl }
func (c *Counter) kind() string   { return "counter" }
func (c *Counter) write(b *strings.Builder, family, labels string) {
	writeSample(b, family, labels, float64(c.v.Load()))
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter resolves (registering if new) the counter series name{kv...}.
// kv is alternating label key, value pairs.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	id := seriesID(name, kv)
	return r.register(id, func() metric {
		return &Counter{fam: name, lbl: renderLabels(kv)}
	}).(*Counter)
}

// --- Gauge -----------------------------------------------------------------

// Gauge is a value that can go up and down, stored as float bits. Nil-safe.
type Gauge struct {
	fam string
	lbl string
	v   atomic.Uint64 // math.Float64bits
}

func (g *Gauge) family() string { return g.fam }
func (g *Gauge) labels() string { return g.lbl }
func (g *Gauge) kind() string   { return "gauge" }
func (g *Gauge) write(b *strings.Builder, family, labels string) {
	writeSample(b, family, labels, math.Float64frombits(g.v.Load()))
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; gauges are written rarely).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Gauge resolves (registering if new) the gauge series name{kv...}.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	id := seriesID(name, kv)
	return r.register(id, func() metric {
		return &Gauge{fam: name, lbl: renderLabels(kv)}
	}).(*Gauge)
}

// --- Func metrics -----------------------------------------------------------

// funcMetric samples a callback at scrape time: the bridge for values a
// subsystem already counts itself (cache hit totals, breaker states).
type funcMetric struct {
	fam  string
	lbl  string
	typ  string
	eval func() float64
}

func (f *funcMetric) family() string { return f.fam }
func (f *funcMetric) labels() string { return f.lbl }
func (f *funcMetric) kind() string   { return f.typ }
func (f *funcMetric) write(b *strings.Builder, family, labels string) {
	writeSample(b, family, labels, f.eval())
}

// CounterFunc registers a callback sampled at scrape time and exported
// as a counter. The callback must be monotonic and safe for concurrent
// use. Re-registering the same series replaces nothing and keeps the
// first callback.
func (r *Registry) CounterFunc(name string, fn func() float64, kv ...string) {
	if r == nil || fn == nil {
		return
	}
	id := seriesID(name, kv)
	r.register(id, func() metric {
		return &funcMetric{fam: name, lbl: renderLabels(kv), typ: "counter", eval: fn}
	})
}

// GaugeFunc registers a callback sampled at scrape time and exported as
// a gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	if r == nil || fn == nil {
		return
	}
	id := seriesID(name, kv)
	r.register(id, func() metric {
		return &funcMetric{fam: name, lbl: renderLabels(kv), typ: "gauge", eval: fn}
	})
}

// --- Histogram --------------------------------------------------------------

// DefLatencyBuckets are the default histogram bounds in seconds: 100µs
// to 10s, covering everything from a cached parse to a hung source at
// its deadline.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Nil-safe.
type Histogram struct {
	fam     string
	lbl     string
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float bits, CAS-updated
}

func (h *Histogram) family() string { return h.fam }
func (h *Histogram) labels() string { return h.lbl }
func (h *Histogram) kind() string   { return "histogram" }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the scan is
	// branch-predictable; a binary search buys nothing here.
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) write(b *strings.Builder, family, labels string) {
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(b, family+"_bucket", appendLabel(labels, "le", formatFloat(ub)), float64(cum))
	}
	writeSample(b, family+"_bucket", appendLabel(labels, "le", "+Inf"), float64(h.count.Load()))
	writeSample(b, family+"_sum", labels, h.Sum())
	writeSample(b, family+"_count", labels, float64(h.count.Load()))
}

// Histogram resolves (registering if new) a histogram with the given
// upper bounds (DefLatencyBuckets when nil).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	id := seriesID(name, kv)
	return r.register(id, func() metric {
		h := &Histogram{fam: name, lbl: renderLabels(kv), bounds: bounds}
		h.buckets = make([]atomic.Uint64, len(bounds))
		return h
	}).(*Histogram)
}

// --- Export -----------------------------------------------------------------

func appendLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		fmt.Fprintf(b, "%d", int64(v))
	default:
		fmt.Fprintf(b, "%g", v)
	}
	b.WriteByte('\n')
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, grouped by family with TYPE (and HELP, when set)
// headers, families and series in lexicographic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]metric, 0, len(r.order))
	for _, id := range r.order {
		ms = append(ms, r.series[id])
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	// Sort by (family, labels) so every family's series are contiguous:
	// sorting raw ids would interleave family "a" with family "ab"
	// (because '{' > 'b') and emit duplicate TYPE headers.
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family() != ms[j].family() {
			return ms[i].family() < ms[j].family()
		}
		return ms[i].labels() < ms[j].labels()
	})
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if fam := m.family(); fam != lastFamily {
			lastFamily = fam
			if h, ok := help[fam]; ok {
				b.WriteString("# HELP " + fam + " " + h + "\n")
			}
			b.WriteString("# TYPE " + fam + " " + m.kind() + "\n")
		}
		m.write(&b, m.family(), m.labels())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
