// Package replica streams a primary mediator's durable log to a warm
// standby and arbitrates failover with an epoch fencing token.
//
// The protocol is deliberately small: one HTTP GET
// (/replica/stream?from=<seq>&epoch=<e>) whose response body is an
// unbounded sequence of frames, each a durable WAL record
// (length-prefixed, CRC32C-checked — the exact encoding the log itself
// uses on disk, via durable.AppendRecord/DecodeRecord) whose payload
// carries a one-byte frame type and the sender's current epoch:
//
//	record payload:
//	  type  uint8      // 'h' hello, 's' snapshot, 'e' entry, 'b' heartbeat
//	  epoch uint64 LE  // sender's fencing epoch at send time
//	  data  []byte     // type-specific
//
// A hello frame (seq 0, JSON data) opens every stream and tells the
// standby where the primary stands. A snapshot frame (seq = covered
// sequence, data = snapshot payload) is sent when the requested resume
// point is already compacted away. Entry frames carry live WAL records
// at their true sequence numbers. Heartbeat frames (seq 0, data =
// primary's last sequence) flow when the log is idle so the standby can
// measure lag and detect a dead pipe.
//
// Because every frame embeds the sender's epoch, fencing needs no
// side channel: a standby that has adopted epoch N refuses any frame
// stamped < N, and a primary that sees a request stamped > its own
// epoch knows a successor exists and fences itself.
package replica

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"privateiye/internal/durable"
)

// Frame types.
const (
	FrameHello     byte = 'h'
	FrameSnapshot  byte = 's'
	FrameEntry     byte = 'e'
	FrameHeartbeat byte = 'b'
)

// maxFrame bounds one encoded frame; anything claiming to be larger is
// treated as a torn/corrupt stream (mirrors the durable record cap).
const maxFrame = 17 << 20

// ErrTornFrame means the stream produced bytes that do not decode as a
// complete, checksum-valid frame — a cut connection mid-frame or
// corruption in transit. The reader must drop the connection and
// resync; it must never guess at a partial frame.
var ErrTornFrame = errors.New("replica: torn or corrupt frame")

// ErrStaleEpoch means a peer presented an epoch older than one we have
// already adopted: a deposed primary still talking. Its frames must be
// refused wholesale — applying even one would let a fenced node keep
// writing history.
var ErrStaleEpoch = errors.New("replica: stale epoch")

// Frame is one decoded protocol frame.
type Frame struct {
	Type  byte
	Epoch uint64 // sender's fencing epoch
	Seq   uint64 // WAL sequence (hello/heartbeat: 0)
	Data  []byte
}

// Hello is the JSON body of the stream-opening frame.
type Hello struct {
	Epoch   uint64 `json:"epoch"`
	SnapSeq uint64 `json:"snap_seq"`
	LastSeq uint64 `json:"last_seq"`
}

// EncodeFrame renders f as one durable record.
func EncodeFrame(f Frame) []byte {
	body := make([]byte, 9+len(f.Data))
	body[0] = f.Type
	binary.LittleEndian.PutUint64(body[1:9], f.Epoch)
	copy(body[9:], f.Data)
	return durable.AppendRecord(nil, f.Seq, body)
}

// encodeHello renders the stream-opening frame.
func encodeHello(h Hello) []byte {
	data, _ := json.Marshal(h)
	return EncodeFrame(Frame{Type: FrameHello, Epoch: h.Epoch, Data: data})
}

// encodeHeartbeat renders an idle-stream keepalive carrying lastSeq.
func encodeHeartbeat(epoch, lastSeq uint64) []byte {
	var data [8]byte
	binary.LittleEndian.PutUint64(data[:], lastSeq)
	return EncodeFrame(Frame{Type: FrameHeartbeat, Epoch: epoch, Data: data[:]})
}

// ReadFrame reads and verifies one frame from r. io.EOF is returned
// only at a clean frame boundary; a connection cut mid-frame or a
// checksum failure is ErrTornFrame.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length < 9+9 || length > maxFrame {
		return Frame{}, fmt.Errorf("%w: impossible frame length %d", ErrTornFrame, length)
	}
	buf := make([]byte, 8+int(length))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[8:]); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	seq, payload, _, err := durable.DecodeRecord(buf)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	if len(payload) < 9 {
		return Frame{}, fmt.Errorf("%w: frame payload too short", ErrTornFrame)
	}
	return Frame{
		Type:  payload[0],
		Epoch: binary.LittleEndian.Uint64(payload[1:9]),
		Seq:   seq,
		Data:  append([]byte(nil), payload[9:]...),
	}, nil
}

// heartbeatLastSeq decodes a heartbeat frame's data.
func heartbeatLastSeq(f Frame) uint64 {
	if len(f.Data) != 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(f.Data)
}
