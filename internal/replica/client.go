package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"privateiye/internal/obs"
)

// Applier is the standby-side sink for a replication stream. The
// mediator implements it over its release ledger + query history +
// local durable log, so a standby's state dir is a faithful (possibly
// slightly stale) mirror of the primary's.
type Applier interface {
	// ApplyEntry replays one WAL record at its primary-assigned
	// sequence. It must refuse non-contiguous sequences (gap or
	// duplicate) rather than guess — returning an error makes the
	// client resync instead of silently diverging.
	ApplyEntry(seq uint64, payload []byte) error
	// ApplySnapshot resets all state to the snapshot covering seq.
	ApplySnapshot(seq uint64, state []byte) error
	// LastSeq reports the highest applied sequence — the resume point.
	LastSeq() uint64
}

// Status is a point-in-time view of a standby's replication progress.
type Status struct {
	Connected    bool   `json:"connected"`
	CaughtUp     bool   `json:"caught_up"`
	Applied      uint64 `json:"applied_seq"`
	PrimaryLast  uint64 `json:"primary_last_seq"`
	Lag          uint64 `json:"lag"`
	PrimaryEpoch uint64 `json:"primary_epoch"`
	Resyncs      uint64 `json:"resyncs"`
	LastError    string `json:"last_error,omitempty"`
}

// Client tails a primary's replication stream and applies it. Run it in
// one goroutine; it reconnects (and, after divergence, resyncs) until
// the context is cancelled — typically at promotion.
type Client struct {
	primary string // base URL of the primary mediator
	applier Applier
	node    *Node

	// HTTP is the transport (default http.DefaultTransport with no
	// overall timeout — the stream is intentionally unbounded).
	HTTP *http.Client
	// Reconnect is the delay between stream attempts (default 200ms).
	Reconnect time.Duration
	// LagMax is the readiness threshold: the standby reports CaughtUp
	// while its lag is at or below this many records (default 0 — fully
	// caught up).
	LagMax uint64

	mu          sync.Mutex
	connected   bool
	primaryLast uint64
	primEpoch   uint64
	resyncs     uint64
	lastErr     string

	mApplied   *obs.Counter
	mResyncs   *obs.Counter
	mSnapshots *obs.Counter
	mStale     *obs.Counter
}

// NewClient builds a standby client for the primary at baseURL.
func NewClient(baseURL string, ap Applier, node *Node, reg *obs.Registry) *Client {
	c := &Client{
		primary:   baseURL,
		applier:   ap,
		node:      node,
		HTTP:      &http.Client{},
		Reconnect: 200 * time.Millisecond,
	}
	if reg != nil {
		reg.Help("piye_replica_frames_applied_total", "Replication entry frames applied by this standby.")
		reg.Help("piye_replica_resyncs_total", "Stream restarts after a torn frame, divergence or disconnect.")
		reg.Help("piye_replica_snapshots_installed_total", "Full snapshots installed from the primary.")
		reg.Help("piye_replica_stale_frames_total", "Frames refused because the sender's epoch was stale.")
		reg.Help("piye_replica_lag", "Records the primary has that this standby has not applied.")
		c.mApplied = reg.Counter("piye_replica_frames_applied_total")
		c.mResyncs = reg.Counter("piye_replica_resyncs_total")
		c.mSnapshots = reg.Counter("piye_replica_snapshots_installed_total")
		c.mStale = reg.Counter("piye_replica_stale_frames_total")
		reg.GaugeFunc("piye_replica_lag", func() float64 { return float64(c.Status().Lag) })
	}
	return c
}

// Run tails the primary until ctx is cancelled, reconnecting after
// every stream failure. Divergence (duplicate sequence, torn frame) is
// handled by resyncing from the applier's last sequence — never by
// applying a frame out of order.
func (c *Client) Run(ctx context.Context) {
	for ctx.Err() == nil {
		err := c.streamOnce(ctx)
		c.mu.Lock()
		c.connected = false
		if err != nil && ctx.Err() == nil {
			c.resyncs++
			c.lastErr = err.Error()
		}
		c.mu.Unlock()
		if err != nil && ctx.Err() == nil {
			c.mResyncs.Inc()
		}
		delay := c.Reconnect
		if delay <= 0 {
			delay = 200 * time.Millisecond
		}
		select {
		case <-ctx.Done():
		case <-time.After(delay):
		}
	}
}

// streamOnce opens one stream and applies frames until it breaks.
func (c *Client) streamOnce(ctx context.Context) error {
	from := c.applier.LastSeq()
	u := fmt.Sprintf("%s/replica/stream?from=%d&epoch=%s",
		c.primary, from, url.QueryEscape(fmt.Sprint(c.node.Epoch())))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("replica: primary refused stream: %s: %s", resp.Status, body)
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		f, err := ReadFrame(br)
		if err == io.EOF {
			return fmt.Errorf("replica: stream ended")
		}
		if err != nil {
			return err // torn frame: resync
		}

		// Epoch discipline on every frame. A stale sender is refused
		// wholesale; a newer epoch is adopted (we are following a
		// primary that was itself re-promoted).
		own := c.node.Epoch()
		if f.Epoch < own {
			c.mStale.Inc()
			return fmt.Errorf("%w: frame epoch %d < adopted epoch %d", ErrStaleEpoch, f.Epoch, own)
		}
		if f.Epoch > own {
			if _, err := c.node.Observe(f.Epoch); err != nil {
				return err
			}
		}

		switch f.Type {
		case FrameHello:
			var h Hello
			if err := json.Unmarshal(f.Data, &h); err != nil {
				return fmt.Errorf("%w: bad hello: %v", ErrTornFrame, err)
			}
			c.mu.Lock()
			c.connected = true
			c.primaryLast = h.LastSeq
			c.primEpoch = h.Epoch
			c.lastErr = ""
			c.mu.Unlock()
		case FrameSnapshot:
			if err := c.applier.ApplySnapshot(f.Seq, f.Data); err != nil {
				return fmt.Errorf("replica: installing snapshot at seq %d: %w", f.Seq, err)
			}
			c.mSnapshots.Inc()
			c.noteApplied(f.Seq)
		case FrameEntry:
			if last := c.applier.LastSeq(); f.Seq <= last {
				return fmt.Errorf("replica: duplicate sequence %d (already applied through %d) — resyncing rather than rewriting history", f.Seq, last)
			}
			if err := c.applier.ApplyEntry(f.Seq, f.Data); err != nil {
				return fmt.Errorf("replica: applying seq %d: %w", f.Seq, err)
			}
			c.mApplied.Inc()
			c.noteApplied(f.Seq)
		case FrameHeartbeat:
			c.mu.Lock()
			if hs := heartbeatLastSeq(f); hs > c.primaryLast {
				c.primaryLast = hs
			}
			c.mu.Unlock()
		default:
			return fmt.Errorf("%w: unknown frame type %q", ErrTornFrame, f.Type)
		}
	}
}

// noteApplied advances the primary-progress watermark alongside our own.
func (c *Client) noteApplied(seq uint64) {
	c.mu.Lock()
	if seq > c.primaryLast {
		c.primaryLast = seq
	}
	c.mu.Unlock()
}

// Status reports replication progress; safe to call from any goroutine.
func (c *Client) Status() Status {
	applied := c.applier.LastSeq()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Connected:    c.connected,
		Applied:      applied,
		PrimaryLast:  c.primaryLast,
		PrimaryEpoch: c.primEpoch,
		Resyncs:      c.resyncs,
		LastError:    c.lastErr,
	}
	if c.primaryLast > applied {
		st.Lag = c.primaryLast - applied
	}
	st.CaughtUp = c.connected && st.Lag <= c.LagMax
	return st
}

// FencePeer posts epoch to the peer mediator's fence endpoint until it
// acknowledges or ctx expires — the promoted successor's way of making
// sure a revived old primary learns it has been deposed even if no
// standby ever streams from it again. A connection error just retries:
// a dead peer is fenced the moment it comes back and answers.
func FencePeer(ctx context.Context, hc *http.Client, peerURL string, epoch uint64, retry time.Duration) error {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	if retry <= 0 {
		retry = 250 * time.Millisecond
	}
	u := fmt.Sprintf("%s/replica/fence?epoch=%d", peerURL, epoch)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err == nil {
			var ack struct {
				Epoch uint64 `json:"epoch"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && decErr == nil && ack.Epoch >= epoch {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retry):
		}
	}
}

// ErrNotCaughtUp is returned by readiness checks while a standby's lag
// exceeds its threshold.
var ErrNotCaughtUp = errors.New("replica: standby not caught up")
