package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"privateiye/internal/durable"
	"privateiye/internal/obs"
)

// Server ships a durable log to standbys over HTTP. It is mounted on
// every mediator regardless of role — a standby answers stream requests
// with 503 until it is promoted, at which point the same handler starts
// serving for real.
type Server struct {
	log  *durable.Log
	node *Node

	// Heartbeat is the idle-stream keepalive period (default 500ms). It
	// bounds both the standby's lag-measurement staleness and how long a
	// dead connection lingers undetected.
	Heartbeat time.Duration

	// Mangle, when non-nil, is a test failpoint: it may rewrite one
	// outgoing frame's bytes (corrupt a checksum, truncate mid-frame,
	// re-encode a duplicate sequence). If it returns anything other than
	// the original bytes the stream terminates after writing them,
	// modelling a connection that dies along with the fault.
	Mangle func(frame []byte) []byte

	mShipped *obs.Counter
	mStreams *obs.Gauge
	mRefused *obs.Counter
}

// NewServer builds a stream server for log, fenced by node.
func NewServer(log *durable.Log, node *Node, reg *obs.Registry) *Server {
	s := &Server{log: log, node: node, Heartbeat: 500 * time.Millisecond}
	if reg != nil {
		reg.Help("piye_replica_frames_shipped_total", "Replication frames written to standby streams.")
		reg.Help("piye_replica_streams", "Replication streams currently open to standbys.")
		reg.Help("piye_replica_stream_refusals_total", "Stream requests refused because this node is not primary.")
		s.mShipped = reg.Counter("piye_replica_frames_shipped_total")
		s.mStreams = reg.Gauge("piye_replica_streams")
		s.mRefused = reg.Counter("piye_replica_stream_refusals_total")
	}
	return s
}

// ServeStream handles GET /replica/stream?from=<seq>&epoch=<e>. The
// response body never ends on its own: hello, then (if the resume point
// is compacted away) a snapshot, then entries as they are appended,
// with heartbeats while idle.
func (s *Server) ServeStream(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil && r.URL.Query().Get("from") != "" {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	peerEpoch, _ := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)

	// A stream request stamped with a higher epoch than ours proves a
	// promoted successor exists; adopting it fences this node before we
	// could ship (or grant) anything more.
	if _, err := s.node.Observe(peerEpoch); err != nil {
		http.Error(w, "epoch not durable", http.StatusInternalServerError)
		return
	}
	if s.node.Role() != RolePrimary {
		s.mRefused.Inc()
		http.Error(w, fmt.Sprintf("not primary (role %s, epoch %d)", s.node.Role(), s.node.Epoch()), http.StatusServiceUnavailable)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	s.mStreams.Add(1)
	defer s.mStreams.Add(-1)

	write := func(frame []byte) (ok bool) {
		out := frame
		if s.Mangle != nil {
			out = s.Mangle(frame)
		}
		if _, err := w.Write(out); err != nil {
			return false
		}
		s.mShipped.Inc()
		return bytes.Equal(out, frame) // a mangled frame kills the stream
	}

	if !write(encodeHello(Hello{Epoch: s.node.Epoch(), SnapSeq: snapSeqOf(s.log), LastSeq: s.log.LastSeq()})) {
		return
	}
	flusher.Flush()

	hb := s.Heartbeat
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	tick := time.NewTicker(hb)
	defer tick.Stop()

	sent := from
	for {
		// Take the change channel before reading the tail so an append
		// between the two wakes the next wait immediately.
		changed := s.log.Changed()
		entries, _, snapNeeded := s.log.TailFrom(sent)
		if snapNeeded {
			state, snapSeq, err := s.log.SnapshotPayload()
			if err != nil {
				return // snapshot unreadable; the standby will resync
			}
			if !write(EncodeFrame(Frame{Type: FrameSnapshot, Epoch: s.node.Epoch(), Seq: snapSeq, Data: state})) {
				return
			}
			sent = snapSeq
		}
		for _, e := range entries {
			if e.Seq <= sent {
				continue
			}
			if !write(EncodeFrame(Frame{Type: FrameEntry, Epoch: s.node.Epoch(), Seq: e.Seq, Data: e.Payload})) {
				return
			}
			sent = e.Seq
		}
		flusher.Flush()

		select {
		case <-r.Context().Done():
			return
		case <-changed:
		case <-tick.C:
			if !write(encodeHeartbeat(s.node.Epoch(), s.log.LastSeq())) {
				return
			}
			flusher.Flush()
		}
		// A node fenced mid-stream must stop shipping: its log may be
		// about to diverge from the successor's.
		if s.node.Role() != RolePrimary {
			return
		}
	}
}

// ServeFence handles POST /replica/fence?epoch=<e> — the promoted
// successor's active fencing call. Observing the higher epoch demotes
// this node; the response acknowledges with our (now adopted) epoch so
// the caller knows the fence took.
func (s *Server) ServeFence(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		http.Error(w, "bad epoch", http.StatusBadRequest)
		return
	}
	fenced, err := s.node.Observe(epoch)
	if err != nil {
		http.Error(w, "epoch not durable", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"epoch":  s.node.Epoch(),
		"role":   s.node.Role().String(),
		"fenced": fenced,
	})
}

// snapSeqOf reads the log's snapshot boundary (TailFrom with an
// impossible cursor returns it without copying the tail).
func snapSeqOf(l *durable.Log) uint64 {
	_, snapSeq, _ := l.TailFrom(^uint64(0))
	return snapSeq
}
