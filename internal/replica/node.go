package replica

import (
	"fmt"
	"sync"

	"privateiye/internal/durable"
	"privateiye/internal/obs"
)

// Role is a node's place in the replication pair.
type Role int32

const (
	// RolePrimary serves queries and ships its log to standbys.
	RolePrimary Role = iota
	// RoleStandby replays the primary's log and refuses queries.
	RoleStandby
	// RolePromoting is the transient state while a standby durably bumps
	// its epoch; queries are still refused.
	RolePromoting
	// RoleFenced is a deposed primary: it has seen a higher epoch and
	// refuses all queries and ledger writes until an operator retires or
	// re-seeds it. Fencing is terminal by design — a node that could
	// un-fence itself could also double-grant.
	RoleFenced
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	case RolePromoting:
		return "promoting"
	case RoleFenced:
		return "fenced"
	}
	return fmt.Sprintf("Role(%d)", int32(r))
}

// Node holds a mediator's replication identity: its role and its
// durably persisted fencing epoch. All methods are safe for concurrent
// use; epoch changes hit disk before they take effect in memory, so a
// crash can lose an epoch bump (and retry it) but can never roll one
// back.
type Node struct {
	dir string

	mu    sync.Mutex
	epoch uint64
	role  Role

	mPromotions *obs.Counter
	mFences     *obs.Counter
}

// OpenNode loads (or initialises) the epoch persisted in dir and
// assumes the given starting role. A brand-new primary starts at epoch
// 1 — epoch 0 is reserved for "never fenced", so a standby at 0 adopts
// whatever its primary presents.
func OpenNode(dir string, role Role, reg *obs.Registry) (*Node, error) {
	epoch, err := durable.LoadEpoch(dir)
	if err != nil {
		return nil, err
	}
	if epoch == 0 && role == RolePrimary {
		epoch = 1
		if err := durable.StoreEpoch(dir, epoch); err != nil {
			return nil, err
		}
	}
	n := &Node{dir: dir, epoch: epoch, role: role}
	if reg != nil {
		reg.Help("piye_replica_epoch", "Durably persisted fencing epoch of this node.")
		reg.Help("piye_replica_role", "Replication role: 0 primary, 1 standby, 2 promoting, 3 fenced.")
		reg.Help("piye_replica_promotions_total", "Standby-to-primary promotions performed by this node.")
		reg.Help("piye_replica_fences_total", "Times this node fenced itself after observing a higher epoch.")
		reg.GaugeFunc("piye_replica_epoch", func() float64 { return float64(n.Epoch()) })
		reg.GaugeFunc("piye_replica_role", func() float64 { return float64(n.Role()) })
		n.mPromotions = reg.Counter("piye_replica_promotions_total")
		n.mFences = reg.Counter("piye_replica_fences_total")
	}
	return n, nil
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Observe notes an epoch presented by a peer. A higher epoch than our
// own is adopted and persisted before this returns; if this node
// believed itself primary (or was mid-promotion), a higher epoch proves
// a successor exists and the node fences itself. fenced reports whether
// this call demoted the node.
func (n *Node) Observe(peerEpoch uint64) (fenced bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if peerEpoch <= n.epoch {
		return false, nil
	}
	if err := durable.StoreEpoch(n.dir, peerEpoch); err != nil {
		return false, err
	}
	n.epoch = peerEpoch
	if n.role == RolePrimary || n.role == RolePromoting {
		n.role = RoleFenced
		n.mFences.Inc()
		return true, nil
	}
	return false, nil
}

// Promote turns a standby into the primary. The new epoch (old highest
// seen + 1) is persisted BEFORE the role changes — the fencing
// invariant: by the time this node grants anything, any frame or write
// the old primary produces carries a provably smaller epoch. Promoting
// a fenced node is refused; promoting a primary is a no-op.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case RolePrimary:
		return n.epoch, nil
	case RoleFenced:
		return 0, fmt.Errorf("replica: refusing to promote a fenced node (epoch %d belongs to a live successor)", n.epoch)
	}
	n.role = RolePromoting
	next := n.epoch + 1
	if err := durable.StoreEpoch(n.dir, next); err != nil {
		n.role = RoleStandby
		return 0, fmt.Errorf("replica: promotion aborted, epoch not durable: %w", err)
	}
	n.epoch = next
	n.role = RolePrimary
	n.mPromotions.Inc()
	return next, nil
}

// CheckWrite gates a ledger write: only a primary at its own epoch may
// record new releases. It returns ErrStaleEpoch (wrapped with the
// roles/epochs involved) for any other state, which callers surface as
// a fail-closed refusal.
func (n *Node) CheckWrite() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RolePrimary {
		return fmt.Errorf("%w: role %s at epoch %d may not write", ErrStaleEpoch, n.role, n.epoch)
	}
	return nil
}
