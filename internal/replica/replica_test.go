package replica

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"privateiye/internal/durable"
	"privateiye/internal/obs"
)

// --- Frame encoding ----------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Epoch: 3, Seq: 0, Data: []byte(`{"epoch":3}`)},
		{Type: FrameSnapshot, Epoch: 7, Seq: 42, Data: []byte("full state")},
		{Type: FrameEntry, Epoch: 7, Seq: 43, Data: []byte("one record")},
		{Type: FrameEntry, Epoch: 1, Seq: 1, Data: nil},
		{Type: FrameHeartbeat, Epoch: 9, Seq: 0, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	var wire []byte
	for _, f := range frames {
		wire = append(wire, EncodeFrame(f)...)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch || got.Seq != want.Seq || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	// Clean EOF only at the frame boundary.
	if _, err := ReadFrame(br); err != nil && err.Error() != "EOF" {
		t.Errorf("at boundary: %v", err)
	}
}

func TestReadFrameTornAndCorrupt(t *testing.T) {
	whole := EncodeFrame(Frame{Type: FrameEntry, Epoch: 2, Seq: 5, Data: []byte("payload-bytes")})

	// Cut mid-frame: must be ErrTornFrame, never a silent EOF.
	for _, cut := range []int{3, 8, len(whole) - 1} {
		br := bufio.NewReader(bytes.NewReader(whole[:cut]))
		if _, err := ReadFrame(br); !errors.Is(err, ErrTornFrame) {
			t.Errorf("cut at %d: err = %v, want ErrTornFrame", cut, err)
		}
	}
	// Flip one byte: the CRC catches it.
	bad := append([]byte(nil), whole...)
	bad[len(bad)/2] ^= 0x20
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrTornFrame) {
		t.Errorf("corrupt frame: err = %v, want ErrTornFrame", err)
	}
}

// --- Node: epochs, promotion, fencing ---------------------------------------

func TestNodeFreshPrimaryStartsAtEpochOne(t *testing.T) {
	dir := t.TempDir()
	n, err := OpenNode(dir, RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 1 || n.Role() != RolePrimary {
		t.Fatalf("fresh primary = epoch %d role %s", n.Epoch(), n.Role())
	}
	// The initial epoch is already durable.
	if e, _ := durable.LoadEpoch(dir); e != 1 {
		t.Errorf("persisted epoch = %d, want 1", e)
	}
	if err := n.CheckWrite(); err != nil {
		t.Errorf("primary CheckWrite = %v", err)
	}
}

func TestNodePromotionBumpsEpochDurably(t *testing.T) {
	dir := t.TempDir()
	n, err := OpenNode(dir, RoleStandby, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 0 {
		t.Fatalf("fresh standby epoch = %d", n.Epoch())
	}
	if err := n.CheckWrite(); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("standby CheckWrite = %v, want ErrStaleEpoch", err)
	}
	// Adopt the primary's epoch, then promote past it.
	if fenced, err := n.Observe(4); err != nil || fenced {
		t.Fatalf("standby Observe(4) = (%v, %v)", fenced, err)
	}
	epoch, err := n.Promote()
	if err != nil || epoch != 5 {
		t.Fatalf("Promote = (%d, %v), want (5, nil)", epoch, err)
	}
	if n.Role() != RolePrimary || n.CheckWrite() != nil {
		t.Errorf("promoted node: role %s, CheckWrite %v", n.Role(), n.CheckWrite())
	}
	// The bump hit disk before the role flip; a restart cannot lose it.
	if e, _ := durable.LoadEpoch(dir); e != 5 {
		t.Errorf("persisted epoch = %d, want 5", e)
	}
	// Promoting a primary is a no-op, not another bump.
	if again, err := n.Promote(); err != nil || again != 5 {
		t.Errorf("re-Promote = (%d, %v)", again, err)
	}
}

func TestNodeObserveHigherEpochFencesPrimary(t *testing.T) {
	n, err := OpenNode(t.TempDir(), RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	fenced, err := n.Observe(7)
	if err != nil || !fenced {
		t.Fatalf("Observe(7) = (%v, %v), want fenced", fenced, err)
	}
	if n.Role() != RoleFenced || n.Epoch() != 7 {
		t.Fatalf("after fence: role %s epoch %d", n.Role(), n.Epoch())
	}
	if err := n.CheckWrite(); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("fenced CheckWrite = %v", err)
	}
	// Fencing is terminal: no promotion out of it.
	if _, err := n.Promote(); err == nil {
		t.Error("promoting a fenced node must be refused")
	}
	// Lower or equal epochs change nothing.
	if fenced, _ := n.Observe(3); fenced {
		t.Error("lower epoch must not re-fence")
	}
}

// --- Server + client over a real stream -------------------------------------

// memApplier is an in-memory standby sink that enforces the same
// contiguity contract the mediator's applier does.
type memApplier struct {
	mu      sync.Mutex
	last    uint64
	entries map[uint64]string
	snap    string
	snapSeq uint64
}

func newMemApplier() *memApplier { return &memApplier{entries: map[uint64]string{}} }

func (a *memApplier) ApplyEntry(seq uint64, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if seq != a.last+1 {
		return fmt.Errorf("memApplier: non-contiguous: got %d, want %d", seq, a.last+1)
	}
	if _, dup := a.entries[seq]; dup {
		return fmt.Errorf("memApplier: sequence %d applied twice", seq)
	}
	a.entries[seq] = string(payload)
	a.last = seq
	return nil
}

func (a *memApplier) ApplySnapshot(seq uint64, state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = map[uint64]string{}
	a.snap = string(state)
	a.snapSeq = seq
	a.last = seq
	return nil
}

func (a *memApplier) LastSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last
}

func (a *memApplier) entry(seq uint64) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.entries[seq]
}

// primaryRig is a primary mediator's replication surface in miniature:
// a durable log, a node, and the stream/fence endpoints on a test server.
type primaryRig struct {
	log  *durable.Log
	node *Node
	srv  *Server
	ts   *httptest.Server
}

func newPrimaryRig(t *testing.T) *primaryRig {
	t.Helper()
	l, err := durable.Open(durable.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	node, err := OpenNode(t.TempDir(), RolePrimary, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, node, obs.NewRegistry())
	srv.Heartbeat = 20 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/stream", srv.ServeStream)
	mux.HandleFunc("POST /replica/fence", srv.ServeFence)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &primaryRig{log: l, node: node, srv: srv, ts: ts}
}

func newStandbyClient(t *testing.T, rig *primaryRig, ap Applier) (*Client, *Node) {
	t.Helper()
	node, err := OpenNode(t.TempDir(), RoleStandby, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(rig.ts.URL, ap, node, obs.NewRegistry())
	c.Reconnect = 10 * time.Millisecond
	return c, node
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestStandbyTailsLiveAppends(t *testing.T) {
	rig := newPrimaryRig(t)
	for i := 1; i <= 3; i++ {
		if _, err := rig.log.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ap := newMemApplier()
	c, snode := newStandbyClient(t, rig, ap)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	waitFor(t, "catch-up", func() bool { return ap.LastSeq() == 3 })
	// Live tail: appends after connection flow through.
	for i := 4; i <= 6; i++ {
		if _, err := rig.log.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live tail", func() bool { return ap.LastSeq() == 6 })
	if got := ap.entry(5); got != "r5" {
		t.Errorf("entry 5 = %q", got)
	}
	// The standby adopted the primary's epoch from the stream.
	if snode.Epoch() != rig.node.Epoch() {
		t.Errorf("standby epoch %d, primary %d", snode.Epoch(), rig.node.Epoch())
	}
	st := c.Status()
	if !st.Connected || !st.CaughtUp || st.Lag != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestStandbyInstallsSnapshotWhenBehindCompaction(t *testing.T) {
	rig := newPrimaryRig(t)
	for i := 1; i <= 4; i++ {
		if _, err := rig.log.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rig.log.SaveSnapshot([]byte("STATE@4")); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.log.Append([]byte("r5")); err != nil {
		t.Fatal(err)
	}

	ap := newMemApplier()
	c, _ := newStandbyClient(t, rig, ap)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	waitFor(t, "snapshot + tail", func() bool { return ap.LastSeq() == 5 })
	if ap.snap != "STATE@4" || ap.snapSeq != 4 {
		t.Errorf("snapshot = %q@%d, want STATE@4", ap.snap, ap.snapSeq)
	}
	if ap.entry(5) != "r5" {
		t.Errorf("post-snapshot entry = %q", ap.entry(5))
	}
}

// TestTornFrameForcesResync cuts one frame mid-wire; the standby must
// drop the stream, reconnect and converge — never apply a partial frame.
func TestTornFrameForcesResync(t *testing.T) {
	rig := newPrimaryRig(t)
	if _, err := rig.log.Append([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	torn := false
	rig.srv.Mangle = func(frame []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		f, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err == nil && f.Type == FrameEntry && f.Seq == 2 && !torn {
			torn = true
			return frame[:len(frame)/2] // connection dies mid-frame
		}
		return frame
	}

	ap := newMemApplier()
	c, _ := newStandbyClient(t, rig, ap)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	waitFor(t, "first record", func() bool { return ap.LastSeq() == 1 })

	if _, err := rig.log.Append([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resync after torn frame", func() bool { return ap.LastSeq() == 2 })
	mu.Lock()
	defer mu.Unlock()
	if !torn {
		t.Fatal("the mangle never fired; the test proved nothing")
	}
	if st := c.Status(); st.Resyncs == 0 {
		t.Errorf("no resync counted after a torn frame: %+v", st)
	}
	if ap.entry(2) != "r2" {
		t.Errorf("entry 2 = %q after resync", ap.entry(2))
	}
}

// TestDuplicateSequenceForcesResync rewrites one entry frame to carry an
// already-applied sequence number; the standby must refuse it (never
// rewrite history) and resync.
func TestDuplicateSequenceForcesResync(t *testing.T) {
	rig := newPrimaryRig(t)
	if _, err := rig.log.Append([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	duped := false
	rig.srv.Mangle = func(frame []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		f, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err == nil && f.Type == FrameEntry && f.Seq == 2 && !duped {
			duped = true
			// A syntactically perfect frame replaying sequence 1.
			return EncodeFrame(Frame{Type: FrameEntry, Epoch: f.Epoch, Seq: 1, Data: []byte("history-rewrite")})
		}
		return frame
	}

	ap := newMemApplier()
	c, _ := newStandbyClient(t, rig, ap)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	waitFor(t, "first record", func() bool { return ap.LastSeq() == 1 })

	if _, err := rig.log.Append([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resync after duplicate", func() bool { return ap.LastSeq() == 2 })
	mu.Lock()
	defer mu.Unlock()
	if !duped {
		t.Fatal("the duplicate frame never shipped")
	}
	// History was never rewritten: sequence 1 still holds its original.
	if got := ap.entry(1); got != "r1" {
		t.Errorf("entry 1 = %q — the duplicate overwrote history", got)
	}
	if st := c.Status(); st.Resyncs == 0 {
		t.Errorf("no resync counted: %+v", st)
	}
}

// TestStaleEpochFramesRefused hand-crafts a stream whose sender's epoch
// regresses mid-stream: the standby must abort without applying.
func TestStaleEpochFramesRefused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(encodeHello(Hello{Epoch: 3, LastSeq: 1}))
		w.Write(EncodeFrame(Frame{Type: FrameEntry, Epoch: 2, Seq: 1, Data: []byte("from-the-deposed")}))
	}))
	defer ts.Close()

	node, err := OpenNode(t.TempDir(), RoleStandby, nil)
	if err != nil {
		t.Fatal(err)
	}
	ap := newMemApplier()
	c := NewClient(ts.URL, ap, node, nil)
	err = c.streamOnce(context.Background())
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("streamOnce = %v, want ErrStaleEpoch", err)
	}
	if ap.LastSeq() != 0 {
		t.Error("a stale-epoch frame was applied")
	}
	// The hello's higher epoch was adopted before the stale frame hit.
	if node.Epoch() != 3 {
		t.Errorf("standby epoch = %d, want 3", node.Epoch())
	}
}

// TestStreamRequestWithHigherEpochFencesPrimary: the passive fencing
// path — a revived old primary is deposed by the first stream request
// stamped with the successor's epoch.
func TestStreamRequestWithHigherEpochFencesPrimary(t *testing.T) {
	rig := newPrimaryRig(t)
	resp, err := http.Get(rig.ts.URL + "/replica/stream?from=0&epoch=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if rig.node.Role() != RoleFenced || rig.node.Epoch() != 9 {
		t.Errorf("old primary: role %s epoch %d, want fenced@9", rig.node.Role(), rig.node.Epoch())
	}
}

// TestFencePeerDeposesOldPrimary: the active fencing path — the
// promoted successor posts its epoch until the old primary acknowledges.
func TestFencePeerDeposesOldPrimary(t *testing.T) {
	rig := newPrimaryRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := FencePeer(ctx, nil, rig.ts.URL, 6, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rig.node.Role() != RoleFenced || rig.node.Epoch() != 6 {
		t.Errorf("after fence: role %s epoch %d", rig.node.Role(), rig.node.Epoch())
	}
	if err := rig.node.CheckWrite(); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("fenced CheckWrite = %v", err)
	}
	// A fenced node refuses streams: it may no longer ship history.
	resp, err := http.Get(rig.ts.URL + "/replica/stream?from=0&epoch=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fenced stream status = %d, want 503", resp.StatusCode)
	}
}
