// Package schemamatch implements privacy-preserving schema matching for
// the Mediated Schema Generation module (Section 5): establishing that a
// requester's //patient//dateOfBirth means a source's dob without the
// source publishing its data, and without the mediator seeing raw values.
//
// The matcher is learning-based in the sense the paper points to (Clifton
// et al. [14], Rahm & Bernstein [36]): it combines
//
//   - name evidence: synonym dictionary, token normalization
//     (camelCase/snake_case), and character-trigram Dice similarity; and
//   - instance evidence: field *profiles* — value statistics (length,
//     numeric fraction, distinct ratio) a source can publish without
//     publishing values.
//
// A private mode exchanges only salted keyed hashes of normalized names,
// so matching degrades to exact-normalized-name equality; experiment E14
// measures the accuracy a source gives up for that extra protection.
package schemamatch

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FieldProfile is the shareable statistical summary of one field.
type FieldProfile struct {
	Name         string  // field name (or keyed hash in private mode)
	AvgLen       float64 // mean value length in runes
	NumericFrac  float64 // fraction of values parsing as numbers
	DistinctFrac float64 // distinct values / total values
	Samples      int     // how many values the profile summarizes
}

// ProfileValues computes a field profile locally at the source.
func ProfileValues(name string, values []string) FieldProfile {
	p := FieldProfile{Name: name, Samples: len(values)}
	if len(values) == 0 {
		return p
	}
	distinct := map[string]bool{}
	numeric := 0
	totalLen := 0
	for _, v := range values {
		distinct[v] = true
		totalLen += len([]rune(v))
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			numeric++
		}
	}
	n := float64(len(values))
	p.AvgLen = float64(totalLen) / n
	p.NumericFrac = float64(numeric) / n
	p.DistinctFrac = float64(len(distinct)) / n
	return p
}

// Matcher scores field correspondences.
type Matcher struct {
	// Synonyms maps a normalized name to equivalent normalized names.
	Synonyms map[string][]string
	// Threshold is the minimum combined score for a correspondence.
	Threshold float64
	// NameWeight balances name vs instance evidence in [0,1].
	NameWeight float64
}

// NewMatcher returns a matcher with the clinical-domain synonym
// dictionary and standard weights.
func NewMatcher() *Matcher {
	return &Matcher{
		Synonyms: map[string][]string{
			"dob":       {"dateofbirth", "birthdate", "borndate"},
			"name":      {"fullname", "patientname", "personname"},
			"zip":       {"zipcode", "postalcode", "postcode"},
			"sex":       {"gender"},
			"diagnosis": {"disease", "condition", "dx"},
			"ssn":       {"socialsecuritynumber", "nationalid"},
			"phone":     {"telephone", "phonenumber"},
			"hmo":       {"plan", "insurer"},
			"rate":      {"compliancerate", "percentage"},
		},
		Threshold:  0.5,
		NameWeight: 0.65,
	}
}

// Normalize canonicalizes a field name: lowercase, split camelCase and
// snake/kebab separators, concatenated.
func Normalize(name string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			_ = prevLower // word boundary; we just lowercase
			b.WriteRune(r + 32)
			prevLower = false
		case r == '_' || r == '-' || r == ' ' || r == '.':
			prevLower = false
		default:
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		}
	}
	return b.String()
}

// synonymous reports whether two normalized names are dictionary synonyms
// (in either direction, or siblings under the same key).
func (m *Matcher) synonymous(a, b string) bool {
	if a == b {
		return true
	}
	check := func(key, other string) bool {
		for _, s := range m.Synonyms[key] {
			if s == other {
				return true
			}
		}
		return false
	}
	if check(a, b) || check(b, a) {
		return true
	}
	for key, syns := range m.Synonyms {
		foundA, foundB := key == a, key == b
		for _, s := range syns {
			if s == a {
				foundA = true
			}
			if s == b {
				foundB = true
			}
		}
		if foundA && foundB {
			return true
		}
	}
	return false
}

// trigrams returns padded character trigrams of s.
func trigrams(s string) map[string]bool {
	s = "##" + s + "##"
	out := map[string]bool{}
	r := []rune(s)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = true
	}
	return out
}

// NameSimilarity scores two field names in [0,1]: 1 for equal or
// synonymous normalized names, otherwise trigram Dice with a containment
// bonus.
func (m *Matcher) NameSimilarity(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if m.synonymous(na, nb) {
		return 1
	}
	ta, tb := trigrams(na), trigrams(nb)
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	dice := 2 * float64(inter) / float64(len(ta)+len(tb))
	if strings.Contains(na, nb) || strings.Contains(nb, na) {
		dice = dice + (1-dice)*0.3
	}
	return dice
}

// profileSimilarity scores instance evidence in [0,1] from the statistical
// distance of two profiles. Empty profiles are uninformative (0.5).
func profileSimilarity(a, b FieldProfile) float64 {
	if a.Samples == 0 || b.Samples == 0 {
		return 0.5
	}
	lenDiff := a.AvgLen - b.AvgLen
	if lenDiff < 0 {
		lenDiff = -lenDiff
	}
	lenScore := 1 / (1 + lenDiff/4)
	numDiff := a.NumericFrac - b.NumericFrac
	if numDiff < 0 {
		numDiff = -numDiff
	}
	distDiff := a.DistinctFrac - b.DistinctFrac
	if distDiff < 0 {
		distDiff = -distDiff
	}
	return (lenScore + (1 - numDiff) + (1 - distDiff)) / 3
}

// Correspondence is one matched field pair.
type Correspondence struct {
	Left, Right string
	Score       float64
}

// Match computes one-to-one correspondences between two profile sets:
// all pairs are scored, pairs below the threshold dropped, and the rest
// matched greedily by descending score.
func (m *Matcher) Match(left, right []FieldProfile) []Correspondence {
	var cands []Correspondence
	for _, l := range left {
		for _, r := range right {
			score := m.NameWeight*m.NameSimilarity(l.Name, r.Name) +
				(1-m.NameWeight)*profileSimilarity(l, r)
			if score >= m.Threshold {
				cands = append(cands, Correspondence{Left: l.Name, Right: r.Name, Score: score})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].Left != cands[j].Left {
			return cands[i].Left < cands[j].Left
		}
		return cands[i].Right < cands[j].Right
	})
	usedL, usedR := map[string]bool{}, map[string]bool{}
	var out []Correspondence
	for _, c := range cands {
		if usedL[c.Left] || usedR[c.Right] {
			continue
		}
		usedL[c.Left] = true
		usedR[c.Right] = true
		out = append(out, c)
	}
	return out
}

// ResolverFor adapts the matcher into a tag resolver over a target
// vocabulary (the source's actual element names): given an unmatched tag,
// it returns vocabulary names ranked by similarity above the threshold.
// This is what makes PIQL queries "loosely structured" end to end.
func (m *Matcher) ResolverFor(vocab []string) func(string) []string {
	return func(tag string) []string {
		type scored struct {
			name  string
			score float64
		}
		var ss []scored
		for _, v := range vocab {
			if s := m.NameSimilarity(tag, v); s >= m.Threshold {
				ss = append(ss, scored{v, s})
			}
		}
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].score != ss[j].score {
				return ss[i].score > ss[j].score
			}
			return ss[i].name < ss[j].name
		})
		out := make([]string, len(ss))
		for i, s := range ss {
			out[i] = s.name
		}
		return out
	}
}

// HashVocabulary produces the private-mode exchange: keyed hashes of
// normalized names under a salt shared by the matching parties. Only
// parties holding the salt can compare, and only equal normalized names
// collide.
func HashVocabulary(salt []byte, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		mac := hmac.New(sha256.New, salt)
		mac.Write([]byte(Normalize(n)))
		out[i] = fmt.Sprintf("%x", mac.Sum(nil)[:12])
	}
	return out
}

// MatchHashed matches two hashed vocabularies by equality, returning
// index pairs (left, right). It is the only matching possible in private
// mode — no fuzz, no synonyms — which is exactly the accuracy cost E14
// quantifies.
func MatchHashed(left, right []string) [][2]int {
	idx := map[string][]int{}
	for j, h := range right {
		idx[h] = append(idx[h], j)
	}
	var out [][2]int
	for i, h := range left {
		for _, j := range idx[h] {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}
