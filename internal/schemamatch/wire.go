package schemamatch

import (
	"fmt"
	"strconv"

	"privateiye/internal/xmltree"
)

// ProfilesToNode encodes field profiles for shipping to the mediator:
//
//	<profiles>
//	  <field name="dob" avglen="10" numeric="0" distinct="0.98" samples="200"/>
//	</profiles>
func ProfilesToNode(ps []FieldProfile) *xmltree.Node {
	root := xmltree.NewElem("profiles")
	for _, p := range ps {
		root.Append(xmltree.NewElem("field").
			SetAttr("name", p.Name).
			SetAttr("avglen", strconv.FormatFloat(p.AvgLen, 'g', -1, 64)).
			SetAttr("numeric", strconv.FormatFloat(p.NumericFrac, 'g', -1, 64)).
			SetAttr("distinct", strconv.FormatFloat(p.DistinctFrac, 'g', -1, 64)).
			SetAttr("samples", strconv.Itoa(p.Samples)))
	}
	return root
}

// ProfilesFromNode decodes ProfilesToNode output.
func ProfilesFromNode(n *xmltree.Node) ([]FieldProfile, error) {
	if n.Name != "profiles" {
		return nil, fmt.Errorf("schemamatch: expected <profiles>, got <%s>", n.Name)
	}
	var out []FieldProfile
	for i, c := range n.ChildrenNamed("field") {
		name, _ := c.Attr("name")
		if name == "" {
			return nil, fmt.Errorf("schemamatch: profile %d missing name", i)
		}
		p := FieldProfile{Name: name}
		var err error
		get := func(key string) float64 {
			v, _ := c.Attr(key)
			f, e := strconv.ParseFloat(v, 64)
			if e != nil && err == nil {
				err = fmt.Errorf("schemamatch: profile %q bad %s: %w", name, key, e)
			}
			return f
		}
		p.AvgLen = get("avglen")
		p.NumericFrac = get("numeric")
		p.DistinctFrac = get("distinct")
		p.Samples = int(get("samples"))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
