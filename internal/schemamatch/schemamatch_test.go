package schemamatch

import (
	"fmt"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"dateOfBirth":   "dateofbirth",
		"date_of_birth": "dateofbirth",
		"Date-Of-Birth": "dateofbirth",
		"zip code":      "zipcode",
		"DOB":           "dob",
		"ssn":           "ssn",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNameSimilarity(t *testing.T) {
	m := NewMatcher()
	// Synonyms are perfect matches.
	for _, pair := range [][2]string{
		{"dob", "dateOfBirth"},
		{"dateOfBirth", "dob"},         // both directions
		{"birthDate", "date_of_birth"}, // siblings under the same key
		{"sex", "gender"},
		{"diagnosis", "dx"},
	} {
		if got := m.NameSimilarity(pair[0], pair[1]); got != 1 {
			t.Errorf("synonym %v scored %v", pair, got)
		}
	}
	// Trigram similarity ranks related above unrelated.
	rel := m.NameSimilarity("patientName", "name")
	unrel := m.NameSimilarity("patientName", "zipcode")
	if rel <= unrel {
		t.Errorf("related %v <= unrelated %v", rel, unrel)
	}
	if m.NameSimilarity("", "x") != 0 {
		t.Error("empty name should score 0")
	}
	if m.NameSimilarity("exactsame", "exactsame") != 1 {
		t.Error("identical should score 1")
	}
}

func TestProfileValues(t *testing.T) {
	p := ProfileValues("age", []string{"54", "45", "35", "45"})
	if p.Samples != 4 {
		t.Errorf("samples = %d", p.Samples)
	}
	if p.NumericFrac != 1 {
		t.Errorf("numeric frac = %v", p.NumericFrac)
	}
	if p.DistinctFrac != 0.75 {
		t.Errorf("distinct frac = %v", p.DistinctFrac)
	}
	if p.AvgLen != 2 {
		t.Errorf("avg len = %v", p.AvgLen)
	}
	empty := ProfileValues("x", nil)
	if empty.Samples != 0 || empty.AvgLen != 0 {
		t.Errorf("empty profile: %+v", empty)
	}
}

func TestMatchUsesInstanceEvidence(t *testing.T) {
	m := NewMatcher()
	// Two left fields with uninformative names; profiles disambiguate.
	left := []FieldProfile{
		ProfileValues("field1", []string{"75.3", "62.1", "81.0"}),
		ProfileValues("field2", []string{"Alice Ang", "Bob Baker", "Cara Diaz"}),
	}
	right := []FieldProfile{
		ProfileValues("rate", []string{"70.2", "55.9", "90.4"}),
		ProfileValues("patientName", []string{"Dana Evans", "Erin Fox", "Gil Ham"}),
	}
	m.Threshold = 0.3 // names are useless here; let instances drive
	matches := m.Match(left, right)
	got := map[string]string{}
	for _, c := range matches {
		got[c.Left] = c.Right
	}
	if got["field1"] != "rate" {
		t.Errorf("numeric field matched %q, want rate (matches %v)", got["field1"], matches)
	}
	if got["field2"] != "patientName" {
		t.Errorf("name field matched %q, want patientName", got["field2"])
	}
}

func TestMatchClinicalSchemas(t *testing.T) {
	m := NewMatcher()
	left := []FieldProfile{
		{Name: "dob"}, {Name: "name"}, {Name: "zip"}, {Name: "diagnosis"},
	}
	right := []FieldProfile{
		{Name: "dateOfBirth"}, {Name: "patient_name"}, {Name: "zipCode"}, {Name: "dx"}, {Name: "unrelated"},
	}
	matches := m.Match(left, right)
	want := map[string]string{
		"dob":       "dateOfBirth",
		"name":      "patient_name",
		"zip":       "zipCode",
		"diagnosis": "dx",
	}
	got := map[string]string{}
	for _, c := range matches {
		got[c.Left] = c.Right
	}
	for l, r := range want {
		if got[l] != r {
			t.Errorf("%s matched %q, want %q", l, got[l], r)
		}
	}
	// One-to-one: no right field matched twice.
	seen := map[string]bool{}
	for _, c := range matches {
		if seen[c.Right] {
			t.Errorf("right field %q matched twice", c.Right)
		}
		seen[c.Right] = true
	}
}

func TestResolverFor(t *testing.T) {
	m := NewMatcher()
	resolver := m.ResolverFor([]string{"dob", "name", "zip", "diagnosis"})
	alts := resolver("dateOfBirth")
	if len(alts) == 0 || alts[0] != "dob" {
		t.Errorf("resolver(dateOfBirth) = %v, want dob first", alts)
	}
	if alts := resolver("completely-unrelated-xyz"); len(alts) != 0 {
		t.Errorf("unrelated tag resolved to %v", alts)
	}
}

func TestHashVocabularyAndMatchHashed(t *testing.T) {
	salt := []byte("mediation-salt")
	left := HashVocabulary(salt, []string{"dob", "name", "secretField"})
	right := HashVocabulary(salt, []string{"DOB", "diagnosis", "name"})
	// Normalized equality: dob~DOB and name~name match; nothing else.
	pairs := MatchHashed(left, right)
	if len(pairs) != 2 {
		t.Fatalf("hashed matches = %v", pairs)
	}
	found := map[[2]int]bool{}
	for _, p := range pairs {
		found[p] = true
	}
	if !found[[2]int{0, 0}] || !found[[2]int{1, 2}] {
		t.Errorf("pairs = %v", pairs)
	}
	// Different salt: nothing matches (no cross-org dictionary attack).
	other := HashVocabulary([]byte("other"), []string{"dob"})
	if got := MatchHashed(other, right); len(got) != 0 {
		t.Errorf("different salts matched: %v", got)
	}
	// Hashes hide the name.
	if left[2] == "secretField" || len(left[2]) != 24 {
		t.Errorf("hash leaks or has wrong size: %q", left[2])
	}
}

func TestPrivateModeLosesFuzzyMatches(t *testing.T) {
	// E14's core claim in miniature: plaintext matching finds
	// dob~dateOfBirth, hashed matching cannot.
	m := NewMatcher()
	plain := m.Match(
		[]FieldProfile{{Name: "dob"}},
		[]FieldProfile{{Name: "dateOfBirth"}},
	)
	if len(plain) != 1 {
		t.Fatalf("plaintext should match: %v", plain)
	}
	salt := []byte("s")
	hashed := MatchHashed(
		HashVocabulary(salt, []string{"dob"}),
		HashVocabulary(salt, []string{"dateOfBirth"}),
	)
	if len(hashed) != 0 {
		t.Errorf("hashed mode should not fuzzy-match: %v", hashed)
	}
}

func TestMatchDeterminism(t *testing.T) {
	m := NewMatcher()
	var left, right []FieldProfile
	for i := 0; i < 10; i++ {
		left = append(left, FieldProfile{Name: fmt.Sprintf("field%d", i)})
		right = append(right, FieldProfile{Name: fmt.Sprintf("field%d", i)})
	}
	a := m.Match(left, right)
	b := m.Match(left, right)
	if len(a) != len(b) {
		t.Fatal("nondeterministic match count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic match order")
		}
	}
}

func TestProfilesWireRoundTrip(t *testing.T) {
	ps := []FieldProfile{
		ProfileValues("age", []string{"54", "45"}),
		ProfileValues("name", []string{"Ana", "Ben", "Ana"}),
	}
	back, err := ProfilesFromNode(ProfilesToNode(ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip count = %d", len(back))
	}
	for i := range ps {
		if back[i] != ps[i] {
			t.Errorf("profile %d = %+v, want %+v", i, back[i], ps[i])
		}
	}
	// Error paths.
	n := ProfilesToNode(ps)
	n.Name = "x"
	if _, err := ProfilesFromNode(n); err == nil {
		t.Error("wrong root should fail")
	}
	n.Name = "profiles"
	n.Children[0].Attrs["name"] = ""
	if _, err := ProfilesFromNode(n); err == nil {
		t.Error("missing name should fail")
	}
	n.Children[0].Attrs["name"] = "age"
	n.Children[0].Attrs["avglen"] = "zz"
	if _, err := ProfilesFromNode(n); err == nil {
		t.Error("bad number should fail")
	}
}
