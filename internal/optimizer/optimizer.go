// Package optimizer implements privacy-conscious query optimization
// (Section 4): "with the additional costs of privacy checking during
// query processing and possible results perturbation to preserve privacy,
// we need novel query processing techniques to reduce these costs ...
// integrated with the query optimization mechanism so that the most
// efficient query execution plan incorporates the most efficient privacy
// checking and preservation plan."
//
// The planner makes three privacy-aware decisions on top of a classical
// selectivity-ordered filter pipeline:
//
//  1. predicate ordering by estimated selectivity (cheapest first);
//  2. preservation placement — a row-level preservation technique can run
//     before or after filtering; the planner costs both and picks the
//     cheaper (sampling early cuts work, generalizing late touches fewer
//     rows);
//  3. loss-budget early termination — if the technique pipeline cannot
//     possibly respect the requester's MAXLOSS budget, the plan is
//     refused before touching any data.
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"privateiye/internal/piql"
	"privateiye/internal/preserve"
)

// Stats carries the planner's knowledge of the data.
type Stats struct {
	// Rows is the estimated number of context nodes the FOR clause scans.
	Rows int
	// Selectivity overrides the default per-predicate selectivity,
	// keyed by the predicate's String() rendering.
	Selectivity map[string]float64
}

// Default selectivities per predicate shape, from the classical System R
// playbook.
const (
	selEquality = 0.10
	selRange    = 0.33
	selContains = 0.25
	selExists   = 0.90
)

// costs per row, in abstract units (calibrated only relative to each
// other; the benchmarks measure real time).
const (
	costScanRow    = 1.0
	costFilterRow  = 0.2
	costProjectRow = 0.1
)

// techniqueProfile describes a preservation technique to the planner.
type techniqueProfile struct {
	costPerRow float64
	rowFactor  float64 // expected fraction of rows surviving (sampling < 1)
	minLoss    float64 // information loss the technique necessarily causes
}

// profileTechnique derives a planner profile from a technique. The
// registry of shapes mirrors internal/preserve's concrete types.
func profileTechnique(t preserve.Technique) techniqueProfile {
	switch v := t.(type) {
	case preserve.Identity:
		return techniqueProfile{costPerRow: 0, rowFactor: 1, minLoss: 0}
	case preserve.SuppressColumns, preserve.DropColumns:
		return techniqueProfile{costPerRow: 0.1, rowFactor: 1, minLoss: 0.2}
	case preserve.Generalize:
		return techniqueProfile{costPerRow: 0.5, rowFactor: 1, minLoss: 0.1}
	case preserve.RoundNumeric:
		return techniqueProfile{costPerRow: 0.2, rowFactor: 1, minLoss: 0.02}
	case preserve.AdditiveNoise:
		return techniqueProfile{costPerRow: 0.4, rowFactor: 1, minLoss: 0.05}
	case preserve.RandomSample:
		return techniqueProfile{costPerRow: 0.1, rowFactor: v.P, minLoss: 1 - v.P}
	case preserve.SmallCountSuppress:
		return techniqueProfile{costPerRow: 0.2, rowFactor: 0.95, minLoss: 0.05}
	case preserve.Microaggregate:
		return techniqueProfile{costPerRow: 2.0, rowFactor: 1, minLoss: 0.1}
	case preserve.TopBottomCode:
		return techniqueProfile{costPerRow: 0.3, rowFactor: 1, minLoss: 0.02}
	case preserve.RankSwap:
		return techniqueProfile{costPerRow: 1.0, rowFactor: 1, minLoss: 0.05}
	case preserve.Pipeline:
		p := techniqueProfile{rowFactor: 1}
		for _, s := range v.Steps {
			sp := profileTechnique(s)
			p.costPerRow += sp.costPerRow
			p.rowFactor *= sp.rowFactor
			// Losses compose sub-additively; sum clamped is a usable
			// planner-side bound.
			p.minLoss += sp.minLoss
		}
		if p.minLoss > 1 {
			p.minLoss = 1
		}
		return p
	default:
		return techniqueProfile{costPerRow: 0.5, rowFactor: 1, minLoss: 0.1}
	}
}

// PlanStep is one operator of a physical plan.
type PlanStep struct {
	Op      string  // "scan", "filter", "preserve", "project"
	Detail  string  // operator argument rendering
	EstRows float64 // rows flowing OUT of the step
	EstCost float64 // cost of the step
}

// Plan is a costed physical plan.
type Plan struct {
	Steps     []PlanStep
	TotalCost float64
	EstRows   float64
	// PreserveEarly records the placement decision for the ablation
	// benchmarks.
	PreserveEarly bool
}

// String renders the plan like an EXPLAIN output.
func (p *Plan) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%d: %-9s %-40s rows=%.0f cost=%.1f\n", i, s.Op, s.Detail, s.EstRows, s.EstCost)
	}
	fmt.Fprintf(&b, "total cost %.1f, %.0f rows", p.TotalCost, p.EstRows)
	return b.String()
}

// ErrBudget is returned when the loss budget makes execution pointless.
type ErrBudget struct {
	Budget  float64
	MinLoss float64
}

// Error implements error.
func (e *ErrBudget) Error() string {
	return fmt.Sprintf("optimizer: requester budget %.2f below the %.2f loss the required preservation necessarily causes", e.Budget, e.MinLoss)
}

// conjuncts flattens the top-level AND structure of a condition.
func conjuncts(c piql.Cond) []piql.Cond {
	if c == nil {
		return nil
	}
	if a, ok := c.(*piql.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []piql.Cond{c}
}

// estimateSelectivity estimates the fraction of rows a condition passes.
func estimateSelectivity(c piql.Cond, st Stats) float64 {
	if c == nil {
		return 1
	}
	if s, ok := st.Selectivity[c.String()]; ok {
		return s
	}
	switch v := c.(type) {
	case *piql.Comparison:
		if v.Op == piql.OpEq {
			return selEquality
		}
		if v.Op == piql.OpNe {
			return 1 - selEquality
		}
		return selRange
	case *piql.Contains:
		return selContains
	case *piql.Exists:
		return selExists
	case *piql.And:
		return estimateSelectivity(v.L, st) * estimateSelectivity(v.R, st)
	case *piql.Or:
		a, b := estimateSelectivity(v.L, st), estimateSelectivity(v.R, st)
		return a + b - a*b
	case *piql.Not:
		return 1 - estimateSelectivity(v.C, st)
	}
	return 0.5
}

// Optimize plans the execution of a rewritten query with its assigned
// preservation technique at a source holding st.Rows rows. lossBudget is
// the effective budget from the rewriter (Outcome.Budget).
func Optimize(q *piql.Query, technique preserve.Technique, st Stats, lossBudget float64) (*Plan, error) {
	if q == nil {
		return nil, fmt.Errorf("optimizer: nil query")
	}
	if st.Rows < 0 {
		return nil, fmt.Errorf("optimizer: negative row estimate")
	}
	if technique == nil {
		technique = preserve.Identity{}
	}
	tp := profileTechnique(technique)
	if tp.minLoss > lossBudget {
		return nil, &ErrBudget{Budget: lossBudget, MinLoss: tp.minLoss}
	}

	// Order conjuncts by ascending selectivity.
	cs := conjuncts(q.Where)
	type sc struct {
		c piql.Cond
		s float64
	}
	scs := make([]sc, len(cs))
	for i, c := range cs {
		scs[i] = sc{c, estimateSelectivity(c, st)}
	}
	sort.SliceStable(scs, func(i, j int) bool { return scs[i].s < scs[j].s })

	build := func(early bool) *Plan {
		p := &Plan{PreserveEarly: early}
		rows := float64(st.Rows)
		add := func(op, detail string, outRows, cost float64) {
			p.Steps = append(p.Steps, PlanStep{Op: op, Detail: detail, EstRows: outRows, EstCost: cost})
			p.TotalCost += cost
		}
		add("scan", q.For.String(), rows, rows*costScanRow)
		if early {
			out := rows * tp.rowFactor
			add("preserve", technique.Name(), out, rows*tp.costPerRow)
			rows = out
		}
		for _, x := range scs {
			out := rows * x.s
			add("filter", x.c.String(), out, rows*costFilterRow)
			rows = out
		}
		if !early {
			out := rows * tp.rowFactor
			add("preserve", technique.Name(), out, rows*tp.costPerRow)
			rows = out
		}
		add("project", renderReturns(q), rows, rows*costProjectRow)
		p.EstRows = rows
		return p
	}

	late := build(false)
	early := build(true)
	// Early placement is only sound for techniques that commute with
	// filtering on unaffected columns; sampling does (statistically), and
	// it is the main case where early wins. Pick by cost among sound
	// options: early is offered only when the technique reduces rows.
	if tp.rowFactor < 1 && early.TotalCost < late.TotalCost {
		return early, nil
	}
	return late, nil
}

func renderReturns(q *piql.Query) string {
	parts := make([]string, len(q.Return))
	for i, ri := range q.Return {
		parts[i] = ri.Name()
	}
	return strings.Join(parts, ", ")
}
