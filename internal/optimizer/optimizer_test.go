package optimizer

import (
	"errors"
	"strings"
	"testing"

	"privateiye/internal/piql"
	"privateiye/internal/preserve"
)

func TestPredicateOrderingBySelectivity(t *testing.T) {
	// Equality (0.10) should be filtered before range (0.33) regardless of
	// textual order.
	q := piql.MustParse("FOR //patient WHERE //age > 40 AND //diagnosis = 'diabetes' RETURN //age")
	plan, err := Optimize(q, preserve.Identity{}, Stats{Rows: 10000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var filters []string
	for _, s := range plan.Steps {
		if s.Op == "filter" {
			filters = append(filters, s.Detail)
		}
	}
	if len(filters) != 2 {
		t.Fatalf("filters = %v", filters)
	}
	if !strings.Contains(filters[0], "=") || !strings.Contains(filters[1], ">") {
		t.Errorf("filter order wrong: %v", filters)
	}
	// Row estimates shrink monotonically through the pipeline.
	prev := plan.Steps[0].EstRows
	for _, s := range plan.Steps[1:] {
		if s.EstRows > prev+1e-9 {
			t.Errorf("rows grew at %s: %v -> %v", s.Op, prev, s.EstRows)
		}
		prev = s.EstRows
	}
}

func TestSelectivityOverride(t *testing.T) {
	q := piql.MustParse("FOR //patient WHERE //age > 40 AND //diagnosis = 'diabetes' RETURN //age")
	// Make the range predicate ultra-selective via stats; it should now
	// run first.
	rangePred := "//age > 40"
	st := Stats{Rows: 1000, Selectivity: map[string]float64{rangePred: 0.01}}
	plan, err := Optimize(q, preserve.Identity{}, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Op == "filter" {
			if !strings.Contains(s.Detail, ">") {
				t.Errorf("override ignored; first filter = %s", s.Detail)
			}
			break
		}
	}
}

func TestSamplePlacedEarly(t *testing.T) {
	q := piql.MustParse("FOR //patient WHERE //age > 40 RETURN //age")
	sample := preserve.RandomSample{P: 0.1}
	plan, err := Optimize(q, sample, Stats{Rows: 100000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PreserveEarly {
		t.Error("10% sampling should be placed before filtering")
	}
	// First non-scan step is the preserve.
	if plan.Steps[1].Op != "preserve" {
		t.Errorf("step order: %+v", plan.Steps)
	}
}

func TestRowPreservingTechniquePlacedLate(t *testing.T) {
	q := piql.MustParse("FOR //patient WHERE //age > 40 RETURN //zip")
	gen := preserve.Generalize{Column: "zip", Hierarchy: preserve.ZipHierarchy(), Level: 2}
	plan, err := Optimize(q, gen, Stats{Rows: 100000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PreserveEarly {
		t.Error("generalization should run after filtering")
	}
	// Preserve step is the second-to-last (before project).
	if plan.Steps[len(plan.Steps)-2].Op != "preserve" {
		t.Errorf("step order: %+v", plan.Steps)
	}
}

func TestBudgetEarlyTermination(t *testing.T) {
	q := piql.MustParse("FOR //patient RETURN //age MAXLOSS 0.05")
	// Heavy sampling necessarily loses ~50% of information; a 0.05 budget
	// cannot be met.
	sample := preserve.RandomSample{P: 0.5}
	_, err := Optimize(q, sample, Stats{Rows: 1000}, 0.05)
	var eb *ErrBudget
	if !errors.As(err, &eb) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if eb.MinLoss != 0.5 {
		t.Errorf("min loss = %v", eb.MinLoss)
	}
	// A generous budget passes.
	if _, err := Optimize(q, sample, Stats{Rows: 1000}, 0.9); err != nil {
		t.Errorf("generous budget should pass: %v", err)
	}
}

func TestPipelineProfileComposes(t *testing.T) {
	q := piql.MustParse("FOR //patient RETURN //age")
	pipe := preserve.Pipeline{Steps: []preserve.Technique{
		preserve.RandomSample{P: 0.5},
		preserve.RoundNumeric{Column: "age", Places: 0},
	}}
	// Pipeline min loss = 0.5 + 0.02; budget 0.4 fails, 0.6 passes.
	if _, err := Optimize(q, pipe, Stats{Rows: 100}, 0.4); err == nil {
		t.Error("pipeline loss should exceed 0.4 budget")
	}
	if _, err := Optimize(q, pipe, Stats{Rows: 100}, 0.6); err != nil {
		t.Errorf("0.6 budget should pass: %v", err)
	}
}

func TestNilTechniqueAndNilWhere(t *testing.T) {
	q := piql.MustParse("FOR //patient RETURN //age")
	plan, err := Optimize(q, nil, Stats{Rows: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// scan, preserve(identity), project.
	if len(plan.Steps) != 3 {
		t.Errorf("steps = %+v", plan.Steps)
	}
	if plan.EstRows != 50 {
		t.Errorf("est rows = %v", plan.EstRows)
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(nil, nil, Stats{Rows: 1}, 1); err == nil {
		t.Error("nil query should fail")
	}
	q := piql.MustParse("FOR //x RETURN //y")
	if _, err := Optimize(q, nil, Stats{Rows: -1}, 1); err == nil {
		t.Error("negative rows should fail")
	}
}

func TestEstimateSelectivityShapes(t *testing.T) {
	st := Stats{}
	cases := []struct {
		src  string
		want float64
	}{
		{"//a = 1", selEquality},
		{"//a != 1", 1 - selEquality},
		{"//a > 1", selRange},
		{"//a CONTAINS 'x'", selContains},
		{"EXISTS //a", selExists},
		{"//a = 1 OR //b = 2", selEquality + selEquality - selEquality*selEquality},
		{"NOT //a = 1", 1 - selEquality},
	}
	for _, tc := range cases {
		q := piql.MustParse("FOR //x WHERE " + tc.src + " RETURN //y")
		got := estimateSelectivity(q.Where, st)
		if got != tc.want {
			t.Errorf("selectivity(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestPlanString(t *testing.T) {
	q := piql.MustParse("FOR //patient WHERE //age > 40 RETURN //age")
	plan, err := Optimize(q, preserve.Identity{}, Stats{Rows: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"scan", "filter", "project", "total cost"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
}
