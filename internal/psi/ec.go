package psi

import (
	"crypto/elliptic"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// ECPoint is an elliptic-curve suite element: an affine point on the
// suite's curve. The point at infinity is never a valid element.
type ECPoint struct {
	X, Y *big.Int
}

func (*ECPoint) psiElement() {}

type ecSecret struct {
	k []byte // fixed-width big-endian scalar in [1, n-1]
}

func (*ecSecret) psiSecret() {}

// p256Suite implements Suite over NIST P-256 using only the stdlib
// crypto/elliptic backend (constant-time nistec arithmetic underneath).
// Cofactor is 1, so every on-curve point other than infinity is in the
// prime-order group — on-curve checking IS subgroup validation.
type p256Suite struct {
	curve elliptic.Curve
}

var p256Singleton = &p256Suite{curve: elliptic.P256()}

// P256Suite returns the NIST P-256 elliptic-curve suite: 256-bit scalar
// mults instead of 2048-bit modexps, and 33-byte compressed points
// instead of 256-byte residues on the wire. This is the production
// default when the whole fleet supports it.
func P256Suite() Suite { return p256Singleton }

const (
	p256ElemSize   = 33 // SEC1 compressed point: sign byte + 32-byte x
	p256ScalarSize = 32
)

func (s *p256Suite) Name() string     { return SuiteNameP256 }
func (s *p256Suite) ElementSize() int { return p256ElemSize }

func (s *p256Suite) NewSecret(rng io.Reader) (Secret, error) {
	if rng == nil {
		rng = rand.Reader
	}
	max := new(big.Int).Sub(s.curve.Params().N, big.NewInt(1)) // [0, n-2]
	v, err := rand.Int(rng, max)
	if err != nil {
		return nil, fmt.Errorf("psi: drawing secret: %w", err)
	}
	v.Add(v, big.NewInt(1)) // [1, n-1]
	k := make([]byte, p256ScalarSize)
	v.FillBytes(k)
	return &ecSecret{k: k}, nil
}

// HashToGroup maps an item to a curve point by try-and-increment:
// SHA-256(counter || item) is treated as a candidate x-coordinate
// (compressed encoding with an even-y sign byte) and the counter bumps
// until decompression succeeds — about two attempts on average, since
// roughly half of all field values are x-coordinates of curve points.
//
// The attempt count depends on the item, so hashing is NOT
// constant-time across items (see DESIGN.md §14 for why that is
// acceptable here: the set being hashed is the caller's own input, and
// the secret scalar never influences the loop).
func (s *p256Suite) HashToGroup(sc *Scratch, item string) Element {
	if sc == nil {
		sc = NewScratch()
	}
	if cap(sc.buf) < p256ElemSize {
		sc.buf = make([]byte, 0, p256ElemSize)
	}
	cand := sc.buf[:1]
	var cb [4]byte
	for ctr := uint32(0); ; ctr++ {
		sc.h.Reset()
		binary.BigEndian.PutUint32(cb[:], ctr)
		sc.h.Write(cb[:])
		io.WriteString(sc.h, item)
		// Sum appends the 32-byte digest after the sign byte, filling
		// cand's backing array to exactly the compressed-point width.
		full := sc.h.Sum(cand)
		full[0] = 2 // "even y" sign byte; the digest is the x candidate
		if x, y := elliptic.UnmarshalCompressed(s.curve, full[:p256ElemSize]); x != nil {
			sc.buf = full[:0]
			return &ECPoint{X: x, Y: y}
		}
	}
}

func (s *p256Suite) Exp(e Element, sec Secret) Element {
	p := e.(*ECPoint)
	k := sec.(*ecSecret)
	x, y := s.curve.ScalarMult(p.X, p.Y, k.k)
	return &ECPoint{X: x, Y: y}
}

func (s *p256Suite) AppendElement(dst []byte, e Element) []byte {
	p := e.(*ECPoint)
	n := len(dst)
	dst = growSlice(dst, p256ElemSize)
	dst[n] = byte(2 + p.Y.Bit(0)) // 0x02 even y, 0x03 odd y
	p.X.FillBytes(dst[n+1 : n+p256ElemSize])
	return dst
}

func (s *p256Suite) DecodeElement(data []byte) (Element, error) {
	if len(data) != p256ElemSize {
		return nil, fmt.Errorf("psi: p256 element is %d bytes, want %d", len(data), p256ElemSize)
	}
	if data[0] != 2 && data[0] != 3 {
		return nil, fmt.Errorf("psi: p256 element has invalid sign byte %#x", data[0])
	}
	// UnmarshalCompressed rejects x >= p and any x with no curve point
	// (off-curve by construction), returning nil — it never panics.
	x, y := elliptic.UnmarshalCompressed(s.curve, data)
	if x == nil {
		return nil, errors.New("psi: p256 element is not a curve point")
	}
	if x.Sign() == 0 && y.Sign() == 0 {
		return nil, errors.New("psi: p256 element is the identity")
	}
	return &ECPoint{X: x, Y: y}, nil
}

func (s *p256Suite) Validate(e Element) error {
	p, ok := e.(*ECPoint)
	if !ok || p == nil || p.X == nil || p.Y == nil {
		return errors.New("psi: not a p256 element")
	}
	if p.X.Sign() == 0 && p.Y.Sign() == 0 {
		return errors.New("psi: p256 element is the identity")
	}
	if !s.curve.IsOnCurve(p.X, p.Y) {
		return errors.New("psi: p256 element is not a curve point")
	}
	return nil
}

func (s *p256Suite) Equal(a, b Element) bool {
	pa, pb := a.(*ECPoint), b.(*ECPoint)
	return pa.X.Cmp(pb.X) == 0 && pa.Y.Cmp(pb.Y) == 0
}
