package psi

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

// testSuites is the per-suite matrix: every protocol-level test runs
// over both group families (the fast MODP test group stands in for
// modp2048, which shares all code with it).
func testSuites() []Suite {
	return []Suite{ModPSuite(TestGroup()), P256Suite()}
}

func forEachSuite(t *testing.T, f func(t *testing.T, s Suite)) {
	t.Helper()
	for _, s := range testSuites() {
		t.Run(s.Name(), func(t *testing.T) { f(t, s) })
	}
}

func parties(t *testing.T, s Suite) (*Party, *Party) {
	t.Helper()
	a, err := NewParty(s, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParty(s, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// badElements returns suite elements that Validate/Exponentiate must
// reject: the identity, out-of-range values, and non-members (a
// quadratic non-residue for MODP, an off-curve point for p256).
func badElements(t *testing.T, s Suite) map[string]Element {
	t.Helper()
	switch s.Name() {
	case SuiteNameP256:
		return map[string]Element{
			"identity":  &ECPoint{X: big.NewInt(0), Y: big.NewInt(0)},
			"off-curve": &ECPoint{X: big.NewInt(1), Y: big.NewInt(1)},
			"nil-coord": &ECPoint{},
		}
	default:
		g := s.(*modpSuite).g
		// 2^q mod p != 1 would make 2 a generator of the full group; for
		// a safe prime, any non-residue works. Find a small non-residue.
		nonRes := big.NewInt(2)
		for big.Jacobi(nonRes, g.P) == 1 {
			nonRes.Add(nonRes, bigOne)
		}
		return map[string]Element{
			"zero":         ModPElemFromInt(big.NewInt(0)),
			"identity":     ModPElemFromInt(big.NewInt(1)),
			"out-of-range": ModPElemFromInt(new(big.Int).Set(g.P)),
			"negative":     ModPElemFromInt(big.NewInt(-5)),
			"non-residue":  ModPElemFromInt(nonRes),
		}
	}
}

func TestGroupsAreSafePrimes(t *testing.T) {
	for name, g := range map[string]*Group{"default": DefaultGroup(), "test": TestGroup()} {
		if !g.P.ProbablyPrime(32) {
			t.Errorf("%s: p not prime", name)
		}
		if !g.Q.ProbablyPrime(32) {
			t.Errorf("%s: q not prime", name)
		}
		// p = 2q + 1.
		back := new(big.Int).Add(new(big.Int).Lsh(g.Q, 1), big.NewInt(1))
		if back.Cmp(g.P) != 0 {
			t.Errorf("%s: p != 2q+1", name)
		}
	}
}

func TestSuiteRegistry(t *testing.T) {
	for _, name := range []string{SuiteNameP256, SuiteNameModP2048, SuiteNameModP768} {
		s, err := SuiteByName(name)
		if err != nil {
			t.Fatalf("SuiteByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("SuiteByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := SuiteByName("modp1024"); err == nil {
		t.Error("unknown suite name should fail")
	}
	if got := ModPSuite(DefaultGroup()).Name(); got != SuiteNameModP2048 {
		t.Errorf("default group suite name = %q", got)
	}
	if got, want := P256Suite().ElementSize(), 33; got != want {
		t.Errorf("p256 element size = %d, want %d", got, want)
	}
	if got, want := ModPSuite(DefaultGroup()).ElementSize(), 256; got != want {
		t.Errorf("modp2048 element size = %d, want %d", got, want)
	}
}

func TestHashToGroupProperties(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a := s.HashToGroup(nil, "alice@example.org")
		b := s.HashToGroup(nil, "bob@example.org")
		if s.Equal(a, b) {
			t.Error("distinct items hash equal")
		}
		if a2 := s.HashToGroup(nil, "alice@example.org"); !s.Equal(a2, a) {
			t.Error("hash not deterministic")
		}
		// Determinism must hold across scratch reuse too.
		sc := NewScratch()
		for _, item := range []string{"x", "y", "", "日本語", "a very long item name with spaces"} {
			h := s.HashToGroup(sc, item)
			if err := s.Validate(h); err != nil {
				t.Errorf("hash of %q invalid: %v", item, err)
			}
			if !s.Equal(h, s.HashToGroup(nil, item)) {
				t.Errorf("scratch reuse changed hash of %q", item)
			}
		}
	})
}

// The MODP hash must land in the prime-order QR subgroup specifically.
func TestHashToGroupSubgroupMembership(t *testing.T) {
	g := TestGroup()
	for _, item := range []string{"x", "y", "", "日本語"} {
		h := g.HashToGroup(item)
		if h.Sign() <= 0 || h.Cmp(g.P) >= 0 {
			t.Errorf("hash out of range for %q", item)
		}
		one := new(big.Int).Exp(h, g.Q, g.P)
		if one.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("hash of %q not in QR subgroup", item)
		}
	}
}

// The p256 hash must land on the curve (cofactor 1, so that IS subgroup
// membership), and its canonical encoding must round-trip.
func TestHashToCurveMembership(t *testing.T) {
	s := P256Suite().(*p256Suite)
	for _, item := range []string{"x", "y", "", "日本語", "patient-4711"} {
		e := s.HashToGroup(nil, item).(*ECPoint)
		if !s.curve.IsOnCurve(e.X, e.Y) {
			t.Errorf("hash of %q is off-curve", item)
		}
		enc := s.AppendElement(nil, e)
		back, err := s.DecodeElement(enc)
		if err != nil {
			t.Fatalf("decode of hash(%q): %v", item, err)
		}
		if !s.Equal(e, back) {
			t.Errorf("hash of %q does not round-trip", item)
		}
	}
}

func TestCommutativity(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, b := parties(t, s)
		ab, err := b.Exponentiate(a.Blind([]string{"patient-4711"}))
		if err != nil {
			t.Fatal(err)
		}
		ba, err := a.Exponentiate(b.Blind([]string{"patient-4711"}))
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(ab[0], ba[0]) {
			t.Error("double blinding does not commute")
		}
	})
}

func TestIntersectBasic(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, b := parties(t, s)
		itemsA := []string{"alice", "bob", "carol", "dan"}
		itemsB := []string{"carol", "erin", "alice"}
		idx, err := Intersect(a, b, itemsA, itemsB)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, i := range idx {
			got[itemsA[i]] = true
		}
		if len(got) != 2 || !got["alice"] || !got["carol"] {
			t.Errorf("intersection = %v", got)
		}
	})
}

func TestIntersectEdgeCases(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, b := parties(t, s)
		// Empty sets.
		idx, err := Intersect(a, b, nil, []string{"x"})
		if err != nil || len(idx) != 0 {
			t.Errorf("empty A: %v %v", idx, err)
		}
		idx, err = Intersect(a, b, []string{"x"}, nil)
		if err != nil || len(idx) != 0 {
			t.Errorf("empty B: %v %v", idx, err)
		}
		// Disjoint.
		idx, _ = Intersect(a, b, []string{"p", "q"}, []string{"r", "s"})
		if len(idx) != 0 {
			t.Errorf("disjoint sets intersected: %v", idx)
		}
		// Identical.
		items := []string{"1", "2", "3"}
		idx, _ = Intersect(a, b, items, items)
		if len(idx) != 3 {
			t.Errorf("identical sets: %v", idx)
		}
		// Duplicates on A's side each report.
		idx, _ = Intersect(a, b, []string{"x", "x"}, []string{"x"})
		if len(idx) != 2 {
			t.Errorf("duplicate handling: %v", idx)
		}
	})
}

func TestIntersectDifferentSuitesRejected(t *testing.T) {
	a, _ := NewParty(ModPSuite(TestGroup()), rand.Reader)
	b, _ := NewParty(ModPSuite(DefaultGroup()), rand.Reader)
	if _, err := Intersect(a, b, []string{"x"}, []string{"x"}); err == nil {
		t.Error("mismatched MODP groups should fail")
	}
	c, _ := NewParty(P256Suite(), rand.Reader)
	if _, err := Intersect(a, c, []string{"x"}, []string{"x"}); err == nil {
		t.Error("MODP vs p256 should fail")
	}
}

func TestExponentiateRejectsBadElements(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := parties(t, s)
		if _, err := a.Exponentiate([]Element{nil}); err == nil {
			t.Error("nil element should be rejected")
		}
		for name, bad := range badElements(t, s) {
			if _, err := a.Exponentiate([]Element{bad}); err == nil {
				t.Errorf("%s element should be rejected", name)
			}
			if err := s.Validate(bad); err == nil {
				t.Errorf("Validate should reject %s element", name)
			}
		}
	})
}

func TestCardinality(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, b := parties(t, s)
		n, err := Cardinality(a, b, []string{"1", "2", "3", "4"}, []string{"3", "4", "5"})
		if err != nil || n != 2 {
			t.Errorf("cardinality = %d, %v", n, err)
		}
	})
}

func TestNewPartyValidation(t *testing.T) {
	if _, err := NewParty(nil, rand.Reader); err == nil {
		t.Error("nil suite should fail")
	}
	p, err := NewParty(ModPSuite(TestGroup()), nil)
	if err != nil || p == nil {
		t.Fatalf("nil rng should fall back to crypto/rand: %v", err)
	}
	// MODP secret is in [1, q-1].
	sec := (*big.Int)(p.secret.(*modpSecret))
	if sec.Sign() <= 0 || sec.Cmp(TestGroup().Q) >= 0 {
		t.Errorf("modp secret out of range")
	}
	ec, err := NewParty(P256Suite(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// EC secret is a fixed-width nonzero scalar below the curve order.
	k := ec.secret.(*ecSecret).k
	if len(k) != p256ScalarSize {
		t.Errorf("ec secret width = %d", len(k))
	}
	kv := new(big.Int).SetBytes(k)
	if kv.Sign() <= 0 || kv.Cmp(p256Singleton.curve.Params().N) >= 0 {
		t.Errorf("ec secret out of range")
	}
}

func TestWireRoundTrip(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := parties(t, s)
		elems := a.Blind([]string{"x", "y", "z"})
		node := MarshalElems(s, elems)
		if got := WireSuiteName(node); got != s.Name() {
			t.Errorf("wire suite attr = %q, want %q", got, s.Name())
		}
		for _, c := range node.ChildrenNamed("e") {
			if len(c.Text) != 2*s.ElementSize() {
				t.Errorf("wire element is %d hex chars, want %d", len(c.Text), 2*s.ElementSize())
			}
		}
		back, err := UnmarshalElems(node, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 3 {
			t.Fatalf("round trip count = %d", len(back))
		}
		for i := range elems {
			if !s.Equal(elems[i], back[i]) {
				t.Errorf("element %d mismatch", i)
			}
		}
	})
}

func TestWireRejectsBadInput(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := parties(t, s)
		node := MarshalElems(s, a.Blind([]string{"x"}))
		node.Name = "other"
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("wrong root should fail")
		}
		node.Name = "psi-elems"
		canon := node.Children[0].Text
		node.Children[0].Text = "zz-not-hex"
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("bad hex should fail")
		}
		// Uppercase hex of the same value is a second encoding of one
		// element; canonical form is lowercase only.
		node.Children[0].Text = strings.ToUpper(canon)
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("uppercase hex should fail")
		}
		// Overlong: leading-zero padding past the fixed width.
		node.Children[0].Text = "00" + canon
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("overlong encoding should fail")
		}
		// Short: stripped leading zeros.
		node.Children[0].Text = canon[2:]
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("short encoding should fail")
		}
		node.Children[0].Text = canon
		// Suite attribute mismatch fails even when the payload decodes.
		node.SetAttr("suite", "nope")
		if _, err := UnmarshalElems(node, s); err == nil {
			t.Error("suite mismatch should fail")
		}
		node.SetAttr("suite", s.Name())
		if _, err := UnmarshalElems(node, s); err != nil {
			t.Errorf("restored canonical envelope should parse: %v", err)
		}
	})
	// Out-of-range / non-member payloads per suite.
	g := TestGroup()
	ms := ModPSuite(g)
	a, _ := NewParty(ms, rand.Reader)
	node := MarshalElems(ms, a.Blind([]string{"x"}))
	enc := make([]byte, ms.ElementSize())
	g.P.FillBytes(enc)
	node.Children[0].Text = fmt.Sprintf("%x", enc) // == p, out of range
	if _, err := UnmarshalElems(node, ms); err == nil {
		t.Error("out-of-range MODP element should fail")
	}
	node.Children[0].Text = strings.Repeat("0", 2*ms.ElementSize()) // zero
	if _, err := UnmarshalElems(node, ms); err == nil {
		t.Error("zero MODP element should fail")
	}
	ec := P256Suite()
	c, _ := NewParty(ec, rand.Reader)
	node = MarshalElems(ec, c.Blind([]string{"x"}))
	node.Children[0].Text = "04" + strings.Repeat("ab", 32) // bad sign byte
	if _, err := UnmarshalElems(node, ec); err == nil {
		t.Error("bad sign byte should fail")
	}
	// x with no curve point: try x=5's neighborhood — brute-force a
	// non-point by scanning candidates until decode fails.
	found := false
	for x := int64(1); x < 64 && !found; x++ {
		enc := make([]byte, 33)
		enc[0] = 2
		big.NewInt(x).FillBytes(enc[1:])
		if _, err := ec.DecodeElement(enc); err != nil {
			found = true
			node.Children[0].Text = fmt.Sprintf("%x", enc)
			if _, err := UnmarshalElems(node, ec); err == nil {
				t.Error("off-curve x should fail")
			}
		}
	}
	if !found {
		t.Fatal("no off-curve x candidate found in scan range")
	}
}

// Envelopes from peers predating the suite attribute must still parse
// against the MODP suite the receiver was configured with — and must
// NOT parse as p256.
func TestWireLegacyEnvelopeWithoutSuiteAttr(t *testing.T) {
	ms := ModPSuite(TestGroup())
	a, _ := NewParty(ms, rand.Reader)
	node := MarshalElems(ms, a.Blind([]string{"x", "y"}))
	// Simulate a legacy sender: strip the suite attribute.
	delete(node.Attrs, "suite")
	if _, ok := node.Attr("suite"); ok {
		t.Fatal("test setup: suite attr still present")
	}
	back, err := UnmarshalElems(node, ms)
	if err != nil || len(back) != 2 {
		t.Fatalf("legacy envelope should parse against MODP: %v", err)
	}
	if _, err := UnmarshalElems(node, P256Suite()); err == nil {
		t.Error("legacy MODP payload must not parse as p256")
	}
}

// Property: the protocol computes exactly the true intersection for random
// small universes.
func TestIntersectCorrectnessProperty(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := NewParty(s, rand.Reader)
		b, _ := NewParty(s, rand.Reader)
		items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		f := func(maskA, maskB uint8) bool {
			var setA, setB []string
			want := map[string]bool{}
			for i, it := range items {
				inA := maskA&(1<<i) != 0
				inB := maskB&(1<<i) != 0
				if inA {
					setA = append(setA, it)
				}
				if inB {
					setB = append(setB, it)
				}
				if inA && inB {
					want[it] = true
				}
			}
			idx, err := Intersect(a, b, setA, setB)
			if err != nil {
				return false
			}
			got := map[string]bool{}
			for _, i := range idx {
				got[setA[i]] = true
			}
			if len(got) != len(want) {
				return false
			}
			for k := range want {
				if !got[k] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Error(err)
		}
	})
}

// The parallel kernels must produce the exact serial transcript: the
// peer sees identical bytes at any worker count.
func TestParallelBlindMatchesSerial(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		p, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]string, 50)
		for i := range items {
			items[i] = fmt.Sprintf("item-%d", i)
		}
		serial := p.SetWorkers(1).Blind(items)
		for _, w := range []int{0, 2, 8} {
			// Fresh party with the same secret path is impossible (random
			// secret), so compare against the same party: results must be
			// identical because H(x)^s is a pure function.
			par := p.SetWorkers(w).Blind(items)
			for i := range serial {
				if !s.Equal(serial[i], par[i]) {
					t.Fatalf("workers=%d: element %d differs", w, i)
				}
			}
		}
	})
}

func TestParallelExponentiateMatchesSerial(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		p, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		peer, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]string, 40)
		for i := range items {
			items[i] = fmt.Sprintf("x%d", i)
		}
		elems := peer.Blind(items)
		serial, err := p.SetWorkers(1).Exponentiate(elems)
		if err != nil {
			t.Fatal(err)
		}
		par, err := p.SetWorkers(4).Exponentiate(elems)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if !s.Equal(serial[i], par[i]) {
				t.Fatalf("element %d differs between serial and parallel", i)
			}
		}
	})
}

func TestExponentiateRangeErrorIsDeterministic(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		p, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		good := p.Blind([]string{"fine"})
		bad := []Element{good[0], nil, good[0]}
		if _, err := p.SetWorkers(4).Exponentiate(bad); err == nil ||
			!strings.Contains(err.Error(), "element 1") {
			t.Fatalf("want lowest-index validation error, got %v", err)
		}
	})
}

// A warm Blind round must reuse the precomputation table rather than
// redoing group operations; correctness is checked by transcript
// equality and a full protocol round after warming.
func TestBlindPrecomputationTableReuse(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, b := parties(t, s)
		itemsA := []string{"ann", "bob", "eve", "mallory"}
		itemsB := []string{"bob", "eve", "trent"}
		cold := a.Blind(itemsA)
		warm := a.Blind(itemsA)
		for i := range cold {
			// Table hits return the identical element, not a recomputation.
			if cold[i] != warm[i] {
				t.Fatalf("item %d recomputed on warm round", i)
			}
		}
		idx, err := Intersect(a, b, itemsA, itemsB)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != 2 || itemsA[idx[0]] != "bob" || itemsA[idx[1]] != "eve" {
			t.Fatalf("intersection after warm rounds = %v", idx)
		}
	})
}
