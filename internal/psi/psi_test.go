package psi

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func parties(t *testing.T) (*Party, *Party) {
	t.Helper()
	g := TestGroup()
	a, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestGroupsAreSafePrimes(t *testing.T) {
	for name, g := range map[string]*Group{"default": DefaultGroup(), "test": TestGroup()} {
		if !g.P.ProbablyPrime(32) {
			t.Errorf("%s: p not prime", name)
		}
		if !g.Q.ProbablyPrime(32) {
			t.Errorf("%s: q not prime", name)
		}
		// p = 2q + 1.
		back := new(big.Int).Add(new(big.Int).Lsh(g.Q, 1), big.NewInt(1))
		if back.Cmp(g.P) != 0 {
			t.Errorf("%s: p != 2q+1", name)
		}
	}
}

func TestHashToGroupProperties(t *testing.T) {
	g := TestGroup()
	a := g.HashToGroup("alice@example.org")
	b := g.HashToGroup("bob@example.org")
	if a.Cmp(b) == 0 {
		t.Error("distinct items hash equal")
	}
	if a2 := g.HashToGroup("alice@example.org"); a2.Cmp(a) != 0 {
		t.Error("hash not deterministic")
	}
	// Every hash is a quadratic residue: h^q = 1 mod p.
	for _, item := range []string{"x", "y", "", "日本語", "a very long item name with spaces"} {
		h := g.HashToGroup(item)
		if h.Sign() <= 0 || h.Cmp(g.P) >= 0 {
			t.Errorf("hash out of range for %q", item)
		}
		one := new(big.Int).Exp(h, g.Q, g.P)
		if one.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("hash of %q not in QR subgroup", item)
		}
	}
}

func TestCommutativity(t *testing.T) {
	a, b := parties(t)
	g := a.Group()
	h := g.HashToGroup("patient-4711")
	ab, err := b.Exponentiate(a.Blind([]string{"patient-4711"}))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := a.Exponentiate(b.Blind([]string{"patient-4711"}))
	if err != nil {
		t.Fatal(err)
	}
	if ab[0].Cmp(ba[0]) != 0 {
		t.Error("double blinding does not commute")
	}
	_ = h
}

func TestIntersectBasic(t *testing.T) {
	a, b := parties(t)
	itemsA := []string{"alice", "bob", "carol", "dan"}
	itemsB := []string{"carol", "erin", "alice"}
	idx, err := Intersect(a, b, itemsA, itemsB)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, i := range idx {
		got[itemsA[i]] = true
	}
	if len(got) != 2 || !got["alice"] || !got["carol"] {
		t.Errorf("intersection = %v", got)
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	a, b := parties(t)
	// Empty sets.
	idx, err := Intersect(a, b, nil, []string{"x"})
	if err != nil || len(idx) != 0 {
		t.Errorf("empty A: %v %v", idx, err)
	}
	idx, err = Intersect(a, b, []string{"x"}, nil)
	if err != nil || len(idx) != 0 {
		t.Errorf("empty B: %v %v", idx, err)
	}
	// Disjoint.
	idx, _ = Intersect(a, b, []string{"p", "q"}, []string{"r", "s"})
	if len(idx) != 0 {
		t.Errorf("disjoint sets intersected: %v", idx)
	}
	// Identical.
	items := []string{"1", "2", "3"}
	idx, _ = Intersect(a, b, items, items)
	if len(idx) != 3 {
		t.Errorf("identical sets: %v", idx)
	}
	// Duplicates on A's side each report.
	idx, _ = Intersect(a, b, []string{"x", "x"}, []string{"x"})
	if len(idx) != 2 {
		t.Errorf("duplicate handling: %v", idx)
	}
}

func TestIntersectDifferentGroupsRejected(t *testing.T) {
	a, _ := NewParty(TestGroup(), rand.Reader)
	b, _ := NewParty(DefaultGroup(), rand.Reader)
	if _, err := Intersect(a, b, []string{"x"}, []string{"x"}); err == nil {
		t.Error("mismatched groups should fail")
	}
}

func TestExponentiateRejectsBadElements(t *testing.T) {
	a, _ := parties(t)
	for _, bad := range []*big.Int{nil, big.NewInt(0), big.NewInt(-5), a.Group().P} {
		if _, err := a.Exponentiate([]*big.Int{bad}); err == nil {
			t.Errorf("element %v should be rejected", bad)
		}
	}
}

func TestCardinality(t *testing.T) {
	a, b := parties(t)
	n, err := Cardinality(a, b, []string{"1", "2", "3", "4"}, []string{"3", "4", "5"})
	if err != nil || n != 2 {
		t.Errorf("cardinality = %d, %v", n, err)
	}
}

func TestNewPartyValidation(t *testing.T) {
	if _, err := NewParty(nil, rand.Reader); err == nil {
		t.Error("nil group should fail")
	}
	p, err := NewParty(TestGroup(), nil)
	if err != nil || p == nil {
		t.Errorf("nil rng should fall back to crypto/rand: %v", err)
	}
	// Secret is in [1, q-1].
	if p.secret.Sign() <= 0 || p.secret.Cmp(p.group.Q) >= 0 {
		t.Errorf("secret out of range")
	}
}

func TestWireRoundTrip(t *testing.T) {
	a, _ := parties(t)
	elems := a.Blind([]string{"x", "y", "z"})
	node := MarshalElems(elems)
	back, err := UnmarshalElems(node, a.Group())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip count = %d", len(back))
	}
	for i := range elems {
		if elems[i].Cmp(back[i]) != 0 {
			t.Errorf("element %d mismatch", i)
		}
	}
}

func TestWireRejectsBadInput(t *testing.T) {
	g := TestGroup()
	a, _ := NewParty(g, rand.Reader)
	node := MarshalElems(a.Blind([]string{"x"}))
	node.Name = "other"
	if _, err := UnmarshalElems(node, g); err == nil {
		t.Error("wrong root should fail")
	}
	node.Name = "psi-elems"
	node.Children[0].Text = "zz-not-hex"
	if _, err := UnmarshalElems(node, g); err == nil {
		t.Error("bad hex should fail")
	}
	node.Children[0].Text = g.P.Text(16) // == p, out of range
	if _, err := UnmarshalElems(node, g); err == nil {
		t.Error("out-of-range element should fail")
	}
}

// Property: the protocol computes exactly the true intersection for random
// small universes.
func TestIntersectCorrectnessProperty(t *testing.T) {
	g := TestGroup()
	a, _ := NewParty(g, rand.Reader)
	b, _ := NewParty(g, rand.Reader)
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	f := func(maskA, maskB uint8) bool {
		var setA, setB []string
		want := map[string]bool{}
		for i, it := range items {
			inA := maskA&(1<<i) != 0
			inB := maskB&(1<<i) != 0
			if inA {
				setA = append(setA, it)
			}
			if inB {
				setB = append(setB, it)
			}
			if inA && inB {
				want[it] = true
			}
		}
		idx, err := Intersect(a, b, setA, setB)
		if err != nil {
			return false
		}
		got := map[string]bool{}
		for _, i := range idx {
			got[setA[i]] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The parallel kernels must produce the exact serial transcript: the
// peer sees identical bytes at any worker count.
func TestParallelBlindMatchesSerial(t *testing.T) {
	g := TestGroup()
	p, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]string, 50)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	serial := p.SetWorkers(1).Blind(items)
	for _, w := range []int{0, 2, 8} {
		// Fresh party with the same secret path is impossible (random
		// secret), so compare against the same party: results must be
		// identical because H(x)^s is a pure function.
		par := p.SetWorkers(w).Blind(items)
		for i := range serial {
			if serial[i].Cmp(par[i]) != 0 {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
}

func TestParallelExponentiateMatchesSerial(t *testing.T) {
	g := TestGroup()
	p, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]string, 40)
	for i := range items {
		items[i] = fmt.Sprintf("x%d", i)
	}
	elems := peer.Blind(items)
	serial, err := p.SetWorkers(1).Exponentiate(elems)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.SetWorkers(4).Exponentiate(elems)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cmp(par[i]) != 0 {
			t.Fatalf("element %d differs between serial and parallel", i)
		}
	}
}

func TestExponentiateRangeErrorIsDeterministic(t *testing.T) {
	g := TestGroup()
	p, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bad := []*big.Int{big.NewInt(2), nil, big.NewInt(0), g.P}
	if _, err := p.SetWorkers(4).Exponentiate(bad); err == nil ||
		!strings.Contains(err.Error(), "element 1") {
		t.Fatalf("want lowest-index range error, got %v", err)
	}
}

// A warm Blind round must reuse the precomputation table rather than
// redoing modexps; correctness is checked by transcript equality and a
// full protocol round after warming.
func TestBlindPrecomputationTableReuse(t *testing.T) {
	g := TestGroup()
	a, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParty(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	itemsA := []string{"ann", "bob", "eve", "mallory"}
	itemsB := []string{"bob", "eve", "trent"}
	cold := a.Blind(itemsA)
	warm := a.Blind(itemsA)
	for i := range cold {
		// Table hits return the identical *big.Int, not a recomputation.
		if cold[i] != warm[i] {
			t.Fatalf("item %d recomputed on warm round", i)
		}
	}
	idx, err := Intersect(a, b, itemsA, itemsB)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || itemsA[idx[0]] != "bob" || itemsA[idx[1]] != "eve" {
		t.Fatalf("intersection after warm rounds = %v", idx)
	}
}
