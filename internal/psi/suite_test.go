package psi

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"testing"

	"privateiye/internal/xmltree"
)

// The scratch-buffer path exists to cut allocations out of the
// hash-to-group hot loop; pin that it actually does, per suite.
func TestScratchReducesAllocations(t *testing.T) {
	for _, s := range testSuites() {
		t.Run(s.Name(), func(t *testing.T) {
			sc := NewScratch()
			s.HashToGroup(sc, "warmup") // size the buffers once
			i := 0
			withScratch := testing.AllocsPerRun(200, func() {
				s.HashToGroup(sc, fmt.Sprintf("item-%d", i))
				i++
			})
			without := testing.AllocsPerRun(200, func() {
				s.HashToGroup(nil, fmt.Sprintf("item-%d", i))
				i++
			})
			if withScratch >= without {
				t.Errorf("scratch path allocates %.1f/op, no-scratch %.1f/op — scratch must be cheaper",
					withScratch, without)
			}
		})
	}
}

// Canonical encode must also be allocation-free once the caller's
// buffer has warmed up.
func TestAppendElementReusesBuffer(t *testing.T) {
	for _, s := range testSuites() {
		t.Run(s.Name(), func(t *testing.T) {
			e := s.HashToGroup(nil, "x")
			buf := make([]byte, 0, s.ElementSize())
			allocs := testing.AllocsPerRun(100, func() {
				buf = s.AppendElement(buf[:0], e)
			})
			if allocs != 0 {
				t.Errorf("AppendElement into warm buffer allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

func BenchmarkHashToGroup(b *testing.B) {
	for _, s := range []Suite{ModPSuite(TestGroup()), P256Suite()} {
		items := make([]string, 1024)
		for i := range items {
			items[i] = fmt.Sprintf("item-%04d", i)
		}
		b.Run(s.Name()+"/scratch", func(b *testing.B) {
			sc := NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.HashToGroup(sc, items[i%len(items)])
			}
		})
		b.Run(s.Name()+"/noscratch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.HashToGroup(nil, items[i%len(items)])
			}
		})
	}
}

// FuzzUnmarshalElems pins that envelope decoding never panics on
// arbitrary XML, for either suite, and that accepted input is exactly
// canonical: re-encoding the decoded elements reproduces the input
// element texts byte for byte.
func FuzzUnmarshalElems(f *testing.F) {
	ms := ModPSuite(TestGroup())
	a, err := NewParty(ms, rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(MarshalElems(ms, a.Blind([]string{"x", "y"})).String())
	ec := P256Suite()
	c, err := NewParty(ec, rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(MarshalElems(ec, c.Blind([]string{"x"})).String())
	f.Add(`<psi-elems n="1" suite="p256"><e>02ab</e></psi-elems>`)
	f.Add(`<psi-elems n="0"></psi-elems>`)
	f.Add(`<other/>`)
	f.Fuzz(func(t *testing.T, doc string) {
		node, err := xmltree.ParseString(doc)
		if err != nil {
			return
		}
		for _, s := range []Suite{ModPSuite(TestGroup()), P256Suite()} {
			elems, err := UnmarshalElems(node, s)
			if err != nil {
				continue
			}
			// Accepted: the canonical re-encoding must equal the input.
			re := MarshalElems(s, elems)
			in := node.ChildrenNamed("e")
			out := re.ChildrenNamed("e")
			if len(in) != len(out) {
				t.Fatalf("%s: accepted %d elems, re-encoded %d", s.Name(), len(in), len(out))
			}
			for i := range in {
				if in[i].Text != out[i].Text {
					t.Fatalf("%s: element %d accepted non-canonical form %q (canonical %q)",
						s.Name(), i, in[i].Text, out[i].Text)
				}
			}
		}
	})
}

// FuzzP256DecodeElement pins that raw compressed-point decoding never
// panics and only accepts points whose canonical encoding is the input
// itself.
func FuzzP256DecodeElement(f *testing.F) {
	s := P256Suite()
	e := s.HashToGroup(nil, "seed")
	f.Add(s.AppendElement(nil, e))
	f.Add([]byte{2})
	f.Add(bytes.Repeat([]byte{0xff}, 33))
	f.Add(make([]byte, 33))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := s.DecodeElement(data)
		if err != nil {
			return
		}
		if verr := s.Validate(e); verr != nil {
			t.Fatalf("decoded element fails Validate: %v", verr)
		}
		if enc := s.AppendElement(nil, e); !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding %x (canonical %x)", data, enc)
		}
	})
}

// FuzzModPDecodeElement is the MODP counterpart: decode never panics,
// accepted residues are valid subgroup members, and the encoding is
// canonical.
func FuzzModPDecodeElement(f *testing.F) {
	s := ModPSuite(TestGroup())
	e := s.HashToGroup(nil, "seed")
	f.Add(s.AppendElement(nil, e))
	f.Add(make([]byte, 96))
	f.Add([]byte{4})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := s.DecodeElement(data)
		if err != nil {
			return
		}
		if verr := s.Validate(e); verr != nil {
			t.Fatalf("decoded element fails Validate: %v", verr)
		}
		if enc := s.AppendElement(nil, e); !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding %x (canonical %x)", data, enc)
		}
	})
}
