// Package psi implements two-party private set intersection under the
// decisional Diffie-Hellman assumption, in the commutative-encryption
// style of Agrawal, Evfimievski and Srikant's "Information Sharing Across
// Private Databases" (SIGMOD 2003) — reference [8] of the paper, and the
// primitive its Result Integrator needs for "object matchings ... without
// revealing the origins of the sources or the real world origins of the
// entities" (Section 5).
//
// Construction: items hash into a prime-order group. Each party holds a
// random secret scalar; because applying the secret commutes,
// H(x)^(ab) = H(x)^(ba), so after both parties have operated on both
// sets, equal items collide and nothing else does (computing H(y)^a from
// H(x)^a for x != y is a DH problem). The initiator learns which of its
// items the responder also holds; the responder learns only the
// initiator's set size.
//
// The group is pluggable via Suite: the original safe-prime MODP groups
// (quadratic residues mod RFC 3526 primes, 2048-bit modexps) and a NIST
// P-256 elliptic-curve suite (256-bit scalar mults, 33-byte elements),
// which is the fast default.
//
// Everything is stdlib: crypto/rand, crypto/sha256, crypto/elliptic,
// math/big.
package psi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"privateiye/internal/parallel"
)

// blindCacheCap bounds the per-party precomputation table. A source's
// linkage field rarely exceeds this; past it, extra items are simply
// recomputed rather than growing the table without bound.
const blindCacheCap = 1 << 16

// scratchPool recycles hash-to-group scratch buffers across scalar
// kernel calls; batch kernels hold one scratch per chunk instead.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// Party is one protocol participant holding a secret scalar for its
// suite.
//
// Every per-item operation (one group exponentiation each) fans out
// over the shared worker pool; SetWorkers tunes the width (0 =
// GOMAXPROCS, 1 = serial). Output order is always the input order, so
// the protocol transcript is byte-identical at any width.
type Party struct {
	suite   Suite
	secret  Secret
	workers int

	// Protocol counters (see Stats): items blinded, blinds served from
	// the precomputation table, peer elements exponentiated. Atomics, so
	// an observability scrape never contends with a round in flight.
	blindItems atomic.Uint64
	blindHits  atomic.Uint64
	expItems   atomic.Uint64

	// blinds is the fixed-secret precomputation table: because the
	// party's scalar never changes, H(item)^secret is a pure function
	// of the item, so repeated protocol rounds (the mediator re-linking
	// the same field against several peers, or periodic re-integration)
	// reuse earlier group operations instead of redoing them. Only the
	// party's own items are cached — peer-supplied elements change every
	// round (they carry the peer's fresh blinding) and would never hit.
	mu     sync.RWMutex
	blinds map[string]Element
}

// NewParty draws a fresh secret scalar for the suite from rng
// (crypto/rand.Reader in production; any reader in tests).
func NewParty(s Suite, rng io.Reader) (*Party, error) {
	if s == nil {
		return nil, errors.New("psi: nil suite")
	}
	sec, err := s.NewSecret(rng)
	if err != nil {
		return nil, err
	}
	return &Party{suite: s, secret: sec, blinds: map[string]Element{}}, nil
}

// Suite returns the party's group suite.
func (p *Party) Suite() Suite { return p.suite }

// SetWorkers fixes the fan-out width for this party's kernels: 0 (the
// default) means GOMAXPROCS, 1 forces the serial path. It returns the
// party for chaining and must not be called concurrently with protocol
// operations.
func (p *Party) SetWorkers(n int) *Party {
	p.workers = n
	return p
}

// cachedBlind returns the precomputed blind for an item, if present.
func (p *Party) cachedBlind(item string) (Element, bool) {
	p.mu.RLock()
	v, ok := p.blinds[item]
	p.mu.RUnlock()
	return v, ok
}

// storeBlinds installs freshly computed blinds, respecting the cap.
func (p *Party) storeBlinds(items []string, vals []Element) {
	p.mu.Lock()
	for i, it := range items {
		if vals[i] == nil {
			continue
		}
		if len(p.blinds) >= blindCacheCap {
			break
		}
		p.blinds[it] = vals[i]
	}
	p.mu.Unlock()
}

// Blind hashes each item into the group and applies the party's
// secret: the first message of the protocol. Items fan out across the
// worker pool (one group exponentiation each), and results are memoized
// in the party's precomputation table — the scalar is fixed for the
// party's lifetime, so a warm round is pure lookups. Output order
// matches the input order regardless of worker count.
func (p *Party) Blind(items []string) []Element {
	out := make([]Element, len(items))
	fresh := make([]Element, len(items)) // only newly computed entries
	p.blindItems.Add(uint64(len(items)))
	// parallel.ForEach with an always-nil error never fails.
	_ = parallel.ForEach(context.Background(), len(items), p.workers, func(i int) error {
		if v, ok := p.cachedBlind(items[i]); ok {
			out[i] = v
			p.blindHits.Add(1)
			return nil
		}
		sc := scratchPool.Get().(*Scratch)
		v := p.suite.Exp(p.suite.HashToGroup(sc, items[i]), p.secret)
		scratchPool.Put(sc)
		out[i], fresh[i] = v, v
		return nil
	})
	p.storeBlinds(items, fresh)
	return out
}

// BlindBatch is Blind for whole columns: identical output (order, cache
// use, counters), but the fan-out is one pool task per contiguous chunk
// of items rather than per item, the precomputation table is read
// under one RLock per chunk instead of one per item, and each chunk
// reuses a single hash-to-group scratch buffer. Sources feed a field's
// full value column through here; the per-item entry point remains the
// scalar baseline experiments compare against.
func (p *Party) BlindBatch(items []string) []Element {
	n := len(items)
	out := make([]Element, n)
	if n == 0 {
		return out
	}
	p.blindItems.Add(uint64(n))
	fresh := make([]Element, n) // only newly computed entries
	_ = parallel.ForEachChunk(context.Background(), n, p.workers, 0, func(lo, hi int) error {
		// One table read for the whole chunk: the run of lookups shares a
		// single RLock acquisition.
		hits := 0
		p.mu.RLock()
		for i := lo; i < hi; i++ {
			if v, ok := p.blinds[items[i]]; ok {
				out[i] = v
				hits++
			}
		}
		p.mu.RUnlock()
		if hits > 0 {
			p.blindHits.Add(uint64(hits))
		}
		sc := scratchPool.Get().(*Scratch)
		for i := lo; i < hi; i++ {
			if out[i] != nil {
				continue
			}
			v := p.suite.Exp(p.suite.HashToGroup(sc, items[i]), p.secret)
			out[i], fresh[i] = v, v
		}
		scratchPool.Put(sc)
		return nil
	})
	p.storeBlinds(items, fresh)
	return out
}

// Exponentiate applies this party's secret to already-blinded elements
// (received from the peer), preserving order: the second message. Peer
// elements are validated and then exponentiated across the worker pool;
// they are never cached (each round's peer blinding is fresh).
func (p *Party) Exponentiate(elems []Element) ([]Element, error) {
	// Validate serially first: membership errors must be deterministic
	// and reported for the lowest offending index, not whichever worker
	// happened to reach its element first.
	for i, e := range elems {
		if e == nil {
			return nil, fmt.Errorf("psi: element %d is nil", i)
		}
		if err := p.suite.Validate(e); err != nil {
			return nil, fmt.Errorf("psi: element %d: %w", i, err)
		}
	}
	p.expItems.Add(uint64(len(elems)))
	return parallel.Map(context.Background(), len(elems), p.workers, func(i int) (Element, error) {
		return p.suite.Exp(elems[i], p.secret), nil
	})
}

// ExponentiateBatch is Exponentiate with chunked fan-out: one pool task
// per contiguous run of elements. Validation, ordering and counters are
// identical to the scalar entry point.
func (p *Party) ExponentiateBatch(elems []Element) ([]Element, error) {
	for i, e := range elems {
		if e == nil {
			return nil, fmt.Errorf("psi: element %d is nil", i)
		}
		if err := p.suite.Validate(e); err != nil {
			return nil, fmt.Errorf("psi: element %d: %w", i, err)
		}
	}
	n := len(elems)
	p.expItems.Add(uint64(n))
	out := make([]Element, n)
	_ = parallel.ForEachChunk(context.Background(), n, p.workers, 0, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = p.suite.Exp(elems[i], p.secret)
		}
		return nil
	})
	return out, nil
}

// Stats reports the party's lifetime protocol counters: items blinded
// (Blind calls, including cache hits), blinds served from the
// precomputation table, and peer elements exponentiated. Safe for
// concurrent use.
func (p *Party) Stats() (blinded, blindCacheHits, exponentiated uint64) {
	return p.blindItems.Load(), p.blindHits.Load(), p.expItems.Load()
}

// Intersect runs the full semi-honest protocol in-process between an
// initiator holding itemsA and a responder holding itemsB, both already
// holding secrets in the same suite. It returns the indices into itemsA
// of items the responder also holds. The message flow is exactly what
// the network transport ships:
//
//	A -> B: Blind(A's items)
//	B -> A: Exponentiate(that), and Blind(B's items)
//	A:      Exponentiate(B's blinds), compare double-blinded sets
func Intersect(initiator, responder *Party, itemsA, itemsB []string) ([]int, error) {
	if initiator.suite.Name() != responder.suite.Name() {
		return nil, fmt.Errorf("psi: parties use different suites (%s vs %s)",
			initiator.suite.Name(), responder.suite.Name())
	}
	aBlind := initiator.Blind(itemsA)
	abDouble, err := responder.Exponentiate(aBlind)
	if err != nil {
		return nil, err
	}
	bBlind := responder.Blind(itemsB)
	baDouble, err := initiator.Exponentiate(bBlind)
	if err != nil {
		return nil, err
	}
	// Key on the fixed-width canonical encoding, appended into one
	// reused buffer: width-uniform keys, no per-element allocation
	// beyond the map entries themselves.
	s := initiator.suite
	buf := make([]byte, 0, s.ElementSize())
	inB := make(map[string]struct{}, len(baDouble))
	for _, e := range baDouble {
		buf = s.AppendElement(buf[:0], e)
		inB[string(buf)] = struct{}{}
	}
	out := make([]int, 0, min(len(abDouble), len(inB)))
	for i, e := range abDouble {
		buf = s.AppendElement(buf[:0], e)
		if _, ok := inB[string(buf)]; ok {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// Cardinality runs the protocol but returns only the intersection size —
// the variant sources use when even which items matched is too revealing.
func Cardinality(initiator, responder *Party, itemsA, itemsB []string) (int, error) {
	idx, err := Intersect(initiator, responder, itemsA, itemsB)
	if err != nil {
		return 0, err
	}
	return len(idx), nil
}
