// Package psi implements two-party private set intersection under the
// decisional Diffie-Hellman assumption, in the commutative-encryption
// style of Agrawal, Evfimievski and Srikant's "Information Sharing Across
// Private Databases" (SIGMOD 2003) — reference [8] of the paper, and the
// primitive its Result Integrator needs for "object matchings ... without
// revealing the origins of the sources or the real world origins of the
// entities" (Section 5).
//
// Construction: items hash into the prime-order subgroup of quadratic
// residues mod a safe prime p = 2q+1. Each party holds a random exponent;
// because exponentiation commutes, H(x)^(ab) = H(x)^(ba), so after both
// parties have exponentiated both sets, equal items collide and nothing
// else does (computing H(y)^a from H(x)^a for x != y is a DH problem).
// The initiator learns which of its items the responder also holds; the
// responder learns only the initiator's set size.
//
// Everything is stdlib: crypto/rand, crypto/sha256, math/big.
package psi

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"privateiye/internal/parallel"
)

// Group is a safe-prime group: p = 2q+1 with q prime. Protocol elements
// live in the order-q subgroup of quadratic residues.
type Group struct {
	P *big.Int // safe prime modulus
	Q *big.Int // (P-1)/2
}

// newGroup builds a group from a hex modulus, computing q.
func newGroup(hexP string) *Group {
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		panic("psi: bad group constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &Group{P: p, Q: q}
}

// DefaultGroup returns the 2048-bit MODP group of RFC 3526 (group 14), a
// safe prime. Use this in deployments.
func DefaultGroup() *Group {
	return newGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
			"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
			"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
			"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718" +
			"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF")
}

// TestGroup returns the 768-bit Oakley group 1 (RFC 2409), also a safe
// prime. It is NOT adequate for production secrecy; it exists so tests and
// benchmarks run quickly while exercising identical code paths.
func TestGroup() *Group {
	return newGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF")
}

// HashToGroup maps an arbitrary item into the quadratic-residue subgroup:
// expand SHA-256(item) in counter mode to the modulus width, reduce mod p,
// then square. Squaring lands in QR(p), the order-q subgroup.
func (g *Group) HashToGroup(item string) *big.Int {
	byteLen := (g.P.BitLen() + 7) / 8
	buf := make([]byte, 0, byteLen+sha256.Size)
	var ctr uint32
	for len(buf) < byteLen {
		h := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		io.WriteString(h, item)
		buf = h.Sum(buf)
		ctr++
	}
	v := new(big.Int).SetBytes(buf[:byteLen])
	v.Mod(v, g.P)
	v.Mul(v, v)
	v.Mod(v, g.P)
	// Zero is the only non-invertible outcome and requires SHA-256 output
	// ≡ 0 mod p; map it to 4 (= 2^2, a QR) for totality.
	if v.Sign() == 0 {
		return big.NewInt(4)
	}
	return v
}

// byteLen is the fixed encoding width of a group element.
func (g *Group) byteLen() int { return (g.P.BitLen() + 7) / 8 }

// blindCacheCap bounds the per-party precomputation table. A source's
// linkage field rarely exceeds this; past it, extra items are simply
// recomputed rather than growing the table without bound.
const blindCacheCap = 1 << 16

// Party is one protocol participant holding a secret exponent.
//
// Every per-item operation (one modular exponentiation each) fans out
// over the shared worker pool; SetWorkers tunes the width (0 =
// GOMAXPROCS, 1 = serial). Output order is always the input order, so
// the protocol transcript is byte-identical at any width.
type Party struct {
	group   *Group
	secret  *big.Int
	workers int

	// Protocol counters (see Stats): items blinded, blinds served from
	// the precomputation table, peer elements exponentiated. Atomics, so
	// an observability scrape never contends with a round in flight.
	blindItems atomic.Uint64
	blindHits  atomic.Uint64
	expItems   atomic.Uint64

	// blinds is the fixed-secret precomputation table: because the
	// party's exponent never changes, H(item)^secret is a pure function
	// of the item, so repeated protocol rounds (the mediator re-linking
	// the same field against several peers, or periodic re-integration)
	// reuse earlier modexps instead of redoing them. Only the party's
	// own items are cached — peer-supplied elements change every round
	// (they carry the peer's fresh blinding) and would never hit.
	mu     sync.RWMutex
	blinds map[string]*big.Int
}

// NewParty draws a fresh secret exponent in [1, q-1] from rng
// (crypto/rand.Reader in production; any reader in tests).
func NewParty(g *Group, rng io.Reader) (*Party, error) {
	if g == nil {
		return nil, errors.New("psi: nil group")
	}
	if rng == nil {
		rng = rand.Reader
	}
	max := new(big.Int).Sub(g.Q, big.NewInt(1)) // [0, q-2]
	s, err := rand.Int(rng, max)
	if err != nil {
		return nil, fmt.Errorf("psi: drawing secret: %w", err)
	}
	s.Add(s, big.NewInt(1)) // [1, q-1]
	return &Party{group: g, secret: s, blinds: map[string]*big.Int{}}, nil
}

// Group returns the party's group.
func (p *Party) Group() *Group { return p.group }

// SetWorkers fixes the fan-out width for this party's kernels: 0 (the
// default) means GOMAXPROCS, 1 forces the serial path. It returns the
// party for chaining and must not be called concurrently with protocol
// operations.
func (p *Party) SetWorkers(n int) *Party {
	p.workers = n
	return p
}

// cachedBlind returns the precomputed blind for an item, if present.
func (p *Party) cachedBlind(item string) (*big.Int, bool) {
	p.mu.RLock()
	v, ok := p.blinds[item]
	p.mu.RUnlock()
	return v, ok
}

// storeBlinds installs freshly computed blinds, respecting the cap.
func (p *Party) storeBlinds(items []string, vals []*big.Int) {
	p.mu.Lock()
	for i, it := range items {
		if vals[i] == nil {
			continue
		}
		if len(p.blinds) >= blindCacheCap {
			break
		}
		p.blinds[it] = vals[i]
	}
	p.mu.Unlock()
}

// Blind hashes each item into the group and raises it to the party's
// secret: the first message of the protocol. Items fan out across the
// worker pool (one modexp each), and results are memoized in the
// party's precomputation table — the exponent is fixed for the party's
// lifetime, so a warm round is pure lookups. Output order matches the
// input order regardless of worker count.
func (p *Party) Blind(items []string) []*big.Int {
	out := make([]*big.Int, len(items))
	fresh := make([]*big.Int, len(items)) // only newly computed entries
	p.blindItems.Add(uint64(len(items)))
	// parallel.ForEach with an always-nil error never fails.
	_ = parallel.ForEach(context.Background(), len(items), p.workers, func(i int) error {
		if v, ok := p.cachedBlind(items[i]); ok {
			out[i] = v
			p.blindHits.Add(1)
			return nil
		}
		v := new(big.Int).Exp(p.group.HashToGroup(items[i]), p.secret, p.group.P)
		out[i], fresh[i] = v, v
		return nil
	})
	p.storeBlinds(items, fresh)
	return out
}

// BlindBatch is Blind for whole columns: identical output (order, cache
// use, counters), but the fan-out is one pool task per contiguous chunk
// of items rather than per item, and the precomputation table is read
// under one RLock per chunk instead of one per item. Sources feed a
// field's full value column through here; the per-item entry point
// remains the scalar baseline experiments compare against.
func (p *Party) BlindBatch(items []string) []*big.Int {
	n := len(items)
	out := make([]*big.Int, n)
	if n == 0 {
		return out
	}
	p.blindItems.Add(uint64(n))
	fresh := make([]*big.Int, n) // only newly computed entries
	_ = parallel.ForEachChunk(context.Background(), n, p.workers, 0, func(lo, hi int) error {
		// One table read for the whole chunk: the run of lookups shares a
		// single RLock acquisition.
		hits := 0
		p.mu.RLock()
		for i := lo; i < hi; i++ {
			if v, ok := p.blinds[items[i]]; ok {
				out[i] = v
				hits++
			}
		}
		p.mu.RUnlock()
		if hits > 0 {
			p.blindHits.Add(uint64(hits))
		}
		for i := lo; i < hi; i++ {
			if out[i] != nil {
				continue
			}
			v := new(big.Int).Exp(p.group.HashToGroup(items[i]), p.secret, p.group.P)
			out[i], fresh[i] = v, v
		}
		return nil
	})
	p.storeBlinds(items, fresh)
	return out
}

// Exponentiate raises already-blinded elements (received from the peer)
// to this party's secret, preserving order: the second message. Peer
// elements are validated and then exponentiated across the worker pool;
// they are never cached (each round's peer blinding is fresh).
func (p *Party) Exponentiate(elems []*big.Int) ([]*big.Int, error) {
	// Validate serially first: range errors must be deterministic and
	// reported for the lowest offending index, not whichever worker
	// happened to reach its element first.
	for i, e := range elems {
		if e == nil || e.Sign() <= 0 || e.Cmp(p.group.P) >= 0 {
			return nil, fmt.Errorf("psi: element %d out of group range", i)
		}
	}
	p.expItems.Add(uint64(len(elems)))
	return parallel.Map(context.Background(), len(elems), p.workers, func(i int) (*big.Int, error) {
		return new(big.Int).Exp(elems[i], p.secret, p.group.P), nil
	})
}

// ExponentiateBatch is Exponentiate with chunked fan-out: one pool task
// per contiguous run of elements. Validation, ordering and counters are
// identical to the scalar entry point.
func (p *Party) ExponentiateBatch(elems []*big.Int) ([]*big.Int, error) {
	for i, e := range elems {
		if e == nil || e.Sign() <= 0 || e.Cmp(p.group.P) >= 0 {
			return nil, fmt.Errorf("psi: element %d out of group range", i)
		}
	}
	n := len(elems)
	p.expItems.Add(uint64(n))
	out := make([]*big.Int, n)
	_ = parallel.ForEachChunk(context.Background(), n, p.workers, 0, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = new(big.Int).Exp(elems[i], p.secret, p.group.P)
		}
		return nil
	})
	return out, nil
}

// Stats reports the party's lifetime protocol counters: items blinded
// (Blind calls, including cache hits), blinds served from the
// precomputation table, and peer elements exponentiated. Safe for
// concurrent use.
func (p *Party) Stats() (blinded, blindCacheHits, exponentiated uint64) {
	return p.blindItems.Load(), p.blindHits.Load(), p.expItems.Load()
}

// Intersect runs the full semi-honest protocol in-process between an
// initiator holding itemsA and a responder holding itemsB, both already
// holding secrets. It returns the indices into itemsA of items the
// responder also holds. The message flow is exactly what the network
// transport ships:
//
//	A -> B: Blind(A's items)
//	B -> A: Exponentiate(that), and Blind(B's items)
//	A:      Exponentiate(B's blinds), compare double-blinded sets
func Intersect(initiator, responder *Party, itemsA, itemsB []string) ([]int, error) {
	if initiator.group.P.Cmp(responder.group.P) != 0 {
		return nil, errors.New("psi: parties use different groups")
	}
	aBlind := initiator.Blind(itemsA)
	abDouble, err := responder.Exponentiate(aBlind)
	if err != nil {
		return nil, err
	}
	bBlind := responder.Blind(itemsB)
	baDouble, err := initiator.Exponentiate(bBlind)
	if err != nil {
		return nil, err
	}
	// Key on the fixed-width big-endian encoding: FillBytes into one
	// reused buffer avoids a per-element allocation-and-strip of
	// variable-width Bytes() (and is width-uniform, so map hashing never
	// compares unequal-length keys).
	w := initiator.group.byteLen()
	buf := make([]byte, w)
	inB := make(map[string]struct{}, len(baDouble))
	for _, e := range baDouble {
		inB[string(e.FillBytes(buf))] = struct{}{}
	}
	out := make([]int, 0, min(len(abDouble), len(inB)))
	for i, e := range abDouble {
		if _, ok := inB[string(e.FillBytes(buf))]; ok {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// Cardinality runs the protocol but returns only the intersection size —
// the variant sources use when even which items matched is too revealing.
func Cardinality(initiator, responder *Party, itemsA, itemsB []string) (int, error) {
	idx, err := Intersect(initiator, responder, itemsA, itemsB)
	if err != nil {
		return 0, err
	}
	return len(idx), nil
}
