package psi

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// Group is a safe-prime group: p = 2q+1 with q prime. Protocol elements
// live in the order-q subgroup of quadratic residues.
type Group struct {
	P *big.Int // safe prime modulus
	Q *big.Int // (P-1)/2
}

// newGroup builds a group from a hex modulus, computing q.
func newGroup(hexP string) *Group {
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		panic("psi: bad group constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &Group{P: p, Q: q}
}

// DefaultGroup returns the 2048-bit MODP group of RFC 3526 (group 14), a
// safe prime. Use this in deployments.
func DefaultGroup() *Group {
	return newGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
			"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
			"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
			"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718" +
			"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF")
}

// TestGroup returns the 768-bit Oakley group 1 (RFC 2409), also a safe
// prime. It is NOT adequate for production secrecy; it exists so tests and
// benchmarks run quickly while exercising identical code paths.
func TestGroup() *Group {
	return newGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF")
}

// HashToGroup maps an arbitrary item into the quadratic-residue subgroup:
// expand SHA-256(item) in counter mode to the modulus width, reduce mod p,
// then square. Squaring lands in QR(p), the order-q subgroup.
func (g *Group) HashToGroup(item string) *big.Int {
	return g.hashToGroup(NewScratch(), item)
}

// hashToGroup is HashToGroup against caller-owned scratch buffers: the
// SHA-256 state and the expansion buffer are recycled, so the only
// allocations left are the big.Int words of the returned element.
func (g *Group) hashToGroup(sc *Scratch, item string) *big.Int {
	byteLen := g.byteLen()
	if cap(sc.buf) < byteLen+sha256Size {
		sc.buf = make([]byte, 0, byteLen+sha256Size)
	}
	buf := sc.buf[:0]
	var ctr uint32
	var cb [4]byte
	for len(buf) < byteLen {
		sc.h.Reset()
		binary.BigEndian.PutUint32(cb[:], ctr)
		sc.h.Write(cb[:])
		io.WriteString(sc.h, item)
		buf = sc.h.Sum(buf)
		ctr++
	}
	sc.buf = buf // keep the (possibly grown) buffer for the next call
	v := new(big.Int).SetBytes(buf[:byteLen])
	v.Mod(v, g.P)
	v.Mul(v, v)
	v.Mod(v, g.P)
	// Zero is the only non-invertible outcome and requires SHA-256 output
	// ≡ 0 mod p; map it to 4 (= 2^2, a QR) for totality.
	if v.Sign() == 0 {
		return big.NewInt(4)
	}
	return v
}

const sha256Size = 32

// byteLen is the fixed encoding width of a group element.
func (g *Group) byteLen() int { return (g.P.BitLen() + 7) / 8 }

// ModPElem is a MODP-suite group element: a quadratic residue mod the
// suite's safe prime. It converts to and from *big.Int for free.
type ModPElem big.Int

func (*ModPElem) psiElement() {}

// Int exposes the element's residue value.
func (e *ModPElem) Int() *big.Int { return (*big.Int)(e) }

// ModPElemFromInt wraps a residue value as a suite element without
// validation; use Suite.Validate or DecodeElement at trust boundaries.
func ModPElemFromInt(v *big.Int) *ModPElem { return (*ModPElem)(v) }

type modpSecret big.Int

func (*modpSecret) psiSecret() {}

// modpSuite implements Suite over a safe-prime group.
type modpSuite struct {
	g    *Group
	name string
	size int
}

// ModPSuite wraps a safe-prime group as a Suite. The wire name encodes
// the modulus width: "modp2048" for DefaultGroup, "modp768" for
// TestGroup.
func ModPSuite(g *Group) Suite {
	return &modpSuite{g: g, name: fmt.Sprintf("modp%d", g.P.BitLen()), size: g.byteLen()}
}

// Group exposes the suite's underlying safe-prime group.
func (s *modpSuite) Group() *Group { return s.g }

func (s *modpSuite) Name() string     { return s.name }
func (s *modpSuite) ElementSize() int { return s.size }

func (s *modpSuite) NewSecret(rng io.Reader) (Secret, error) {
	if rng == nil {
		rng = rand.Reader
	}
	max := new(big.Int).Sub(s.g.Q, big.NewInt(1)) // [0, q-2]
	v, err := rand.Int(rng, max)
	if err != nil {
		return nil, fmt.Errorf("psi: drawing secret: %w", err)
	}
	v.Add(v, big.NewInt(1)) // [1, q-1]
	return (*modpSecret)(v), nil
}

func (s *modpSuite) HashToGroup(sc *Scratch, item string) Element {
	if sc == nil {
		sc = NewScratch()
	}
	return (*ModPElem)(s.g.hashToGroup(sc, item))
}

func (s *modpSuite) Exp(e Element, sec Secret) Element {
	v := (*big.Int)(e.(*ModPElem))
	k := (*big.Int)(sec.(*modpSecret))
	return (*ModPElem)(new(big.Int).Exp(v, k, s.g.P))
}

func (s *modpSuite) AppendElement(dst []byte, e Element) []byte {
	v := (*big.Int)(e.(*ModPElem))
	n := len(dst)
	dst = growSlice(dst, s.size)
	v.FillBytes(dst[n : n+s.size])
	return dst
}

func (s *modpSuite) DecodeElement(data []byte) (Element, error) {
	if len(data) != s.size {
		return nil, fmt.Errorf("psi: %s element is %d bytes, want %d", s.name, len(data), s.size)
	}
	v := new(big.Int).SetBytes(data)
	return s.validateInt(v)
}

func (s *modpSuite) Validate(e Element) error {
	m, ok := e.(*ModPElem)
	if !ok || m == nil {
		return fmt.Errorf("psi: not a %s element", s.name)
	}
	_, err := s.validateInt((*big.Int)(m))
	return err
}

// validateInt enforces full subgroup membership, not just the range
// check: elements must be in (1, p) and quadratic residues, so a peer
// cannot smuggle in the identity, a small-order element (-1, the only
// one in a safe-prime group), or any non-residue that would leak a bit
// of the secret through the protocol transcript.
func (s *modpSuite) validateInt(v *big.Int) (Element, error) {
	if v.Sign() <= 0 || v.Cmp(bigOne) == 0 {
		return nil, fmt.Errorf("psi: %s element is zero or the identity", s.name)
	}
	if v.Cmp(s.g.P) >= 0 {
		return nil, fmt.Errorf("psi: %s element out of group range", s.name)
	}
	if big.Jacobi(v, s.g.P) != 1 {
		return nil, fmt.Errorf("psi: %s element is not in the prime-order subgroup", s.name)
	}
	return (*ModPElem)(v), nil
}

func (s *modpSuite) Equal(a, b Element) bool {
	return (*big.Int)(a.(*ModPElem)).Cmp((*big.Int)(b.(*ModPElem))) == 0
}

var bigOne = big.NewInt(1)

// growSlice extends dst by k bytes (zeroed), reallocating only when the
// capacity is short — the encode hot path runs it allocation-free once
// the caller's buffer has warmed up.
func growSlice(dst []byte, k int) []byte {
	n := len(dst)
	if cap(dst)-n >= k {
		dst = dst[: n+k : cap(dst)]
		for i := n; i < n+k; i++ {
			dst[i] = 0
		}
		return dst
	}
	return append(dst, make([]byte, k)...)
}
