package psi

import (
	"encoding/hex"
	"fmt"

	"privateiye/internal/xmltree"
)

// Wire encoding: protocol messages travel between sources through the
// mediator as XML, like everything else in PRIVATE-IYE.
//
//	<psi-elems n="3" suite="p256">
//	  <e>02ab34…</e>
//	  …
//	</psi-elems>
//
// Each <e> is the suite's canonical fixed-width encoding in lowercase
// hex — exactly 2*ElementSize() characters, one encoding per element.
// The decoder rejects anything else (wrong width, uppercase, stray
// characters, non-members), so an element has exactly one wire form and
// transcript comparison is byte comparison.
//
// The suite attribute names the group the elements live in. Envelopes
// written before suites existed carry no attribute; decoders treat that
// as the legacy MODP group they were configured with.

// MarshalElems encodes blinded group elements of one suite.
func MarshalElems(s Suite, elems []Element) *xmltree.Node {
	root := xmltree.NewElem("psi-elems").
		SetAttr("n", fmt.Sprint(len(elems))).
		SetAttr("suite", s.Name())
	buf := make([]byte, 0, s.ElementSize())
	for _, e := range elems {
		buf = s.AppendElement(buf[:0], e)
		root.Append(xmltree.NewText("e", hex.EncodeToString(buf)))
	}
	return root
}

// WireSuiteName reports the suite attribute of a psi-elems envelope, or
// "" when absent (a legacy MODP peer).
func WireSuiteName(n *xmltree.Node) string {
	name, _ := n.Attr("suite")
	return name
}

// UnmarshalElems decodes MarshalElems output against the expected suite,
// enforcing canonical form: the envelope's suite attribute (when
// present) must match, and every element must be exactly the suite's
// fixed width in lowercase hex and decode to a valid group member.
// Non-canonical encodings — overlong, leading-zero-padded beyond the
// fixed width, uppercase hex — are rejected, so one element has one
// wire form.
func UnmarshalElems(n *xmltree.Node, s Suite) ([]Element, error) {
	if n.Name != "psi-elems" {
		return nil, fmt.Errorf("psi: expected <psi-elems>, got <%s>", n.Name)
	}
	if ws, ok := n.Attr("suite"); ok && ws != s.Name() {
		return nil, fmt.Errorf("psi: envelope suite %q does not match expected %q", ws, s.Name())
	}
	var out []Element
	buf := make([]byte, s.ElementSize())
	for i, c := range n.ChildrenNamed("e") {
		if err := decodeCanonicalHex(buf, c.Text); err != nil {
			return nil, fmt.Errorf("psi: element %d: %w", i, err)
		}
		e, err := s.DecodeElement(buf)
		if err != nil {
			return nil, fmt.Errorf("psi: element %d: %w", i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// decodeCanonicalHex fills dst from exactly len(dst)*2 lowercase hex
// characters. Anything else — wrong length, uppercase, non-hex bytes —
// is an error: the wire form is canonical or it is rejected.
func decodeCanonicalHex(dst []byte, text string) error {
	if len(text) != 2*len(dst) {
		return fmt.Errorf("encoding is %d hex chars, want %d", len(text), 2*len(dst))
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("encoding has non-canonical character %q at offset %d", c, i)
		}
	}
	_, err := hex.Decode(dst, []byte(text))
	return err
}
