package psi

import (
	"fmt"
	"math/big"

	"privateiye/internal/xmltree"
)

// Wire encoding: protocol messages travel between sources through the
// mediator as XML, like everything else in PRIVATE-IYE.
//
//	<psi-elems n="3">
//	  <e>ab34…</e>
//	  …
//	</psi-elems>

// MarshalElems encodes blinded group elements.
func MarshalElems(elems []*big.Int) *xmltree.Node {
	root := xmltree.NewElem("psi-elems").SetAttr("n", fmt.Sprint(len(elems)))
	for _, e := range elems {
		root.Append(xmltree.NewText("e", e.Text(16)))
	}
	return root
}

// UnmarshalElems decodes MarshalElems output, validating range against the
// group.
func UnmarshalElems(n *xmltree.Node, g *Group) ([]*big.Int, error) {
	if n.Name != "psi-elems" {
		return nil, fmt.Errorf("psi: expected <psi-elems>, got <%s>", n.Name)
	}
	var out []*big.Int
	for i, c := range n.ChildrenNamed("e") {
		v, ok := new(big.Int).SetString(c.Text, 16)
		if !ok {
			return nil, fmt.Errorf("psi: element %d is not hex", i)
		}
		if v.Sign() <= 0 || v.Cmp(g.P) >= 0 {
			return nil, fmt.Errorf("psi: element %d out of range", i)
		}
		out = append(out, v)
	}
	return out, nil
}
