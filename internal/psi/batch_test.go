package psi

import (
	"crypto/rand"
	"fmt"
	"testing"
)

// The batched entry points must be drop-in: identical outputs in
// identical order, identical counter semantics, identical validation.

func TestBlindBatchMatchesScalar(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		// Same secret required for comparison, so blind the same items with
		// two parties and compare each against itself across entry points:
		// party a uses the scalar path, then the batch path must be pure
		// cache hits returning the identical elements.
		items := make([]string, 100)
		for i := range items {
			items[i] = fmt.Sprintf("item-%03d", i)
		}
		scalar := a.Blind(items)
		batch := a.BlindBatch(items)
		for i := range items {
			if !s.Equal(scalar[i], batch[i]) {
				t.Fatalf("item %d: batch blind differs from scalar", i)
			}
		}
		blinded, hits, _ := a.Stats()
		if blinded != 200 {
			t.Errorf("blinded = %d, want 200", blinded)
		}
		if hits != 100 {
			t.Errorf("cache hits = %d, want 100 (the whole second pass)", hits)
		}

		// Cold batch on a fresh party must agree with the protocol: both
		// orders of double-blinding collide per item.
		bBatch := b.BlindBatch(items)
		ab, err := b.ExponentiateBatch(scalar)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := a.ExponentiateBatch(bBatch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range items {
			if !s.Equal(ab[i], ba[i]) {
				t.Fatalf("item %d: batched double-blinding does not commute", i)
			}
		}
	})
}

func TestExponentiateBatchMatchesScalar(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, err := NewParty(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]string, 50)
		for i := range items {
			items[i] = fmt.Sprintf("elem-%02d", i)
		}
		elems := a.Blind(items)
		scalar, err := a.Exponentiate(elems)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := a.ExponentiateBatch(elems)
		if err != nil {
			t.Fatal(err)
		}
		for i := range elems {
			if !s.Equal(scalar[i], batch[i]) {
				t.Fatalf("element %d: batch exponentiation differs from scalar", i)
			}
		}
	})
}

func TestExponentiateBatchRejectsBadElements(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := NewParty(s, rand.Reader)
		good := a.Blind([]string{"x", "y"})
		bad := append(append([]Element{}, good...), nil)
		if _, err := a.ExponentiateBatch(bad); err == nil {
			t.Error("nil element must be rejected")
		}
		for name, be := range badElements(t, s) {
			withBad := append(append([]Element{}, good...), be)
			if _, err := a.ExponentiateBatch(withBad); err == nil {
				t.Errorf("%s element must be rejected", name)
			}
		}
	})
}

func TestBlindBatchEmptyAndSerial(t *testing.T) {
	forEachSuite(t, func(t *testing.T, s Suite) {
		a, _ := NewParty(s, rand.Reader)
		if got := a.BlindBatch(nil); len(got) != 0 {
			t.Errorf("empty batch returned %d elements", len(got))
		}
		a.SetWorkers(1)
		out := a.BlindBatch([]string{"only"})
		if len(out) != 1 || out[0] == nil {
			t.Errorf("serial single-item batch = %v", out)
		}
	})
}

// BenchmarkBlind compares per-item dispatch against chunked batching on
// a warm cache, where dispatch and lock overhead — not the group op —
// is the cost being amortized (the E23 PSI leg).
func BenchmarkBlind(b *testing.B) {
	for _, s := range []Suite{ModPSuite(TestGroup()), P256Suite()} {
		a, err := NewParty(s, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		items := make([]string, 4096)
		for i := range items {
			items[i] = fmt.Sprintf("item-%04d", i)
		}
		a.Blind(items) // warm the precomputation table
		b.Run(s.Name()+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Blind(items)
			}
		})
		b.Run(s.Name()+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.BlindBatch(items)
			}
		})
	}
}

// BenchmarkBlindCold measures the cold path per suite — every item is a
// fresh hash-to-group plus a fixed-secret group operation. This is the
// kernel the EC suite exists to accelerate (E25's headline number).
func BenchmarkBlindCold(b *testing.B) {
	for _, s := range []Suite{ModPSuite(TestGroup()), ModPSuite(DefaultGroup()), P256Suite()} {
		b.Run(s.Name(), func(b *testing.B) {
			items := make([]string, 256)
			for i := range items {
				items[i] = fmt.Sprintf("cold-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a, err := NewParty(s, rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				a.BlindBatch(items)
			}
		})
	}
}

// BenchmarkExponentiateBatch measures the cold path: every element is a
// fresh group operation, so this reports elements/s for the chunked
// kernel.
func BenchmarkExponentiateBatch(b *testing.B) {
	for _, s := range []Suite{ModPSuite(TestGroup()), P256Suite()} {
		a, err := NewParty(s, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		items := make([]string, 512)
		for i := range items {
			items[i] = fmt.Sprintf("item-%04d", i)
		}
		elems := a.Blind(items)
		for _, entry := range []string{"scalar", "batch"} {
			b.Run(s.Name()+"/"+entry, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if entry == "scalar" {
						_, err = a.Exponentiate(elems)
					} else {
						_, err = a.ExponentiateBatch(elems)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
