package psi

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
)

// A Suite is a prime-order group with everything the commutative-
// encryption protocol needs from it: a hash-to-group map, application of
// a party's fixed secret (modular exponentiation in the MODP suites,
// scalar multiplication in the curve suites), and a fixed-width
// canonical encoding whose decoder doubles as the membership validator
// at the trust boundary.
//
// Two families ship:
//
//   - modp*: the order-q subgroup of quadratic residues mod a safe prime
//     (RFC 3526 group 14 in production). One group operation is a
//     2048-bit modular exponentiation; one element is 256 bytes.
//   - p256: the NIST P-256 curve (stdlib crypto/elliptic, cofactor 1, so
//     on-curve = in-subgroup). One group operation is a 256-bit scalar
//     multiplication; one element is a 33-byte compressed point. This is
//     the fast default: ~10x cheaper per operation and ~8x smaller on
//     the wire than modp2048.
//
// Both ends of a protocol round must run the same suite — elements are
// meaningless across suites, which is why the wire envelope names its
// suite and the mediator negotiates one per fleet (see internal/mediator).
type Suite interface {
	// Name is the suite's wire identifier ("modp2048", "p256", ...).
	Name() string
	// ElementSize is the exact width in bytes of a canonically encoded
	// element. Every element of the suite encodes to this many bytes;
	// DecodeElement rejects any other length.
	ElementSize() int
	// NewSecret draws a uniform secret scalar in [1, order-1] from rng.
	NewSecret(rng io.Reader) (Secret, error)
	// HashToGroup maps an arbitrary item into the prime-order group.
	// sc's buffers are reused across calls (pass nil for a one-shot
	// call; hot loops should carry one Scratch per goroutine).
	HashToGroup(sc *Scratch, item string) Element
	// Exp applies a secret to an element: modexp or scalar mult. The
	// element must belong to this suite.
	Exp(e Element, s Secret) Element
	// AppendElement appends the canonical fixed-width encoding of e to
	// dst and returns the extended slice.
	AppendElement(dst []byte, e Element) []byte
	// DecodeElement parses exactly one canonical encoding, validating
	// membership: wrong width, out-of-range values, the identity,
	// off-curve points and non-subgroup residues are all rejected. It
	// never panics, whatever the input.
	DecodeElement(data []byte) (Element, error)
	// Validate checks that e is a well-formed non-identity member of the
	// suite's group (the in-process counterpart of DecodeElement, for
	// elements that arrived as values rather than bytes).
	Validate(e Element) error
	// Equal reports whether two elements of this suite are equal.
	Equal(a, b Element) bool
}

// Element is one group element. The concrete type is owned by the suite
// that produced it (*ModPElem for the MODP suites, *ECPoint for the
// curve suites); elements never cross suites.
type Element interface{ psiElement() }

// Secret is one party's fixed secret scalar, owned by its suite.
type Secret interface{ psiSecret() }

// Scratch holds reusable hash-to-group buffers: one SHA-256 state and
// one expansion buffer, both recycled across calls so the hot path
// allocates only the element it returns. Not safe for concurrent use;
// batch kernels carry one per worker chunk.
type Scratch struct {
	h   hash.Hash
	buf []byte
}

// NewScratch returns an empty scratch buffer.
func NewScratch() *Scratch { return &Scratch{h: sha256.New()} }

// Suite wire names.
const (
	// SuiteNameP256 is the elliptic-curve suite, the fast default.
	SuiteNameP256 = "p256"
	// SuiteNameModP2048 is the production safe-prime suite and the
	// fail-closed floor every deployment supports.
	SuiteNameModP2048 = "modp2048"
	// SuiteNameModP768 is the fast test-only safe-prime suite.
	SuiteNameModP768 = "modp768"
)

// DefaultSuiteName is the suite a fleet negotiates when every member
// supports it.
const DefaultSuiteName = SuiteNameP256

// SuiteByName resolves a wire name to its suite. Unknown names are an
// error, not a panic: names arrive from flags and from peers.
func SuiteByName(name string) (Suite, error) {
	switch name {
	case SuiteNameP256:
		return P256Suite(), nil
	case SuiteNameModP2048:
		return ModPSuite(DefaultGroup()), nil
	case SuiteNameModP768:
		return ModPSuite(TestGroup()), nil
	}
	return nil, fmt.Errorf("psi: unknown suite %q", name)
}

// DefaultSuite returns the production default (P-256).
func DefaultSuite() Suite { return P256Suite() }

// TestSuite returns the fast MODP suite tests and demos use when they
// specifically need the safe-prime code path (for the curve path they
// can just use P256Suite, which is fast everywhere).
func TestSuite() Suite { return ModPSuite(TestGroup()) }
