package experiments

import (
	"fmt"
	"strconv"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/resilience"
	"privateiye/internal/source"
)

// E17Resilience runs a fixed query workload over a federation where two
// of five sources misbehave — one hangs on every call, one fails half
// its calls — and compares a mediator armed only with a per-source
// deadline against one that also retries and circuit-breaks. The chaos
// schedules are seeded, so both configurations face the same faults.
func E17Resilience(queries int) (*Table, error) {
	const hungName, flakyName = "hung", "flaky"

	// A fresh endpoint set per configuration: breakers and chaos
	// counters are stateful, so the modes must not share them.
	build := func() ([]source.Endpoint, *resilience.Chaos, error) {
		var eps []source.Endpoint
		for i, name := range []string{"s0", "s1", "s2", hungName, flakyName} {
			g := clinical.NewGenerator(uint64(i)*13 + 1)
			cat := relational.NewCatalog()
			tab, err := g.Patients("patients", 200, 4)
			if err != nil {
				return nil, nil, err
			}
			if err := cat.Add(tab); err != nil {
				return nil, nil, err
			}
			pol, err := policy.NewPolicy(name, policy.Deny,
				policy.Rule{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
			)
			if err != nil {
				return nil, nil, err
			}
			src, err := source.New(source.Config{Name: name, Catalog: cat, Policy: pol, Seed: uint64(i)})
			if err != nil {
				return nil, nil, err
			}
			local, err := source.NewLocal(src, []byte("e17"), psi.TestGroup())
			if err != nil {
				return nil, nil, err
			}
			eps = append(eps, local)
		}
		hung := resilience.NewChaos(eps[3], resilience.ChaosConfig{})
		eps[3] = hung
		eps[4] = resilience.NewChaos(eps[4], resilience.ChaosConfig{Seed: 99, ErrorRate: 0.5})
		return eps, hung, nil
	}

	t := &Table{
		Title: "E17: fault-injected federation, deadline-only vs retry+breaker mediation",
		Header: []string{"config", "queries", "full", "partial", "failed",
			"hung dials", "flaky answers", "per-query"},
	}
	modes := []struct {
		name string
		res  *resilience.EndpointConfig
	}{
		{"deadline only", nil},
		{"retry+breaker", &resilience.EndpointConfig{
			Policy: resilience.Policy{
				MaxAttempts:    3,
				BaseBackoff:    5 * time.Millisecond,
				AttemptTimeout: 60 * time.Millisecond,
			},
			Breaker: resilience.BreakerConfig{FailureThreshold: 3, OpenFor: 300 * time.Millisecond},
		}},
	}
	for _, mode := range modes {
		eps, hung, err := build()
		if err != nil {
			return nil, err
		}
		m, err := mediator.New(mediator.Config{
			Endpoints:     eps,
			SourceTimeout: 200 * time.Millisecond,
			Resilience:    mode.res,
		})
		if err != nil {
			return nil, err
		}
		// The hung source only misbehaves after schema bootstrap, or the
		// mediator could not admit it at all.
		hung.SetHang(true)

		var full, partial, failed, flakyOK int
		start := time.Now()
		for i := 0; i < queries; i++ {
			in, err := m.Query(
				fmt.Sprintf("FOR //patients/row WHERE //age > %d RETURN //age PURPOSE research MAXLOSS 0.9", 20+i%40),
				"r")
			if err != nil {
				failed++
				continue
			}
			switch {
			case len(in.Denied) == 0:
				full++
			default:
				partial++
			}
			for _, name := range in.Answered {
				if name == flakyName {
					flakyOK++
				}
			}
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			mode.name, strconv.Itoa(queries), strconv.Itoa(full), strconv.Itoa(partial),
			strconv.Itoa(failed), strconv.Itoa(int(hung.Calls())), strconv.Itoa(flakyOK),
			ms(elapsed / time.Duration(queries)),
		})
	}
	t.Notes = append(t.Notes,
		"5 sources: 3 healthy, 1 hangs every call, 1 fails 50% of calls (seeded schedules)",
		"200ms per-source deadline in both configs; retry+breaker adds 3 attempts @60ms and a threshold-3 breaker (300ms cool-down)",
		"fewer hung dials under retry+breaker = open circuit skipping the dead node; more flaky answers = retries riding out transients")
	return t, nil
}
