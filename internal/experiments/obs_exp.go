package experiments

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/core"
	"privateiye/internal/durable"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// obsSystem builds the single-source Figure 1 deployment used by E20 and
// the bench guard: warehouse on (the cached path under test), plan cache
// on, and — when reg/tracer are non-nil — the full observability layer.
func obsSystem(reg *obs.Registry, tracer *obs.Tracer) (*core.System, error) {
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		return nil, err
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return nil, err
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9})
	if err != nil {
		return nil, err
	}
	return core.NewSystem(core.SystemConfig{
		Sources: []source.Config{{
			Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry(),
		}},
		PSIGroup:          psi.TestGroup(),
		PlanCache:         256,
		WarehouseCapacity: 8,
		WarehouseTTL:      100,
		Obs:               reg,
		Trace:             tracer,
	})
}

const e20Query = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"

// cachedQueryNs times the warehouse-served (hot) path: one priming query
// populates the warehouse, then n repeats of the same query and requester
// are all served from it. Returns average ns per query.
func cachedQueryNs(sys *core.System, n int) (float64, error) {
	if _, err := sys.Query(e20Query, "analyst"); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		out, err := sys.Query(e20Query, "analyst")
		if err != nil {
			return 0, err
		}
		if !out.FromWarehouse {
			return 0, fmt.Errorf("experiments: repeat query missed the warehouse")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// fanoutQueryNs times the full mediation path: distinct requesters defeat
// the warehouse, so every query parses (cached), fans out, integrates and
// passes the controls. Returns average ns per query.
func fanoutQueryNs(sys *core.System, n int) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := sys.Query(e20Query, fmt.Sprintf("analyst-%d", i)); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// E20ObsOverhead measures what the observability layer costs on the two
// query paths: the warehouse-served cached path (the hot path the <3%
// target applies to) and the full fan-out path. Three identical systems
// are timed — bare, metrics-only, and metrics+tracing — and the fastest
// of several rounds is kept per configuration, so a scheduler hiccup in
// one round cannot masquerade as instrumentation cost. Splitting metrics
// from tracing matters: metric updates are constant-cost atomics, while
// each trace is a per-query allocation an operator opts into (-trace-ring).
func E20ObsOverhead(queries, rounds int) (*Table, error) {
	if rounds < 1 {
		rounds = 1
	}
	bare, err := obsSystem(nil, nil)
	if err != nil {
		return nil, err
	}
	defer bare.Close()
	metricsReg := obs.NewRegistry()
	obs.RegisterProcessMetrics(metricsReg)
	metricsOnly, err := obsSystem(metricsReg, nil)
	if err != nil {
		return nil, err
	}
	defer metricsOnly.Close()
	fullReg := obs.NewRegistry()
	obs.RegisterProcessMetrics(fullReg)
	full, err := obsSystem(fullReg, obs.NewTracer(64))
	if err != nil {
		return nil, err
	}
	defer full.Close()

	systems := []*core.System{bare, metricsOnly, full}
	minOf := func(f func(*core.System, int) (float64, error)) ([3]float64, error) {
		var best [3]float64
		// Interleave configurations across rounds so all three sample
		// the same machine conditions.
		for r := 0; r < rounds; r++ {
			for i, sys := range systems {
				v, err := f(sys, queries)
				if err != nil {
					return best, err
				}
				if r == 0 || v < best[i] {
					best[i] = v
				}
			}
		}
		return best, nil
	}

	cached, err := minOf(cachedQueryNs)
	if err != nil {
		return nil, err
	}
	fan, err := minOf(fanoutQueryNs)
	if err != nil {
		return nil, err
	}

	overhead := func(bareNs, instNs float64) string {
		return fmt.Sprintf("%+.1f%%", (instNs-bareNs)/bareNs*100)
	}
	row := func(path string, v [3]float64) []string {
		return []string{
			path, nsStr(v[0]),
			nsStr(v[1]), overhead(v[0], v[1]),
			nsStr(v[2]), overhead(v[0], v[2]),
		}
	}
	t := &Table{
		Title:  "E20: observability overhead (min over interleaved rounds)",
		Header: []string{"path", "bare", "metrics", "overhead", "metrics+trace", "overhead"},
		Rows: [][]string{
			row("cached (warehouse hit)", cached),
			row("full fan-out", fan),
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d queries/round, %d rounds, best round kept; NumCPU=%d", queries, rounds, runtime.NumCPU()),
		"metrics = registry + process metrics (atomic counters/histograms); +trace adds the 64-trace ring (one allocation per query)",
		"wall-clock on a shared machine jitters a few percent between runs; treat single-digit deltas as bounds, not point estimates")
	return t, nil
}

func nsStr(ns float64) string {
	// 10ns granularity: whole-µs rounding would render a 1.3µs vs 2.0µs
	// comparison as "1µs vs 2µs".
	return time.Duration(int64(ns)).Round(10 * time.Nanosecond).String()
}

// --- Bench guard -----------------------------------------------------------

// BenchBaseline is the committed perf baseline the guard compares
// against (bench/baseline.json).
type BenchBaseline struct {
	// Note documents how the baseline was produced.
	Note string `json:"note"`
	// MetricsNs maps metric name -> nanoseconds per operation.
	MetricsNs map[string]float64 `json:"metrics_ns"`
}

// measureGuardRounds runs the guard's deterministic mini-suite and
// returns the per-round ns/op samples per metric. The metrics
// deliberately cover the paths the recent optimisation work touched: the
// warehouse-served cached query, the full fan-out query, and a PSI blind
// round.
func measureGuardRounds(queries, rounds int) (map[string][]float64, error) {
	reg := obs.NewRegistry()
	sys, err := obsSystem(reg, obs.NewTracer(64))
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	if rounds < 1 {
		rounds = 1
	}
	out := map[string][]float64{}
	measure := func(name string, f func() (float64, error)) error {
		samples := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			v, err := f()
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			samples = append(samples, v)
		}
		out[name] = samples
		return nil
	}
	if err := measure("cached_query", func() (float64, error) { return cachedQueryNs(sys, queries) }); err != nil {
		return nil, err
	}
	if err := measure("fanout_query", func() (float64, error) { return fanoutQueryNs(sys, queries) }); err != nil {
		return nil, err
	}
	if err := measure("psi_blind_item", func() (float64, error) {
		g := psi.TestGroup()
		p, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
		if err != nil {
			return 0, err
		}
		items := make([]string, 200)
		for i := range items {
			items[i] = fmt.Sprintf("patient-%d", i)
		}
		start := time.Now()
		_ = p.Blind(items)
		return float64(time.Since(start).Nanoseconds()) / float64(len(items)), nil
	}); err != nil {
		return nil, err
	}
	// The batched PSI kernel on its amortized path: warm precomputation-
	// table lookups, where chunked dispatch is the entire cost. One party
	// is warmed once and shared across rounds — steady state is the path
	// the endpoints run on every integration round.
	batchParty, err := psi.NewParty(psi.TestSuite(), rand.Reader)
	if err != nil {
		return nil, err
	}
	batchItems := make([]string, 512)
	for i := range batchItems {
		batchItems[i] = fmt.Sprintf("patient-%d", i)
	}
	batchParty.Blind(batchItems)
	if err := measure("psi_blind_batch_item", func() (float64, error) {
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			batchParty.BlindBatch(batchItems)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps*len(batchItems)), nil
	}); err != nil {
		return nil, err
	}
	// The EC suite's cold path: a fresh p256 party per round (no
	// precomputation table), ns per blinded item. Guards the
	// hash-to-curve and scalar-mult kernels the new default rides on.
	if err := measure("psi_ec_blind_cold", func() (float64, error) {
		p, err := psi.NewParty(psi.P256Suite(), rand.Reader)
		if err != nil {
			return 0, err
		}
		items := make([]string, 200)
		for i := range items {
			items[i] = fmt.Sprintf("patient-%d", i)
		}
		start := time.Now()
		p.BlindBatch(items)
		return float64(time.Since(start).Nanoseconds()) / float64(len(items)), nil
	}); err != nil {
		return nil, err
	}
	// Canonical wire width of one p256 element in bytes. Deterministic,
	// so tolerance never saves it: any encoding change that fattens the
	// element past the baseline fails the guard outright.
	if err := measure("psi_ec_wire_bytes", func() (float64, error) {
		s := psi.P256Suite()
		e := s.HashToGroup(nil, "guard")
		return float64(len(s.AppendElement(nil, e))), nil
	}); err != nil {
		return nil, err
	}
	// Group-committed WAL appends under concurrency: ns per acked append
	// with 8 writers sharing fsyncs, the path every durable release takes
	// when -group-commit is on.
	if err := measure("wal_group_append", func() (float64, error) {
		dir, err := os.MkdirTemp("", "guard-wal-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		l, err := durable.Open(durable.Options{
			Dir: dir, Fsync: durable.FsyncAlways,
			GroupCommit: true, GroupMaxBatch: 8,
		})
		if err != nil {
			return 0, err
		}
		const writers, per = 8, 16
		rec := []byte(`{"k":"release","req":"guard","rel":{"t":"//compliance/row","v":"rate","a":"test"}}`)
		errc := make(chan error, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := l.Append(rec); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			l.Close()
			return 0, err
		}
		if err := l.Close(); err != nil {
			return 0, err
		}
		return float64(elapsed.Nanoseconds()) / float64(writers*per), nil
	}); err != nil {
		return nil, err
	}
	// The router hot path: the per-query ring placement, and the full
	// proxy hop against an instant shard (router cost only — HTTP in,
	// lookup, HTTP out, passthrough back).
	if err := measure("router_lookup", routerLookupNs); err != nil {
		return nil, err
	}
	proxyQueries := queries / 4
	if proxyQueries < 50 {
		proxyQueries = 50
	}
	if err := measure("router_proxy", func() (float64, error) { return routerProxyNs(proxyQueries) }); err != nil {
		return nil, err
	}
	return out, nil
}

func medianOf(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minOfSamples(samples []float64) float64 {
	best := samples[0]
	for _, v := range samples[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// WriteBaseline measures and writes the guard baseline file. The
// baseline records the median of the rounds — the machine's typical
// speed — while CheckBaseline compares the best current round against
// it, so a momentarily-fast machine at record time cannot poison the
// baseline into flagging phantom regressions later.
func WriteBaseline(path string, queries, rounds int) error {
	samples, err := measureGuardRounds(queries, rounds)
	if err != nil {
		return err
	}
	m := map[string]float64{}
	for name, s := range samples {
		m[name] = medianOf(s)
	}
	b, err := json.MarshalIndent(BenchBaseline{
		Note:      "median-of-rounds ns/op per guard metric; regenerate on the reference machine with piye-bench -update-baseline",
		MetricsNs: m,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckBaseline measures the guard metrics and compares them against the
// baseline file: any metric whose BEST round is more than tolerance
// slower than the recorded MEDIAN baseline fails. The asymmetry is
// deliberate — on a shared machine individual rounds jitter well past
// 10%, but a genuine regression slows every round, including the best
// one. Returns a rendered table and the list of violated metric names.
func CheckBaseline(path string, queries, rounds int, tolerance float64) (*Table, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var base BenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, nil, fmt.Errorf("decoding baseline %s: %w", path, err)
	}
	cur, err := measureGuardRounds(queries, rounds)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("bench-guard: best current round vs %s (tolerance %.0f%%)", path, tolerance*100),
		Header: []string{"metric", "baseline", "current (best)", "delta", "verdict"},
	}
	var failed []string
	for _, name := range []string{"cached_query", "fanout_query", "psi_blind_item", "psi_blind_batch_item", "psi_ec_blind_cold", "psi_ec_wire_bytes", "wal_group_append", "router_lookup", "router_proxy"} {
		baseNs, ok := base.MetricsNs[name]
		if !ok {
			continue
		}
		curNs := minOfSamples(cur[name])
		delta := (curNs - baseNs) / baseNs
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSION"
			failed = append(failed, name)
		}
		t.Rows = append(t.Rows, []string{
			name, nsStr(baseNs), nsStr(curNs), fmt.Sprintf("%+.1f%%", delta*100), verdict,
		})
	}
	return t, failed, nil
}
