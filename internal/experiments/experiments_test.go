package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "longheader"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "longheader", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFig1aMatchesPaperExactly(t *testing.T) {
	tab, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	// Measured and paper columns must be identical strings: the ground
	// truth matrix publishes to exactly the paper's aggregates.
	for _, row := range tab.Rows {
		if row[1] != row[2] || row[3] != row[4] {
			t.Errorf("Fig1a mismatch: %v", row)
		}
	}
}

func TestFig1bMatchesPaperExactly(t *testing.T) {
	tab, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("Fig1b mismatch: %v", row)
		}
	}
}

func TestFig1cShape(t *testing.T) {
	tab, err := Fig1c()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "?" || row[3] != "?" || row[4] != "?" {
			t.Errorf("hidden cells should be ?: %v", row)
		}
	}
}

func TestFig1dReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	res, err := Fig1d(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsDiff > 0.5 {
		t.Errorf("max deviation from the paper's intervals = %.2f, want <= 0.5\n%s",
			res.MaxAbsDiff, res.Table)
	}
}

func TestE5(t *testing.T) {
	tab, err := E5RewriteVsFilter([]int{200, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE6(t *testing.T) {
	tab, err := E6ClusterRouting(210)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Cluster routing accuracy appears in row 0, column 2.
	if tab.Rows[0][2] < "0.85" {
		t.Errorf("accuracy = %s", tab.Rows[0][2])
	}
}

func TestE7(t *testing.T) {
	tab, err := E7KAnonymity([]int{300}, []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 1 size x 2 k x 2 algorithms
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE8(t *testing.T) {
	tab, err := E8Perturbation([]float64{0.5, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Risk decreases with sigma.
	if !(tab.Rows[0][1] > tab.Rows[2][1]) {
		t.Errorf("risk should fall with noise: %v", tab.Rows)
	}
}

func TestE9(t *testing.T) {
	tab, err := E9PSI([]int{60})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE10(t *testing.T) {
	tab, err := E10Warehouse(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE11(t *testing.T) {
	tab, err := E11Audit()
	if err != nil {
		t.Fatal(err)
	}
	// The no-control row must show compromise; overlap and exact audit
	// must not.
	byName := map[string]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row[3]
	}
	if byName["no control"] != "true" {
		t.Errorf("no-control should be compromised: %v", tab.Rows)
	}
	if byName["overlap r=1"] != "false" {
		t.Errorf("overlap control should protect: %v", tab.Rows)
	}
	if byName["exact audit"] != "false" {
		t.Errorf("exact audit should protect: %v", tab.Rows)
	}
}

func TestE12(t *testing.T) {
	tab, err := E12Fragmenter(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("routing imprecise: %s", n)
		}
	}
}

func TestE13(t *testing.T) {
	tab, err := E13EndToEnd([]int{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // in-process + http
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "in-process" || tab.Rows[1][1] != "http" {
		t.Errorf("transports = %v", tab.Rows)
	}
}

func TestE14(t *testing.T) {
	tab, err := E14SchemaMatch()
	if err != nil {
		t.Fatal(err)
	}
	// Plaintext recall must be perfect on this vocabulary; hashed mode
	// only catches the identical normalized names (age; dob vs
	// dateOfBirth differs).
	if tab.Rows[0][3] != "1.000" {
		t.Errorf("plaintext recall = %s", tab.Rows[0][3])
	}
	if tab.Rows[1][3] >= tab.Rows[0][3] {
		t.Errorf("hashed mode should lose recall: %v", tab.Rows)
	}
}

func TestE15(t *testing.T) {
	tab, err := E15ReleaseLedger()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	// At threshold 0.9 the pair is refused for the snooper only.
	if tab.Rows[0][1] != "granted" || tab.Rows[0][2] != "REFUSED" || tab.Rows[0][3] != "granted" {
		t.Errorf("threshold 0.9 row = %v", tab.Rows[0])
	}
	// At threshold 1.0 everything passes.
	if tab.Rows[1][2] != "granted" {
		t.Errorf("threshold 1.0 row = %v", tab.Rows[1])
	}
}

func TestE16(t *testing.T) {
	tab, err := E16PlacementAblation(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	// The planner chooses early for sampling and late for generalization.
	chosen := map[string]string{}
	for _, row := range tab.Rows {
		if row[4] != "" {
			chosen[row[0]] = row[1]
		}
	}
	if chosen["sample(10%)"] != "early" {
		t.Errorf("sampling placement = %q, want early", chosen["sample(10%)"])
	}
	if chosen["generalize(zip@2)"] != "late" {
		t.Errorf("generalization placement = %q, want late", chosen["generalize(zip@2)"])
	}
}

func TestE19(t *testing.T) {
	// Tiny sizes: the test checks structure and invariants, not speed.
	tab, err := E19Parallelism(40, []int{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sawWarmPSI, sawCacheHit bool
	for _, row := range tab.Rows {
		if strings.Contains(row[4], "MISMATCH") {
			t.Errorf("parallel/warm result diverged from serial: %v", row)
		}
		if strings.Contains(row[1], "warm round") && row[4] == "identical" {
			sawWarmPSI = true
		}
		if strings.Contains(row[4], "hits=") {
			sawCacheHit = true
		}
	}
	if !sawWarmPSI {
		t.Error("no verified warm PSI precomputation row")
	}
	if !sawCacheHit {
		t.Error("no plan-cache hit row")
	}
}

func TestE21(t *testing.T) {
	// Tiny open-loop run: the test pins the table's structure and the
	// classification invariants, not the (timing-dependent) numbers.
	const total = 24
	tab, err := E21AdmissionOverload(time.Millisecond, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 modes x 4 loads)", len(tab.Rows))
	}
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("not a count: %q", s)
		}
		return n
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		// fresh + stale + shed + failed must account for every query.
		if got := atoi(row[6]) + atoi(row[7]) + atoi(row[8]) + atoi(row[9]); got != total {
			t.Errorf("%s %s: outcomes sum to %d, want %d", row[0], row[1], got, total)
		}
		if row[0] == "no admission" && atoi(row[8]) != 0 {
			t.Errorf("no-admission mode shed %s queries", row[8])
		}
		if row[0] != "shed+brownout" && atoi(row[7]) != 0 {
			t.Errorf("%s served %s stale answers without brownout", row[0], row[7])
		}
	}
}

func TestE22(t *testing.T) {
	// A small failover run: the invariants (no double-grant, stale
	// writer fenced) are enforced inside E22ReplicationFailover — it
	// errors if either fails — so the test pins shape and accounting.
	const total = 30
	tab, err := E22ReplicationFailover(total)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("not a count: %q", s)
		}
		return n
	}
	// Every offered query is accounted for: answered by one of the two
	// generations or lost in the window.
	if got := atoi(tab.Rows[1][1]) + atoi(tab.Rows[2][1]) + atoi(tab.Rows[3][1]); got != total {
		t.Errorf("accounted %d of %d offered queries", got, total)
	}
	if atoi(tab.Rows[2][1]) == 0 {
		t.Error("the promoted standby answered nothing")
	}
}

func TestE24(t *testing.T) {
	// A tiny two-tier run: the ≥2.5x acceptance bar is only armed at 4
	// shards (machine-speed dependent; piye-bench runs it for real), so
	// the test pins the table's structure and the baseline row.
	tab, err := E24RouterScaling(8, 4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (two tiers + overhead)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	if tab.Rows[0][4] != "1.00x" {
		t.Errorf("baseline speedup %q, want 1.00x", tab.Rows[0][4])
	}
	if !strings.Contains(tab.Rows[2][4], "direct") {
		t.Errorf("overhead row %v lacks the direct-vs-routed comparison", tab.Rows[2])
	}
}

func TestE25(t *testing.T) {
	// Tiny sizes keep the modp2048 rows cheap; the acceptance gates
	// (>=5x cold blind, <=35 B/elem, >=7x wire ratio) are enforced
	// inside E25PSISuites itself — err != nil IS the failing signal.
	tab, err := E25PSISuites([]int{64}, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Two suite rows plus one speedup row per size.
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	if tab.Rows[0][0] != "p256" || tab.Rows[0][5] != "33" {
		t.Errorf("p256 row = %v, want 33-byte elements", tab.Rows[0])
	}
	if tab.Rows[1][0] != "modp2048" || tab.Rows[1][5] != "256" {
		t.Errorf("modp2048 row = %v, want 256-byte elements", tab.Rows[1])
	}
	if !strings.Contains(tab.Rows[2][2], "x") {
		t.Errorf("speedup row %v lacks a multiplier", tab.Rows[2])
	}
}
