package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// slowEndpoint models the scarce resource overload experiments need: a
// backend with ONE worker and a fixed per-query service time. Requests
// queue on the semaphore in arrival order and each one burns a full
// service slot even when its caller has already given up — exactly the
// wasted work an unprotected server does under overload. Admission
// control sheds before the fan-out, so shed queries never reach it.
type slowEndpoint struct {
	source.Endpoint
	svc  time.Duration
	sem  chan struct{}
	work atomic.Int64 // service slots consumed
}

func newSlowEndpoint(ep source.Endpoint, svc time.Duration) *slowEndpoint {
	return &slowEndpoint{Endpoint: ep, svc: svc, sem: make(chan struct{}, 1)}
}

func (s *slowEndpoint) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	s.sem <- struct{}{}
	time.Sleep(s.svc)
	s.work.Add(1)
	<-s.sem
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Endpoint.Query(ctx, piqlText, requester)
}

const e21Query = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 0.9"

// e21Requesters sizes the requester pool. Large enough that the
// warehouse (TTL 1) is stale by the time a requester comes around
// again, so admitted queries do real fan-out work.
const e21Requesters = 8

func e21System(svc time.Duration, admit *admission.Config, brownout bool) (*mediator.Mediator, *slowEndpoint, error) {
	g := clinical.NewGenerator(21)
	cat := relational.NewCatalog()
	tab, err := g.Patients("patients", 200, 4)
	if err != nil {
		return nil, nil, err
	}
	if err := cat.Add(tab); err != nil {
		return nil, nil, err
	}
	pol, err := policy.NewPolicy("hospital", policy.Deny,
		policy.Rule{Item: "//patients/row/sex", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		return nil, nil, err
	}
	src, err := source.New(source.Config{Name: "hospital", Catalog: cat, Policy: pol, Seed: 21})
	if err != nil {
		return nil, nil, err
	}
	local, err := source.NewLocal(src, []byte("e21"), psi.TestGroup())
	if err != nil {
		return nil, nil, err
	}
	slow := newSlowEndpoint(local, svc)
	med, err := mediator.New(mediator.Config{
		Endpoints:         []source.Endpoint{slow},
		WarehouseCapacity: 64,
		WarehouseTTL:      1,
		PlanCache:         256,
		Admission:         admit,
		Brownout:          brownout,
	})
	if err != nil {
		return nil, nil, err
	}
	return med, slow, nil
}

// e21Cell is the outcome of one open-loop run at one load multiplier.
type e21Cell struct {
	offered float64 // arrival rate, queries/sec
	goodput float64 // deadline-met answers/sec (stale brownout answers count)
	p99     time.Duration
	timely  int // fresh answers within the deadline
	stale   int // brownout answers within the deadline
	shed    int
	failed  int   // deadline misses and late completions
	wasted  int64 // service slots burned without a timely fresh answer
}

// e21Run offers `total` queries open-loop at `mult` times the backend's
// capacity (1/svc) and classifies every response. Open-loop means the
// generator does not slow down when the system does — the defining
// property of overload.
func e21Run(med *mediator.Mediator, slow *slowEndpoint, svc, deadline time.Duration, mult float64, total int) e21Cell {
	interval := time.Duration(float64(svc) / mult)
	type outcome struct {
		lat   time.Duration
		fresh bool // timely, from a live fan-out
		stale bool // timely, browned out from the warehouse
		shed  bool
	}
	outcomes := make([]outcome, total)
	workBefore := slow.work.Load()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			t0 := time.Now()
			out, err := med.QueryContext(ctx, e21Query, fmt.Sprintf("analyst-%d", i%e21Requesters))
			lat := time.Since(t0)
			o := outcome{lat: lat}
			switch {
			case err == nil && lat <= deadline:
				o.fresh = !out.Stale
				o.stale = out.Stale
			case admission.IsShed(err):
				o.shed = true
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Abandoned fan-outs may still be queued on the backend: wait for
	// the burned-work counter to settle before reading it.
	for prev := int64(-1); ; {
		cur := slow.work.Load()
		if cur == prev {
			break
		}
		prev = cur
		time.Sleep(2 * svc)
	}

	var c e21Cell
	c.offered = float64(time.Second) / float64(interval)
	var lats []time.Duration
	usefulWork := int64(0)
	for _, o := range outcomes {
		switch {
		case o.fresh:
			c.timely++
			usefulWork++
		case o.stale:
			c.stale++
		case o.shed:
			c.shed++
		default:
			c.failed++
		}
		if !o.shed {
			lats = append(lats, o.lat)
		}
	}
	c.goodput = float64(c.timely+c.stale) / elapsed.Seconds()
	c.wasted = slow.work.Load() - workBefore - usefulWork
	if c.wasted < 0 {
		// A fresh answer served from a still-warm warehouse entry burned
		// no slot; never report negative waste.
		c.wasted = 0
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		c.p99 = lats[(len(lats)*99)/100]
	}
	return c
}

// E21AdmissionOverload sweeps an open-loop load from below to far past
// the backend's capacity and compares three protection modes: no
// admission control, admission with load shedding, and shedding plus
// brownout (overload answered from the stale warehouse). The backend is
// a single worker with a fixed service time, so capacity is exactly
// 1/svc and the multipliers are meaningful. Per-query deadlines model
// callers that stop waiting; "wasted" counts service slots the backend
// burned without producing a timely fresh answer.
func E21AdmissionOverload(svc time.Duration, totalPerCell int) (*Table, error) {
	if svc <= 0 {
		svc = 4 * time.Millisecond
	}
	if totalPerCell <= 0 {
		totalPerCell = 160
	}
	deadline := 16 * svc
	admitCfg := func() *admission.Config {
		return &admission.Config{
			MaxConcurrent: 4,
			MinConcurrent: 1,
			QueueCapacity: 4,
			LatencyTarget: 4 * svc,
		}
	}
	modes := []struct {
		name     string
		admit    func() *admission.Config
		brownout bool
	}{
		{"no admission", func() *admission.Config { return nil }, false},
		{"shed", admitCfg, false},
		{"shed+brownout", admitCfg, true},
	}
	loads := []float64{0.5, 1, 2, 4}

	t := &Table{
		Title: "E21: open-loop overload, admission control and brownout",
		Header: []string{"mode", "load", "offered q/s", "goodput q/s", "vs 1x",
			"p99", "fresh", "stale", "shed", "failed", "wasted"},
	}
	for _, mode := range modes {
		// A fresh system per mode: AIMD state, warehouse contents and
		// the backend's work counter must not leak across modes.
		med, slow, err := e21System(svc, mode.admit(), mode.brownout)
		if err != nil {
			return nil, err
		}
		// Prime every requester once, unloaded: warms the plan cache in
		// all modes and materializes the warehouse entries brownout
		// serves from. Identical priming keeps the comparison fair.
		for i := 0; i < e21Requesters; i++ {
			if _, err := med.Query(e21Query, fmt.Sprintf("analyst-%d", i)); err != nil {
				return nil, fmt.Errorf("priming %s: %w", mode.name, err)
			}
		}
		var at1x float64
		for _, mult := range loads {
			c := e21Run(med, slow, svc, deadline, mult, totalPerCell)
			if mult == 1 {
				at1x = c.goodput
			}
			vs1x := "-"
			if mult > 1 && at1x > 0 {
				vs1x = fmt.Sprintf("%.0f%%", c.goodput/at1x*100)
			}
			t.Rows = append(t.Rows, []string{
				mode.name, fmt.Sprintf("%.1fx", mult),
				fmt.Sprintf("%.0f", c.offered), fmt.Sprintf("%.0f", c.goodput), vs1x,
				c.p99.Round(100 * time.Microsecond).String(),
				fmt.Sprintf("%d", c.timely), fmt.Sprintf("%d", c.stale),
				fmt.Sprintf("%d", c.shed), fmt.Sprintf("%d", c.failed),
				fmt.Sprintf("%d", c.wasted),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("backend: 1 worker, %v service time (capacity %.0f q/s); deadline %v/query; %d queries/cell, %d-requester pool",
			svc, float64(time.Second)/float64(svc), deadline, totalPerCell, e21Requesters),
		"admission: AIMD concurrency limit (ceiling 4, floor 1, latency target 4x service), queue 4, deadline-aware shedding",
		"goodput counts answers inside the deadline (stale brownout answers included); wasted counts backend slots burned without one",
		"no admission degrades open-loop: the backlog grows without bound, p99 with it, and late work is all wasted",
	)
	return t, nil
}
