package experiments

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"time"

	"privateiye/internal/attack"
	"privateiye/internal/clinical"
	"privateiye/internal/core"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// E19Parallelism measures the hot-path optimizations: worker-pool
// speedup of the PSI and NLP kernels, the warm-round payoff of the PSI
// blind precomputation table, and the mediator plan cache. The NLP sweep
// doubles as a determinism check — intervals must be bit-identical at
// every worker count, or the parallel solver is not the serial solver.
//
// Parallel speedup is bounded by the machine: on a single-CPU box the
// worker sweep shows overhead, not speedup, while the precomputation
// and cache rows (which remove work instead of spreading it) still pay.
// The NumCPU note records which regime produced the numbers.
func E19Parallelism(items int, workerCounts []int, cacheQueries int) (*Table, error) {
	t := &Table{
		Title:  "E19: hot-path parallelism and caching (worker sweep, PSI precomputation, plan cache)",
		Header: []string{"kernel", "config", "time", "vs serial", "check"},
	}

	// --- PSI blind + exponentiate worker sweep -------------------------
	g := psi.TestGroup()
	own := make([]string, items)
	for i := range own {
		own[i] = fmt.Sprintf("patient-%d", i)
	}
	// A fixed peer party supplies the elements Exponentiate works on.
	peerParty, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
	if err != nil {
		return nil, err
	}
	peerElems := peerParty.Blind(own)

	var serialPSI time.Duration
	for _, w := range workerCounts {
		p, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
		if err != nil {
			return nil, err
		}
		p.SetWorkers(w)
		start := time.Now()
		_ = p.Blind(own)
		if _, err := p.Exponentiate(peerElems); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if w == 1 {
			serialPSI = d
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("psi blind+exp (%d items)", items),
			fmt.Sprintf("%d workers", w), ms(d), speedup(serialPSI, d), "",
		})
	}

	// --- PSI blind precomputation table (warm repeated round) ----------
	{
		p, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
		if err != nil {
			return nil, err
		}
		p.SetWorkers(1)
		start := time.Now()
		cold := p.Blind(own)
		dCold := time.Since(start)
		start = time.Now()
		warm := p.Blind(own)
		dWarm := time.Since(start)
		check := "identical"
		for i := range cold {
			if !psi.ModPSuite(g).Equal(cold[i], warm[i]) {
				check = "MISMATCH"
			}
		}
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("psi blind (%d items)", items), "cold round", ms(dCold), "1.00x", ""},
			[]string{fmt.Sprintf("psi blind (%d items)", items), "warm round (precomputed)", ms(dWarm), speedup(dCold, dWarm), check})
	}

	// --- NLP multi-start worker sweep (Figure 1 attack) ----------------
	k := attack.FromPublished(clinical.Figure1Published(), 0, clinical.Figure1HMO1Row())
	k.Tolerance = 0.025
	var serialNLP time.Duration
	var serialInf *attack.Inference
	for _, w := range workerCounts {
		opt := attack.FastOptions()
		opt.Workers = w
		start := time.Now()
		inf, err := k.Infer(opt)
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		check := ""
		if w == 1 {
			serialNLP, serialInf = d, inf
		} else {
			check = "intervals identical"
			for h := range inf.Intervals {
				for a := range inf.Intervals[h] {
					if inf.Intervals[h][a] != serialInf.Intervals[h][a] {
						check = "INTERVAL MISMATCH"
					}
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			"nlp multistart (fig 1d)",
			fmt.Sprintf("%d workers", w), ms(d), speedup(serialNLP, d), check,
		})
	}

	// --- Mediator plan cache: cold vs warm -----------------------------
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		return nil, err
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return nil, err
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Sources: []source.Config{{
			Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry(),
		}},
		PSIGroup:  psi.TestGroup(),
		PlanCache: 256,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	const q = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
	start := time.Now()
	if _, err := sys.Query(q, "analyst"); err != nil {
		return nil, err
	}
	dCold := time.Since(start)
	start = time.Now()
	for i := 0; i < cacheQueries; i++ {
		if _, err := sys.Query(q, "analyst"); err != nil {
			return nil, err
		}
	}
	dWarm := time.Since(start) / time.Duration(max(cacheQueries, 1))
	hits, misses, _ := sys.Mediator().PlanCacheStats()
	if hits == 0 {
		return nil, fmt.Errorf("experiments: E19 warm queries produced no plan-cache hits (misses %d)", misses)
	}
	t.Rows = append(t.Rows,
		[]string{"mediated query", "cold plan cache", ms(dCold), "1.00x", ""},
		[]string{"mediated query", fmt.Sprintf("warm plan cache (avg of %d)", cacheQueries), ms(dWarm), speedup(dCold, dWarm),
			fmt.Sprintf("hits=%d misses=%d", hits, misses)})

	t.Notes = append(t.Notes,
		fmt.Sprintf("NumCPU=%d GOMAXPROCS=%d; parallel speedup is bounded by available CPUs", runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		"warm psi round reuses the fixed-secret precomputation table; warm queries reuse the cached parse",
		"every warm/parallel row is checked against its serial counterpart; privacy controls run on cached plans too (see E15)")
	return t, nil
}

// speedup renders base/d as a multiplier.
func speedup(base, d time.Duration) string {
	if d <= 0 || base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(d))
}
