package experiments

import (
	"fmt"
	"testing"

	"privateiye/internal/clinical"
)

// goldenFig1d pins the exact intervals the fast-mode attack infers,
// rounded to one decimal. Fig1d is deterministic (seeded solver, fixed
// ground truth), so any drift here is a behaviour change in the attack
// kernel, the solver, or the published-value pipeline — not noise.
// TestFig1dReproducesPaper bounds the distance to the paper; this test
// detects regressions far smaller than that tolerance.
var goldenFig1d = [3][3][2]float64{
	{{87.2, 88.6}, {59.0, 59.9}, {46.4, 48.0}}, // HMO2
	{{82.6, 86.7}, {47.9, 52.8}, {44.4, 47.5}}, // HMO3
	{{82.7, 87.0}, {48.3, 53.4}, {44.4, 47.6}}, // HMO4
}

func TestFig1dGolden(t *testing.T) {
	res, err := Fig1d(false)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		for a := 0; a < 3; a++ {
			iv := res.Intervals[h][a]
			got := fmt.Sprintf("[%.1f, %.1f]", iv.Lo, iv.Hi)
			want := fmt.Sprintf("[%.1f, %.1f]", goldenFig1d[h][a][0], goldenFig1d[h][a][1])
			if got != want {
				t.Errorf("interval[%s][%s] = %s, golden %s",
					clinical.HMOs[h+1], clinical.Tests[a], got, want)
			}
		}
	}
}
