package experiments

import (
	"context"
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/durable"
	"privateiye/internal/mediator"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// e23Writers is the concurrency of the WAL sweep: the acceptance target
// ("≥5x acked releases/s under fsync=always") is defined at 32 writers.
const e23Writers = 32

// E23Amortization measures the three cross-query batch paths together:
// WAL group commit (many concurrent appends per fsync), in-flight query
// coalescing (many identical concurrent queries per pipeline execution),
// and batched PSI kernels (whole columns per dispatch). Each sweep keeps
// the amortized and unamortized paths side by side, because the win is
// the ratio, not the absolute number.
//
// The WAL sweep drives durable.Log.Append directly rather than going
// through the mediator: the release ledger serializes its own appends
// (a release is checked and recorded under the ledger lock), so only the
// raw log exhibits the 32-way concurrency the target is defined at.
func E23Amortization(appendsPerWriter, bursts, burstSize, psiItems int) (*Table, error) {
	t := &Table{
		Title:  "E23: cross-query amortization — group commit, coalescing, batched PSI",
		Header: []string{"scenario", "ops/s", "fsyncs", "amortization", "speedup"},
	}

	// One WAL record shaped like a real ledgered release, as in E18.
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf(
			`{"k":"release","req":"req%d","rel":{"t":"//compliance/row","v":"rate","a":"test","m":{"cholesterol":%.2f,"hypertension":%.2f,"diabetes":%.2f},"s":{"cholesterol":1.52,"hypertension":2.36,"diabetes":3.04}}}`,
			i%17, 70+float64(i%9), 60+float64(i%7), 80+float64(i%5)))
	}

	// --- WAL group commit: 32 writers, fsync=always, group off vs on ---
	walRun := func(group bool) (ackedPerSec float64, fsyncs uint64, meanBatch float64, err error) {
		dir, err := os.MkdirTemp("", "e23-wal-*")
		if err != nil {
			return 0, 0, 0, err
		}
		defer os.RemoveAll(dir)
		reg := obs.NewRegistry()
		l, err := durable.Open(durable.Options{
			Dir: dir, Fsync: durable.FsyncAlways,
			GroupCommit: group, GroupMaxBatch: e23Writers,
			Obs: reg, ObsScope: "e23",
		})
		if err != nil {
			return 0, 0, 0, err
		}
		var wg sync.WaitGroup
		errc := make(chan error, e23Writers)
		start := time.Now()
		for w := 0; w < e23Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < appendsPerWriter; i++ {
					if _, err := l.Append(payload(w*appendsPerWriter + i)); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			l.Close()
			return 0, 0, 0, err
		}
		if err := l.Close(); err != nil {
			return 0, 0, 0, err
		}
		total := e23Writers * appendsPerWriter
		fsyncs = reg.Counter("piye_wal_fsyncs_total", "log", "e23").Value()
		h := reg.Histogram("piye_wal_group_batch_size", nil, "log", "e23")
		if c := h.Count(); c > 0 {
			meanBatch = h.Sum() / float64(c)
		}
		return float64(total) / elapsed.Seconds(), fsyncs, meanBatch, nil
	}

	inlineRate, inlineFsyncs, _, err := walRun(false)
	if err != nil {
		return nil, err
	}
	groupRate, groupFsyncs, meanBatch, err := walRun(true)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{
			fmt.Sprintf("wal fsync=always, %d writers, per-append fsync", e23Writers),
			fmt.Sprintf("%.0f", inlineRate), fmt.Sprintf("%d", inlineFsyncs),
			"1.0 appends/fsync", "1.00x",
		},
		[]string{
			fmt.Sprintf("wal fsync=always, %d writers, group commit", e23Writers),
			fmt.Sprintf("%.0f", groupRate), fmt.Sprintf("%d", groupFsyncs),
			fmt.Sprintf("%.1f appends/fsync (mean batch)", meanBatch),
			fmt.Sprintf("%.2fx", groupRate/inlineRate),
		})

	// --- Query coalescing: zipfian bursts of identical queries ----------
	// Four query texts that release equivalent information (all aggregate
	// by //diagnosis), so no combination is ever refused and the sweep
	// measures pure execution sharing. Indices are pre-sampled from a
	// seeded zipf so both runs replay the identical workload. The source
	// sits behind a fixed simulated network round-trip: coalescing pays
	// when the shared phase is dominated by waiting on autonomous remote
	// sources, which is the deployment the mediator is built for (a purely
	// in-process source finishes before a concurrent burst can even be
	// scheduled, so nothing would overlap).
	queries := []string{
		"FOR //patients/row GROUP BY //diagnosis RETURN AVG(//age) AS avg_age PURPOSE research MAXLOSS 0.9",
		"FOR //patients/row GROUP BY //diagnosis RETURN AVG(//age) AS mean_age PURPOSE research MAXLOSS 0.9",
		"FOR //patients/row GROUP BY //diagnosis RETURN COUNT(*) AS n PURPOSE research MAXLOSS 0.9",
		"FOR //patients/row GROUP BY //diagnosis RETURN AVG(//age) AS avg_age PURPOSE research MAXLOSS 0.8",
	}
	rng := rand.New(rand.NewSource(23))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(queries)-1))
	picks := make([][]int, bursts)
	for b := range picks {
		picks[b] = make([]int, burstSize)
		for i := range picks[b] {
			picks[b][i] = int(zipf.Uint64())
		}
	}
	issued := bursts * burstSize

	coalesceRun := func(coalesce bool) (qps float64, leaders, followers uint64, history int, err error) {
		reg := obs.NewRegistry()
		m, err := e23Mediator(coalesce, reg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		start := time.Now()
		for _, burst := range picks {
			var wg sync.WaitGroup
			errc := make(chan error, len(burst))
			gate := make(chan struct{})
			for _, qi := range burst {
				wg.Add(1)
				go func(q string) {
					defer wg.Done()
					<-gate // start the burst together: overlap is the point
					if _, err := m.Query(q, "analyst"); err != nil {
						errc <- err
					}
				}(queries[qi])
			}
			close(gate)
			wg.Wait()
			close(errc)
			for err := range errc {
				return 0, 0, 0, 0, err
			}
		}
		elapsed := time.Since(start)
		leaders = reg.Counter("piye_mediator_coalesce_total", "role", "leader").Value()
		followers = reg.Counter("piye_mediator_coalesce_total", "role", "follower").Value()
		return float64(issued) / elapsed.Seconds(), leaders, followers, len(m.History()), nil
	}

	soloQPS, _, _, _, err := coalesceRun(false)
	if err != nil {
		return nil, err
	}
	coalQPS, leaders, followers, history, err := coalesceRun(true)
	if err != nil {
		return nil, err
	}
	// The invariant the whole feature stands on: execution is shared, the
	// audit trail is not. Every coalesced caller must still appear in the
	// query history.
	if history != issued {
		return nil, fmt.Errorf("experiments: E23 coalesced history has %d entries, want %d (per-caller audit lost)", history, issued)
	}
	hitRate := 0.0
	if leaders+followers > 0 {
		hitRate = float64(followers) / float64(leaders+followers) * 100
	}
	t.Rows = append(t.Rows,
		[]string{
			fmt.Sprintf("queries zipfian %dx%d bursts, coalesce off", bursts, burstSize),
			fmt.Sprintf("%.0f", soloQPS), "-", "-", "1.00x",
		},
		[]string{
			fmt.Sprintf("queries zipfian %dx%d bursts, coalesce on", bursts, burstSize),
			fmt.Sprintf("%.0f", coalQPS), "-",
			fmt.Sprintf("%.0f%% hit (%d lead, %d follow)", hitRate, leaders, followers),
			fmt.Sprintf("%.2fx", coalQPS/soloQPS),
		})

	// --- Batched PSI kernels: elements/s, scalar vs batch entry points --
	g := psi.TestGroup()
	items := make([]string, psiItems)
	for i := range items {
		items[i] = fmt.Sprintf("patient-%05d", i)
	}
	// Cold blinds: one modexp per item, so the chunked kernel amortizes
	// only dispatch. Fresh parties per repetition keep the cache cold.
	coldRate := func(batch bool, reps int) (float64, error) {
		parties := make([]*psi.Party, reps)
		for i := range parties {
			p, err := psi.NewParty(psi.ModPSuite(g), crand.Reader)
			if err != nil {
				return 0, err
			}
			parties[i] = p
		}
		start := time.Now()
		for _, p := range parties {
			if batch {
				p.BlindBatch(items)
			} else {
				p.Blind(items)
			}
		}
		return float64(reps*psiItems) / time.Since(start).Seconds(), nil
	}
	coldScalar, err := coldRate(false, 8)
	if err != nil {
		return nil, err
	}
	coldBatch, err := coldRate(true, 8)
	if err != nil {
		return nil, err
	}
	// Warm blinds are pure precomputation-table lookups: here per-item
	// dispatch and per-item RLocks are the entire cost being amortized.
	warm, err := psi.NewParty(psi.ModPSuite(g), crand.Reader)
	if err != nil {
		return nil, err
	}
	warm.Blind(items)
	warmRate := func(batch bool, reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if batch {
				warm.BlindBatch(items)
			} else {
				warm.Blind(items)
			}
		}
		return float64(reps*psiItems) / time.Since(start).Seconds()
	}
	warmScalar := warmRate(false, 50)
	warmBatch := warmRate(true, 50)
	// Exponentiation never caches (peer blinds are fresh each round), so
	// this is the steady-state column-kernel rate.
	expParty, err := psi.NewParty(psi.ModPSuite(g), crand.Reader)
	if err != nil {
		return nil, err
	}
	elems := warm.Blind(items)
	expRate := func(batch bool, reps int) (float64, error) {
		start := time.Now()
		for i := 0; i < reps; i++ {
			var err error
			if batch {
				_, err = expParty.ExponentiateBatch(elems)
			} else {
				_, err = expParty.Exponentiate(elems)
			}
			if err != nil {
				return 0, err
			}
		}
		return float64(reps*psiItems) / time.Since(start).Seconds(), nil
	}
	expScalar, err := expRate(false, 8)
	if err != nil {
		return nil, err
	}
	expBatch, err := expRate(true, 8)
	if err != nil {
		return nil, err
	}
	psiPair := func(name, note string, scalar, batch float64) {
		t.Rows = append(t.Rows,
			[]string{name + ", per-item", fmt.Sprintf("%.0f", scalar), "-", "-", "1.00x"},
			[]string{name + ", batched", fmt.Sprintf("%.0f", batch), "-", note,
				fmt.Sprintf("%.2fx", batch/scalar)})
	}
	psiPair(fmt.Sprintf("psi blind cold, %d items", psiItems), "chunked fan-out", coldScalar, coldBatch)
	psiPair(fmt.Sprintf("psi blind warm, %d items", psiItems), "one RLock per chunk", warmScalar, warmBatch)
	psiPair(fmt.Sprintf("psi exponentiate, %d items", psiItems), "chunked fan-out", expScalar, expBatch)

	t.Notes = append(t.Notes,
		fmt.Sprintf("wal: %d writers x %d appends each; acceptance target is ≥5x acked appends/s with group commit", e23Writers, appendsPerWriter),
		"a group-committed append is still acknowledged only after the fsync covering its batch returns (fail-closed unchanged)",
		fmt.Sprintf("coalesce: zipfian(s=1.5) over %d query texts, one requester, 2ms simulated source round-trip; history stayed complete at %d entries (per-caller audit preserved)", len(queries), issued),
		"psi: cold rounds are modexp-bound so chunking is neutral there; warm rounds are precomputation-table hits, where chunking amortizes per-item dispatch and locking")
	return t, nil
}

// e23Endpoint wraps a source endpoint with a fixed per-query delay,
// standing in for the network round-trip to an autonomous remote source.
type e23Endpoint struct {
	source.Endpoint
	delay time.Duration
}

func (e e23Endpoint) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	select {
	case <-time.After(e.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.Endpoint.Query(ctx, piqlText, requester)
}

// e23Mediator is the single-source deployment the coalescing sweep
// queries — a generated hospital dataset behind a simulated 2ms source
// round-trip — with coalescing and metrics as the only variables.
func e23Mediator(coalesce bool, reg *obs.Registry) (*mediator.Mediator, error) {
	tab, err := clinical.NewGenerator(23).Patients("patients", 4000, 4)
	if err != nil {
		return nil, err
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return nil, err
	}
	pol, err := policy.NewPolicy("hospital", policy.Deny,
		policy.Rule{Item: "//patients//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		return nil, err
	}
	src, err := source.New(source.Config{Name: "hospital", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		return nil, err
	}
	ep, err := source.NewLocal(src, []byte("e23"), psi.TestGroup())
	if err != nil {
		return nil, err
	}
	return mediator.New(mediator.Config{
		Endpoints:       []source.Endpoint{e23Endpoint{Endpoint: ep, delay: 2 * time.Millisecond}},
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		PlanCache:       64,
		Coalesce:        coalesce,
		Obs:             reg,
	})
}
