package experiments

import (
	"fmt"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// E15ReleaseLedger plays the paper's Figure 1 as a *query sequence*
// against the mediation engine: first the per-test statistics (Figure
// 1(a)), then the per-HMO means (Figure 1(b)). Each query is individually
// authorized; the ledger must refuse the pair for the snooper while an
// unrelated requester stays unaffected — the paper's two-level
// enforcement argument, measured.
func E15ReleaseLedger() (*Table, error) {
	build := func(threshold float64) (*mediator.Mediator, error) {
		tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
		if err != nil {
			return nil, err
		}
		cat := relational.NewCatalog()
		if err := cat.Add(tab); err != nil {
			return nil, err
		}
		pol, err := policy.NewPolicy("integrator", policy.Deny,
			policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
		)
		if err != nil {
			return nil, err
		}
		src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
		if err != nil {
			return nil, err
		}
		ep, err := source.NewLocal(src, []byte("e15"), psi.TestGroup())
		if err != nil {
			return nil, err
		}
		return mediator.New(mediator.Config{
			Endpoints:       []source.Endpoint{ep},
			MaxDisclosure:   threshold,
			LedgerTolerance: 0.05,
		})
	}
	const (
		q1 = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9"
		q2 = "FOR //compliance/row GROUP BY //hmo RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
	)
	t := &Table{
		Title:  "E15: release ledger vs the Figure 1 query pair (two-level enforcement)",
		Header: []string{"threshold", "Fig1(a) release", "Fig1(b) release (same requester)", "Fig1(b) (other requester)"},
	}
	for _, threshold := range []float64{0.9, 1.0} {
		m, err := build(threshold)
		if err != nil {
			return nil, err
		}
		verdict := func(err error) string {
			if err != nil {
				return "REFUSED"
			}
			return "granted"
		}
		_, err1 := m.Query(q1, "snooper")
		_, err2 := m.Query(q2, "snooper")
		_, err3 := m.Query(q2, "bystander")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", threshold), verdict(err1), verdict(err2), verdict(err3),
		})
		if threshold == 0.9 {
			if err1 != nil || err2 == nil || err3 != nil {
				return nil, fmt.Errorf("experiments: E15 shape wrong: %v / %v / %v", err1, err2, err3)
			}
		}
	}
	t.Notes = append(t.Notes,
		"each query passed the source's own checks; only the mediator's ledger sees the combination")
	return t, nil
}
