package experiments

import (
	"fmt"
	"strconv"
	"time"

	"privateiye/internal/anonymity"
	"privateiye/internal/clinical"
	"privateiye/internal/cluster"
	"privateiye/internal/loss"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/relational"
	"privateiye/internal/stats"
)

// patientResult builds an n-row patient grid for the preservation and
// anonymity experiments.
func patientResult(n int, seed uint64) (*piql.Result, error) {
	g := clinical.NewGenerator(seed)
	tab, err := g.Patients("p", n, 4)
	if err != nil {
		return nil, err
	}
	res := &piql.Result{Columns: []string{"age", "zip", "sex", "diagnosis"}}
	for _, row := range tab.Rows() {
		res.Rows = append(res.Rows, []string{
			row[3].String(), row[4].String(), row[2].String(), row[5].String(),
		})
	}
	return res, nil
}

// E5RewriteVsFilter measures the paper's rewrite-before-execute choice:
// the same policy-constrained answer computed by (a) a rewritten query
// whose predicate executes inside the engine, and (b) executing the
// unrestricted query and filtering row by row afterwards, with a policy
// decision evaluated per row — the execute-then-filter strawman of
// Section 4.
func E5RewriteVsFilter(sizes []int) (*Table, error) {
	t := &Table{
		Title:  "E5: rewrite-before-execute vs execute-then-filter",
		Header: []string{"rows", "rewrite+execute", "execute+filter", "speedup", "rows-out"},
	}
	pol, err := policy.NewPolicy("s", policy.Deny,
		policy.Rule{Item: "//p/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
	)
	if err != nil {
		return nil, err
	}
	purposes := policy.DefaultPurposes()
	for _, n := range sizes {
		g := clinical.NewGenerator(uint64(n))
		cat := relational.NewCatalog()
		tab, err := g.Patients("p", n, 4)
		if err != nil {
			return nil, err
		}
		if err := cat.Add(tab); err != nil {
			return nil, err
		}
		pred := relational.Cmp{Op: relational.Gt, L: relational.ColRef{Name: "age"}, R: relational.Lit{V: relational.Int(80)}}

		// (a) rewritten: selection inside the engine, policy checked once.
		start := time.Now()
		req := policy.Request{ItemPath: "/p/row/age", Purpose: "research", Form: policy.Exact}
		if d := pol.Decide(req, purposes); !d.Allowed {
			return nil, fmt.Errorf("experiments: policy misconfigured")
		}
		rq := &relational.Query{From: "p", Where: pred, Select: []string{"age"}}
		resA, err := rq.Execute(cat)
		if err != nil {
			return nil, err
		}
		tA := time.Since(start)

		// (b) execute-then-filter: fetch everything, then per-row policy
		// decision + predicate.
		start = time.Now()
		all, err := (&relational.Query{From: "p"}).Execute(cat)
		if err != nil {
			return nil, err
		}
		var out []relational.Row
		ageIdx := all.Schema.Index("age")
		for _, row := range all.Rows {
			d := pol.Decide(policy.Request{ItemPath: "/p/row/age", Purpose: "research", Form: policy.Exact}, purposes)
			if !d.Allowed {
				continue
			}
			if row[ageIdx].I > 80 {
				out = append(out, relational.Row{row[ageIdx]})
			}
		}
		tB := time.Since(start)
		if len(out) != len(resA.Rows) {
			return nil, fmt.Errorf("experiments: E5 paths disagree: %d vs %d rows", len(out), len(resA.Rows))
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), ms(tA), ms(tB),
			fmt.Sprintf("%.1fx", float64(tB)/float64(tA)),
			strconv.Itoa(len(resA.Rows)),
		})
	}
	t.Notes = append(t.Notes, "identical outputs verified on every row count")
	return t, nil
}

// E6ClusterRouting measures the paper's analyze-the-query choice: breach
// classification from query features (Map into the cluster KB) against
// the execute-and-analyze baseline that must evaluate the query over the
// data before classifying its result.
func E6ClusterRouting(workload int) (*Table, error) {
	train, err := cluster.SyntheticWorkload(workload, 7)
	if err != nil {
		return nil, err
	}
	kb, err := cluster.BuildKMeans(train, 8, 42)
	if err != nil {
		return nil, err
	}
	test, err := cluster.SyntheticWorkload(workload/3, 999)
	if err != nil {
		return nil, err
	}

	// Cluster routing: classification cost is a feature extraction plus a
	// nearest-centroid scan.
	start := time.Now()
	hit := 0
	for _, ex := range test {
		c, _, err := kb.Map(ex.Query)
		if err != nil {
			return nil, err
		}
		if c.Breach == ex.Breach {
			hit++
		}
	}
	tMap := time.Since(start)

	// Execute-and-analyze baseline: evaluate each query over a 1000-row
	// dataset before classifying (here the classifier itself is perfect,
	// so this measures pure execution overhead).
	g := clinical.NewGenerator(3)
	tab, err := g.Patients("p", 1000, 4)
	if err != nil {
		return nil, err
	}
	doc := relational.TableToXML(tab)
	start = time.Now()
	for _, ex := range test {
		if _, err := ex.Query.Evaluate(doc, piql.EvalOptions{}); err != nil {
			return nil, err
		}
		_ = cluster.HeuristicBreach(ex.Query)
	}
	tExec := time.Since(start)

	t := &Table{
		Title:  "E6: cluster-based technique selection vs execute-and-analyze",
		Header: []string{"approach", "per-query", "accuracy"},
		Rows: [][]string{
			{"cluster Map(q,C)", ms(tMap / time.Duration(len(test))), f3(float64(hit) / float64(len(test)))},
			{"execute-and-analyze", ms(tExec / time.Duration(len(test))), "1.000 (by construction)"},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("baseline executes every query over 1000 rows before classification; speedup %.0fx",
			float64(tExec)/float64(tMap)))
	return t, nil
}

// E7KAnonymity sweeps k over dataset sizes for both algorithms.
func E7KAnonymity(sizes, ks []int) (*Table, error) {
	t := &Table{
		Title:  "E7: k-anonymity cost and quality (Samarati vs Datafly)",
		Header: []string{"rows", "k", "algorithm", "time", "height", "suppressed", "precision"},
	}
	for _, n := range sizes {
		res, err := patientResult(n, 11)
		if err != nil {
			return nil, err
		}
		cfg := anonymity.Config{
			K: 0,
			QIs: []anonymity.QuasiIdentifier{
				{Column: "age", Hierarchy: preserve.AgeHierarchy()},
				{Column: "zip", Hierarchy: preserve.ZipHierarchy()},
				{Column: "sex", Hierarchy: preserve.SexHierarchy()},
			},
			MaxSuppression: 0.05,
		}
		depths := []int{preserve.AgeHierarchy().Depth(), preserve.ZipHierarchy().Depth(), preserve.SexHierarchy().Depth()}
		for _, k := range ks {
			cfg.K = k
			for _, alg := range []struct {
				name string
				run  func(*piql.Result, anonymity.Config) (*anonymity.Solution, error)
			}{{"samarati", anonymity.Samarati}, {"datafly", anonymity.Datafly}} {
				start := time.Now()
				sol, err := alg.run(res, cfg)
				el := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("experiments: E7 %s n=%d k=%d: %w", alg.name, n, k, err)
				}
				prec, err := loss.Precision(sol.Levels, depths)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					strconv.Itoa(n), strconv.Itoa(k), alg.name, ms(el),
					strconv.Itoa(sol.Height()), strconv.Itoa(sol.Suppressed), f3(prec),
				})
			}
		}
	}
	return t, nil
}

// E8Perturbation sweeps additive-noise sigma and maps the releases on the
// risk-utility plane: risk is the chance an adversary's point guess from
// the perturbed value lands within ±1 of the truth; utility is one minus
// the relative error the noise puts on the published mean.
func E8Perturbation(sigmas []float64) (*Table, error) {
	res, err := patientResult(20000, 13)
	if err != nil {
		return nil, err
	}
	// Use age as the numeric payload.
	ageIdx := 0
	truth := make([]float64, len(res.Rows))
	for i, row := range res.Rows {
		v, err := strconv.ParseFloat(row[ageIdx], 64)
		if err != nil {
			return nil, err
		}
		truth[i] = v
	}
	trueMean, _ := stats.Mean(truth)

	t := &Table{
		Title:  "E8: perturbation privacy/utility frontier (additive Gaussian noise on age)",
		Header: []string{"sigma", "risk(|guess-true|<=1)", "utility(mean)", "frontier"},
	}
	var ru loss.RUMap
	type row struct {
		sigma, risk, utility float64
	}
	var rows []row
	for _, sg := range sigmas {
		noisy, err := preserve.AdditiveNoise{Column: "age", Sigma: sg}.Apply(res, stats.NewRand(99))
		if err != nil {
			return nil, err
		}
		within := 0
		vals := make([]float64, len(noisy.Rows))
		for i, r := range noisy.Rows {
			v, err := strconv.ParseFloat(r[ageIdx], 64)
			if err != nil {
				return nil, err
			}
			vals[i] = v
			if abs(v-truth[i]) <= 1 {
				within++
			}
		}
		noisyMean, _ := stats.Mean(vals)
		risk := float64(within) / float64(len(truth))
		utility := 1 - abs(noisyMean-trueMean)/trueMean
		if utility < 0 {
			utility = 0
		}
		rows = append(rows, row{sg, risk, utility})
		if err := ru.Add(loss.RUPoint{Name: f1(sg), Risk: risk, Utility: utility}); err != nil {
			return nil, err
		}
	}
	frontier := map[string]bool{}
	for _, p := range ru.Frontier() {
		frontier[p.Name] = true
	}
	for _, r := range rows {
		mark := ""
		if frontier[f1(r.sigma)] {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{f1(r.sigma), f3(r.risk), f3(r.utility), mark})
	}
	t.Notes = append(t.Notes, "* = on the R-U frontier (Duncan et al. confidentiality map)")
	return t, nil
}
