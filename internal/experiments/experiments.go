// Package experiments is the reproduction harness: one function per
// experiment of EXPERIMENTS.md. E1–E4 regenerate the paper's Figure 1
// tables (the paper's only quantitative content); E5–E19 measure the
// architecture's load-bearing design choices, which the paper argues
// qualitatively. cmd/piye-bench prints every table; bench_test.go wraps
// the kernels in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
