package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// e22Mediator builds one node of the failover pair over the Figure 1
// compliance deployment: durable state under dir, replication configured
// with fast heartbeats. An empty primaryURL makes it the primary.
func e22Mediator(dir, primaryURL string) (*mediator.Mediator, error) {
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		return nil, err
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return nil, err
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		return nil, err
	}
	src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		return nil, err
	}
	ep, err := source.NewLocal(src, []byte("e22"), psi.TestGroup())
	if err != nil {
		return nil, err
	}
	return mediator.New(mediator.Config{
		Endpoints:       []source.Endpoint{ep},
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		PlanCache:       256,
		Durability:      &mediator.DurabilityConfig{Dir: dir},
		Replica: &mediator.ReplicaConfig{
			PrimaryURL: primaryURL,
			Heartbeat:  10 * time.Millisecond,
			Reconnect:  10 * time.Millisecond,
		},
	})
}

// e22Post runs one query over HTTP, the way failover is actually
// experienced: by a client that can only see status codes.
func e22Post(base, query, requester string) (int, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(query))
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-Requester", requester)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// E22ReplicationFailover measures hot-standby replication end to end: a
// primary and a warm standby (both over real HTTP), open-loop query load,
// a primary kill, a fenced promotion, and a revived old primary. It
// reports replication lag under load, the two components of failover
// time, the queries lost in the window, and verifies the privacy
// invariant the whole subsystem exists for: zero double-grants across
// the epoch boundary.
func E22ReplicationFailover(total int) (*Table, error) {
	if total <= 0 {
		total = 200
	}
	const (
		q1 = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9"
		q2 = "FOR //compliance/row GROUP BY //hmo RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
	)
	dirA, err := os.MkdirTemp("", "piye-e22-a-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "piye-e22-b-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirB)

	// Primary A on a fixed address (the revived node must come back on
	// the address the standby's fencer keeps retrying).
	medA, err := e22Mediator(dirA, "")
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addrA := l.Addr().String()
	srvA := httptest.NewUnstartedServer(mediator.NewHandler(medA))
	srvA.Listener.Close()
	srvA.Listener = l
	srvA.Start()
	urlA := "http://" + addrA

	// The pre-failover release whose combination must stay refused.
	if code, err := e22Post(urlA, q1, "snooper"); err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("experiments: E22 priming release: %d %v", code, err)
	}

	// Standby B tailing A.
	medB, err := e22Mediator(dirB, urlA)
	if err != nil {
		return nil, err
	}
	defer medB.Close()
	srvB := httptest.NewServer(mediator.NewHandler(medB))
	defer srvB.Close()
	for deadline := time.Now().Add(10 * time.Second); medB.Ready() != nil; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: E22 standby never caught up: %v", medB.Ready())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Lag sampler: poll the standby's replication status during the load.
	var maxLag, lagSum, lagSamples uint64
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			st := medB.ReplicationStatus()
			if st.Replication == nil {
				continue
			}
			lag := st.Replication.Lag
			if lag > maxLag {
				maxLag = lag
			}
			lagSum += lag
			lagSamples++
		}
	}()

	// Open-loop load: a fresh requester every interval, so every answer
	// is a real grant that must replicate (two WAL records each).
	var answeredA, answeredB, lost atomic.Int64
	var firstB atomic.Int64 // ns since the kill of the first post-kill answer
	var tKill atomic.Int64  // UnixNano of the kill
	target := atomic.Value{}
	target.Store(urlA)
	interval := 3 * time.Millisecond
	var loadWG sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		loadWG.Add(1)
		go func(i int) {
			defer loadWG.Done()
			code, err := e22Post(target.Load().(string), q1, fmt.Sprintf("analyst-%d", i))
			switch {
			case err != nil || code != http.StatusOK:
				lost.Add(1)
			case target.Load().(string) == urlA:
				answeredA.Add(1)
			default:
				answeredB.Add(1)
				firstB.CompareAndSwap(0, time.Now().UnixNano()-tKill.Load())
			}
		}(i)

		// Halfway through the offered load the primary dies and the
		// standby is promoted — with queries still arriving.
		if i == total/2 {
			tKill.Store(time.Now().UnixNano())
			srvA.CloseClientConnections()
			srvA.Close()
			if err := medA.Close(); err != nil {
				return nil, err
			}
			epoch, err := medB.Promote()
			if err != nil {
				return nil, fmt.Errorf("experiments: E22 promotion: %w", err)
			}
			if epoch != 2 {
				return nil, fmt.Errorf("experiments: E22 epoch after promotion = %d, want 2", epoch)
			}
			target.Store(srvB.URL)
		}
	}
	loadWG.Wait()
	close(sampleStop)
	sampleWG.Wait()

	// No double-grant: the pre-failover release binds the successor.
	codeComb, err := e22Post(srvB.URL, q2, "snooper")
	if err != nil {
		return nil, err
	}
	doubleGrant := codeComb == http.StatusOK
	codeFresh, err := e22Post(srvB.URL, q2, "bystander")
	if err != nil || codeFresh != http.StatusOK {
		return nil, fmt.Errorf("experiments: E22 successor must serve fresh requesters: %d %v", codeFresh, err)
	}

	// Revive the old primary on its old address: the successor's fencer
	// deposes it, and every write from the stale epoch is refused.
	medA2, err := e22Mediator(dirA, "")
	if err != nil {
		return nil, err
	}
	defer medA2.Close()
	l2, err := net.Listen("tcp", addrA)
	for i := 0; err != nil && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
		l2, err = net.Listen("tcp", addrA)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: E22 rebinding %s: %w", addrA, err)
	}
	srvA2 := httptest.NewUnstartedServer(mediator.NewHandler(medA2))
	srvA2.Listener.Close()
	srvA2.Listener = l2
	srvA2.Start()
	defer srvA2.Close()
	fenced := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if medA2.ReplicationStatus().Role == "fenced" {
			fenced = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	codeOld, err := e22Post(urlA, q1, "late-analyst")
	if err != nil {
		return nil, err
	}
	staleWriteRefused := fenced && codeOld == http.StatusServiceUnavailable

	if doubleGrant || !staleWriteRefused {
		return nil, fmt.Errorf("experiments: E22 invariant violated: doubleGrant=%v staleWriteRefused=%v", doubleGrant, staleWriteRefused)
	}

	verdict := func(bad bool, ok, notOK string) string {
		if bad {
			return notOK
		}
		return ok
	}
	meanLag := "0.0"
	if lagSamples > 0 {
		meanLag = fmt.Sprintf("%.1f", float64(lagSum)/float64(lagSamples))
	}
	t := &Table{
		Title:  "E22: hot-standby replication — lag, failover time, zero double-grants",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"offered load", fmt.Sprintf("%d queries open-loop at %.0f q/s", total, float64(time.Second)/float64(interval))},
			{"answered by primary (pre-kill)", fmt.Sprintf("%d", answeredA.Load())},
			{"answered by promoted standby", fmt.Sprintf("%d", answeredB.Load())},
			{"lost in the failover window", fmt.Sprintf("%d", lost.Load())},
			{"replication lag (records), mean / max", fmt.Sprintf("%s / %d", meanLag, maxLag)},
			{"kill -> first answer on successor", time.Duration(firstB.Load()).Round(time.Millisecond).String()},
			{"pre-failover release on successor", verdict(doubleGrant, "combination REFUSED (no double-grant)", "GRANTED — double-grant!")},
			{"revived old primary (epoch 1 vs 2)", verdict(!staleWriteRefused, "fenced; writes REFUSED", "NOT fenced")},
		},
	}
	t.Notes = append(t.Notes,
		"every answered query is a real release: two WAL records replicate per grant while the load runs",
		"the standby refuses queries until caught up; promotion durably bumps the epoch before the first grant",
		"the revived old primary is deposed by the successor's fence retry loop and fails closed, like an unrecordable release",
	)
	return t, nil
}
