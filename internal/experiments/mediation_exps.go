package experiments

import (
	"crypto/rand"
	"fmt"
	"net/http/httptest"
	"strconv"
	"time"

	"privateiye/internal/audit"
	"privateiye/internal/clinical"
	"privateiye/internal/core"
	"privateiye/internal/linkage"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/schemamatch"
	"privateiye/internal/source"
	"privateiye/internal/stats"
)

// E9PSI measures private set intersection and private fuzzy linkage at
// several set sizes against the plaintext baseline.
func E9PSI(sizes []int) (*Table, error) {
	t := &Table{
		Title:  "E9: private dedup (PSI + Bloom linkage) vs plaintext dedup",
		Header: []string{"set size", "overlap", "psi time", "psi found", "bloom F1", "plaintext time"},
	}
	g := psi.TestGroup()
	for _, n := range sizes {
		gen := clinical.NewGenerator(uint64(n) * 31)
		// Build two sets with 30% overlap.
		overlap := n * 3 / 10
		var setA, setB []string
		for i := 0; i < n; i++ {
			setA = append(setA, fmt.Sprintf("patient-%d", i))
		}
		for i := 0; i < n; i++ {
			if i < overlap {
				setB = append(setB, setA[i])
			} else {
				setB = append(setB, fmt.Sprintf("other-%d", i))
			}
		}

		a, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
		if err != nil {
			return nil, err
		}
		b, err := psi.NewParty(psi.ModPSuite(g), rand.Reader)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		idx, err := psi.Intersect(a, b, setA, setB)
		if err != nil {
			return nil, err
		}
		tPSI := time.Since(start)
		if len(idx) != overlap {
			return nil, fmt.Errorf("experiments: E9 psi found %d, want %d", len(idx), overlap)
		}

		// Bloom fuzzy linkage with corrupted names.
		enc, err := linkage.NewEncoder(1000, 20, 2, []byte("e9-salt"))
		if err != nil {
			return nil, err
		}
		var left, right []linkage.EncodedRecord
		truth := map[string]string{}
		for i := 0; i < n; i++ {
			name := gen.Name() + " " + strconv.Itoa(i)
			left = append(left, enc.EncodeRecord(fmt.Sprintf("L%d", i), name))
			if i < overlap {
				right = append(right, enc.EncodeRecord(fmt.Sprintf("R%d", i), gen.CorruptName(name)))
				truth[fmt.Sprintf("L%d", i)] = fmt.Sprintf("R%d", i)
			}
		}
		pairs, err := linkage.Match(left, right, 0.7)
		if err != nil {
			return nil, err
		}
		q := linkage.Evaluate(pairs, truth)

		// Plaintext baseline: hash-set intersection.
		start = time.Now()
		inA := map[string]bool{}
		for _, s := range setA {
			inA[s] = true
		}
		found := 0
		for _, s := range setB {
			if inA[s] {
				found++
			}
		}
		tPlain := time.Since(start)
		if found != overlap {
			return nil, fmt.Errorf("experiments: E9 plaintext found %d", found)
		}

		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), strconv.Itoa(overlap), ms(tPSI),
			strconv.Itoa(len(idx)), f3(q.F1), ms(tPlain),
		})
	}
	t.Notes = append(t.Notes,
		"768-bit test group; production uses the 2048-bit RFC 3526 group",
		"bloom F1 is fuzzy matching under name corruption; psi/plaintext are exact-id")
	return t, nil
}

// E10Warehouse measures the hybrid mediation crossover: a repeated-query
// workload served with and without warehousing.
func E10Warehouse(repeats int) (*Table, error) {
	build := func(capacity int) (*core.System, error) {
		g := clinical.NewGenerator(17)
		cat := relational.NewCatalog()
		tab, err := g.Patients("patients", 5000, 4)
		if err != nil {
			return nil, err
		}
		if err := cat.Add(tab); err != nil {
			return nil, err
		}
		pol, err := policy.NewPolicy("s", policy.Deny,
			policy.Rule{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
			policy.Rule{Item: "//patients/row/sex", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
		)
		if err != nil {
			return nil, err
		}
		return core.NewSystem(core.SystemConfig{
			Sources:           []source.Config{{Name: "s", Catalog: cat, Policy: pol}},
			PSIGroup:          psi.TestGroup(),
			WarehouseCapacity: capacity,
			WarehouseTTL:      0,
		})
	}
	queries := []string{
		"FOR //patients/row WHERE //age > 60 RETURN //age PURPOSE research MAXLOSS 0.9",
		"FOR //patients/row WHERE //age > 40 RETURN //age PURPOSE research MAXLOSS 0.9",
		"FOR //patients/row WHERE //sex = 'F' RETURN //age PURPOSE research MAXLOSS 0.9",
	}
	run := func(sys *core.System) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < repeats; i++ {
			q := queries[i%len(queries)]
			if _, err := sys.Query(q, "epidemiologist"); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	virtual, err := build(0)
	if err != nil {
		return nil, err
	}
	tVirtual, err := run(virtual)
	if err != nil {
		return nil, err
	}
	hybrid, err := build(64)
	if err != nil {
		return nil, err
	}
	tHybrid, err := run(hybrid)
	if err != nil {
		return nil, err
	}
	hits, misses, _ := hybrid.Mediator().WarehouseStats()

	t := &Table{
		Title:  "E10: hybrid warehousing vs pure virtual querying",
		Header: []string{"mode", "total", "per-query", "warehouse hits"},
		Rows: [][]string{
			{"virtual", ms(tVirtual), ms(tVirtual / time.Duration(repeats)), "-"},
			{"hybrid", ms(tHybrid), ms(tHybrid / time.Duration(repeats)),
				fmt.Sprintf("%d/%d", hits, hits+misses)},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d queries over 3 distinct shapes, 5000-row source; speedup %.1fx",
			repeats, float64(tVirtual)/float64(tHybrid)))
	return t, nil
}

// E11Audit plays an adaptive tracker against three auditor
// configurations and reports whether the victim's value was determined.
func E11Audit() (*Table, error) {
	const population = 100
	configs := []struct {
		name string
		cfg  audit.Config
	}{
		{"no control", audit.Config{Population: population, MaxOverlap: -1}},
		{"set-size k=4", audit.Config{Population: population, MinSetSize: 4, MaxOverlap: -1}},
		{"overlap r=1", audit.Config{Population: population, MinSetSize: 4, MaxOverlap: 1}},
		{"exact audit", audit.Config{Population: population, MinSetSize: 2, MaxOverlap: -1, Exact: true}},
	}
	t := &Table{
		Title:  "E11: sequence auditing against the Dobkin-Jones-Lipton tracker",
		Header: []string{"control", "queries granted", "queries refused", "victim compromised"},
	}
	for _, c := range configs {
		a, err := audit.NewAuditor(c.cfg)
		if err != nil {
			return nil, err
		}
		// Tracker: Sum{0..3} then Sum{1..4}; their difference isolates
		// individual 0 vs 4; iterating pins individual 0.
		attempts := [][]int{
			{0, 1, 2, 3},
			{1, 2, 3, 4},
			{0, 1, 2, 4},
			{0, 1, 3, 4},
			{0, 2, 3, 4},
			{0}, // the direct ask, for the no-control row
		}
		granted := 0
		for _, q := range attempts {
			if err := a.Commit(q); err == nil {
				granted++
			}
		}
		g, r := a.Stats()
		// Compromise: with {0,1,2,3} and {1,2,3,4} and {0,1,2,4},
		// {0,1,3,4}, {0,2,3,4} all answered, individual values are
		// solvable; the exact audit refuses before that point. We declare
		// compromise when 5 of the overlapping sums (or the direct ask)
		// were all granted.
		compromised := granted >= 5
		t.Rows = append(t.Rows, []string{
			c.name, strconv.Itoa(g), strconv.Itoa(r), strconv.FormatBool(compromised),
		})
	}
	return t, nil
}

// E12Fragmenter measures source routing: the fraction of sources
// contacted that actually held relevant data, against broadcast.
func E12Fragmenter(nSources int) (*Table, error) {
	var eps []source.Endpoint
	for i := 0; i < nSources; i++ {
		g := clinical.NewGenerator(uint64(i) + 1)
		cat := relational.NewCatalog()
		// Half the sources hold patients, half hold outbreak events.
		var tabName string
		if i%2 == 0 {
			tab, err := g.Patients("patients", 50, 2)
			if err != nil {
				return nil, err
			}
			if err := cat.Add(tab); err != nil {
				return nil, err
			}
			tabName = "patients"
		} else {
			tab, err := g.Outbreak("events", 10)
			if err != nil {
				return nil, err
			}
			if err := cat.Add(tab); err != nil {
				return nil, err
			}
			tabName = "events"
		}
		_ = tabName
		pol, err := policy.NewPolicy(fmt.Sprintf("s%d", i), policy.Allow)
		if err != nil {
			return nil, err
		}
		src, err := source.New(source.Config{Name: fmt.Sprintf("s%d", i), Catalog: cat, Policy: pol})
		if err != nil {
			return nil, err
		}
		ep, err := source.NewLocal(src, []byte("salt"), psi.TestGroup())
		if err != nil {
			return nil, err
		}
		eps = append(eps, ep)
	}
	med, err := mediator.New(mediator.Config{Endpoints: eps})
	if err != nil {
		return nil, err
	}
	in, err := med.Query("FOR //patients/row WHERE //age > 50 RETURN //age PURPOSE research MAXLOSS 1", "r")
	if err != nil {
		return nil, err
	}
	patientSources := (nSources + 1) / 2
	t := &Table{
		Title:  "E12: query fragmentation and source routing",
		Header: []string{"sources", "holding data", "contacted", "broadcast would contact"},
		Rows: [][]string{{
			strconv.Itoa(nSources),
			strconv.Itoa(patientSources),
			strconv.Itoa(len(in.Answered) + len(in.Denied)),
			strconv.Itoa(nSources),
		}},
	}
	if got := len(in.Answered) + len(in.Denied); got != patientSources {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: routing contacted %d, expected %d", got, patientSources))
	} else {
		t.Notes = append(t.Notes, "routing contacted exactly the sources whose summaries match the FOR pattern")
	}
	return t, nil
}

// E13EndToEnd measures full-stack integration latency as sources scale,
// for both transports: sources in-process and sources behind loopback
// HTTP nodes (the cmd/piye-source deployment shape).
func E13EndToEnd(sourceCounts []int, queriesPer int) (*Table, error) {
	t := &Table{
		Title:  "E13: end-to-end mediated integration latency",
		Header: []string{"sources", "transport", "rows total", "per-query", "rows integrated"},
	}
	mkConfigs := func(n int) ([]source.Config, error) {
		var cfgs []source.Config
		for i := 0; i < n; i++ {
			g := clinical.NewGenerator(uint64(i)*7 + 1)
			cat := relational.NewCatalog()
			tab, err := g.Patients("patients", 500, 4)
			if err != nil {
				return nil, err
			}
			if err := cat.Add(tab); err != nil {
				return nil, err
			}
			pol, err := policy.NewPolicy(fmt.Sprintf("s%d", i), policy.Deny,
				policy.Rule{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 1},
			)
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, source.Config{Name: fmt.Sprintf("s%d", i), Catalog: cat, Policy: pol, Seed: uint64(i)})
		}
		return cfgs, nil
	}
	run := func(query func(q, requester string) (*mediator.Integrated, error)) (time.Duration, int, error) {
		start := time.Now()
		var rows int
		for i := 0; i < queriesPer; i++ {
			in, err := query(
				fmt.Sprintf("FOR //patients/row WHERE //age > %d RETURN //age PURPOSE research MAXLOSS 0.9", 30+i),
				"r")
			if err != nil {
				return 0, 0, err
			}
			rows = len(in.Result.Rows)
		}
		return time.Since(start), rows, nil
	}
	for _, n := range sourceCounts {
		// In-process.
		cfgs, err := mkConfigs(n)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(core.SystemConfig{Sources: cfgs, PSIGroup: psi.TestGroup()})
		if err != nil {
			return nil, err
		}
		el, rows, err := run(sys.Query)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), "in-process", strconv.Itoa(n * 500),
			ms(el / time.Duration(queriesPer)), strconv.Itoa(rows),
		})

		// Loopback HTTP.
		cfgs, err = mkConfigs(n)
		if err != nil {
			return nil, err
		}
		var eps []source.Endpoint
		var servers []*httptest.Server
		for _, sc := range cfgs {
			src, err := source.New(sc)
			if err != nil {
				return nil, err
			}
			local, err := source.NewLocal(src, []byte("e13"), psi.TestGroup())
			if err != nil {
				return nil, err
			}
			srv := httptest.NewServer(source.NewHandler(local))
			servers = append(servers, srv)
			eps = append(eps, source.NewClient(srv.URL, sc.Name))
		}
		med, err := mediator.New(mediator.Config{Endpoints: eps})
		if err != nil {
			return nil, err
		}
		el, rows, err = run(med.Query)
		for _, srv := range servers {
			srv.Close()
		}
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), "http", strconv.Itoa(n * 500),
			ms(el / time.Duration(queriesPer)), strconv.Itoa(rows),
		})
	}
	return t, nil
}

// E14SchemaMatch compares plaintext learning-based matching with the
// hashed private mode over renamed clinical vocabularies.
func E14SchemaMatch() (*Table, error) {
	m := schemamatch.NewMatcher()
	// Ground truth: left name -> right name, a mix of exact, synonym and
	// morphological renames.
	pairs := [][2]string{
		{"dob", "dateOfBirth"},
		{"name", "patient_name"},
		{"zip", "zipCode"},
		{"sex", "gender"},
		{"diagnosis", "dx"},
		{"age", "age"},
		{"phone", "telephone"},
		{"hmo", "insurer"},
	}
	var left, right []schemamatch.FieldProfile
	var leftNames, rightNames []string
	for _, p := range pairs {
		left = append(left, schemamatch.FieldProfile{Name: p[0]})
		right = append(right, schemamatch.FieldProfile{Name: p[1]})
		leftNames = append(leftNames, p[0])
		rightNames = append(rightNames, p[1])
	}
	plain := m.Match(left, right)
	plainHit := 0
	want := map[string]string{}
	for _, p := range pairs {
		want[p[0]] = p[1]
	}
	for _, c := range plain {
		if want[c.Left] == c.Right {
			plainHit++
		}
	}
	salt := []byte("e14")
	hashed := schemamatch.MatchHashed(
		schemamatch.HashVocabulary(salt, leftNames),
		schemamatch.HashVocabulary(salt, rightNames),
	)
	hashedHit := 0
	for _, hp := range hashed {
		if want[leftNames[hp[0]]] == rightNames[hp[1]] {
			hashedHit++
		}
	}
	t := &Table{
		Title:  "E14: schema matching accuracy, plaintext vs private (hashed) mode",
		Header: []string{"mode", "correct", "of", "recall"},
		Rows: [][]string{
			{"plaintext learning-based", strconv.Itoa(plainHit), strconv.Itoa(len(pairs)),
				f3(float64(plainHit) / float64(len(pairs)))},
			{"private hashed-equality", strconv.Itoa(hashedHit), strconv.Itoa(len(pairs)),
				f3(float64(hashedHit) / float64(len(pairs)))},
		},
	}
	t.Notes = append(t.Notes,
		"private mode can only match equal normalized names: the accuracy cost of not revealing vocabularies")
	return t, nil
}

// rngGuard keeps stats import used if experiments change shape.
var _ = stats.NewRand
