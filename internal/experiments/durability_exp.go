package experiments

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/durable"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// E18Durability measures what crash-safe inference control costs. Three
// questions: how long does a restarted mediator take to replay its
// release history (and how large are the WAL and snapshot it replays),
// what does each fsync policy cost in append throughput, and — the
// point of the whole subsystem — does a restarted mediator still refuse
// the Figure 1 combination a fresh in-memory one would grant
// (restart-amnesia).
func E18Durability(releaseCounts []int) (*Table, error) {
	t := &Table{
		Title:  "E18: durable inference-control state — recovery cost, fsync throughput, restart-amnesia",
		Header: []string{"scenario", "wal", "snapshot", "recovery", "replayed", "appends/s"},
	}

	// One WAL record shaped like a real ledgered release (three groups of
	// means + sigmas, JSON-encoded as the mediator writes them).
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf(
			`{"k":"release","req":"req%d","rel":{"t":"//compliance/row","v":"rate","a":"test","m":{"cholesterol":%.2f,"hypertension":%.2f,"diabetes":%.2f},"s":{"cholesterol":1.52,"hypertension":2.36,"diabetes":3.04}}}`,
			i%17, 70+float64(i%9), 60+float64(i%7), 80+float64(i%5)))
	}

	// Recovery cost vs history length: write n releases (snapshotting at
	// the default cadence, exactly as the mediator does), then time a
	// cold reopen.
	for _, n := range releaseCounts {
		dir, err := os.MkdirTemp("", "e18-recovery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		l, err := durable.Open(durable.Options{Dir: dir, Fsync: durable.FsyncNever})
		if err != nil {
			return nil, err
		}
		var state bytes.Buffer // accumulated "full state", like a real snapshot
		for i := 0; i < n; i++ {
			p := payload(i)
			if _, err := l.Append(p); err != nil {
				return nil, err
			}
			state.Write(p)
			state.WriteByte('\n')
			if l.AppendsSinceSnapshot() >= l.SnapshotEvery() {
				if err := l.SaveSnapshot(state.Bytes()); err != nil {
					return nil, err
				}
			}
		}
		if err := l.Close(); err != nil {
			return nil, err
		}

		start := time.Now()
		r, err := durable.Open(durable.Options{Dir: dir})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		wal, snap := r.Sizes()
		replayed := len(r.RecoveredEntries())
		r.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("recover %d releases", n),
			kb(wal), kb(snap), ms(elapsed),
			fmt.Sprintf("%d wal + snapshot", replayed), "-",
		})
	}

	// Fsync policy cost: identical append workloads, only the sync
	// policy varies. FsyncAlways pays one fsync per release — the price
	// of "an acknowledged release is never forgotten".
	const throughputN = 400
	for _, pol := range []durable.FsyncPolicy{durable.FsyncAlways, durable.FsyncInterval, durable.FsyncNever} {
		dir, err := os.MkdirTemp("", "e18-fsync-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		l, err := durable.Open(durable.Options{Dir: dir, Fsync: pol})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < throughputN; i++ {
			if _, err := l.Append(payload(i)); err != nil {
				return nil, err
			}
		}
		if err := l.Close(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			"fsync=" + pol.String(), "-", "-", "-", "-",
			fmt.Sprintf("%.0f", float64(throughputN)/elapsed.Seconds()),
		})
	}

	// The acceptance scenario: sigma release, restart over the same state
	// directory, combining means query. The restarted mediator must refuse
	// exactly as an unrestarted one would.
	verdict, err := restartAmnesiaVerdict()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Fig1(b) after restart", "-", "-", "-", "-", verdict})
	if verdict != "REFUSED" {
		return nil, fmt.Errorf("experiments: E18 restart-amnesia verdict is %q, want REFUSED", verdict)
	}

	t.Notes = append(t.Notes,
		"recovery replays snapshot + WAL tail; compaction keeps the tail short at the default cadence (256 appends)",
		"fsync=always is the fail-closed setting: a release is acknowledged only after its record is on disk",
		"restart row: the snooper holds the Figure 1(a) sigmas, the mediator restarts, the Figure 1(b) means must still be refused")
	return t, nil
}

// restartAmnesiaVerdict runs the E15 Figure 1 pair with a mediator
// restart in between, over a shared state directory.
func restartAmnesiaVerdict() (string, error) {
	dir, err := os.MkdirTemp("", "e18-amnesia-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	build := func() (*mediator.Mediator, error) {
		tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
		if err != nil {
			return nil, err
		}
		cat := relational.NewCatalog()
		if err := cat.Add(tab); err != nil {
			return nil, err
		}
		pol, err := policy.NewPolicy("integrator", policy.Deny,
			policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
		)
		if err != nil {
			return nil, err
		}
		src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
		if err != nil {
			return nil, err
		}
		ep, err := source.NewLocal(src, []byte("e18"), psi.TestGroup())
		if err != nil {
			return nil, err
		}
		return mediator.New(mediator.Config{
			Endpoints:       []source.Endpoint{ep},
			MaxDisclosure:   0.9,
			LedgerTolerance: 0.05,
			Durability:      &mediator.DurabilityConfig{Dir: dir},
		})
	}
	const (
		q1 = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9"
		q2 = "FOR //compliance/row GROUP BY //hmo RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
	)
	m, err := build()
	if err != nil {
		return "", err
	}
	if _, err := m.Query(q1, "snooper"); err != nil {
		return "", fmt.Errorf("experiments: E18 sigma release should pass: %w", err)
	}
	if err := m.Close(); err != nil {
		return "", err
	}
	m2, err := build()
	if err != nil {
		return "", err
	}
	defer m2.Close()
	if _, err := m2.Query(q2, "snooper"); err != nil {
		return "REFUSED", nil
	}
	return "granted", nil
}

func kb(n int64) string { return fmt.Sprintf("%.1fKB", float64(n)/1024) }
