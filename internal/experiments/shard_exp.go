package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/clinical"
	"privateiye/internal/mediator"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/resilience"
	"privateiye/internal/shard"
	"privateiye/internal/source"
)

// e24Concurrency is the per-shard admission ceiling the sweep pins.
// Sharding pays when each shard's capacity is bounded — here by slots
// over a simulated remote-source round-trip — so adding shards adds
// slots. The ceiling is deliberately small so a modest client pool can
// saturate four shards.
const e24Concurrency = 4

// e24Delay stands in for the network round-trip to an autonomous
// source, the dominant per-query cost in the deployment the paper
// targets.
const e24Delay = 2 * time.Millisecond

const e24Query = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"

// e24Transport pools enough connections that neither the clients nor
// the router's outbound hop throttle the sweep on connection churn.
func e24Transport() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 128,
		},
	}
}

// e24Shard builds one mediator shard: the Figure 1 compliance source
// behind the simulated round-trip, a pinned admission ceiling (AIMD
// off: min = max), a queue deep enough that the closed-loop clients
// wait rather than shed, and the ownership gate for its tier.
func e24Shard(id string, peers []string, queue int) (*httptest.Server, *mediator.Mediator, error) {
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		return nil, nil, err
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return nil, nil, err
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9})
	if err != nil {
		return nil, nil, err
	}
	src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		return nil, nil, err
	}
	ep, err := source.NewLocal(src, []byte("e24"), psi.TestGroup())
	if err != nil {
		return nil, nil, err
	}
	med, err := mediator.New(mediator.Config{
		Endpoints:       []source.Endpoint{e23Endpoint{Endpoint: ep, delay: e24Delay}},
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		PlanCache:       256,
		Admission: &admission.Config{
			MaxConcurrent: e24Concurrency,
			MinConcurrent: e24Concurrency,
			QueueCapacity: queue,
		},
		Shard: &mediator.ShardConfig{ID: id, Peers: peers, Seed: shard.DefaultSeed},
	})
	if err != nil {
		return nil, nil, err
	}
	return httptest.NewServer(mediator.NewHandler(med)), med, nil
}

// e24ClosedLoop drives the tier with a closed-loop client pool: each
// client posts its queries back to back, every query under a fresh
// requester so placement spreads across the ring, every ledger is
// fresh, and nothing is served from a cache. Returns queries/sec.
func e24ClosedLoop(base string, clients, queriesPer int) (float64, error) {
	httpc := e24Transport()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	// One untimed warm query per client first: connection setup and
	// cold plan caches belong to deployment, not to steady-state
	// throughput, and at quick-mode sweep lengths they would dominate.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, _, err := e24Post(httpc, base, fmt.Sprintf("warm-%02d", c)); err != nil {
				errc <- err
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queriesPer; q++ {
				code, body, err := e24Post(httpc, base, fmt.Sprintf("client-%02d-q%04d", c, q))
				if err != nil {
					errc <- err
					return
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("query answered %d: %s", code, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, err
	}
	return float64(clients*queriesPer) / elapsed.Seconds(), nil
}

func e24Post(httpc *http.Client, base, requester string) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(e24Query))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("X-Requester", requester)
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b := make([]byte, 512)
	n, _ := resp.Body.Read(b)
	return resp.StatusCode, string(b[:n]), nil
}

// E24RouterScaling measures what sharding the mediator tier buys: the
// same capacity-bounded shard deployed 1/2/4 wide behind piye-router,
// driven by the same closed-loop client pool. Each shard's throughput
// is bounded by its admission slots over the simulated source
// round-trip, so the tier's throughput should scale with the shard
// count until the clients saturate. The experiment hard-fails if 4
// shards do not reach at least 2.5x the single-shard throughput — a
// routing tier that cannot scale is not worth its hop.
func E24RouterScaling(clients, queriesPerClient int, shardCounts []int) (*Table, error) {
	t := &Table{
		Title:  "E24: sharded mediator tier — requester-sticky routing throughput",
		Header: []string{"shards", "clients", "queries", "qps", "speedup"},
	}

	queue := 4 * clients // deep enough that overload queues, never sheds

	runTier := func(n int) (float64, error) {
		peers := make([]string, n)
		for i := range peers {
			peers[i] = fmt.Sprintf("shard-%d", i)
		}
		var backends []shard.Backend
		var closers []func()
		defer func() {
			for _, c := range closers {
				c()
			}
		}()
		for _, id := range peers {
			srv, med, err := e24Shard(id, peers, queue)
			if err != nil {
				return 0, err
			}
			closers = append(closers, srv.Close, func() { med.Close() })
			backends = append(backends, shard.Backend{Name: id, URL: srv.URL})
		}
		rt, err := shard.NewRouter(shard.RouterConfig{
			Shards:         backends,
			Seed:           shard.DefaultSeed,
			Retry:          resilience.Policy{MaxAttempts: 1},
			DisableBreaker: true,
			Client:         e24Transport(),
		})
		if err != nil {
			return 0, err
		}
		closers = append(closers, rt.Close)
		rtSrv := httptest.NewServer(rt.Handler())
		closers = append(closers, rtSrv.Close)
		return e24ClosedLoop(rtSrv.URL, clients, queriesPerClient)
	}

	var base float64
	speedupAt := map[int]float64{}
	for i, n := range shardCounts {
		qps, err := runTier(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: E24 at %d shards: %w", n, err)
		}
		if i == 0 {
			base = qps
		}
		speedup := qps / base
		speedupAt[n] = speedup
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", clients*queriesPerClient),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", speedup),
		})
	}

	// Router overhead, measured where it is visible: a single sequential
	// client, so the admission ceiling is idle and the extra hop is the
	// only difference between direct and routed.
	directNs, routedNs, err := e24Overhead(200)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"1 (router overhead)", "1", "200",
		"-",
		fmt.Sprintf("direct %s vs routed %s per query (%+.1f%%)",
			nsStr(directNs), nsStr(routedNs), (routedNs-directNs)/directNs*100),
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("per-shard admission ceiling %d over a %s simulated source round-trip; fresh requester per query (no warehouse, no coalescing, fresh ledgers)", e24Concurrency, e24Delay),
		"closed-loop clients: each issues its next query only after the previous answer; speedup is against the single-shard row",
		"acceptance: ≥2.5x at 4 shards — the tier must buy real capacity, not just a hop")

	if s, measured := speedupAt[4]; measured && len(shardCounts) > 1 && s < 2.5 {
		return nil, fmt.Errorf("experiments: E24 speedup at 4 shards is %.2fx, want >= 2.5x (routing tier failed its acceptance bar)", s)
	}
	return t, nil
}

// e24Overhead times one sequential client against a single shard,
// direct vs through the router. Returns ns/query for each.
func e24Overhead(queries int) (directNs, routedNs float64, err error) {
	srv, med, err := e24Shard("shard-0", []string{"shard-0"}, 8)
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	defer med.Close()
	rt, err := shard.NewRouter(shard.RouterConfig{
		Shards:         []shard.Backend{{Name: "shard-0", URL: srv.URL}},
		Seed:           shard.DefaultSeed,
		Retry:          resilience.Policy{MaxAttempts: 1},
		DisableBreaker: true,
		Client:         e24Transport(),
	})
	if err != nil {
		return 0, 0, err
	}
	defer rt.Close()
	rtSrv := httptest.NewServer(rt.Handler())
	defer rtSrv.Close()

	httpc := e24Transport()
	run := func(base, prefix string) (float64, error) {
		start := time.Now()
		for q := 0; q < queries; q++ {
			code, body, err := e24Post(httpc, base, fmt.Sprintf("%s-%04d", prefix, q))
			if err != nil {
				return 0, err
			}
			if code != http.StatusOK {
				return 0, fmt.Errorf("overhead probe answered %d: %s", code, body)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(queries), nil
	}
	if directNs, err = run(srv.URL, "direct"); err != nil {
		return 0, 0, fmt.Errorf("experiments: E24 direct: %w", err)
	}
	if routedNs, err = run(rtSrv.URL, "routed"); err != nil {
		return 0, 0, fmt.Errorf("experiments: E24 routed: %w", err)
	}
	return directNs, routedNs, nil
}

// --- Bench-guard metrics for the router hot path ---------------------------

// routerLookupNs times the ring placement every routed query pays: one
// Lookup on a five-shard ring at default vnodes. A lookup is a few
// hundred nanoseconds, where frequency scaling and cache state swing
// individual timings well past the guard's tolerance, so each sample
// is already the minimum over several inner rounds. Returns ns/lookup.
func routerLookupNs() (float64, error) {
	ring := shard.New(shard.DefaultSeed, 0)
	for i := 0; i < 5; i++ {
		if err := ring.Add(fmt.Sprintf("shard-%d", i)); err != nil {
			return 0, err
		}
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("requester-%04d", i)
	}
	const reps, rounds = 8, 16
	best := 0.0
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, k := range keys {
				if _, err := ring.Lookup(k); err != nil {
					return 0, err
				}
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(reps*len(keys))
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// routerProxyNs times the full proxy hop against a trivial shard: HTTP
// in, ring lookup, HTTP out, passthrough back. Returns ns/query. The
// shard answers instantly, so this is the router's own cost.
func routerProxyNs(queries int) (float64, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<integrated></integrated>"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rt, err := shard.NewRouter(shard.RouterConfig{
		Shards:         []shard.Backend{{Name: "only", URL: srv.URL}},
		Seed:           shard.DefaultSeed,
		Retry:          resilience.Policy{MaxAttempts: 1},
		DisableBreaker: true,
		Client:         e24Transport(),
	})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	rtSrv := httptest.NewServer(rt.Handler())
	defer rtSrv.Close()
	httpc := e24Transport()
	// Warm the connections out of the measurement.
	if _, _, err := e24Post(httpc, rtSrv.URL, "warm"); err != nil {
		return 0, err
	}
	start := time.Now()
	for q := 0; q < queries; q++ {
		code, body, err := e24Post(httpc, rtSrv.URL, fmt.Sprintf("guard-%04d", q))
		if err != nil {
			return 0, err
		}
		if code != http.StatusOK {
			return 0, fmt.Errorf("proxy probe answered %d: %s", code, body)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(queries), nil
}
