package experiments

import (
	"fmt"
	"strconv"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/optimizer"
	"privateiye/internal/piql"
	"privateiye/internal/preserve"
	"privateiye/internal/stats"
)

// E16PlacementAblation measures the optimizer's preservation-placement
// decision: a row-reducing technique (sampling) placed before vs after
// filtering, and a row-preserving one (generalization) likewise. The
// planner picks early placement only for row-reducing techniques; this
// experiment verifies that rule against wall-clock reality.
func E16PlacementAblation(rows int) (*Table, error) {
	g := clinical.NewGenerator(21)
	tab, err := g.Patients("p", rows, 4)
	if err != nil {
		return nil, err
	}
	res := &piql.Result{Columns: []string{"age", "zip", "sex"}}
	for _, row := range tab.Rows() {
		res.Rows = append(res.Rows, []string{row[3].String(), row[4].String(), row[2].String()})
	}
	// The "filter": keep rows with age > 80 (selectivity ~0.13).
	filter := func(in *piql.Result) *piql.Result {
		out := &piql.Result{Columns: in.Columns}
		for _, r := range in.Rows {
			if v, err := strconv.Atoi(r[0]); err == nil && v > 80 {
				out.Rows = append(out.Rows, r)
			}
		}
		return out
	}
	measure := func(tech preserve.Technique, early bool) (time.Duration, int, error) {
		rng := stats.NewRand(5)
		start := time.Now()
		var out *piql.Result
		var err error
		if early {
			out, err = tech.Apply(res, rng)
			if err == nil {
				out = filter(out)
			}
		} else {
			out = filter(res)
			out, err = tech.Apply(out, rng)
		}
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), len(out.Rows), nil
	}

	t := &Table{
		Title:  "E16: preservation placement ablation (technique before vs after filtering)",
		Header: []string{"technique", "placement", "time", "rows out", "planner's choice"},
	}
	q := piql.MustParse("FOR //p/row WHERE //age > 80 RETURN //age, //zip, //sex")
	for _, tc := range []struct {
		name string
		tech preserve.Technique
	}{
		{"sample(10%)", preserve.RandomSample{P: 0.1}},
		{"generalize(zip@2)", preserve.Generalize{Column: "zip", Hierarchy: preserve.ZipHierarchy(), Level: 2}},
	} {
		plan, err := optimizer.Optimize(q, tc.tech, optimizer.Stats{Rows: rows}, 1)
		if err != nil {
			return nil, err
		}
		choice := "late"
		if plan.PreserveEarly {
			choice = "early"
		}
		for _, early := range []bool{true, false} {
			el, n, err := measure(tc.tech, early)
			if err != nil {
				return nil, err
			}
			placement := "late"
			if early {
				placement = "early"
			}
			mark := ""
			if placement == choice {
				mark = "<- chosen"
			}
			t.Rows = append(t.Rows, []string{
				tc.name, placement, ms(el), strconv.Itoa(n), mark,
			})
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d input rows; filter selectivity ~13%%", rows))
	return t, nil
}
