package experiments

import (
	"fmt"

	"privateiye/internal/attack"
	"privateiye/internal/clinical"
	"privateiye/internal/nlp"
)

// Paper values of Figure 1(d): inferred intervals for HMO2..HMO4 across
// the three tests, as printed in the paper.
var PaperFig1d = [3][3][2]float64{
	{{87.2, 88.5}, {58.6, 59.8}, {46.8, 47.9}}, // HMO2
	{{82.8, 86.4}, {48.1, 52.3}, {44.5, 47.2}}, // HMO3
	{{82.9, 86.7}, {48.6, 53.1}, {44.5, 47.4}}, // HMO4
}

// Fig1a regenerates Figure 1(a): per-test mean compliance and standard
// deviation, computed by the integrator from the hidden matrix and
// rounded for publication.
func Fig1a() (*Table, error) {
	pub, err := clinical.PublishFromMatrix(clinical.Figure1GroundTruth(), 1)
	if err != nil {
		return nil, err
	}
	paper := clinical.Figure1Published()
	t := &Table{
		Title:  "E1 / Figure 1(a): test compliance aggregates (measured vs paper)",
		Header: []string{"Test", "AvgCompliance", "paper", "StdDev", "paper"},
	}
	for i, name := range clinical.Tests {
		t.Rows = append(t.Rows, []string{
			name,
			f1(pub.TestMean[i]) + "%", f1(paper.TestMean[i]) + "%",
			f1(pub.TestSigma[i]) + "%", f1(paper.TestSigma[i]) + "%",
		})
	}
	return t, nil
}

// Fig1b regenerates Figure 1(b)/(c)'s per-HMO average performance row.
func Fig1b() (*Table, error) {
	pub, err := clinical.PublishFromMatrix(clinical.Figure1GroundTruth(), 1)
	if err != nil {
		return nil, err
	}
	paper := clinical.Figure1Published()
	t := &Table{
		Title:  "E2 / Figure 1(b): per-HMO average performance (measured vs paper)",
		Header: []string{"HMO", "AvgPerformance", "paper"},
	}
	for i, name := range clinical.HMOs {
		t.Rows = append(t.Rows, []string{name, f1(pub.HMOMean[i]) + "%", f1(paper.HMOMean[i]) + "%"})
	}
	return t, nil
}

// Fig1c renders Figure 1(c): everything the snooping HMO1 knows.
func Fig1c() (*Table, error) {
	paper := clinical.Figure1Published()
	own := clinical.Figure1HMO1Row()
	t := &Table{
		Title:  "E3 / Figure 1(c): information known to snooping HMO1",
		Header: []string{"Test", "HMO1(own)", "HMO2", "HMO3", "HMO4", "Avg", "Sigma"},
	}
	for i, name := range clinical.Tests {
		t.Rows = append(t.Rows, []string{
			name, f1(own[i]) + "%", "?", "?", "?",
			f1(paper.TestMean[i]) + "%", f1(paper.TestSigma[i]) + "%",
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("plus per-HMO averages %v%%", paper.HMOMean))
	return t, nil
}

// Fig1dResult carries the attack output for programmatic checks.
type Fig1dResult struct {
	Table *Table
	// Intervals[h][a] for h in HMO2..4.
	Intervals [3][3]nlp.Interval
	// MaxAbsDiff is the largest |bound - paper bound| over all 18 bounds.
	MaxAbsDiff float64
}

// Fig1d runs the snooping attack and compares every inferred interval
// with the paper's. full selects the calibrated solver settings (slower,
// tighter); !full uses the fast settings.
func Fig1d(full bool) (*Fig1dResult, error) {
	k := attack.FromPublished(clinical.Figure1Published(), 0, clinical.Figure1HMO1Row())
	k.Tolerance = 0.025 // calibrated; see EXPERIMENTS.md E4
	opts := attack.FastOptions()
	if full {
		opts = attack.DefaultOptions()
	}
	inf, err := k.Infer(opts)
	if err != nil {
		return nil, err
	}
	out := &Fig1dResult{
		Table: &Table{
			Title:  "E4 / Figure 1(d): intervals inferred by snooping HMO1 (measured vs paper)",
			Header: []string{"HMO", "Test", "inferred", "paper", "|Δlo|", "|Δhi|"},
		},
	}
	for h := 0; h < 3; h++ {
		for a := 0; a < 3; a++ {
			iv := inf.Intervals[h+1][a]
			out.Intervals[h][a] = iv
			p := PaperFig1d[h][a]
			dlo := abs(iv.Lo - p[0])
			dhi := abs(iv.Hi - p[1])
			if dlo > out.MaxAbsDiff {
				out.MaxAbsDiff = dlo
			}
			if dhi > out.MaxAbsDiff {
				out.MaxAbsDiff = dhi
			}
			out.Table.Rows = append(out.Table.Rows, []string{
				clinical.HMOs[h+1], clinical.Tests[a],
				fmt.Sprintf("[%s, %s]", f1(iv.Lo), f1(iv.Hi)),
				fmt.Sprintf("[%s, %s]", f1(p[0]), f1(p[1])),
				f2(dlo), f2(dhi),
			})
		}
	}
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("max |bound - paper| = %.2f percentage points", out.MaxAbsDiff),
		fmt.Sprintf("max disclosure = %.3f of a 100-point prior", inf.MaxDisclosure()))
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
