package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"privateiye/internal/psi"
)

// E25PSISuites measures what the elliptic-curve PSI suite buys over the
// safe-prime group it replaces as the default: cold-start blinding (a
// fresh party, no precomputation table — the cost a new field pays on
// its first overlap estimate), warm blinding (table hits), a full
// two-party Intersect round, and the canonical wire width per element.
//
// The table is also the acceptance gate for the suite work: the run
// FAILS (returns an error, which piye-bench turns into exit 1) unless
// p256 cold blinding is at least 5x faster than modp2048 at every size,
// a p256 element encodes to at most 35 bytes, and the wire-width ratio
// is at least 7x. A refactor that quietly falls back to big.Int paths
// or fattens the encoding cannot pass.
//
// modp2048 cold rows are measured on a subsample of at most modpCap
// items and reported per item: at ~2ms per 2048-bit exponentiation a
// full 10k cold round would dominate the whole harness, and per-item
// cost is flat in n (each item is one independent exponentiation), so
// the subsample is an honest estimator. The notes disclose the cap.
func E25PSISuites(sizes []int, modpCap int) (*Table, error) {
	if modpCap <= 0 {
		modpCap = 256
	}
	ec := psi.P256Suite()
	mp := psi.ModPSuite(psi.DefaultGroup())
	t := &Table{
		Title:  "E25: PSI suite kernels — p256 vs modp2048 (cold/warm blind, intersect, wire width)",
		Header: []string{"suite", "items", "blind cold/item", "blind warm/item", "intersect", "wire B/elem"},
	}

	for _, n := range sizes {
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("patient-%d", i)
		}
		coldNs := map[string]float64{}
		for _, spec := range []struct {
			suite psi.Suite
			m     int
		}{
			{ec, n},
			{mp, min(n, modpCap)},
		} {
			s, m := spec.suite, spec.m
			sub := items[:m]

			// Cold: a fresh party's first blind over the column.
			p, err := psi.NewParty(s, rand.Reader)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			p.BlindBatch(sub)
			cold := float64(time.Since(start).Nanoseconds()) / float64(m)
			// Warm: same party, same column — precomputation-table hits.
			start = time.Now()
			p.BlindBatch(sub)
			warm := float64(time.Since(start).Nanoseconds()) / float64(m)
			coldNs[s.Name()] = cold

			// Full protocol round with a half-overlapping peer set, so
			// the timing also re-checks correctness.
			a, err := psi.NewParty(s, rand.Reader)
			if err != nil {
				return nil, err
			}
			b, err := psi.NewParty(s, rand.Reader)
			if err != nil {
				return nil, err
			}
			peer := make([]string, m)
			copy(peer, sub[m/2:])
			for i := m - m/2; i < m; i++ {
				peer[i] = fmt.Sprintf("other-%d", i)
			}
			start = time.Now()
			idx, err := psi.Intersect(a, b, sub, peer)
			if err != nil {
				return nil, err
			}
			dInt := time.Since(start)
			if want := m - m/2; len(idx) != want {
				return nil, fmt.Errorf("experiments: E25 %s intersect returned %d of %d expected matches", s.Name(), len(idx), want)
			}

			label := fmt.Sprintf("%d", m)
			if m < n {
				label = fmt.Sprintf("%d of %d", m, n)
			}
			t.Rows = append(t.Rows, []string{
				s.Name(), label, nsStr(cold), nsStr(warm), ms(dInt),
				fmt.Sprintf("%d", s.ElementSize()),
			})
		}
		ratio := coldNs[mp.Name()] / coldNs[ec.Name()]
		t.Rows = append(t.Rows, []string{
			"p256 speedup", fmt.Sprintf("%d", n), fmt.Sprintf("%.1fx", ratio), "", "", "",
		})
		if ratio < 5 {
			return nil, fmt.Errorf("experiments: E25 FAIL at %d items: p256 cold blind only %.1fx faster than modp2048 (acceptance floor 5x)", n, ratio)
		}
	}

	if ec.ElementSize() > 35 {
		return nil, fmt.Errorf("experiments: E25 FAIL: p256 element encodes to %d bytes (acceptance ceiling 35)", ec.ElementSize())
	}
	if wireRatio := float64(mp.ElementSize()) / float64(ec.ElementSize()); wireRatio < 7 {
		return nil, fmt.Errorf("experiments: E25 FAIL: wire-width ratio %.1fx below acceptance floor 7x", wireRatio)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("modp2048 measured on at most %d items (per-item cost is flat in n; a full cold 2048-bit round would dominate the harness)", modpCap),
		fmt.Sprintf("wire width is the canonical binary encoding: %d B compressed point vs %d B group element (%.1fx); the XML envelope carries it hex-encoded, preserving the ratio", ec.ElementSize(), mp.ElementSize(), float64(mp.ElementSize())/float64(ec.ElementSize())),
		"acceptance gate: p256 cold blind >=5x faster, <=35 B/elem, >=7x wire ratio — violating any returns an error")
	return t, nil
}
