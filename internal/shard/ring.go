// Package shard partitions the mediator tier by requester. Every piece
// of inference-control state the paper's controls consume — the release
// ledger, the audit history, the loss budgets — is keyed by requester,
// so the tier decomposes shared-nothing along exactly that key: a
// requester's entire control state lives on one shard, and routing the
// requester anywhere else could only ever weaken a refusal (a shard that
// has not seen your releases cannot refuse their combination). The Ring
// here makes that placement deterministic; the Router (router.go)
// enforces it in front of the shards; the mediator's ownership gate
// (internal/mediator/shard.go) enforces it fail-closed behind them.
//
// The ring is rendezvous hashing (highest random weight) over seeded
// virtual node identities: each member contributes Vnodes virtual
// points, a key's score against a member is the best hash over that
// member's points, and the member with the highest score owns the key.
// Rendezvous placement gives the two properties the property tests pin:
//
//   - Balance: each key is independently, uniformly assigned, so load
//     across N shards concentrates tightly around 1/N.
//   - Minimal disruption: removing a member moves exactly the keys it
//     owned (their second choice becomes first), and adding one moves
//     exactly the keys the newcomer now wins — never a third party's.
//
// Placement is a pure function of (seed, member names, key): every
// router and every shard configured with the same seed and peer list
// computes identical ownership with no coordination, which is what lets
// the mediator verify the router's routing instead of trusting it.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrEmptyRing is returned by lookups when no member can own the key —
// the ring has no members, or every member is draining/excluded.
var ErrEmptyRing = errors.New("shard: no members in the ring")

// DefaultSeed is the placement seed the daemons default to. Any seed
// works; this one is pinned because the property tests verify the
// balance and disruption bounds against it (TestRingBalance), so a
// deployment on the default seed runs the exact placement the tests
// measured. Every router and shard in one tier must share the seed.
const DefaultSeed = 58

// DefaultVnodes is the virtual node count per member when a Ring is
// built with vnodes <= 0. More points sharpen nothing for rendezvous
// balance (each key is uniform regardless), but they decorrelate the
// per-member hash streams cheaply, and 16 keeps Lookup a few dozen
// hashes even at 8 shards.
const DefaultVnodes = 16

// Member is one shard in the ring, with its drain state.
type Member struct {
	Name     string `json:"name"`
	Draining bool   `json:"draining"`
}

// Ring is a seeded rendezvous-hash ring. All methods are safe for
// concurrent use; lookups take a read lock only.
type Ring struct {
	seed   uint64
	vnodes int

	mu      sync.RWMutex
	members map[string]*memberState
}

type memberState struct {
	draining bool
	// points are the member's precomputed virtual node identities:
	// splitmix64(seed ^ hash(name) ^ vnode index). Lookup mixes the
	// key's hash into each and keeps the best, so the per-key score is
	// independent across members and across vnode indices.
	points []uint64
}

// New returns an empty ring with the given placement seed. Two rings
// with the same seed and members agree on every lookup; changing the
// seed reshuffles placement wholesale (a deliberate operation, never an
// accident — the seed is configuration, not state).
func New(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{seed: seed, vnodes: vnodes, members: map[string]*memberState{}}
}

// Seed returns the placement seed the ring was built with.
func (r *Ring) Seed() uint64 { return r.seed }

// Add inserts a member. Adding a name that is already present is a
// no-op (idempotent join — a retried membership change must not mint
// duplicate virtual nodes), preserving its drain state.
func (r *Ring) Add(name string) error {
	if name == "" {
		return fmt.Errorf("shard: member name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; ok {
		return nil
	}
	ms := &memberState{points: make([]uint64, r.vnodes)}
	base := r.seed ^ hash64(name)
	for i := range ms.points {
		ms.points[i] = splitmix64(base ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	r.members[name] = ms
	return nil
}

// Remove deletes a member; unknown names are a no-op.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.members, name)
}

// SetDraining marks a member draining (or clears the mark). Draining
// members stay in the ring — full-ring ownership must not move during a
// drain, or every shard's ownership check would disagree with the
// requesters already placed — but LookupActive routes around them.
func (r *Ring) SetDraining(name string, draining bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms, ok := r.members[name]
	if !ok {
		return fmt.Errorf("shard: unknown member %q", name)
	}
	ms.draining = draining
	return nil
}

// Members lists the ring's members sorted by name.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for name, ms := range r.members {
		out = append(out, Member{Name: name, Draining: ms.draining})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the key's owner over the full membership, draining
// members included: ownership is a stable fact about where the key's
// state lives, and draining must not rewrite it.
func (r *Ring) Lookup(key string) (string, error) {
	return r.lookup(key, nil)
}

// LookupActive returns the key's owner with draining members excluded —
// where the router sends a requester that the full-ring owner refused
// to take on (a draining shard shedding ownership of new requesters).
func (r *Ring) LookupActive(key string) (string, error) {
	return r.lookup(key, func(ms *memberState) bool { return ms.draining })
}

// LookupExcluding returns the key's owner with the named members
// excluded. The mediator's ownership gate uses it to verify a router's
// drain re-route: given the drained set the router asserted, would this
// shard be the owner?
func (r *Ring) LookupExcluding(key string, excluded []string) (string, error) {
	if len(excluded) == 0 {
		return r.lookup(key, nil)
	}
	ex := make(map[string]bool, len(excluded))
	for _, name := range excluded {
		ex[name] = true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best uint64
	owner := ""
	kh := hash64(key)
	for name, ms := range r.members {
		if ex[name] {
			continue
		}
		if s := ms.score(kh); owner == "" || s > best || (s == best && name < owner) {
			best, owner = s, name
		}
	}
	if owner == "" {
		return "", ErrEmptyRing
	}
	return owner, nil
}

func (r *Ring) lookup(key string, skip func(*memberState) bool) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best uint64
	owner := ""
	kh := hash64(key)
	for name, ms := range r.members {
		if skip != nil && skip(ms) {
			continue
		}
		// Ties break by name so the winner is well defined even in the
		// astronomically unlikely event of equal 64-bit scores.
		if s := ms.score(kh); owner == "" || s > best || (s == best && name < owner) {
			best, owner = s, name
		}
	}
	if owner == "" {
		return "", ErrEmptyRing
	}
	return owner, nil
}

// score is the member's rendezvous weight for a key: the best mix of
// the key hash over the member's virtual points.
func (ms *memberState) score(keyHash uint64) uint64 {
	var best uint64
	for _, p := range ms.points {
		if v := splitmix64(p ^ keyHash); v > best {
			best = v
		}
	}
	return best
}

// hash64 is FNV-1a over the string: cheap, allocation-free, and good
// enough as input to the splitmix64 finalizer (which supplies the
// avalanche FNV lacks).
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer (same as the resilience
// layer's jitter): full avalanche, no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
