package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// requesters returns n deterministic requester identities. The shard
// property tests never touch wall-clock or crypto randomness: the same
// keys, the same seed, the same verdict, every run.
func requesters(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("requester-%04d", i)
	}
	return out
}

func ringOf(t *testing.T, seed uint64, names ...string) *Ring {
	t.Helper()
	r := New(seed, 0)
	for _, n := range names {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%c", 'a'+i)
	}
	return out
}

func owners(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		o, err := r.Lookup(k)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", k, err)
		}
		out[k] = o
	}
	return out
}

// TestRingBalance pins the balance property: over 1000 simulated
// requesters, every shard's load stays within 15% of the ideal 1/N at
// 3, 5 and 8 shards. Rendezvous placement assigns each key
// independently and uniformly, so load is multinomial around the ideal;
// the fixed seed makes the exact counts reproducible, and the 15% bound
// is the contract the router tier is sized against.
func TestRingBalance(t *testing.T) {
	const nKeys = 1000
	keys := requesters(nKeys)
	for _, nShards := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%dshards", nShards), func(t *testing.T) {
			r := ringOf(t, DefaultSeed, shardNames(nShards)...)
			counts := map[string]int{}
			for _, owner := range owners(t, r, keys) {
				counts[owner]++
			}
			ideal := float64(nKeys) / float64(nShards)
			for _, name := range shardNames(nShards) {
				got := counts[name]
				dev := (float64(got) - ideal) / ideal
				if dev < 0 {
					dev = -dev
				}
				t.Logf("%s: %d keys (ideal %.1f, deviation %.1f%%)", name, got, ideal, dev*100)
				if dev > 0.15 {
					t.Errorf("%s owns %d of %d keys: %.1f%% off the ideal %.1f (bound 15%%)",
						name, got, nKeys, dev*100, ideal)
				}
				if got == 0 {
					t.Errorf("%s owns no keys", name)
				}
			}
		})
	}
}

// TestRingMinimalDisruptionOnRemove pins the rendezvous guarantee
// exactly: removing one shard moves precisely the keys it owned (each
// key's runner-up becomes its owner) and not one key more, and that
// moved set is ~1/N of all keys.
func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	keys := requesters(1000)
	for _, nShards := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%dshards", nShards), func(t *testing.T) {
			names := shardNames(nShards)
			r := ringOf(t, DefaultSeed, names...)
			before := owners(t, r, keys)
			removed := names[nShards-1]
			r.Remove(removed)
			after := owners(t, r, keys)

			moved := 0
			for _, k := range keys {
				if before[k] == removed {
					moved++
					if after[k] == removed {
						t.Fatalf("key %q still owned by removed shard %s", k, removed)
					}
					continue
				}
				if after[k] != before[k] {
					t.Errorf("key %q moved %s -> %s though %s was not its owner (disruption not minimal)",
						k, before[k], after[k], removed)
				}
			}
			frac := float64(moved) / float64(len(keys))
			ideal := 1.0 / float64(nShards)
			t.Logf("removing %s moved %d/%d keys (%.1f%%, ideal %.1f%%)", removed, moved, len(keys), frac*100, ideal*100)
			// The moved fraction is exactly the removed shard's load,
			// which the balance test bounds at ideal±15%; re-pin it here
			// so this test stands alone.
			if frac < ideal*0.85 || frac > ideal*1.15 {
				t.Errorf("removal moved %.1f%% of keys, want ~1/N = %.1f%% (±15%%)", frac*100, ideal*100)
			}
		})
	}
}

// TestRingMinimalDisruptionOnAdd pins the mirror property: adding a
// shard moves only the keys the newcomer wins — every moved key moves
// TO the new shard — and the moved set is ~1/(N+1).
func TestRingMinimalDisruptionOnAdd(t *testing.T) {
	keys := requesters(1000)
	for _, nShards := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%dshards", nShards), func(t *testing.T) {
			names := shardNames(nShards)
			r := ringOf(t, DefaultSeed, names...)
			before := owners(t, r, keys)
			const added = "shard-new"
			if err := r.Add(added); err != nil {
				t.Fatal(err)
			}
			after := owners(t, r, keys)

			moved := 0
			for _, k := range keys {
				if after[k] == before[k] {
					continue
				}
				moved++
				if after[k] != added {
					t.Errorf("key %q moved %s -> %s on add: only the new shard may win keys",
						k, before[k], after[k])
				}
			}
			frac := float64(moved) / float64(len(keys))
			ideal := 1.0 / float64(nShards+1)
			t.Logf("adding %s moved %d/%d keys (%.1f%%, ideal %.1f%%)", added, moved, len(keys), frac*100, ideal*100)
			if frac < ideal*0.85 || frac > ideal*1.15 {
				t.Errorf("add moved %.1f%% of keys, want ~1/(N+1) = %.1f%% (±15%%)", frac*100, ideal*100)
			}
		})
	}
}

// TestRingSeededPlacementIsDeterministic: placement is a pure function
// of (seed, membership, key) — insertion order must not matter, and two
// independently built rings (a router's and a shard's) must agree on
// every key. A different seed must reshuffle.
func TestRingSeededPlacementIsDeterministic(t *testing.T) {
	keys := requesters(300)
	forward := ringOf(t, 7, "a", "b", "c", "d", "e")
	reverse := ringOf(t, 7, "e", "d", "c", "b", "a")
	other := ringOf(t, 8, "a", "b", "c", "d", "e")
	differs := 0
	for _, k := range keys {
		fo, err := forward.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := reverse.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if fo != ro {
			t.Fatalf("insertion order changed placement of %q: %s vs %s", k, fo, ro)
		}
		oo, err := other.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if oo != fo {
			differs++
		}
	}
	if differs == 0 {
		t.Error("changing the seed reshuffled nothing; placement ignores the seed")
	}
}

// TestRingDraining: LookupActive never lands on a draining member, only
// the draining member's keys move, and they come back when the drain is
// cleared. Full-ring Lookup must keep answering the draining member —
// drain must not rewrite ownership.
func TestRingDraining(t *testing.T) {
	keys := requesters(500)
	r := ringOf(t, 1, "a", "b", "c")
	before := owners(t, r, keys)
	if err := r.SetDraining("b", true); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		full, err := r.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if full != before[k] {
			t.Fatalf("drain rewrote full-ring ownership of %q: %s -> %s", k, before[k], full)
		}
		active, err := r.LookupActive(k)
		if err != nil {
			t.Fatal(err)
		}
		if active == "b" {
			t.Fatalf("LookupActive(%q) landed on the draining shard", k)
		}
		if before[k] != "b" && active != before[k] {
			t.Fatalf("drain of b moved %q owned by %s", k, before[k])
		}
		// The drain-adjusted owner must equal what the mediator's gate
		// computes from the drained set — the two sides of the re-route
		// handshake share one function.
		excl, err := r.LookupExcluding(k, []string{"b"})
		if err != nil {
			t.Fatal(err)
		}
		if excl != active {
			t.Fatalf("LookupExcluding disagrees with LookupActive for %q: %s vs %s", k, excl, active)
		}
	}
	if err := r.SetDraining("b", false); err != nil {
		t.Fatal(err)
	}
	for k, o := range owners(t, r, keys) {
		if o != before[k] {
			t.Fatalf("undrain did not restore ownership of %q", k)
		}
	}
	if err := r.SetDraining("nope", true); err == nil {
		t.Error("SetDraining on an unknown member should error")
	}
}

// TestRingEdgeCases covers the states the fuzz target hammers: empty
// ring, every-member-draining, single member, duplicate adds.
func TestRingEdgeCases(t *testing.T) {
	r := New(1, 4)
	if _, err := r.Lookup("x"); err != ErrEmptyRing {
		t.Fatalf("empty ring Lookup err = %v, want ErrEmptyRing", err)
	}
	if err := r.Add(""); err == nil {
		t.Fatal("empty member name should be rejected")
	}
	if err := r.Add("only"); err != nil {
		t.Fatal(err)
	}
	if o, err := r.Lookup("anything"); err != nil || o != "only" {
		t.Fatalf("single-member lookup = %q, %v", o, err)
	}
	if err := r.Add("only"); err != nil {
		t.Fatalf("duplicate Add should be a no-op, got %v", err)
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("duplicate Add grew the ring to %d", n)
	}
	if err := r.SetDraining("only", true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LookupActive("anything"); err != ErrEmptyRing {
		t.Fatalf("all-draining LookupActive err = %v, want ErrEmptyRing", err)
	}
	if o, err := r.Lookup("anything"); err != nil || o != "only" {
		t.Fatalf("full-ring lookup must still see the draining member: %q, %v", o, err)
	}
	r.Remove("only")
	r.Remove("only") // no-op
	if _, err := r.Lookup("x"); err != ErrEmptyRing {
		t.Fatalf("post-remove Lookup err = %v", err)
	}
}

// TestRingConcurrentChurn drives lookups against concurrent membership
// changes under the race detector: every lookup must return a member
// that existed at some point (or ErrEmptyRing), never panic, never a
// torn read. Seeded rand keeps the schedule reproducible per goroutine.
func TestRingConcurrentChurn(t *testing.T) {
	r := ringOf(t, 1, "a", "b", "c")
	valid := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			name := string(rune('a' + rng.Intn(5)))
			switch rng.Intn(3) {
			case 0:
				_ = r.Add(name)
			case 1:
				// Keep at least one stable member so lookups stay owned.
				if name != "a" {
					r.Remove(name)
				}
			default:
				_ = r.SetDraining(name, rng.Intn(2) == 0)
			}
		}
	}()
	keys := requesters(50)
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		o, err := r.Lookup(keys[i%len(keys)])
		if err != nil {
			t.Fatalf("lookup with a stable member returned %v", err)
		}
		if !valid[o] {
			t.Fatalf("lookup returned non-member %q", o)
		}
	}
}
