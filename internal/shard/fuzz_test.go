package shard

import (
	"strings"
	"testing"
)

// FuzzRingLookup hammers the ring with arbitrary requester strings and
// a fuzzer-chosen membership-churn script, interleaving lookups with
// add/remove/drain operations (including concurrently, to model the
// router's health loop changing membership mid-lookup). The invariants:
// no panic on any input, lookups return either a live member or
// ErrEmptyRing (never a ghost, never an empty name with a nil error),
// and duplicate adds never inflate membership.
func FuzzRingLookup(f *testing.F) {
	// Seed corpus: the edge cases the unit tests name — empty ring,
	// single member, duplicate peer, drain-everything, empty key.
	f.Add("requester-1", "")            // no members at all
	f.Add("", "a")                      // empty key, one member
	f.Add("requester-2", "aa")          // duplicate peer
	f.Add("requester-3", "abc")         // three members
	f.Add("requester-4", "aAbBcC")      // add then drain each
	f.Add("requester-5", "abcXYZ")      // add three, remove three
	f.Add("req\x00binary\xff", "aXbYc") // churn with binary key
	f.Add(strings.Repeat("r", 1024), "abcdefgh")

	f.Fuzz(func(t *testing.T, key, script string) {
		r := New(DefaultSeed, 4)
		live := map[string]bool{}
		// The script is a byte program: lowercase adds a member named by
		// the letter, uppercase removes its lowercase twin, digits toggle
		// drain on a member picked by value. A lookup runs after every
		// op, so the fuzzer explores lookups against every intermediate
		// membership state.
		for _, b := range []byte(script) {
			switch {
			case b >= 'a' && b <= 'z':
				name := string(b)
				if err := r.Add(name); err != nil {
					t.Fatalf("Add(%q): %v", name, err)
				}
				live[name] = true
			case b >= 'A' && b <= 'Z':
				name := string(b - 'A' + 'a')
				r.Remove(name)
				delete(live, name)
			case b >= '0' && b <= '9':
				name := string(b - '0' + 'a')
				// Draining an unknown member must error, not panic.
				err := r.SetDraining(name, b%2 == 0)
				if live[name] && err != nil {
					t.Fatalf("SetDraining(%q) on live member: %v", name, err)
				}
				if !live[name] && err == nil {
					t.Fatalf("SetDraining(%q) on absent member succeeded", name)
				}
			}
			checkLookup(t, r, key, live)
			checkLookup(t, r, script, live)
		}
		if r.Len() != len(live) {
			t.Fatalf("ring has %d members, script built %d (duplicate add inflated membership?)", r.Len(), len(live))
		}
		checkLookup(t, r, key, live)
	})
}

func checkLookup(t *testing.T, r *Ring, key string, live map[string]bool) {
	t.Helper()
	owner, err := r.Lookup(key)
	if len(live) == 0 {
		if err != ErrEmptyRing {
			t.Fatalf("Lookup(%q) on empty ring: owner %q, err %v (want ErrEmptyRing)", key, owner, err)
		}
		return
	}
	if err != nil {
		t.Fatalf("Lookup(%q) with %d members: %v", key, len(live), err)
	}
	if !live[owner] {
		t.Fatalf("Lookup(%q) returned %q, not a live member", key, owner)
	}
	// Determinism: the same ring answers the same owner twice in a row.
	again, err := r.Lookup(key)
	if err != nil || again != owner {
		t.Fatalf("Lookup(%q) unstable: %q then %q (err %v)", key, owner, again, err)
	}
	// The drain-adjusted lookup returns a live non-draining member, or
	// ErrEmptyRing when everything is draining.
	active, err := r.LookupActive(key)
	if err == nil {
		if !live[active] {
			t.Fatalf("LookupActive(%q) returned %q, not a live member", key, active)
		}
	} else if err != ErrEmptyRing {
		t.Fatalf("LookupActive(%q): %v", key, err)
	}
}
