package shard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privateiye/internal/resilience"
)

// fakeShard is an httptest stand-in for one mediator shard: it records
// every /query it receives and answers via a swappable handler.
type fakeShard struct {
	name string
	srv  *httptest.Server

	mu       sync.Mutex
	reqs     []string // requester per received query
	headers  []string // X-Shard-Rerouted-From per received query
	draining bool     // what /shard/status reports
	handler  func(w http.ResponseWriter, r *http.Request)
}

func newFakeShard(t *testing.T, name string) *fakeShard {
	t.Helper()
	f := &fakeShard{name: name}
	f.handler = func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<integrated></integrated>"))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.mu.Lock()
		f.reqs = append(f.reqs, r.Header.Get("X-Requester"))
		f.headers = append(f.headers, r.Header.Get("X-Shard-Rerouted-From"))
		h := f.handler
		f.mu.Unlock()
		h(w, r)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /shard/status", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		draining := f.draining
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"draining":%v}`, f.name, draining)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) setHandler(h func(w http.ResponseWriter, r *http.Request)) {
	f.mu.Lock()
	f.handler = h
	f.mu.Unlock()
}

func (f *fakeShard) setDraining(v bool) {
	f.mu.Lock()
	f.draining = v
	f.mu.Unlock()
}

func (f *fakeShard) requesters() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.reqs...)
}

func (f *fakeShard) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.reqs)
}

func newTestRouter(t *testing.T, shards []*fakeShard, tweak func(*RouterConfig)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := RouterConfig{
		Seed:  DefaultSeed,
		Retry: resilience.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	}
	for _, f := range shards {
		cfg.Shards = append(cfg.Shards, Backend{Name: f.name, URL: f.srv.URL})
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

func routerQuery(t *testing.T, url, requester string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader("FOR //x RETURN //x"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Requester", requester)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestRouterStickiness: every requester lands on exactly one shard,
// repeatedly, and the shard is the one an independently built ring
// (same seed, same names) computes — the contract that lets the
// mediator's ownership gate verify the router's routing.
func TestRouterStickiness(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard-a"), newFakeShard(t, "shard-b"), newFakeShard(t, "shard-c")}
	_, srv := newTestRouter(t, shards, nil)

	ref := New(DefaultSeed, 0)
	byName := map[string]*fakeShard{}
	for _, f := range shards {
		if err := ref.Add(f.name); err != nil {
			t.Fatal(err)
		}
		byName[f.name] = f
	}
	for i := 0; i < 30; i++ {
		requester := fmt.Sprintf("requester-%02d", i)
		want, err := ref.Lookup(requester)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			if status, body := routerQuery(t, srv.URL, requester); status != http.StatusOK {
				t.Fatalf("query %s: %d %s", requester, status, body)
			}
		}
		// All three repeats must be on the reference owner and nowhere else.
		for name, f := range byName {
			for _, got := range f.requesters() {
				if got == requester && name != want {
					t.Fatalf("requester %s landed on %s, ring owner is %s", requester, name, want)
				}
			}
		}
	}
	used := 0
	for _, f := range shards {
		if f.count() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("30 requesters used %d of 3 shards; routing is not spreading", used)
	}
}

// TestRouterPassthrough: refusal semantics survive the hop — a 403
// privacy refusal keeps its status and body, a shed keeps its 429 and
// Retry-After. The router must never rewrite a refusal into a success
// or a 403 into a retryable 503.
func TestRouterPassthrough(t *testing.T) {
	f := newFakeShard(t, "only")
	_, srv := newTestRouter(t, []*fakeShard{f}, nil)

	refusal := "mediator: refusing release: combined with your earlier rate-by-test statistics it would pin hidden rate values"
	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, refusal, http.StatusForbidden)
	})
	status, body := routerQuery(t, srv.URL, "drWho")
	if status != http.StatusForbidden {
		t.Fatalf("privacy refusal arrived as %d, want 403", status)
	}
	if !strings.Contains(body, "combined with your earlier") {
		t.Fatalf("refusal body rewritten: %q", body)
	}
	if got := f.count(); got != 1 {
		t.Fatalf("403 was retried: shard saw %d requests", got)
	}

	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "mediator: rate limit exceeded for requester drWho", http.StatusTooManyRequests)
	})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader("FOR //x RETURN //x"))
	req.Header.Set("X-Requester", "drWho")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed arrived as %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After header lost across the hop")
	}
}

// TestRouterRetriesTransientFailures: a shard that fails once with a
// 500 and then recovers is retried within the same routed query.
func TestRouterRetriesTransientFailures(t *testing.T) {
	f := newFakeShard(t, "only")
	var mu sync.Mutex
	failures := 1
	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("<integrated></integrated>"))
	})
	_, srv := newTestRouter(t, []*fakeShard{f}, nil)
	status, body := routerQuery(t, srv.URL, "drWho")
	if status != http.StatusOK {
		t.Fatalf("retry did not recover: %d %s", status, body)
	}
	if got := f.count(); got != 2 {
		t.Fatalf("shard saw %d attempts, want 2 (one failure + one retry)", got)
	}
}

// TestRouterDrainReroute: the owner answers the draining refusal, the
// router re-routes to the drain-adjusted owner with the drained set
// asserted in X-Shard-Rerouted-From, and the landing shard's answer
// passes through. The refusal is never surfaced to the client.
func TestRouterDrainReroute(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard-a"), newFakeShard(t, "shard-b"), newFakeShard(t, "shard-c")}
	_, srv := newTestRouter(t, []*fakeShard{shards[0], shards[1], shards[2]}, nil)

	ref := New(DefaultSeed, 0)
	byName := map[string]*fakeShard{}
	for _, f := range shards {
		if err := ref.Add(f.name); err != nil {
			t.Fatal(err)
		}
		byName[f.name] = f
	}
	// Find a requester owned by shard-a.
	requester := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("requester-%03d", i)
		if o, _ := ref.Lookup(cand); o == "shard-a" {
			requester = cand
			break
		}
	}
	if requester == "" {
		t.Fatal("no requester owned by shard-a in 1000 candidates")
	}
	adj, err := ref.LookupExcluding(requester, []string{"shard-a"})
	if err != nil {
		t.Fatal(err)
	}

	byName["shard-a"].setHandler(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "mediator: shard shard-a draining: not accepting new requesters", http.StatusServiceUnavailable)
	})
	status, body := routerQuery(t, srv.URL, requester)
	if status != http.StatusOK {
		t.Fatalf("drain re-route failed: %d %s", status, body)
	}
	landed := byName[adj]
	if landed.count() != 1 {
		t.Fatalf("drain-adjusted owner %s saw %d queries, want 1", adj, landed.count())
	}
	landed.mu.Lock()
	hdr := landed.headers[0]
	landed.mu.Unlock()
	if !strings.Contains(hdr, "shard-a") {
		t.Fatalf("re-route did not assert the drained set: X-Shard-Rerouted-From=%q", hdr)
	}
	// The router learned the drain: the next new requester owned by
	// shard-a skips the refused hop... but stateful requesters must
	// still be able to reach shard-a through a direct Lookup, so the
	// ring keeps the member (drain must not rewrite ownership).
	if o, _ := ref.Lookup(requester); o != "shard-a" {
		t.Fatal("full-ring ownership moved on drain")
	}
}

// TestRouterDrainMarksConverge: the health poller mirrors each shard's
// own /shard/status draining flag into the router's ring, so drain
// marks learned from refusal sniffing (or set by another router's
// admin surface) converge with the shards' actual state instead of
// sticking forever.
func TestRouterDrainMarksConverge(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard-a"), newFakeShard(t, "shard-b")}
	rt, _ := newTestRouter(t, shards, func(cfg *RouterConfig) {
		cfg.HealthEvery = 20 * time.Millisecond
	})

	drainMark := func(name string) bool {
		for _, m := range rt.ring.Members() {
			if m.Name == name {
				return m.Draining
			}
		}
		t.Fatalf("member %s missing from ring", name)
		return false
	}
	waitFor := func(name string, want bool, msg string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for drainMark(name) != want {
			if time.Now().After(deadline) {
				t.Fatal(msg)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A drain applied at the shard directly (not through this router's
	// admin surface) is learned by the poller, traffic or no traffic.
	shards[0].setDraining(true)
	waitFor("shard-a", true, "router never learned shard-a's shard-direct drain")

	// And a shard-direct undrain clears the mark. Before the fix a
	// learned mark could only be cleared through this router instance's
	// own /shards/undrain, so a multi-router deployment kept asserting
	// a stale drained set in X-Shard-Rerouted-From forever.
	shards[0].setDraining(false)
	waitFor("shard-a", false, "router kept a stale drain mark after the shard undrained")
}

// TestRouterHealthGate: a shard failing /readyz is refused fast with a
// 503, without burning the retry budget against a dead socket.
func TestRouterHealthGate(t *testing.T) {
	f := newFakeShard(t, "only")
	f.srv.Config.Handler.(*http.ServeMux).HandleFunc("GET /readyz2", func(w http.ResponseWriter, r *http.Request) {})
	dead := newFakeShard(t, "dead")
	deadMux := http.NewServeMux()
	deadMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "replaying wal", http.StatusServiceUnavailable)
	})
	dead.srv.Config.Handler = deadMux

	_, srv := newTestRouter(t, []*fakeShard{f, dead}, func(cfg *RouterConfig) {
		cfg.HealthEvery = 50 * time.Millisecond
	})
	ref := New(DefaultSeed, 0)
	ref.Add("only")
	ref.Add("dead")
	deadReq, okReq := "", ""
	for i := 0; i < 1000 && (deadReq == "" || okReq == ""); i++ {
		cand := fmt.Sprintf("requester-%03d", i)
		if o, _ := ref.Lookup(cand); o == "dead" {
			deadReq = cand
		} else {
			okReq = cand
		}
	}
	status, body := routerQuery(t, srv.URL, deadReq)
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "readiness") {
		t.Fatalf("unhealthy shard: got %d %q, want fast 503", status, body)
	}
	if status, _ := routerQuery(t, srv.URL, okReq); status != http.StatusOK {
		t.Fatalf("healthy shard refused: %d", status)
	}
	if dead.count() != 0 {
		t.Fatalf("router forwarded %d queries to a shard that failed readiness", dead.count())
	}
}

// TestRouterBreaker: a shard that is gone (connection refused) trips
// its breaker after the threshold, and subsequent queries fail fast
// with the circuit-open error instead of re-dialing a dead socket.
func TestRouterBreaker(t *testing.T) {
	f := newFakeShard(t, "only")
	f.srv.Close() // connection refused from the first query on

	rt, srv := newTestRouter(t, []*fakeShard{f}, func(cfg *RouterConfig) {
		cfg.Retry = resilience.Policy{MaxAttempts: 1}
		cfg.Breaker = resilience.BreakerConfig{FailureThreshold: 3, OpenFor: time.Hour}
	})
	for i := 0; i < 3; i++ {
		if status, _ := routerQuery(t, srv.URL, "drWho"); status != http.StatusBadGateway {
			t.Fatalf("dead shard answered %d, want 502", status)
		}
	}
	status, body := routerQuery(t, srv.URL, "drWho")
	if status != http.StatusBadGateway || !strings.Contains(body, "circuit open") {
		t.Fatalf("after threshold: %d %q, want circuit-open 502", status, body)
	}
	if st := rt.byName["only"].breaker.State(); st != "open" {
		t.Fatalf("breaker state %q, want open", st)
	}
}

// TestRouterBreakerIgnoresRefusals pins that a shard answering 4xx —
// a privacy refusal, a requester's own throttle — is proof of health:
// a requester hammering their ledger limit must not be able to open
// the circuit and deny the shard to everyone else.
func TestRouterBreakerIgnoresRefusals(t *testing.T) {
	f := newFakeShard(t, "only")
	f.setHandler(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "release refused: would exceed the disclosure budget when combined", http.StatusForbidden)
	})
	rt, srv := newTestRouter(t, []*fakeShard{f}, func(cfg *RouterConfig) {
		cfg.Retry = resilience.Policy{MaxAttempts: 1}
		cfg.Breaker = resilience.BreakerConfig{FailureThreshold: 2, OpenFor: time.Hour}
	})
	for i := 0; i < 5; i++ {
		if status, _ := routerQuery(t, srv.URL, "snooper"); status != http.StatusForbidden {
			t.Fatalf("refusal %d answered %d, want 403 passthrough", i, status)
		}
	}
	if st := rt.byName["only"].breaker.State(); st != "closed" {
		t.Fatalf("breaker state %q after five refusals, want closed", st)
	}
}
