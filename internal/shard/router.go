package shard

// The router is the tier's front door: it terminates /query, hashes the
// requester onto the ring, and proxies to the owning shard through the
// same resilience stack the mediator uses against its sources — retry
// with backoff honoring Retry-After, a per-shard circuit breaker, and
// health-gated membership via each shard's /readyz. Refusal semantics
// survive the hop untouched: a 403 privacy refusal stays 403 with its
// body verbatim (the Figure 1 refusal message is part of the system's
// interface), and capacity sheds keep their 429/503 + Retry-After.
//
// The one piece of routing the router decides on its own is the drain
// re-route: a draining shard refuses requesters it holds no state for
// (a "draining: not accepting" 503), and the router re-routes those to
// the drain-adjusted owner, asserting the drained set in the
// X-Shard-Rerouted-From header. The landing shard VERIFIES the
// assertion rather than trusting it: it recomputes placement on its
// own ring AND confirms each claimed shard is draining against that
// shard's own /shard/status — see internal/mediator/shard.go and
// DESIGN.md §13.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"privateiye/internal/obs"
	"privateiye/internal/resilience"
)

// Backend names one shard and its base URL.
type Backend struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Shards is the tier membership; every entry joins the ring.
	Shards []Backend
	// Seed and Vnodes must match every shard's ShardConfig, or the
	// router's placement disagrees with the shards' ownership gates.
	Seed   uint64
	Vnodes int
	// Retry is the per-proxy retry policy (zero value: 3 attempts,
	// 50ms base backoff). Retries honor a shard's Retry-After.
	Retry resilience.Policy
	// Breaker configures the per-shard circuit breaker.
	Breaker resilience.BreakerConfig
	// DisableBreaker turns the per-shard breakers off.
	DisableBreaker bool
	// HealthEvery is the /readyz polling period per shard (0 = no
	// health gating; every shard is presumed ready).
	HealthEvery time.Duration
	// Client is the outbound HTTP client (nil = a default with a 30s
	// ceiling; per-call deadlines come from the inbound context).
	Client *http.Client
	// Obs and Trace instrument the router (piye_router_* metrics, one
	// trace per routed query). Both nil = no instrumentation.
	Obs   *obs.Registry
	Trace *obs.Tracer
}

// backendState is one shard's runtime state inside the router.
type backendState struct {
	Backend
	breaker *resilience.Breaker // nil when disabled

	mu      sync.Mutex
	healthy bool
	lastErr string
	// markedAt is when this router last changed the shard's drain mark
	// itself (admin endpoint or a learned draining-refusal). A status
	// probe that STARTED before that instant observed the pre-change
	// world and must not overwrite the newer local mark.
	markedAt time.Time
}

// noteMark records a local drain-mark change.
func (bs *backendState) noteMark() {
	bs.mu.Lock()
	bs.markedAt = time.Now()
	bs.mu.Unlock()
}

// markChangedSince reports whether the local mark changed after t.
func (bs *backendState) markChangedSince(t time.Time) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.markedAt.After(t)
}

// Router proxies /query to the owning shard.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	byName map[string]*backendState

	stop chan struct{}
	wg   sync.WaitGroup

	// Metric handles; nil without a registry.
	proxied    *obs.Counter
	rerouted   *obs.Counter
	refused    *obs.Counter
	unavail    *obs.Counter
	lookupSec  *obs.Histogram
	proxySec   *obs.Histogram
	perShard   map[string]*obs.Counter
	healthGone *obs.Counter
}

// NewRouter builds the ring, starts the health pollers (one synchronous
// first probe per shard so the initial membership view is real), and
// returns a router ready to serve.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	rt := &Router{
		cfg:    cfg,
		ring:   New(cfg.Seed, cfg.Vnodes),
		client: cfg.Client,
		byName: map[string]*backendState{},
		stop:   make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 30 * time.Second}
	}
	for _, b := range cfg.Shards {
		if b.Name == "" || b.URL == "" {
			return nil, fmt.Errorf("shard: router shard needs name and url, got %+v", b)
		}
		if _, dup := rt.byName[b.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard name %q", b.Name)
		}
		if err := rt.ring.Add(b.Name); err != nil {
			return nil, err
		}
		bs := &backendState{Backend: b, healthy: true}
		bs.URL = strings.TrimRight(bs.URL, "/")
		if !cfg.DisableBreaker {
			bs.breaker = resilience.NewBreaker(cfg.Breaker)
		}
		rt.byName[b.Name] = bs
	}
	if reg := cfg.Obs; reg != nil {
		reg.Help("piye_router_requests_total", "Routed queries by outcome (proxied includes refusals passed through; rerouted = drain re-routes).")
		reg.Help("piye_router_shard_requests_total", "Queries forwarded per shard.")
		reg.Help("piye_router_lookup_seconds", "Ring lookup latency.")
		reg.Help("piye_router_proxy_seconds", "Full proxy latency per routed query (retries included).")
		reg.Help("piye_router_unhealthy_total", "Queries refused because the owning shard failed its readiness probe.")
		rt.proxied = reg.Counter("piye_router_requests_total", "outcome", "proxied")
		rt.rerouted = reg.Counter("piye_router_requests_total", "outcome", "rerouted")
		rt.refused = reg.Counter("piye_router_requests_total", "outcome", "error")
		rt.unavail = reg.Counter("piye_router_requests_total", "outcome", "unavailable")
		rt.lookupSec = reg.Histogram("piye_router_lookup_seconds", nil)
		rt.proxySec = reg.Histogram("piye_router_proxy_seconds", nil)
		rt.healthGone = reg.Counter("piye_router_unhealthy_total")
		rt.perShard = map[string]*obs.Counter{}
		for _, b := range cfg.Shards {
			rt.perShard[b.Name] = reg.Counter("piye_router_shard_requests_total", "shard", b.Name)
		}
	}
	if cfg.HealthEvery > 0 {
		for _, bs := range rt.byName {
			rt.probe(bs) // synchronous first probe: start with a real view
			rt.wg.Add(1)
			go rt.healthLoop(bs)
		}
	}
	return rt, nil
}

// Close stops the health pollers.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// healthLoop polls one shard's /readyz until Close.
func (rt *Router) healthLoop(bs *backendState) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probe(bs)
		}
	}
}

// probe runs one readiness check. A shard is ready when /readyz answers
// 200 within the poll period (bounded so a hung shard cannot stall the
// loop).
func (rt *Router) probe(bs *backendState) {
	timeout := rt.cfg.HealthEvery
	if timeout <= 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, bs.URL+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	ok := false
	msg := ""
	if err != nil {
		msg = err.Error()
	} else {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		ok = resp.StatusCode == http.StatusOK
		if !ok {
			msg = strings.TrimSpace(string(body))
		}
	}
	bs.mu.Lock()
	bs.healthy = ok
	bs.lastErr = msg
	bs.mu.Unlock()
	rt.syncDrainMark(ctx, bs)
}

// syncDrainMark converges the router's drain view with the shard's own:
// the poller reads /shard/status and mirrors the draining flag into the
// ring. Marks learned from a shard's "draining: not accepting" refusal
// or set through another router's admin surface would otherwise never
// clear here — a shard-direct or peer-router undrain left this router
// asserting a stale drained set on every re-route. Fetch failures (and
// unsharded shards' 404s) leave the current mark untouched, and so does
// an observation that started before the router's own latest mark
// change — it saw the pre-admin world and must not revert it.
func (rt *Router) syncDrainMark(ctx context.Context, bs *backendState) {
	started := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, bs.URL+"/shard/status", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		Draining bool `json:"draining"`
	}
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&st) != nil {
		io.Copy(io.Discard, resp.Body)
		return
	}
	if bs.markChangedSince(started) {
		return
	}
	_ = rt.ring.SetDraining(bs.Name, st.Draining)
}

// isHealthy reports the last probe's verdict (always true without
// health polling).
func (bs *backendState) isHealthy() bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.healthy
}

// Ready is the router's own readiness: at least one shard is healthy.
func (rt *Router) Ready() error {
	for _, bs := range rt.byName {
		if bs.isHealthy() {
			return nil
		}
	}
	return fmt.Errorf("router: no healthy shard")
}

// proxyResult is one forwarded response, passed through verbatim.
type proxyResult struct {
	status      int
	body        []byte
	contentType string
	retryAfter  string
}

// proxyError classifies a forwarding failure for the resilience stack:
// 5xx and 429 are retryable, sheds (429/503) do not trip the breaker
// (a shard answering promptly is alive), and the drain/not-owner
// refusals are terminal for THIS shard — retrying the same door cannot
// help; the re-route loop in serveQuery handles them.
type proxyError struct {
	shard      string
	status     int
	result     proxyResult
	retryAfter time.Duration
}

func (e *proxyError) Error() string {
	return fmt.Sprintf("shard %s: %d %s: %s", e.shard, e.status, http.StatusText(e.status), strings.TrimSpace(string(e.result.body)))
}

// draining reports the drain refusal (wire contract with
// mediator.DrainingError).
func (e *proxyError) draining() bool {
	return e.status == http.StatusServiceUnavailable && bytes.Contains(e.result.body, []byte("draining: not accepting"))
}

// notOwner reports the ownership refusal (wire contract with
// mediator.NotOwnerError).
func (e *proxyError) notOwner() bool {
	return e.status == http.StatusServiceUnavailable && bytes.Contains(e.result.body, []byte("is not the owner of requester"))
}

// Retryable implements the resilience layer's classification. A 429 is
// the requester's own rate limit: the router retrying on the
// requester's behalf would defeat the throttle, so it passes straight
// back for the CLIENT to back off.
func (e *proxyError) Retryable() bool {
	if e.draining() || e.notOwner() {
		return false
	}
	return e.status >= 500
}

// Shed keeps throttling out of the breaker's failure count.
func (e *proxyError) Shed() bool {
	return e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable
}

// RetryAfterHint paces retries to the shard's own ask.
func (e *proxyError) RetryAfterHint() (time.Duration, bool) {
	if e.retryAfter > 0 {
		return e.retryAfter, true
	}
	return 0, false
}

// breakerVerdict maps an attempt error to what the circuit breaker
// should see. A 4xx is the shard answering authoritatively — a privacy
// refusal, a requester's own throttle — which is proof of health, not
// failure; were refusals counted, a requester probing their ledger
// limit could open the circuit and deny the whole shard. Only
// transport errors and 5xx count against the circuit (and deliberate
// 503 sheds are already ignored by Report itself).
func breakerVerdict(err error) error {
	var pe *proxyError
	if errors.As(err, &pe) && pe.status < 500 {
		return nil
	}
	return err
}

// forward proxies one query to one shard under the retry policy and its
// breaker. A non-2xx answer comes back as a *proxyError carrying the
// verbatim response, so the caller can pass it through or re-route.
func (rt *Router) forward(ctx context.Context, bs *backendState, body []byte, requester string, reroutedFrom []string, trace *obs.Trace) (proxyResult, error) {
	ts := time.Now()
	res, err := resilience.Do(ctx, rt.cfg.Retry, func(ctx context.Context) (proxyResult, error) {
		if bs.breaker != nil {
			if berr := bs.breaker.Allow(); berr != nil {
				return proxyResult{}, fmt.Errorf("shard %s: %w", bs.Name, berr)
			}
		}
		out, aerr := rt.attempt(ctx, bs, body, requester, reroutedFrom)
		if bs.breaker != nil {
			bs.breaker.Report(breakerVerdict(aerr))
		}
		return out, aerr
	})
	if rt.perShard != nil {
		rt.perShard[bs.Name].Inc()
	}
	trace.Record("proxy", bs.Name, ts, time.Since(ts), proxyOutcome(err))
	return res, err
}

// attempt is one HTTP exchange with a shard.
func (rt *Router) attempt(ctx context.Context, bs *backendState, body []byte, requester string, reroutedFrom []string) (proxyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, bs.URL+"/query", bytes.NewReader(body))
	if err != nil {
		return proxyResult{}, err
	}
	req.Header.Set("X-Requester", requester)
	req.Header.Set("Content-Type", "text/plain")
	if len(reroutedFrom) > 0 {
		req.Header.Set("X-Shard-Rerouted-From", strings.Join(reroutedFrom, ","))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return proxyResult{}, fmt.Errorf("shard %s: %w", bs.Name, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return proxyResult{}, fmt.Errorf("shard %s: reading response: %w", bs.Name, err)
	}
	out := proxyResult{
		status:      resp.StatusCode,
		body:        b,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}
	if resp.StatusCode >= 400 {
		pe := &proxyError{shard: bs.Name, status: resp.StatusCode, result: out}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			var secs int
			if _, err := fmt.Sscanf(strings.TrimSpace(ra), "%d", &secs); err == nil && secs > 0 {
				pe.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return out, pe
	}
	return out, nil
}

// drainedNames lists ring members currently marked draining.
func (rt *Router) drainedNames() []string {
	var out []string
	for _, m := range rt.ring.Members() {
		if m.Draining {
			out = append(out, m.Name)
		}
	}
	return out
}

// serveQuery is the routing hot path: ring lookup, forward, and — when
// the owner is shedding ownership — the drain re-route.
func (rt *Router) serveQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	requester := r.Header.Get("X-Requester")
	if requester == "" {
		http.Error(w, "router: missing X-Requester header", http.StatusBadRequest)
		return
	}
	var trace *obs.Trace
	if rt.cfg.Trace != nil {
		trace = rt.cfg.Trace.Start(requester, string(body))
	}

	ts := time.Now()
	owner, err := rt.ring.Lookup(requester)
	if rt.lookupSec != nil {
		rt.lookupSec.Observe(time.Since(ts).Seconds())
	}
	trace.Record("lookup", owner, ts, time.Since(ts), proxyOutcome(err))
	if err != nil {
		rt.finish(trace, rt.refused, obs.OutcomeError)
		http.Error(w, "router: "+err.Error(), http.StatusServiceUnavailable)
		return
	}

	tsProxy := time.Now()
	defer func() {
		if rt.proxySec != nil {
			rt.proxySec.Observe(time.Since(tsProxy).Seconds())
		}
	}()

	bs := rt.byName[owner]
	if rt.cfg.HealthEvery > 0 && !bs.isHealthy() {
		if rt.healthGone != nil {
			rt.healthGone.Inc()
		}
		rt.finish(trace, rt.unavail, obs.OutcomeSkipped)
		http.Error(w, fmt.Sprintf("router: shard %s failed readiness; retry shortly", owner), http.StatusServiceUnavailable)
		return
	}

	res, err := rt.forward(r.Context(), bs, body, requester, nil, trace)
	outcome := rt.proxied

	// Drain re-route: the owner refused to take the requester on
	// (draining, no durable state there). Route to the drain-adjusted
	// owner, asserting the drained set so the landing shard can verify
	// the placement with its own ring. Bounded by the ring size — every
	// iteration adds one shard to the drained set.
	drained := rt.drainedNames()
	for hops := 0; hops < rt.ring.Len(); hops++ {
		pe, ok := err.(*proxyError)
		if !ok || !pe.draining() {
			break
		}
		// Learn the drain even when it was applied at the shard directly
		// rather than through our admin surface.
		_ = rt.ring.SetDraining(pe.shard, true)
		if bs, ok := rt.byName[pe.shard]; ok {
			bs.noteMark()
		}
		drained = appendMissing(drained, pe.shard)
		adj, lerr := rt.ring.LookupExcluding(requester, drained)
		if lerr != nil {
			rt.finish(trace, rt.unavail, obs.OutcomeSkipped)
			http.Error(w, "router: every shard is draining; retry shortly", http.StatusServiceUnavailable)
			return
		}
		outcome = rt.rerouted
		res, err = rt.forward(r.Context(), rt.byName[adj], body, requester, drained, trace)
	}

	if err != nil {
		pe, ok := err.(*proxyError)
		if !ok {
			// Transport-level failure (or open breaker): nothing to pass
			// through. 502 keeps it distinct from the shards' own 503s.
			rt.finish(trace, rt.refused, obs.OutcomeError)
			http.Error(w, "router: "+err.Error(), http.StatusBadGateway)
			return
		}
		// A shard's refusal (including 403 privacy refusals and 429/503
		// sheds) passes through verbatim: the retry loop discards the
		// value on error, so recover it from the error itself.
		res = pe.result
	}
	rt.finish(trace, outcome, statusOutcome(res.status))
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// finish closes the trace and bumps the outcome counter (both nil-safe).
func (rt *Router) finish(trace *obs.Trace, c *obs.Counter, outcome string) {
	if c != nil {
		c.Inc()
	}
	trace.Finish(outcome)
}

// proxyOutcome renders a forward error as a span outcome.
func proxyOutcome(err error) string {
	if err == nil {
		return obs.OutcomeAnswered
	}
	if pe, ok := err.(*proxyError); ok {
		return obs.RefusedOutcome(fmt.Sprintf("%d", pe.status))
	}
	return obs.OutcomeError
}

// statusOutcome renders the final passthrough status as a trace outcome.
func statusOutcome(status int) string {
	if status < 400 {
		return obs.OutcomeAnswered
	}
	return obs.RefusedOutcome(fmt.Sprintf("%d", status))
}

// appendMissing appends s if absent.
func appendMissing(xs []string, s string) []string {
	for _, x := range xs {
		if x == s {
			return xs
		}
	}
	return append(xs, s)
}

// shardView is one shard in the admin listing.
type shardView struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Draining bool   `json:"draining"`
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// Handler mounts the router's HTTP surface: POST /query (the proxy),
// GET /shards, POST /shards/drain and /shards/undrain (admin; both
// propagate to the shard's own /shard/drain|undrain, and undrain
// forwards ?force=1), plus the standard /healthz, /readyz, /metrics
// and /debug/trace.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", rt.serveQuery)

	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, r *http.Request) {
		var views []shardView
		for _, m := range rt.ring.Members() {
			bs := rt.byName[m.Name]
			bs.mu.Lock()
			v := shardView{
				Name: m.Name, URL: bs.Backend.URL,
				Draining: m.Draining, Healthy: bs.healthy, LastErr: bs.lastErr,
			}
			bs.mu.Unlock()
			if bs.breaker != nil {
				v.Breaker = bs.breaker.State()
			}
			views = append(views, v)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"seed":   rt.ring.Seed(),
			"shards": views,
		})
	})

	// Drain/undrain: mark the ring AND tell the shard, in that order for
	// drain (so no new requester races into the draining shard through
	// us) and the reverse for undrain. Undrain forwards ?force= to the
	// shard, which refuses (409) while re-routed requester state is
	// stranded on the drain-adjusted owners — the refusal passes back
	// verbatim with its status, and the ring mark stands.
	drainAdmin := func(drain bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			name := r.URL.Query().Get("name")
			bs, ok := rt.byName[name]
			if !ok {
				http.Error(w, fmt.Sprintf("router: unknown shard %q", name), http.StatusNotFound)
				return
			}
			path := "/shard/undrain"
			if drain {
				path = "/shard/drain"
				_ = rt.ring.SetDraining(name, true)
				bs.noteMark()
			} else if force := r.URL.Query().Get("force"); force != "" {
				path += "?force=" + url.QueryEscape(force)
			}
			shardStatus := 0
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, bs.URL+path, nil)
			if err == nil {
				var resp *http.Response
				resp, err = rt.client.Do(req)
				if err == nil {
					b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
					resp.Body.Close()
					if resp.StatusCode >= 400 {
						shardStatus = resp.StatusCode
						err = fmt.Errorf("shard answered %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
					}
				}
			}
			if err != nil && drain {
				// The ring mark stands: routing around a shard we could not
				// reach is safe (fail-closed); report the propagation
				// failure so the operator can retry.
				http.Error(w, fmt.Sprintf("router: shard %s marked draining here, but propagating failed: %v", name, err), http.StatusBadGateway)
				return
			}
			if err != nil {
				// Mirror the shard's own refusal status when it gave one
				// (409 undrain refused); 502 only for transport failures.
				code := http.StatusBadGateway
				if shardStatus >= 400 {
					code = shardStatus
				}
				http.Error(w, fmt.Sprintf("router: undraining %s: %v", name, err), code)
				return
			}
			if !drain {
				_ = rt.ring.SetDraining(name, false)
				bs.noteMark()
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}
	mux.HandleFunc("POST /shards/drain", drainAdmin(true))
	mux.HandleFunc("POST /shards/undrain", drainAdmin(false))

	obs.AttachHealth(mux, rt.Ready)
	obs.Attach(mux, rt.cfg.Obs, rt.cfg.Trace)
	return mux
}
