package clinical

import (
	"math"
	"testing"

	"privateiye/internal/relational"
	"privateiye/internal/stats"
)

func TestFigure1PublishedValues(t *testing.T) {
	p := Figure1Published()
	if len(p.TestMean) != 3 || len(p.TestSigma) != 3 || len(p.HMOMean) != 4 {
		t.Fatalf("wrong shapes: %+v", p)
	}
	if p.TestMean[0] != 83.0 || p.TestSigma[0] != 5.7 {
		t.Errorf("HbA1c aggregates = %v/%v", p.TestMean[0], p.TestSigma[0])
	}
	if p.HMOMean[3] != 60.3 {
		t.Errorf("HMO4 mean = %v, want 60.3", p.HMOMean[3])
	}
}

// The load-bearing property: the pinned hidden matrix reproduces every
// published Figure 1 value after rounding. If this breaks, the attack
// reproduction is meaningless.
func TestGroundTruthConsistent(t *testing.T) {
	m := Figure1GroundTruth()
	paper := Figure1Published()
	got, err := PublishFromMatrix(m, paper.Places)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paper.TestMean {
		if got.TestMean[i] != paper.TestMean[i] {
			t.Errorf("test %d mean publishes as %v, paper says %v", i, got.TestMean[i], paper.TestMean[i])
		}
		if got.TestSigma[i] != paper.TestSigma[i] {
			t.Errorf("test %d sigma publishes as %v, paper says %v", i, got.TestSigma[i], paper.TestSigma[i])
		}
	}
	for h := range paper.HMOMean {
		if got.HMOMean[h] != paper.HMOMean[h] {
			t.Errorf("HMO%d mean publishes as %v, paper says %v", h+1, got.HMOMean[h], paper.HMOMean[h])
		}
	}
	// HMO1's row is the snooper's exact knowledge.
	own := Figure1HMO1Row()
	for i := range own {
		if m[0][i] != own[i] {
			t.Errorf("HMO1 row mismatch at %d: %v vs %v", i, m[0][i], own[i])
		}
	}
}

func TestPublishFromMatrixErrors(t *testing.T) {
	if _, err := PublishFromMatrix(nil, 1); err == nil {
		t.Error("empty matrix should error")
	}
	if _, err := PublishFromMatrix([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged matrix should error")
	}
}

func TestComplianceTable(t *testing.T) {
	tab, err := ComplianceTable("compliance", HMOs, Tests, Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 12 {
		t.Fatalf("rows = %d, want 12", tab.Len())
	}
	v, err := tab.Get(0, "rate")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 75.0 {
		t.Errorf("first rate = %v, want 75.0", v.F)
	}
	if _, err := ComplianceTable("x", HMOs, Tests, [][]float64{{1}}); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestPatientsGenerator(t *testing.T) {
	g := NewGenerator(42)
	tab, err := g.Patients("patients", 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 500 {
		t.Fatalf("patients = %d", tab.Len())
	}
	// Determinism: same seed, same data.
	tab2, _ := NewGenerator(42).Patients("patients", 500, 4)
	for i := 0; i < 500; i++ {
		a, _ := tab.Get(i, "name")
		b, _ := tab2.Get(i, "name")
		if a.S != b.S {
			t.Fatalf("row %d differs across same-seed generators", i)
		}
	}
	// Ages in range, HMOs in range.
	for i := 0; i < 500; i++ {
		age, _ := tab.Get(i, "age")
		if age.I < 18 || age.I >= 90 {
			t.Fatalf("age out of range: %d", age.I)
		}
	}
	if _, err := g.Patients("x", -1, 4); err == nil {
		t.Error("negative n should error")
	}
	if _, err := g.Patients("x", 1, 0); err == nil {
		t.Error("zero HMOs should error")
	}
}

func TestCorruptNameChangesButKeepsLength(t *testing.T) {
	g := NewGenerator(7)
	changed := 0
	for i := 0; i < 100; i++ {
		name := g.Name()
		c := g.CorruptName(name)
		if c != name {
			changed++
		}
		if d := len(c) - len(name); d < -1 || d > 1 {
			t.Fatalf("corruption changed length too much: %q -> %q", name, c)
		}
	}
	if changed < 90 {
		t.Errorf("corruption too weak: only %d/100 changed", changed)
	}
	if got := g.CorruptName("ab"); got != "ab" {
		t.Errorf("short names pass through, got %q", got)
	}
}

func TestComplianceMatrixShape(t *testing.T) {
	g := NewGenerator(3)
	m := g.ComplianceMatrix(8, 5)
	if len(m) != 8 || len(m[0]) != 5 {
		t.Fatalf("shape = %dx%d", len(m), len(m[0]))
	}
	for _, row := range m {
		for _, v := range row {
			if v < 0 || v > 100 {
				t.Fatalf("rate out of range: %v", v)
			}
		}
	}
	// Rates for one test should cluster: sample sigma below 15.
	col := make([]float64, len(m))
	for h := range m {
		col[h] = m[h][0]
	}
	sd, _ := stats.SampleStdDev(col)
	if sd > 15 {
		t.Errorf("per-test spread too wide: %v", sd)
	}
}

func TestOutbreakSignal(t *testing.T) {
	g := NewGenerator(11)
	tab, err := g.Outbreak("events", 60)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 60 * len(Regions()) * len(Syndromes())
	if tab.Len() != wantRows {
		t.Fatalf("rows = %d, want %d", tab.Len(), wantRows)
	}
	hot, err := HotRegionOf(tab)
	if err != nil {
		t.Fatal(err)
	}
	// The hot region's respiratory counts in the last 10 days must greatly
	// exceed any other region's.
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	q := &relational.Query{
		From: "events",
		Where: relational.And{Terms: []relational.Expr{
			relational.Cmp{Op: relational.Eq, L: relational.ColRef{Name: "syndrome"}, R: relational.Lit{V: relational.Str("respiratory")}},
			relational.Cmp{Op: relational.Ge, L: relational.ColRef{Name: "day"}, R: relational.Lit{V: relational.Int(50)}},
		}},
		GroupBy:    []string{"region"},
		Aggregates: []relational.Aggregate{{Func: relational.Avg, Col: "cases", As: "avg_cases"}},
	}
	res, err := q.Execute(cat)
	if err != nil {
		t.Fatal(err)
	}
	var hotAvg, maxOther float64
	for _, row := range res.Rows {
		if row[0].S == hot {
			hotAvg = row[1].F
		} else if row[1].F > maxOther {
			maxOther = row[1].F
		}
	}
	if hotAvg < 3*maxOther {
		t.Errorf("outbreak signal too weak: hot=%v others<=%v", hotAvg, maxOther)
	}
	if _, err := g.Outbreak("x", 0); err == nil {
		t.Error("zero days should error")
	}
}

func TestSplitOverlapping(t *testing.T) {
	g := NewGenerator(5)
	tab, _ := g.Patients("p", 1000, 4)
	rows := tab.Rows()
	parts := g.SplitOverlapping(rows, 3, 0.3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	// ~30% of rows appear twice.
	if total < 1200 || total > 1400 {
		t.Errorf("total placed = %d, want about 1300", total)
	}
	// Every original row is placed at least once.
	placed := map[int64]bool{}
	for _, p := range parts {
		for _, r := range p {
			placed[r[0].I] = true
		}
	}
	if len(placed) != 1000 {
		t.Errorf("placed %d distinct rows, want 1000", len(placed))
	}
}

func TestPatientToXML(t *testing.T) {
	g := NewGenerator(9)
	tab, _ := g.Patients("p", 1, 2)
	node := PatientToXML(tab.Schema(), tab.Rows()[0])
	if node.Name != "patient" {
		t.Fatalf("root = %q", node.Name)
	}
	if node.ChildText("id") != "1" {
		t.Errorf("id = %q", node.ChildText("id"))
	}
	if node.ChildText("name") == "" {
		t.Error("name missing")
	}
}

func TestNameVariants(t *testing.T) {
	rows := []relational.Row{
		{relational.Str("Alice")},
		{relational.Str("alice")},
		{relational.Str("Bob")},
	}
	if got := NameVariants(rows, 0); got != 2 {
		t.Errorf("variants = %d, want 2", got)
	}
}

func TestVocabularyAccessorsCopy(t *testing.T) {
	r := Regions()
	r[0] = "CHANGED"
	if Regions()[0] == "CHANGED" {
		t.Error("Regions returns shared state")
	}
	if len(Diagnoses()) == 0 || len(Syndromes()) == 0 {
		t.Error("vocabularies empty")
	}
}

func TestGroundTruthInsidePlausibleRange(t *testing.T) {
	for _, row := range Figure1GroundTruth() {
		for _, v := range row {
			if v < 0 || v > 100 || math.IsNaN(v) {
				t.Fatalf("implausible rate %v", v)
			}
		}
	}
}
