// Package clinical supplies the clinical data behind the paper's two
// motivating examples.
//
// Example 1 (diabetes care): the paper publishes aggregate test-compliance
// statistics sourced from the PHC4 "Diabetes Hospitalization Report, 2001
// Data" — a proprietary report we do not have. The substitution (see
// DESIGN.md) is exact at the level that matters: Figure 1 only ever exposes
// the published aggregates (per-test mean and standard deviation, per-HMO
// average performance) and HMO1's own row, and those values are printed in
// the paper. This package carries them verbatim, together with a hidden
// ground-truth matrix that is consistent with every published value, so
// the full pipeline — source data, aggregate publication, snooping attack —
// runs end to end.
//
// Example 2 (disease outbreak control) and the scale benchmarks need more
// data than three tests and four HMOs; NewGenerator produces arbitrarily
// large synthetic populations with the same statistical shape.
package clinical

import (
	"fmt"

	"privateiye/internal/relational"
	"privateiye/internal/stats"
)

// Tests are the three preventive screenings of Figure 1, in paper order.
var Tests = []string{"HbA1c", "Lipid Profile", "Eye Exam"}

// HMOs are the four health maintenance organizations of Figure 1.
var HMOs = []string{"HMO1", "HMO2", "HMO3", "HMO4"}

// Published holds the aggregates the integrator publishes in Figures 1(a)
// and 1(b): everything a snooping HMO can see, except its own row.
type Published struct {
	// TestMean[t] is the mean compliance rate for test t across HMOs
	// (Figure 1(a), "Average Compliance among HMOs").
	TestMean []float64
	// TestSigma[t] is the population standard deviation for test t
	// (Figure 1(a), "Standard deviation").
	TestSigma []float64
	// HMOMean[h] is the average performance of HMO h over the three tests
	// (Figure 1(b)/(c)).
	HMOMean []float64
	// Places is the number of decimal places the integrator rounds to
	// before publishing (1 in the paper).
	Places int
}

// Figure1Published returns the exact aggregates printed in the paper.
// Figure 1(b) rounds HMO means to integers but Figure 1(c) reveals the
// one-decimal values the snooper actually uses (60.3 for HMO4), so those
// are used here.
func Figure1Published() *Published {
	return &Published{
		TestMean:  []float64{83.0, 54.1, 45.4},
		TestSigma: []float64{5.7, 4.7, 2.0},
		HMOMean:   []float64{58.0, 65.0, 60.0, 60.3},
		Places:    1,
	}
}

// Figure1HMO1Row returns HMO1's own compliance rates (Figure 1(c), the
// snooper's private knowledge): HbA1c 75.0, Lipid Profile 56.0, Eye Exam
// 43.0.
func Figure1HMO1Row() []float64 { return []float64{75.0, 56.0, 43.0} }

// Figure1GroundTruth returns a hidden compliance matrix, indexed
// [hmo][test], that is consistent with every published Figure 1 value
// after rounding: each test's mean and population sigma round to Figure
// 1(a), each HMO's mean rounds to Figure 1(c), and HMO1's row is exact.
// The paper never reveals the true hidden values (that is the point); this
// matrix is one member of the feasible set its Figure 1(d) intervals
// describe, and TestGroundTruthConsistent pins the consistency property.
func Figure1GroundTruth() [][]float64 {
	return [][]float64{
		{75.0, 56.0, 43.0},
		{fig1GT[0], fig1GT[1], fig1GT[2]},
		{fig1GT[3], fig1GT[4], fig1GT[5]},
		{fig1GT[6], fig1GT[7], fig1GT[8]},
	}
}

// fig1GT holds the hidden rows (HMO2..HMO4) of the ground-truth matrix.
// The values were computed once by solving the published-aggregate
// constraint system with the nlp solver (sample-sigma formulation,
// rounding tolerance; see EXPERIMENTS.md E4) and are pinned here as data
// so the rest of the system is deterministic.
var fig1GT = [9]float64{
	88.593, 59.886, 46.446, // HMO2
	84.591, 50.767, 44.717, // HMO3
	83.716, 49.766, 47.493, // HMO4
}

// PublishFromMatrix computes the Published aggregates from a full
// compliance matrix [hmo][test], rounding to places decimals. It is the
// integrator side of Figure 1: what the mediator would release. Sigma is
// the sample (n-1) standard deviation — calibration against Figure 1(d)
// shows that is what the paper published (see EXPERIMENTS.md).
func PublishFromMatrix(m [][]float64, places int) (*Published, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("clinical: empty matrix")
	}
	nTests := len(m[0])
	for i, row := range m {
		if len(row) != nTests {
			return nil, fmt.Errorf("clinical: ragged matrix at row %d", i)
		}
	}
	p := &Published{Places: places}
	for t := 0; t < nTests; t++ {
		col := make([]float64, len(m))
		for h := range m {
			col[h] = m[h][t]
		}
		mean, err := stats.Mean(col)
		if err != nil {
			return nil, err
		}
		sd, err := stats.SampleStdDev(col)
		if err != nil {
			return nil, err
		}
		p.TestMean = append(p.TestMean, stats.Round(mean, places))
		p.TestSigma = append(p.TestSigma, stats.Round(sd, places))
	}
	for _, row := range m {
		mean, err := stats.Mean(row)
		if err != nil {
			return nil, err
		}
		p.HMOMean = append(p.HMOMean, stats.Round(mean, places))
	}
	return p, nil
}

// ComplianceTable renders a compliance matrix as a relational table
// (hmo TEXT, test TEXT, rate REAL) — the shape the HMO sources store.
func ComplianceTable(name string, hmos, tests []string, m [][]float64) (*relational.Table, error) {
	if len(m) != len(hmos) {
		return nil, fmt.Errorf("clinical: %d rows for %d HMOs", len(m), len(hmos))
	}
	tab := relational.NewTable(name, relational.MustSchema(
		relational.Column{Name: "hmo", Type: relational.TString},
		relational.Column{Name: "test", Type: relational.TString},
		relational.Column{Name: "rate", Type: relational.TFloat},
	))
	for h, row := range m {
		if len(row) != len(tests) {
			return nil, fmt.Errorf("clinical: row %d has %d tests, want %d", h, len(row), len(tests))
		}
		for t, rate := range row {
			err := tab.Insert(relational.Row{
				relational.Str(hmos[h]),
				relational.Str(tests[t]),
				relational.Float(rate),
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return tab, nil
}
