package clinical

import (
	"fmt"
	"strings"

	"privateiye/internal/relational"
	"privateiye/internal/stats"
	"privateiye/internal/xmltree"
)

// Generator produces synthetic clinical workloads of arbitrary size with
// the statistical shape of the paper's scenario: patient registries with
// quasi-identifiers (for k-anonymity and record-linkage experiments),
// per-HMO compliance matrices (for scaled-up Figure 1 attacks), and
// outbreak surveillance streams (for the Example 2 disease-control
// scenario). Deterministic given the seed.
type Generator struct {
	rng *stats.Rand
}

// NewGenerator returns a generator with a deterministic stream.
func NewGenerator(seed uint64) *Generator {
	return &Generator{rng: stats.NewRand(seed)}
}

var (
	firstNames = []string{
		"Alice", "Bob", "Carol", "David", "Emma", "Farid", "Grace", "Hiro",
		"Indira", "Jun", "Kavya", "Liang", "Mei", "Noor", "Omar", "Priya",
		"Quan", "Rosa", "Siti", "Tomas", "Uma", "Viktor", "Wei", "Ximena",
		"Yusuf", "Zara",
	}
	lastNames = []string{
		"Anderson", "Bhowmick", "Chen", "Diaz", "Evans", "Fischer", "Gruen",
		"Huang", "Iwahara", "Jones", "Kim", "Lee", "Miller", "Nakamura",
		"Okafor", "Patel", "Quigley", "Rahman", "Singh", "Tan", "Ueda",
		"Varga", "Wong", "Xu", "Yamada", "Zhou",
	}
	diagnoses = []string{
		"diabetes", "hypertension", "asthma", "arthritis", "depression",
		"influenza", "bronchitis", "migraine",
	}
	regions = []string{
		"Allegheny", "Butler", "Beaver", "Washington", "Westmoreland",
		"Armstrong", "Fayette", "Greene",
	}
	syndromes = []string{
		"respiratory", "gastrointestinal", "febrile", "neurological",
	}
)

// PatientSchema is the relational schema of generated patient registries:
// the explicit identifier (id, name), the quasi-identifiers the
// k-anonymity literature standardizes on (sex, age, zip), and the
// sensitive attribute (diagnosis), plus the owning HMO.
func PatientSchema() *relational.Schema {
	return relational.MustSchema(
		relational.Column{Name: "id", Type: relational.TInt},
		relational.Column{Name: "name", Type: relational.TString},
		relational.Column{Name: "sex", Type: relational.TString},
		relational.Column{Name: "age", Type: relational.TInt},
		relational.Column{Name: "zip", Type: relational.TString},
		relational.Column{Name: "diagnosis", Type: relational.TString},
		relational.Column{Name: "hmo", Type: relational.TString},
	)
}

// Patients generates a registry of n patients spread over nHMOs HMOs.
func (g *Generator) Patients(name string, n, nHMOs int) (*relational.Table, error) {
	if n < 0 || nHMOs <= 0 {
		return nil, fmt.Errorf("clinical: bad patient workload n=%d hmos=%d", n, nHMOs)
	}
	tab := relational.NewTable(name, PatientSchema())
	for i := 0; i < n; i++ {
		sex := "F"
		if g.rng.Intn(2) == 0 {
			sex = "M"
		}
		row := relational.Row{
			relational.Int(int64(i + 1)),
			relational.Str(g.Name()),
			relational.Str(sex),
			relational.Int(int64(18 + g.rng.Intn(72))),
			relational.Str(g.Zip()),
			relational.Str(diagnoses[g.rng.Intn(len(diagnoses))]),
			relational.Str(fmt.Sprintf("HMO%d", 1+g.rng.Intn(nHMOs))),
		}
		if err := tab.Insert(row); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Name draws a random full name.
func (g *Generator) Name() string {
	return firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
}

// Zip draws a random 5-digit zip code from a small western-Pennsylvania
// shaped pool (152xx), so zip generalization hierarchies have structure.
func (g *Generator) Zip() string {
	return fmt.Sprintf("152%02d", g.rng.Intn(40))
}

// CorruptName introduces typographic noise into a name: a swap, a drop, or
// a duplicate character. Private fuzzy record linkage has to survive these.
func (g *Generator) CorruptName(name string) string {
	if len(name) < 3 {
		return name
	}
	b := []byte(name)
	switch g.rng.Intn(3) {
	case 0: // swap two adjacent characters
		i := 1 + g.rng.Intn(len(b)-2)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	case 1: // drop a character
		i := 1 + g.rng.Intn(len(b)-2)
		return string(b[:i]) + string(b[i+1:])
	default: // double a character
		i := 1 + g.rng.Intn(len(b)-2)
		return string(b[:i]) + string(b[i]) + string(b[i:])
	}
}

// ComplianceMatrix generates an nHMOs x nTests rate matrix with the same
// shape as Figure 1: each test has a typical rate drawn in [40, 90] and
// per-HMO deviations of a few points, clamped to [0, 100]. Used to scale
// the inference attack beyond 4x3.
func (g *Generator) ComplianceMatrix(nHMOs, nTests int) [][]float64 {
	base := make([]float64, nTests)
	for t := range base {
		base[t] = g.rng.Uniform(40, 90)
	}
	m := make([][]float64, nHMOs)
	for h := range m {
		m[h] = make([]float64, nTests)
		skill := g.rng.Normal(0, 3) // an HMO is uniformly better or worse
		for t := range m[h] {
			v := base[t] + skill + g.rng.Normal(0, 4)
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			m[h][t] = stats.Round(v, 1)
		}
	}
	return m
}

// OutbreakSchema is the relational schema of surveillance event streams
// for the Example 2 scenario.
func OutbreakSchema() *relational.Schema {
	return relational.MustSchema(
		relational.Column{Name: "day", Type: relational.TInt},
		relational.Column{Name: "region", Type: relational.TString},
		relational.Column{Name: "syndrome", Type: relational.TString},
		relational.Column{Name: "cases", Type: relational.TInt},
	)
}

// Outbreak generates a surveillance stream of days x regions daily case
// counts with a respiratory outbreak ramping up exponentially in one
// region from day days/2 — the SARS-shaped signal trend detection should
// find.
func (g *Generator) Outbreak(name string, days int) (*relational.Table, error) {
	if days <= 0 {
		return nil, fmt.Errorf("clinical: outbreak days=%d", days)
	}
	tab := relational.NewTable(name, OutbreakSchema())
	hotRegion := regions[g.rng.Intn(len(regions))]
	onset := days / 2
	for d := 0; d < days; d++ {
		for _, r := range regions {
			for _, s := range syndromes {
				base := 2 + g.rng.Intn(6) // endemic noise
				cases := base
				if r == hotRegion && s == "respiratory" && d >= onset {
					growth := 1.0 + 0.35*float64(d-onset)
					cases = base + int(growth*growth)
				}
				err := tab.Insert(relational.Row{
					relational.Int(int64(d)),
					relational.Str(r),
					relational.Str(s),
					relational.Int(int64(cases)),
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return tab, nil
}

// HotRegionOf recomputes which region carries the outbreak in a generated
// table: the region with the highest total respiratory case count.
func HotRegionOf(tab *relational.Table) (string, error) {
	q := &relational.Query{
		From:       tab.Name,
		Where:      relational.Cmp{Op: relational.Eq, L: relational.ColRef{Name: "syndrome"}, R: relational.Lit{V: relational.Str("respiratory")}},
		GroupBy:    []string{"region"},
		Aggregates: []relational.Aggregate{{Func: relational.Sum, Col: "cases", As: "total"}},
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		return "", err
	}
	res, err := q.Execute(cat)
	if err != nil {
		return "", err
	}
	best, bestTotal := "", -1.0
	for _, row := range res.Rows {
		if row[1].F > bestTotal {
			best, bestTotal = row[0].S, row[1].F
		}
	}
	if best == "" {
		return "", fmt.Errorf("clinical: empty outbreak table")
	}
	return best, nil
}

// PatientToXML renders one patient row as the XML document an XML-native
// source would store.
func PatientToXML(s *relational.Schema, r relational.Row) *xmltree.Node {
	p := xmltree.NewElem("patient")
	for i, c := range s.Columns {
		p.Append(xmltree.NewText(c.Name, r[i].String()))
	}
	return p
}

// Regions returns the region vocabulary used by Outbreak.
func Regions() []string { return append([]string(nil), regions...) }

// Diagnoses returns the diagnosis vocabulary used by Patients.
func Diagnoses() []string { return append([]string(nil), diagnoses...) }

// Syndromes returns the syndrome vocabulary used by Outbreak.
func Syndromes() []string { return append([]string(nil), syndromes...) }

// SplitOverlapping partitions patient rows into nSources overlapping
// subsets: each row lands in one home source, and with probability overlap
// it is duplicated into a second source — the dirty-duplicate situation
// the Result Integrator must clean up without revealing record origins.
func (g *Generator) SplitOverlapping(rows []relational.Row, nSources int, overlap float64) [][]relational.Row {
	out := make([][]relational.Row, nSources)
	for _, r := range rows {
		home := g.rng.Intn(nSources)
		out[home] = append(out[home], r)
		if nSources > 1 && g.rng.Float64() < overlap {
			other := g.rng.Intn(nSources - 1)
			if other >= home {
				other++
			}
			out[other] = append(out[other], r)
		}
	}
	return out
}

// NameVariants returns how many distinct name strings occur in rows,
// a helper for linkage experiments.
func NameVariants(rows []relational.Row, nameIdx int) int {
	set := map[string]bool{}
	for _, r := range rows {
		set[strings.ToLower(r[nameIdx].String())] = true
	}
	return len(set)
}
