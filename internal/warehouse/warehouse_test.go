package warehouse

import (
	"fmt"
	"testing"

	"privateiye/internal/piql"
)

func res(v string) *piql.Result {
	return &piql.Result{Columns: []string{"v"}, Rows: [][]string{{v}}}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(1, -1); err == nil {
		t.Error("negative ttl should fail")
	}
}

func TestPutGet(t *testing.T) {
	w, err := New(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get("k"); ok {
		t.Error("empty warehouse hit")
	}
	w.Put("k", res("1"))
	got, ok := w.Get("k")
	if !ok || got.Rows[0][0] != "1" {
		t.Errorf("get = %v %v", got, ok)
	}
	// Overwrite.
	w.Put("k", res("2"))
	got, _ = w.Get("k")
	if got.Rows[0][0] != "2" {
		t.Error("overwrite failed")
	}
	hits, misses, size := w.Stats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, size)
	}
}

func TestTTLExpiry(t *testing.T) {
	w, _ := New(10, 3)
	w.Put("k", res("1"))
	w.Tick()
	w.Tick()
	if _, ok := w.Get("k"); !ok {
		t.Error("entry should be fresh at age 2")
	}
	w.Tick()
	if _, ok := w.Get("k"); ok {
		t.Error("entry should expire at age 3")
	}
	// Stale entries stay resident (LRU evicts them eventually) so
	// brownout's GetStale can still serve them.
	if _, _, size := w.Stats(); size != 1 {
		t.Error("expired entry should stay for GetStale")
	}
	r, age, ok := w.GetStale("k")
	if !ok || r == nil || age != 3 {
		t.Errorf("GetStale = %v age=%d ok=%v, want age 3", r, age, ok)
	}
	if _, _, ok := w.GetStale("absent"); ok {
		t.Error("GetStale must miss on absent keys")
	}
	// GetStale leaves hit/miss stats untouched.
	hits, misses, _ := w.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	w, _ := New(3, 0)
	for i := 0; i < 3; i++ {
		w.Put(fmt.Sprintf("k%d", i), res("x"))
	}
	// Touch k0 so k1 is the LRU.
	if _, ok := w.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	w.Put("k3", res("x"))
	if _, ok := w.Get("k1"); ok {
		t.Error("k1 should be evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := w.Get(k); !ok {
			t.Errorf("%s should survive", k)
		}
	}
}

func TestInvalidatePrefix(t *testing.T) {
	w, _ := New(10, 0)
	w.Put("srcA|q1", res("1"))
	w.Put("srcA|q2", res("2"))
	w.Put("srcB|q1", res("3"))
	if n := w.Invalidate("srcA|"); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if _, ok := w.Get("srcA|q1"); ok {
		t.Error("srcA entries should be gone")
	}
	if _, ok := w.Get("srcB|q1"); !ok {
		t.Error("srcB entry should survive")
	}
}

func TestClock(t *testing.T) {
	w, _ := New(1, 0)
	if w.Now() != 0 {
		t.Error("clock should start at 0")
	}
	w.Tick()
	w.Tick()
	if w.Now() != 2 {
		t.Errorf("clock = %d", w.Now())
	}
}

func TestInvalidateAllWithEmptyPrefix(t *testing.T) {
	w, _ := New(10, 0)
	w.Put("a", res("1"))
	w.Put("b", res("2"))
	if n := w.Invalidate(""); n != 2 {
		t.Errorf("invalidate all = %d", n)
	}
	if _, _, size := w.Stats(); size != 0 {
		t.Error("warehouse should be empty")
	}
}
