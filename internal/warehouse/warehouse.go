// Package warehouse implements the materialization half of the paper's
// hybrid mediation: "our Mediation Engine allows us to query on demand
// (virtual querying) as well as materialize some data locally
// (warehousing). We take the hybrid approach due to the quick-response
// needed during emergency situations" (Section 5).
//
// The warehouse is a bounded TTL cache over integrated results keyed by
// canonical query text plus requester scope, with LRU eviction and a
// logical clock so staleness is deterministic in tests and benchmarks.
package warehouse

import (
	"container/list"
	"fmt"
	"sync"

	"privateiye/internal/piql"
)

// Entry is one materialized result.
type Entry struct {
	Key      string
	Result   *piql.Result
	StoredAt int64 // logical time of materialization
}

// Warehouse is a bounded, TTL-expiring result store.
type Warehouse struct {
	mu         sync.Mutex
	maxEntries int
	ttl        int64 // logical ticks an entry stays fresh; 0 = forever
	clock      int64
	entries    map[string]*list.Element
	order      *list.List // front = most recently used
	hits       int
	misses     int
}

// New returns a warehouse holding up to maxEntries results, each fresh
// for ttl ticks (0 = no expiry).
func New(maxEntries int, ttl int64) (*Warehouse, error) {
	if maxEntries <= 0 {
		return nil, fmt.Errorf("warehouse: capacity %d", maxEntries)
	}
	if ttl < 0 {
		return nil, fmt.Errorf("warehouse: negative ttl %d", ttl)
	}
	return &Warehouse{
		maxEntries: maxEntries,
		ttl:        ttl,
		entries:    map[string]*list.Element{},
		order:      list.New(),
	}, nil
}

// Tick advances the logical clock (the mediator ticks once per
// integration round).
func (w *Warehouse) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.clock++
}

// Now returns the logical time.
func (w *Warehouse) Now() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clock
}

// Get returns a fresh materialized result, recording hit/miss stats.
func (w *Warehouse) Get(key string) (*piql.Result, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	el, ok := w.entries[key]
	if !ok {
		w.misses++
		return nil, false
	}
	e := el.Value.(*Entry)
	if w.ttl > 0 && w.clock-e.StoredAt >= w.ttl {
		// Stale: a miss, but the entry is kept (LRU will evict it
		// eventually) so GetStale can serve it during brownout.
		w.misses++
		return nil, false
	}
	w.order.MoveToFront(el)
	w.hits++
	return e.Result, true
}

// GetStale returns a materialized result regardless of TTL, along with
// its age in ticks. Brownout mode uses it: when admission control is
// shedding, a stale answer marked stale beats no answer at all (the
// paper's quick-response rationale for warehousing, pushed one step
// further). It does not touch hit/miss stats or LRU order — brownout
// reads must not distort the freshness economics of the normal path.
func (w *Warehouse) GetStale(key string) (res *piql.Result, age int64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	el, found := w.entries[key]
	if !found {
		return nil, 0, false
	}
	e := el.Value.(*Entry)
	return e.Result, w.clock - e.StoredAt, true
}

// Put materializes a result, evicting the least recently used entry when
// full.
func (w *Warehouse) Put(key string, res *piql.Result) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.entries[key]; ok {
		el.Value.(*Entry).Result = res
		el.Value.(*Entry).StoredAt = w.clock
		w.order.MoveToFront(el)
		return
	}
	for len(w.entries) >= w.maxEntries {
		last := w.order.Back()
		if last == nil {
			break
		}
		w.order.Remove(last)
		delete(w.entries, last.Value.(*Entry).Key)
	}
	el := w.order.PushFront(&Entry{Key: key, Result: res, StoredAt: w.clock})
	w.entries[key] = el
}

// Invalidate drops every entry whose key has the given prefix (e.g. all
// materializations touching one source after that source changes).
func (w *Warehouse) Invalidate(prefix string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for el := w.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*Entry)
		if len(e.Key) >= len(prefix) && e.Key[:len(prefix)] == prefix {
			w.order.Remove(el)
			delete(w.entries, e.Key)
			n++
		}
		el = next
	}
	return n
}

// Stats returns hit/miss counters and the current size.
func (w *Warehouse) Stats() (hits, misses, size int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits, w.misses, len(w.entries)
}
