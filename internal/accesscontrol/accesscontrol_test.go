package accesscontrol

import "testing"

func TestRBACBasic(t *testing.T) {
	r := NewRBAC()
	if err := r.Grant("nurse", Read, "//patient/name"); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("physician", Read, "//patient//*"); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("physician", Write, "//patient/treatment"); err != nil {
		t.Fatal(err)
	}
	r.Assign("alice", "nurse")
	r.Assign("bob", "physician")

	if !r.Can("alice", Read, "/hospital/patient/name") {
		t.Error("nurse should read name")
	}
	if r.Can("alice", Read, "/hospital/patient/diagnosis") {
		t.Error("nurse should not read diagnosis")
	}
	if r.Can("alice", Write, "/hospital/patient/name") {
		t.Error("read grant must not imply write")
	}
	if !r.Can("bob", Read, "/hospital/patient/diagnosis") {
		t.Error("physician should read diagnosis")
	}
	if !r.Can("bob", Write, "/hospital/patient/treatment") {
		t.Error("physician should write treatment")
	}
	if r.Can("carol", Read, "/hospital/patient/name") {
		t.Error("unknown subject should be denied")
	}
}

func TestRBACHierarchy(t *testing.T) {
	r := NewRBAC()
	if err := r.Grant("staff", Read, "//roster"); err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("nurse", Read, "//patient/name"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddInheritance("nurse", "staff"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddInheritance("physician", "nurse"); err != nil {
		t.Fatal(err)
	}
	r.Assign("bob", "physician")
	// physician -> nurse -> staff: transitive inheritance.
	if !r.Can("bob", Read, "/hospital/roster") {
		t.Error("physician should inherit staff permission transitively")
	}
	if !r.Can("bob", Read, "/hospital/patient/name") {
		t.Error("physician should inherit nurse permission")
	}
	// Junior does not gain senior's permissions.
	r.Assign("alice", "staff")
	if r.Can("alice", Read, "/hospital/patient/name") {
		t.Error("staff must not inherit upward")
	}
}

func TestRBACCycleRejected(t *testing.T) {
	r := NewRBAC()
	if err := r.AddInheritance("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddInheritance("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddInheritance("c", "a"); err == nil {
		t.Error("cycle should be rejected")
	}
	if err := r.AddInheritance("a", "a"); err == nil {
		t.Error("self-inheritance should be rejected")
	}
}

func TestRBACBadPattern(t *testing.T) {
	r := NewRBAC()
	if err := r.Grant("x", Read, "//"); err == nil {
		t.Error("bad pattern should fail")
	}
}

func TestRolesOfSorted(t *testing.T) {
	r := NewRBAC()
	r.Assign("alice", "zeta", "alpha")
	roles := r.RolesOf("alice")
	if len(roles) != 2 || roles[0] != "alpha" {
		t.Errorf("RolesOf = %v", roles)
	}
}

func TestMLSReadWrite(t *testing.T) {
	m := NewMLS()
	if err := m.Classify("//patient/diagnosis", Confidential); err != nil {
		t.Fatal(err)
	}
	if err := m.Classify("//patient/ssn", Secret); err != nil {
		t.Fatal(err)
	}
	m.SetClearance("alice", Internal)
	m.SetClearance("bob", Confidential)

	// No read up.
	if m.CanRead("alice", "/h/patient/diagnosis") {
		t.Error("internal clearance must not read confidential")
	}
	if !m.CanRead("bob", "/h/patient/diagnosis") {
		t.Error("confidential clearance should read confidential")
	}
	if m.CanRead("bob", "/h/patient/ssn") {
		t.Error("confidential must not read secret")
	}
	// Unclassified items are public: everyone reads.
	if !m.CanRead("alice", "/h/patient/name") {
		t.Error("public items readable by all")
	}
	// No write down.
	if m.CanWrite("bob", "/h/patient/name") {
		t.Error("confidential subject must not write public item")
	}
	if !m.CanWrite("alice", "/h/patient/diagnosis") {
		t.Error("internal subject may write up to confidential")
	}
	// Unknown subject is Public: reads public only.
	if m.CanRead("zz", "/h/patient/diagnosis") {
		t.Error("unknown subject should have public clearance")
	}
}

func TestMLSHighestClassificationWins(t *testing.T) {
	m := NewMLS()
	if err := m.Classify("//patient//*", Internal); err != nil {
		t.Fatal(err)
	}
	if err := m.Classify("//ssn", Secret); err != nil {
		t.Fatal(err)
	}
	if got := m.LevelOf("/h/patient/ssn"); got != Secret {
		t.Errorf("level = %v, want secret", got)
	}
	if got := m.LevelOf("/h/patient/name"); got != Internal {
		t.Errorf("level = %v, want internal", got)
	}
	if err := m.Classify("//", Secret); err == nil {
		t.Error("bad pattern should fail")
	}
}

func TestStoreCombines(t *testing.T) {
	s := NewStore()
	if err := s.RBAC.Grant("physician", Read, "//patient//*"); err != nil {
		t.Fatal(err)
	}
	s.RBAC.Assign("bob", "physician")
	if err := s.MLS.Classify("//patient/ssn", Secret); err != nil {
		t.Fatal(err)
	}
	s.MLS.SetClearance("bob", Confidential)

	if !s.Check("bob", Read, "/h/patient/diagnosis") {
		t.Error("RBAC+MLS should both pass for diagnosis")
	}
	// RBAC passes but MLS blocks.
	if s.Check("bob", Read, "/h/patient/ssn") {
		t.Error("MLS should block secret item")
	}
	// MLS passes but RBAC blocks.
	if s.Check("intruder", Read, "/h/patient/diagnosis") {
		t.Error("RBAC should block unassigned subject")
	}
	// Write path consults star property.
	if err := s.RBAC.Grant("physician", Write, "//patient/ssn"); err != nil {
		t.Fatal(err)
	}
	if !s.Check("bob", Write, "/h/patient/ssn") {
		t.Error("write up should be permitted by star property")
	}
}

func TestActionAndLevelStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("action names")
	}
	for l, want := range map[Level]string{
		Public: "public", Internal: "internal", Confidential: "confidential", Secret: "secret",
	} {
		if l.String() != want {
			t.Errorf("level %d = %q", int(l), l.String())
		}
	}
}
