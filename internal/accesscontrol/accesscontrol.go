// Package accesscontrol implements the classical security layer the paper
// positions privacy *beyond* (Section 2, "Secured Databases"): role-based
// access control with a role hierarchy, and multi-level security with
// no-read-up / no-write-down rules. The query rewriter consults this layer
// first — "produces a query that will only retrieve the information that
// can be accessed by the requester" — and the privacy machinery then
// handles what access control cannot: secondary analysis by authorized
// users.
package accesscontrol

import (
	"fmt"
	"sort"
	"sync"

	"privateiye/internal/xmltree"
)

// Action is an access mode.
type Action int

// Access modes.
const (
	Read Action = iota
	Write
)

// String names the action.
func (a Action) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// Role is a named role.
type Role string

// Permission grants an action on items matching a path pattern.
type Permission struct {
	Item   string
	Action Action

	pattern *xmltree.PathPattern
}

// RBAC is a role-based access control store: a role hierarchy (senior
// roles inherit the permissions of junior roles), role-permission grants,
// and subject-role assignments.
type RBAC struct {
	mu       sync.RWMutex
	juniors  map[Role][]Role // role -> directly inherited (junior) roles
	grants   map[Role][]Permission
	assigned map[string][]Role // subject -> roles
}

// NewRBAC returns an empty store.
func NewRBAC() *RBAC {
	return &RBAC{
		juniors:  map[Role][]Role{},
		grants:   map[Role][]Permission{},
		assigned: map[string][]Role{},
	}
}

// AddInheritance makes senior inherit all permissions of junior. Cycles
// are rejected.
func (r *RBAC) AddInheritance(senior, junior Role) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if senior == junior {
		return fmt.Errorf("accesscontrol: role %q cannot inherit itself", senior)
	}
	// Reject if senior is already reachable from junior.
	if r.reachableLocked(junior, senior) {
		return fmt.Errorf("accesscontrol: inheritance %q -> %q would create a cycle", senior, junior)
	}
	r.juniors[senior] = append(r.juniors[senior], junior)
	return nil
}

// reachableLocked reports whether target is reachable from start through
// the inheritance graph. Caller holds the lock.
func (r *RBAC) reachableLocked(start, target Role) bool {
	if start == target {
		return true
	}
	seen := map[Role]bool{}
	stack := []Role{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, r.juniors[n]...)
	}
	return false
}

// Grant gives a role a permission.
func (r *RBAC) Grant(role Role, action Action, itemPattern string) error {
	p, err := xmltree.CompilePattern(itemPattern)
	if err != nil {
		return fmt.Errorf("accesscontrol: grant: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.grants[role] = append(r.grants[role], Permission{Item: itemPattern, Action: action, pattern: p})
	return nil
}

// Assign gives a subject a role.
func (r *RBAC) Assign(subject string, roles ...Role) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assigned[subject] = append(r.assigned[subject], roles...)
}

// RolesOf returns the subject's directly assigned roles, sorted.
func (r *RBAC) RolesOf(subject string) []Role {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]Role(nil), r.assigned[subject]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// effectiveRoles returns the subject's roles plus everything they inherit.
func (r *RBAC) effectiveRoles(subject string) []Role {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[Role]bool{}
	var stack []Role
	stack = append(stack, r.assigned[subject]...)
	var out []Role
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, r.juniors[n]...)
	}
	return out
}

// Can reports whether the subject may perform the action on the item path
// through any effective role.
func (r *RBAC) Can(subject string, action Action, itemPath string) bool {
	for _, role := range r.effectiveRoles(subject) {
		r.mu.RLock()
		perms := r.grants[role]
		r.mu.RUnlock()
		for i := range perms {
			if perms[i].Action == action && perms[i].pattern.Matches(itemPath) {
				return true
			}
		}
	}
	return false
}

// Level is a multi-level security classification.
type Level int

// Security levels, lowest first.
const (
	Public Level = iota
	Internal
	Confidential
	Secret
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Public:
		return "public"
	case Internal:
		return "internal"
	case Confidential:
		return "confidential"
	case Secret:
		return "secret"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// MLS is a multi-level security store: clearances for subjects and
// classifications for item patterns. The paper: "A query with a lower
// level of security cannot read a data item requiring higher level of
// clearance, while a higher security query cannot write a lower security
// data item."
type MLS struct {
	mu         sync.RWMutex
	clearances map[string]Level
	classified []classification
}

type classification struct {
	pattern *xmltree.PathPattern
	level   Level
}

// NewMLS returns an empty store. Unclassified items are Public;
// subjects without a clearance are Public.
func NewMLS() *MLS {
	return &MLS{clearances: map[string]Level{}}
}

// SetClearance records a subject's clearance.
func (m *MLS) SetClearance(subject string, l Level) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clearances[subject] = l
}

// Classify labels items matching the pattern with the level. When several
// patterns match an item, the highest classification wins.
func (m *MLS) Classify(itemPattern string, l Level) error {
	p, err := xmltree.CompilePattern(itemPattern)
	if err != nil {
		return fmt.Errorf("accesscontrol: classify: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.classified = append(m.classified, classification{pattern: p, level: l})
	return nil
}

// LevelOf returns the classification of an item path.
func (m *MLS) LevelOf(itemPath string) Level {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := Public
	for _, c := range m.classified {
		if c.pattern.Matches(itemPath) && c.level > best {
			best = c.level
		}
	}
	return best
}

// ClearanceOf returns the subject's clearance.
func (m *MLS) ClearanceOf(subject string) Level {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.clearances[subject]
}

// CanRead applies the simple-security ("no read up") rule.
func (m *MLS) CanRead(subject, itemPath string) bool {
	return m.ClearanceOf(subject) >= m.LevelOf(itemPath)
}

// CanWrite applies the star-property ("no write down") rule.
func (m *MLS) CanWrite(subject, itemPath string) bool {
	return m.ClearanceOf(subject) <= m.LevelOf(itemPath)
}

// Store is the combined Access Control box of Figure 2(a): RBAC and MLS
// checked together. Access requires both to agree.
type Store struct {
	RBAC *RBAC
	MLS  *MLS
}

// NewStore returns a combined store with empty RBAC and MLS layers.
func NewStore() *Store {
	return &Store{RBAC: NewRBAC(), MLS: NewMLS()}
}

// Check reports whether the subject can perform the action on the item.
func (s *Store) Check(subject string, action Action, itemPath string) bool {
	if !s.RBAC.Can(subject, action, itemPath) {
		return false
	}
	if action == Read {
		return s.MLS.CanRead(subject, itemPath)
	}
	return s.MLS.CanWrite(subject, itemPath)
}
