package attack

import (
	"math"
	"testing"

	"privateiye/internal/clinical"
)

// paperIntervals are the nine intervals of Figure 1(d), [party][attr],
// parties HMO2..HMO4.
var paperIntervals = [3][3][2]float64{
	{{87.2, 88.5}, {58.6, 59.8}, {46.8, 47.9}}, // HMO2
	{{82.8, 86.4}, {48.1, 52.3}, {44.5, 47.2}}, // HMO3
	{{82.9, 86.7}, {48.6, 53.1}, {44.5, 47.4}}, // HMO4
}

func figure1Knowledge() *Knowledge {
	k := FromPublished(clinical.Figure1Published(), 0, clinical.Figure1HMO1Row())
	// Calibrated effective tolerance of the paper's own solver (see
	// EXPERIMENTS.md E4).
	k.Tolerance = 0.025
	return k
}

func TestValidate(t *testing.T) {
	good := figure1Knowledge()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid knowledge rejected: %v", err)
	}
	cases := []func(*Knowledge){
		func(k *Knowledge) { k.AttrMean = nil },
		func(k *Knowledge) { k.AttrSigma = k.AttrSigma[:1] },
		func(k *Knowledge) { k.OwnRow = k.OwnRow[:1] },
		func(k *Knowledge) { k.PartyMean = k.PartyMean[:1] },
		func(k *Knowledge) { k.OwnIndex = 9 },
		func(k *Knowledge) { k.Hi = k.Lo },
		func(k *Knowledge) { k.Tolerance = -1 },
	}
	for i, mut := range cases {
		k := figure1Knowledge()
		mut(k)
		if err := k.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// The headline reproduction: the attack regenerates Figure 1(d). Every
// bound must land within 0.5 percentage points of the paper's, and every
// paper interval must be (approximately) contained in ours — the attack
// may be slightly conservative but must not claim impossible tightness.
func TestFigure1dIntervalsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	k := figure1Knowledge()
	inf, err := k.Infer(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		for a := 0; a < 3; a++ {
			got := inf.Intervals[h+1][a]
			want := paperIntervals[h][a]
			if math.Abs(got.Lo-want[0]) > 0.5 || math.Abs(got.Hi-want[1]) > 0.5 {
				t.Errorf("HMO%d attr %d: got [%.1f, %.1f], paper [%.1f, %.1f]",
					h+2, a, got.Lo, got.Hi, want[0], want[1])
			}
			if got.Lo > want[0]+0.5 || got.Hi < want[1]-0.5 {
				t.Errorf("HMO%d attr %d: our interval [%.1f, %.1f] excludes part of the paper's [%.1f, %.1f]",
					h+2, a, got.Lo, got.Hi, want[0], want[1])
			}
		}
	}
	// The hidden ground truth must be inside every inferred interval
	// (soundness of the attack).
	gt := clinical.Figure1GroundTruth()
	for h := 1; h < 4; h++ {
		for a := 0; a < 3; a++ {
			iv := inf.Intervals[h][a]
			if gt[h][a] < iv.Lo-0.05 || gt[h][a] > iv.Hi+0.05 {
				t.Errorf("ground truth %v outside inferred [%v, %v] for HMO%d attr %d",
					gt[h][a], iv.Lo, iv.Hi, h+1, a)
			}
		}
	}
}

func TestInferOwnRowExact(t *testing.T) {
	k := figure1Knowledge()
	inf, err := k.Infer(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	own := clinical.Figure1HMO1Row()
	for a, v := range own {
		iv := inf.Intervals[0][a]
		if iv.Lo != v || iv.Hi != v {
			t.Errorf("own cell %d = [%v,%v], want pinned at %v", a, iv.Lo, iv.Hi, v)
		}
	}
	if inf.Parties != 4 || inf.Attrs != 3 {
		t.Errorf("shape = %dx%d", inf.Parties, inf.Attrs)
	}
}

func TestDisclosureMeasures(t *testing.T) {
	k := figure1Knowledge()
	inf, err := k.Infer(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's whole point: aggregates narrow hidden cells drastically.
	// The widest paper interval is ~5 points out of a 100-point prior, so
	// disclosure should be at least 0.9 everywhere hidden.
	for h := 1; h < 4; h++ {
		for a := 0; a < 3; a++ {
			if d := inf.Disclosure(h, a); d < 0.9 {
				t.Errorf("disclosure(%d,%d) = %v, want >= 0.9", h, a, d)
			}
		}
	}
	if md := inf.MaxDisclosure(); md < 0.95 {
		t.Errorf("max disclosure = %v, want >= 0.95", md)
	}
	// Every hidden cell breaches at threshold 0.9; none at threshold
	// above 1.
	if got := len(inf.Breaches(0.9)); got != 9 {
		t.Errorf("breaches(0.9) = %d, want 9", got)
	}
	if got := len(inf.Breaches(1.1)); got != 0 {
		t.Errorf("breaches(1.1) = %d, want 0", got)
	}
}

func TestInferInfeasibleAggregates(t *testing.T) {
	k := figure1Knowledge()
	// A published sigma impossible to reconcile with the snooper's own
	// row: own deviates from the mean by 8 points but sigma says total
	// spread is only 1.
	k.AttrSigma = []float64{0.1, 0.1, 0.1}
	k.Tolerance = 0.001
	if _, err := k.Infer(FastOptions()); err == nil {
		t.Error("impossible aggregates should fail to converge")
	}
}

func TestQuickBoundsLooserButSound(t *testing.T) {
	k := figure1Knowledge()
	quick, err := k.QuickBounds()
	if err != nil {
		t.Fatal(err)
	}
	inf, err := k.Infer(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h < 4; h++ {
		for a := 0; a < 3; a++ {
			q, full := quick[h][a], inf.Intervals[h][a]
			// Quick bounds drop constraints, so they must contain the full
			// solution (small numeric slack allowed).
			if q.Lo > full.Lo+0.3 || q.Hi < full.Hi-0.3 {
				t.Errorf("cell (%d,%d): quick [%v,%v] does not contain full [%v,%v]",
					h, a, q.Lo, q.Hi, full.Lo, full.Hi)
			}
		}
	}
	// Quick disclosure is still strong on Figure 1 (the per-attribute
	// constraints do most of the narrowing).
	d, err := k.QuickMaxDisclosure()
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.8 {
		t.Errorf("quick max disclosure = %v, want >= 0.8", d)
	}
}

func TestQuickBoundsGroundTruthInside(t *testing.T) {
	k := figure1Knowledge()
	k.Tolerance = 0.05 // full rounding band
	quick, err := k.QuickBounds()
	if err != nil {
		t.Fatal(err)
	}
	gt := clinical.Figure1GroundTruth()
	for h := 1; h < 4; h++ {
		for a := 0; a < 3; a++ {
			iv := quick[h][a]
			if gt[h][a] < iv.Lo || gt[h][a] > iv.Hi {
				t.Errorf("ground truth %v outside quick bounds [%v,%v] at (%d,%d)",
					gt[h][a], iv.Lo, iv.Hi, h, a)
			}
		}
	}
}

func TestQuickBoundsInconsistentOwnRow(t *testing.T) {
	k := figure1Knowledge()
	k.OwnRow = []float64{5, 56, 43} // 78 points below the mean, sigma 5.7
	if _, err := k.QuickBounds(); err == nil {
		t.Error("own row inconsistent with sigma should error")
	}
}

// Generalization beyond 4x3: on a synthetic 6-HMO, 4-test matrix, the
// attack's intervals must always contain the hidden truth.
func TestInferSoundOnSyntheticMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	g := clinical.NewGenerator(17)
	m := g.ComplianceMatrix(6, 4)
	pub, err := clinical.PublishFromMatrix(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := FromPublished(pub, 2, m[2])
	inf, err := k.Infer(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 6; h++ {
		if h == 2 {
			continue
		}
		for a := 0; a < 4; a++ {
			iv := inf.Intervals[h][a]
			if m[h][a] < iv.Lo-0.2 || m[h][a] > iv.Hi+0.2 {
				t.Errorf("hidden %v outside inferred [%v,%v] at (%d,%d)",
					m[h][a], iv.Lo, iv.Hi, h, a)
			}
		}
	}
}

// Outsider snooper: no own row, only the published aggregates. The
// intervals must still narrow substantially (the Figure 1 aggregates are
// that disclosive) while containing every party's true row.
func TestOutsiderAttack(t *testing.T) {
	pub := clinical.Figure1Published()
	k := &Knowledge{
		AttrMean:    pub.TestMean,
		AttrSigma:   pub.TestSigma,
		PartyMean:   pub.HMOMean,
		OwnIndex:    -1,
		Tolerance:   0.05,
		SampleSigma: true,
		Lo:          0,
		Hi:          100,
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// Outsider with an own row is invalid.
	bad := *k
	bad.OwnRow = []float64{1, 2, 3}
	if err := bad.Validate(); err == nil {
		t.Error("outsider with own row should be invalid")
	}

	bounds, err := k.QuickBounds()
	if err != nil {
		t.Fatal(err)
	}
	gt := clinical.Figure1GroundTruth()
	for h := 0; h < 4; h++ {
		for a := 0; a < 3; a++ {
			iv := bounds[h][a]
			if gt[h][a] < iv.Lo || gt[h][a] > iv.Hi {
				t.Errorf("truth %v outside outsider bounds [%v,%v] at (%d,%d)",
					gt[h][a], iv.Lo, iv.Hi, h, a)
			}
			if iv.Width() > 40 {
				t.Errorf("outsider bounds uselessly wide at (%d,%d): %v", h, a, iv.Width())
			}
		}
	}
	d, err := k.QuickMaxDisclosure()
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.7 {
		t.Errorf("outsider disclosure = %v, want >= 0.7 (Figure 1 aggregates are disclosive even to outsiders)", d)
	}
	// The full solver agrees and is sound.
	inf, err := k.Infer(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		for a := 0; a < 3; a++ {
			iv := inf.Intervals[h][a]
			if gt[h][a] < iv.Lo-0.2 || gt[h][a] > iv.Hi+0.2 {
				t.Errorf("truth %v outside inferred [%v,%v] at (%d,%d)", gt[h][a], iv.Lo, iv.Hi, h, a)
			}
		}
	}
}
