package attack

import (
	"fmt"
	"math"

	"privateiye/internal/nlp"
)

// QuickBounds computes closed-form per-cell bounds using only the
// per-attribute constraints (mean and sigma), ignoring the per-party
// means. The m hidden values of one attribute lie on the intersection of a
// hyperplane (known sum) and a sphere (known sum of squared deviations),
// and a coordinate on that (m-2)-sphere spans
//
//	centroid ± r * sqrt((m-1)/m).
//
// These bounds are looser than Infer's — they drop constraints — but cost
// O(attrs) instead of a nonlinear solve, so the audit layer uses them as a
// first screen: if even QuickBounds shows no disclosure above threshold,
// the expensive Infer is skipped.
func (k *Knowledge) QuickBounds() ([][]nlp.Interval, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	attrs := len(k.AttrMean)
	parties := len(k.PartyMean)
	m := float64(parties - 1) // hidden values per attribute
	if k.OwnIndex == -1 {
		m = float64(parties) // outsider: every value is hidden
	}

	out := make([][]nlp.Interval, parties)
	for h := range out {
		out[h] = make([]nlp.Interval, attrs)
	}
	for t, v := range k.OwnRow {
		out[k.OwnIndex][t] = nlp.Interval{Lo: v, Hi: v}
	}

	for t := 0; t < attrs; t++ {
		// Worst-case over the tolerance band: widest when sigma is at the
		// top of its band and the mean at either end.
		mu := k.AttrMean[t]
		sigma := k.AttrSigma[t] + k.Tolerance
		divisor := float64(parties)
		if k.SampleSigma {
			divisor = float64(parties - 1)
		}
		// Total squared deviation about the mean.
		total := sigma * sigma * divisor
		// The snooper's own deviation uses the least favourable mean in
		// the band (minimizing its own share leaves more spread for the
		// hidden values). Outsiders contribute no known value.
		own := 0.0
		rem := total
		if k.OwnIndex >= 0 {
			own = k.OwnRow[t]
			ownDev := math.Abs(own - mu)
			ownDev = math.Max(0, ownDev-k.Tolerance)
			rem = total - ownDev*ownDev
			if rem < 0 {
				return nil, fmt.Errorf("attack: attribute %d: own value inconsistent with published sigma", t)
			}
		}
		// Hidden sum: parties*mu - own, with mean tolerance.
		sumLo := float64(parties)*(mu-k.Tolerance) - own
		sumHi := float64(parties)*(mu+k.Tolerance) - own
		// rem is deviation about the overall mean; converting to deviation
		// about the hidden centroid only shrinks it, so rem is a valid
		// upper bound for the sphere radius^2.
		r := math.Sqrt(rem)
		coordSpread := r * math.Sqrt((m-1)/m)
		cLo := sumLo / m
		cHi := sumHi / m
		lo := math.Max(k.Lo, cLo-coordSpread)
		hi := math.Min(k.Hi, cHi+coordSpread)
		for _, h := range k.hiddenParties() {
			out[h][t] = nlp.Interval{Lo: lo, Hi: hi}
		}
	}
	return out, nil
}

// QuickMaxDisclosure is MaxDisclosure over QuickBounds: a cheap lower
// bound on the true disclosure (looser bounds can only understate it, but
// in practice the per-attribute constraints carry most of the narrowing).
func (k *Knowledge) QuickMaxDisclosure() (float64, error) {
	bounds, err := k.QuickBounds()
	if err != nil {
		return 0, err
	}
	prior := k.Hi - k.Lo
	worst := 0.0
	for h, row := range bounds {
		if h == k.OwnIndex {
			continue
		}
		for _, iv := range row {
			d := 1 - iv.Width()/prior
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
