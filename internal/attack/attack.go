// Package attack implements the inference attack of the paper's Figure 1,
// generalized to any number of parties and attributes.
//
// The setting: an integrator publishes, for a matrix of confidential
// values x[party][attr], the per-attribute mean and standard deviation
// across parties (Figure 1(a)) and the per-party mean across attributes
// (Figure 1(b)). A snooping party knows its own row exactly (Figure 1(c))
// and computes, for every hidden cell, the interval of values consistent
// with everything published (Figure 1(d)) — "using a Non-Linear
// Programming technique", which here is internal/nlp's solver minimizing
// and maximizing each hidden coordinate over the published-aggregate
// constraint set.
//
// The same engine runs defensively: the mediation engine's Privacy Control
// calls Infer on aggregates it is about to release and refuses the release
// if any cell's feasible interval narrows below a source's threshold.
package attack

import (
	"errors"
	"fmt"
	"math"

	"privateiye/internal/clinical"
	"privateiye/internal/nlp"
	"privateiye/internal/stats"
)

// Knowledge is everything the snooper knows: the published aggregates plus
// its own row. Indices: attributes t in [0,Attrs), parties h in [0,Parties).
type Knowledge struct {
	// AttrMean[t] is the published mean of attribute t across all parties.
	AttrMean []float64
	// AttrSigma[t] is the published standard deviation of attribute t.
	AttrSigma []float64
	// PartyMean[h] is the published mean of party h across attributes.
	PartyMean []float64
	// OwnIndex is the snooper's party index, or -1 for an *outsider*
	// snooper who holds no row of its own — the weakest adversary, used
	// by the mediator's release ledger to lower-bound what anyone can
	// infer from a pair of published aggregate releases.
	OwnIndex int
	// OwnRow is the snooper's own (exactly known) attribute values; nil
	// when OwnIndex is -1.
	OwnRow []float64
	// Tolerance is the accuracy the snooper assumes of each published
	// value. Published values are rounded, so the natural setting is the
	// rounding half-width (0.05 for one decimal place). Calibration shows
	// the paper's own Figure 1(d) corresponds to 0.025 (EXPERIMENTS.md E4).
	Tolerance float64
	// SampleSigma selects the (n-1) sample standard deviation, which is
	// what the paper's integrator published (EXPERIMENTS.md E4).
	SampleSigma bool
	// Lo, Hi bound the attribute domain (compliance rates: 0 and 100).
	Lo, Hi float64
}

// FromPublished assembles snooper knowledge from a clinical aggregate
// release, taking the snooper's own row from ownRow.
func FromPublished(p *clinical.Published, ownIndex int, ownRow []float64) *Knowledge {
	return &Knowledge{
		AttrMean:    append([]float64(nil), p.TestMean...),
		AttrSigma:   append([]float64(nil), p.TestSigma...),
		PartyMean:   append([]float64(nil), p.HMOMean...),
		OwnIndex:    ownIndex,
		OwnRow:      append([]float64(nil), ownRow...),
		Tolerance:   stats.RoundingHalfWidth(p.Places),
		SampleSigma: true,
		Lo:          0,
		Hi:          100,
	}
}

// Validate checks shape consistency.
func (k *Knowledge) Validate() error {
	a := len(k.AttrMean)
	if a == 0 {
		return errors.New("attack: no attributes")
	}
	if len(k.AttrSigma) != a {
		return fmt.Errorf("attack: %d sigmas for %d attributes", len(k.AttrSigma), a)
	}
	p := len(k.PartyMean)
	if p < 2 {
		return fmt.Errorf("attack: %d parties, need at least 2", p)
	}
	if k.OwnIndex == -1 {
		if len(k.OwnRow) != 0 {
			return fmt.Errorf("attack: outsider snooper cannot hold an own row")
		}
	} else {
		if len(k.OwnRow) != a {
			return fmt.Errorf("attack: own row has %d attributes, want %d", len(k.OwnRow), a)
		}
		if k.OwnIndex < 0 || k.OwnIndex >= p {
			return fmt.Errorf("attack: own index %d out of [0,%d)", k.OwnIndex, p)
		}
	}
	if k.Hi <= k.Lo {
		return fmt.Errorf("attack: empty domain [%v,%v]", k.Lo, k.Hi)
	}
	if k.Tolerance < 0 {
		return fmt.Errorf("attack: negative tolerance %v", k.Tolerance)
	}
	return nil
}

// Inference is the attack result: a feasible interval for every cell.
type Inference struct {
	Parties, Attrs int
	OwnIndex       int
	// Intervals[h][t] is the feasible interval for party h, attribute t.
	// The snooper's own row appears as zero-width intervals at its known
	// values.
	Intervals [][]nlp.Interval
	// Prior is the a-priori interval (the attribute domain) against which
	// disclosure is measured.
	Prior nlp.Interval
}

// hiddenParties lists party indices other than the snooper's.
func (k *Knowledge) hiddenParties() []int {
	out := make([]int, 0, len(k.PartyMean)-1)
	for h := range k.PartyMean {
		if h != k.OwnIndex {
			out = append(out, h)
		}
	}
	return out
}

// problem builds the NLP over the hidden cells. Variable layout: for
// hidden party rank j (in hiddenParties order) and attribute t, the
// unknown x[j*Attrs+t].
func (k *Knowledge) problem() *nlp.Problem {
	attrs := len(k.AttrMean)
	hidden := k.hiddenParties()
	dim := len(hidden) * attrs
	parties := float64(len(k.PartyMean))

	var ineq []nlp.Constraint
	band := func(f func(x []float64) float64, centre float64) {
		lo, hi := centre-k.Tolerance, centre+k.Tolerance
		ineq = append(ineq,
			func(x []float64) float64 { return lo - f(x) },
			func(x []float64) float64 { return f(x) - hi },
		)
	}

	for t := 0; t < attrs; t++ {
		t := t
		colMean := func(x []float64) float64 {
			s := 0.0
			if k.OwnIndex >= 0 {
				s = k.OwnRow[t]
			}
			for j := range hidden {
				s += x[j*attrs+t]
			}
			return s / parties
		}
		band(colMean, k.AttrMean[t])

		divisor := parties
		if k.SampleSigma {
			divisor = parties - 1
		}
		colSigma := func(x []float64) float64 {
			m := colMean(x)
			s := 0.0
			if k.OwnIndex >= 0 {
				d := k.OwnRow[t] - m
				s = d * d
			}
			for j := range hidden {
				d := x[j*attrs+t] - m
				s += d * d
			}
			return math.Sqrt(s / divisor)
		}
		band(colSigma, k.AttrSigma[t])
	}
	for j, h := range hidden {
		j, h := j, h
		rowMean := func(x []float64) float64 {
			s := 0.0
			for t := 0; t < attrs; t++ {
				s += x[j*attrs+t]
			}
			return s / float64(attrs)
		}
		band(rowMean, k.PartyMean[h])
	}

	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range lo {
		lo[i], hi[i] = k.Lo, k.Hi
	}
	return &nlp.Problem{
		Dim:          dim,
		Objective:    func(x []float64) float64 { return 0 },
		Inequalities: ineq,
		Lower:        lo,
		Upper:        hi,
	}
}

// DefaultOptions are solver settings calibrated on the Figure 1 instance:
// they reproduce the paper's intervals to within a few tenths of a point
// in a few seconds.
func DefaultOptions() nlp.Options {
	return nlp.Options{Starts: 24, MaxInner: 400, MaxOuter: 50, Tol: 1e-5}
}

// FastOptions trades a little interval tightness for speed; unit tests and
// the mediator's online auditing use these.
func FastOptions() nlp.Options {
	return nlp.Options{Starts: 8, MaxInner: 200, MaxOuter: 30, Tol: 1e-4}
}

// Infer runs the attack: for every hidden cell, the minimum and maximum
// feasible value subject to all published aggregates. An error is returned
// if the published aggregates admit no solution at the assumed tolerance
// (which would mean the snooper's assumptions are wrong).
func (k *Knowledge) Infer(opt nlp.Options) (*Inference, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	attrs := len(k.AttrMean)
	hidden := k.hiddenParties()
	p := k.problem()

	inf := &Inference{
		Parties:  len(k.PartyMean),
		Attrs:    attrs,
		OwnIndex: k.OwnIndex,
		Prior:    nlp.Interval{Lo: k.Lo, Hi: k.Hi},
	}
	inf.Intervals = make([][]nlp.Interval, len(k.PartyMean))
	for h := range inf.Intervals {
		inf.Intervals[h] = make([]nlp.Interval, attrs)
	}
	for t, v := range k.OwnRow {
		inf.Intervals[k.OwnIndex][t] = nlp.Interval{Lo: v, Hi: v}
	}
	for j, h := range hidden {
		for t := 0; t < attrs; t++ {
			iv, err := nlp.CoordinateInterval(p, j*attrs+t, opt)
			if err != nil {
				return nil, fmt.Errorf("attack: party %d attr %d: %w", h, t, err)
			}
			inf.Intervals[h][t] = iv
		}
	}
	return inf, nil
}

// Disclosure measures how much the attack narrowed cell (h, t): 0 means
// the feasible interval still spans the whole prior domain, 1 means the
// value is pinned exactly. This is the "decreasing the range of values an
// item could have" privacy-loss notion the paper's Loss Computation module
// calls for (Section 4, privacy metrics).
func (inf *Inference) Disclosure(h, t int) float64 {
	w := inf.Intervals[h][t].Width()
	pw := inf.Prior.Width()
	if pw <= 0 {
		return 1
	}
	d := 1 - w/pw
	if d < 0 {
		return 0
	}
	return d
}

// MaxDisclosure returns the worst disclosure over all hidden cells.
func (inf *Inference) MaxDisclosure() float64 {
	worst := 0.0
	for h := range inf.Intervals {
		if h == inf.OwnIndex {
			continue
		}
		for t := range inf.Intervals[h] {
			if d := inf.Disclosure(h, t); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Breaches returns the hidden cells whose disclosure meets or exceeds the
// threshold, as (party, attr) pairs.
func (inf *Inference) Breaches(threshold float64) [][2]int {
	var out [][2]int
	for h := range inf.Intervals {
		if h == inf.OwnIndex {
			continue
		}
		for t := range inf.Intervals[h] {
			if inf.Disclosure(h, t) >= threshold {
				out = append(out, [2]int{h, t})
			}
		}
	}
	return out
}
