// Package qcache is a sharded LRU cache for parse/plan artifacts keyed
// by normalized PIQL text. The mediator uses it to skip re-parsing a
// repeated query; a source uses it to skip re-planning (rewrite →
// cluster match → optimize) for a (requester, query) pair it has
// already planned.
//
// What it deliberately does NOT cache: any privacy decision that must
// be evaluated per execution. Release-ledger checks, sequence audits
// and policy-budget enforcement consume state that changes with every
// answered query, so a cached plan is re-subjected to all of them on
// every hit — the cache removes pure recomputation, never a control.
//
// Sharding keeps the hot path uncontended under mediator fan-out: keys
// hash (FNV-1a) onto independently locked LRU shards, so concurrent
// queries for different texts never serialize on one mutex.
package qcache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

const defaultShards = 16

// Cache is a fixed-capacity, sharded LRU map from string keys to
// immutable values. Values must be treated as read-only by every
// consumer: a hit returns the same object to concurrent callers.
type Cache struct {
	shards   []*shard
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type entry struct {
	key string
	val any
}

// New returns a cache holding at most capacity entries (rounded up to a
// multiple of the shard count). Capacity <= 0 returns a nil cache, on
// which every method is a safe no-op miss — callers can keep one code
// path whether caching is enabled or not.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + defaultShards - 1) / defaultShards
	c := &Cache{shards: make([]*shard, defaultShards), perShard: per}
	for i := range c.shards {
		c.shards[i] = &shard{items: make(map[string]*list.Element, per), order: list.New()}
	}
	return c
}

// Normalize canonicalizes PIQL text for keying: surrounding space is
// trimmed and internal runs of whitespace collapse to one space, so
// reformatting a query cannot defeat the cache. It deliberately does
// not lowercase: PIQL string literals are case-significant.
func Normalize(text string) string {
	return strings.Join(strings.Fields(text), " ")
}

func (c *Cache) shardFor(key string) *shard {
	// FNV-1a; inlined to avoid a hash.Hash allocation per lookup.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached value and whether it was present, updating
// recency and the hit/miss counters.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).val, true
}

// Put inserts or refreshes a value, evicting the shard's least recently
// used entry when the shard is full.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= c.perShard {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.items, oldest.Value.(*entry).key)
		}
	}
	s.items[key] = s.order.PushFront(&entry{key: key, val: val})
}

// Purge empties the cache (explicit invalidation: schema refresh at the
// mediator, preference registration at a source). Counters survive so
// operators can still see lifetime hit rates.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.items = make(map[string]*list.Element, c.perShard)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// HitRate returns the lifetime hit ratio in [0,1] — hits over total
// lookups, 0 before the first lookup (and on a nil cache). The two
// counter loads are not atomic together, so under concurrent lookups
// the ratio is approximate by at most one event; /metrics gauges do
// not need better.
func (c *Cache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
