package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestNormalize(t *testing.T) {
	a := Normalize("  FOR //p/row   WHERE //age > 3\n\tRETURN //age ")
	b := Normalize("FOR //p/row WHERE //age > 3 RETURN //age")
	if a != b {
		t.Fatalf("normalization mismatch: %q vs %q", a, b)
	}
	if Normalize("RETURN 'Case Sensitive'") == Normalize("return 'case sensitive'") {
		t.Fatal("Normalize must not fold case")
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("q"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("q", 42)
	v, ok := c.Get("q")
	if !ok || v.(int) != 42 {
		t.Fatalf("got %v/%v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 over 16 shards = one entry per shard: a second key in
	// the same shard must evict the first, never grow unbounded.
	c := New(16)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if got := c.Len(); got > 16 {
		t.Fatalf("cache grew to %d entries past capacity 16", got)
	}
}

func TestLRURecency(t *testing.T) {
	// Single-shard-sized cache: the re-touched entry must survive.
	c := New(1)
	c.Put("a", 1)
	var keyB string
	// Find a key that lands on a's shard so eviction order is observable.
	for i := 0; ; i++ {
		keyB = fmt.Sprintf("b-%d", i)
		if c.shardFor(keyB) == c.shardFor("a") {
			break
		}
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a vanished")
	}
	c.Put(keyB, 2) // shard cap 1: must evict a (LRU) … a was just touched, but cap=1 evicts regardless
	if _, ok := c.Get(keyB); !ok {
		t.Fatal("most recent insert evicted")
	}
}

func TestPurge(t *testing.T) {
	c := New(32)
	c.Put("x", 1)
	c.Purge()
	if _, ok := c.Get("x"); ok {
		t.Fatal("purged entry still present")
	}
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
}

func TestNilCacheIsSafeNoop(t *testing.T) {
	var c *Cache = New(0)
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache counted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k-%d", i%40)
				if v, ok := c.Get(k); ok {
					if v.(string) != k {
						t.Errorf("value corruption: key %q -> %v", k, v)
						return
					}
				} else {
					c.Put(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPurgeRacesGetPut pins Purge's contract under concurrency: once
// Purge returns, no entry that was in the cache before the call is ever
// served again (unless re-Put). Purge locks shard by shard rather than
// stopping the world, so the guarantee has to hold while Get/Put churn
// every shard — run under -race this also proves the locking is sound.
func TestPurgeRacesGetPut(t *testing.T) {
	c := New(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("churn-%d-%d", g, i%64)
				c.Put(k, k)
				if v, ok := c.Get(k); ok && v.(string) != k {
					t.Errorf("value corruption under purge: %q -> %v", k, v)
					return
				}
			}
		}(g)
	}
	for round := 0; round < 200; round++ {
		// Sentinels hash across all shards; nobody re-Puts them.
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("sentinel-%d-%d", round, i)
			c.Put(keys[i], round)
		}
		c.Purge()
		for _, k := range keys {
			if _, ok := c.Get(k); ok {
				t.Fatalf("round %d: purged key %q still served", round, k)
			}
		}
	}
	close(stop)
	wg.Wait()
}
