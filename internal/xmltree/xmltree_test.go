package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

const patientDoc = `
<patients>
  <patient id="p1">
    <name>Alice Ang</name>
    <dob>1971-03-05</dob>
    <diagnosis>diabetes</diagnosis>
    <tests>
      <test type="HbA1c">done</test>
      <test type="eye">pending</test>
    </tests>
  </patient>
  <patient id="p2">
    <name>Bob Baker</name>
    <dob>1980-11-30</dob>
  </patient>
</patients>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseStructure(t *testing.T) {
	root := mustParse(t, patientDoc)
	if root.Name != "patients" {
		t.Fatalf("root = %q, want patients", root.Name)
	}
	ps := root.ChildrenNamed("patient")
	if len(ps) != 2 {
		t.Fatalf("patients = %d, want 2", len(ps))
	}
	if got := ps[0].ChildText("name"); got != "Alice Ang" {
		t.Errorf("name = %q", got)
	}
	if id, _ := ps[0].Attr("id"); id != "p1" {
		t.Errorf("id = %q", id)
	}
	tests := ps[0].Child("tests").ChildrenNamed("test")
	if len(tests) != 2 {
		t.Fatalf("tests = %d, want 2", len(tests))
	}
	if ty, _ := tests[0].Attr("type"); ty != "HbA1c" {
		t.Errorf("type = %q", ty)
	}
	if tests[0].Text != "done" {
		t.Errorf("text = %q", tests[0].Text)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<a>",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestPath(t *testing.T) {
	root := mustParse(t, patientDoc)
	dob := root.ChildrenNamed("patient")[0].Child("dob")
	if got := dob.Path(); got != "/patients/patient/dob" {
		t.Errorf("Path = %q", got)
	}
	if got := root.Path(); got != "/patients" {
		t.Errorf("root Path = %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	root := mustParse(t, patientDoc)
	again := mustParse(t, root.String())
	if !Equal(root, again) {
		t.Fatalf("serialize/parse round trip changed the tree:\n%s\nvs\n%s", root, again)
	}
}

func TestEscaping(t *testing.T) {
	n := NewText("note", `a <b> & "c"`)
	n.SetAttr("k", `v<&>"`)
	parsed := mustParse(t, n.String())
	if parsed.Text != `a <b> & "c"` {
		t.Errorf("text round trip = %q", parsed.Text)
	}
	if v, _ := parsed.Attr("k"); v != `v<&>"` {
		t.Errorf("attr round trip = %q", v)
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	root := mustParse(t, patientDoc)
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone differs")
	}
	if c.Parent != nil {
		t.Fatal("clone parent should be nil")
	}
	// Mutating the clone must not affect the original.
	c.ChildrenNamed("patient")[0].Child("dob").Text = "REDACTED"
	if root.ChildrenNamed("patient")[0].ChildText("dob") == "REDACTED" {
		t.Fatal("clone shares state with original")
	}
}

func TestRemove(t *testing.T) {
	root := mustParse(t, patientDoc)
	p1 := root.ChildrenNamed("patient")[0]
	dob := p1.Child("dob")
	dob.Remove()
	if p1.Child("dob") != nil {
		t.Fatal("dob should be removed")
	}
	if dob.Parent != nil {
		t.Fatal("removed node should have nil parent")
	}
	// Removing an already-detached node is a no-op.
	dob.Remove()
}

func TestWalkPrune(t *testing.T) {
	root := mustParse(t, patientDoc)
	var visited []string
	root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "patient" // prune below patients
	})
	for _, name := range visited {
		if name == "dob" || name == "name" {
			t.Fatalf("walk did not prune: visited %v", visited)
		}
	}
}

func TestDescendantsCount(t *testing.T) {
	root := mustParse(t, patientDoc)
	// patients + 2 patient + (name,dob,diagnosis,tests,2 test) + (name,dob)
	if got := len(root.Descendants()); got != 11 {
		t.Fatalf("descendants = %d, want 11", got)
	}
}

func TestSummary(t *testing.T) {
	root := mustParse(t, patientDoc)
	s := NewSummary()
	s.AddDocument(root)
	if !s.Has("/patients/patient/dob") {
		t.Fatal("summary missing dob path")
	}
	paths := s.Paths()
	byPath := map[string]PathInfo{}
	for _, p := range paths {
		byPath[p.Path] = p
	}
	if byPath["/patients/patient"].Count != 2 {
		t.Errorf("patient count = %d, want 2", byPath["/patients/patient"].Count)
	}
	if !byPath["/patients/patient/dob"].Leaf {
		t.Error("dob should be a leaf")
	}
	if byPath["/patients/patient/tests"].Leaf {
		t.Error("tests should not be a leaf")
	}
}

func TestSummaryRedactAndMerge(t *testing.T) {
	root := mustParse(t, patientDoc)
	s := NewSummary()
	s.AddDocument(root)
	red := s.Redact(func(p string) bool { return strings.Contains(p, "dob") })
	if red.Has("/patients/patient/dob") {
		t.Fatal("redacted summary still exposes dob")
	}
	if !red.Has("/patients/patient/name") {
		t.Fatal("redaction dropped an unrelated path")
	}
	// The original is untouched.
	if !s.Has("/patients/patient/dob") {
		t.Fatal("Redact mutated the receiver")
	}

	other := NewSummary()
	other.AddDocument(mustParse(t, `<patients><patient><ssn>123</ssn></patient></patients>`))
	red.Merge(other)
	if !red.Has("/patients/patient/ssn") {
		t.Fatal("merge missed new path")
	}
}

func TestSummaryLeafNames(t *testing.T) {
	root := mustParse(t, patientDoc)
	s := NewSummary()
	s.AddDocument(root)
	names := s.LeafNames()
	want := map[string]bool{"name": true, "dob": true, "diagnosis": true, "test": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected leaf name %q", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing leaf names: %v", want)
	}
}

func TestSummaryNodeRoundTrip(t *testing.T) {
	root := mustParse(t, patientDoc)
	s := NewSummary()
	s.AddDocument(root)
	back := SummaryFromNode(s.ToNode())
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost paths: %d vs %d", back.Len(), s.Len())
	}
	for _, p := range s.Paths() {
		if !back.Has(p.Path) {
			t.Errorf("round trip lost %q", p.Path)
		}
	}
}

func TestChildTextMissing(t *testing.T) {
	n := NewElem("x")
	if got := n.ChildText("nope"); got != "" {
		t.Errorf("ChildText on missing child = %q", got)
	}
}

// Property: Clone always yields an Equal tree, for random trees.
func TestCloneEqualProperty(t *testing.T) {
	gen := func(seed int64) *Node {
		// Build a small deterministic random tree from the seed.
		state := uint64(seed)
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		names := []string{"a", "b", "c", "d"}
		var build func(depth int) *Node
		build = func(depth int) *Node {
			n := NewElem(names[next(len(names))])
			if next(2) == 0 {
				n.Text = names[next(len(names))]
			}
			if depth < 3 {
				for i := 0; i < next(4); i++ {
					n.Append(build(depth + 1))
				}
			}
			return n
		}
		return build(0)
	}
	f := func(seed int64) bool {
		n := gen(seed)
		return Equal(n, n.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
