package xmltree

import "testing"

func TestCompilePatternErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "/a//", "//", "/a//{", "/"} {
		if _, err := CompilePattern(bad); err == nil {
			t.Errorf("CompilePattern(%q) should fail", bad)
		}
	}
}

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"/patients/patient/dob", "/patients/patient/dob", true},
		{"/patients/patient/dob", "/patients/patient/name", false},
		{"/patients/patient/dob", "/patients/patient", false},
		{"//dob", "/patients/patient/dob", true},
		{"//dob", "/dob", true},
		{"//patient//dob", "/patients/patient/dob", true},
		{"//patient//dob", "/patients/patient/records/dob", true},
		{"//patient//dob", "/patients/dob", false},
		{"/patients/*/dob", "/patients/patient/dob", true},
		{"/patients/*/dob", "/patients/x/dob", true},
		{"/patients/*/dob", "/patients/a/b/dob", false},
		{"//*", "/anything/at/all", true},
		{"dob", "/patients/patient/dob", true}, // bare-name shorthand
		{"/a", "/a", true},
		{"/a", "/a/b", false},
		{"//patient", "/patients/patient", true},
		{"//patient//dob", "/patients/patient/dob/extra", false},
	}
	for _, tc := range cases {
		p, err := CompilePattern(tc.pattern)
		if err != nil {
			t.Fatalf("compile %q: %v", tc.pattern, err)
		}
		if got := p.Matches(tc.path); got != tc.want {
			t.Errorf("%q.Matches(%q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

func TestPatternMatchesPrefix(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"/patients/patient/dob", "/patients", true},
		{"/patients/patient/dob", "/patients/patient", true},
		{"/patients/patient/dob", "/other", false},
		{"//dob", "/anything", true}, // dob could still appear deeper
		{"/a/b", "/a/c", false},
		{"/a/b", "/a/b", true},
	}
	for _, tc := range cases {
		p := MustCompilePattern(tc.pattern)
		if got := p.MatchesPrefix(tc.path); got != tc.want {
			t.Errorf("%q.MatchesPrefix(%q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

func TestSelectNodes(t *testing.T) {
	root := mustParse(t, patientDoc)
	dobs := MustCompilePattern("//patient/dob").SelectNodes(root)
	if len(dobs) != 2 {
		t.Fatalf("dob nodes = %d, want 2", len(dobs))
	}
	tests := MustCompilePattern("//tests/test").SelectNodes(root)
	if len(tests) != 2 {
		t.Fatalf("test nodes = %d, want 2", len(tests))
	}
	all := MustCompilePattern("//*").SelectNodes(root)
	if len(all) != len(root.Descendants()) {
		t.Fatalf("wildcard selected %d, want %d", len(all), len(root.Descendants()))
	}
	none := MustCompilePattern("/nonexistent//x").SelectNodes(root)
	if len(none) != 0 {
		t.Fatalf("selected %d nodes for impossible pattern", len(none))
	}
}

func TestMustCompilePatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompilePattern should panic on bad input")
		}
	}()
	MustCompilePattern("//")
}
