// Package xmltree implements the XML data model PRIVATE-IYE is built on.
//
// The paper (Section 3) chooses XML because "it provides much greater
// flexibility in the kinds of data that can be handled by our system",
// covering relational rows, hierarchical stores and structured files with
// one model. This package supplies that model: an ordered, labelled node
// tree with attributes and text, parsing and serialization via
// encoding/xml, navigation primitives used by the PIQL evaluator, and the
// structural summaries ("DataGuides") from which the mediator builds its
// partial mediated schema (Section 5).
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one element in an XML document tree. Text content is stored on
// the node itself (concatenation of its character data), which is the
// granularity at which privacy policies and preservation techniques apply.
type Node struct {
	Name     string
	Attrs    map[string]string
	Text     string
	Children []*Node
	Parent   *Node
}

// NewElem returns a childless element node with the given name.
func NewElem(name string) *Node {
	return &Node{Name: name, Attrs: map[string]string{}}
}

// NewText returns an element node carrying text content, a convenience for
// leaf fields such as <dob>1971-03-05</dob>.
func NewText(name, text string) *Node {
	n := NewElem(name)
	n.Text = text
	return n
}

// Append adds children to n, fixing up their parent pointers, and returns n
// so construction can be chained.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// SetAttr sets an attribute and returns n for chaining.
func (n *Node) SetAttr(key, value string) *Node {
	if n.Attrs == nil {
		n.Attrs = map[string]string{}
	}
	n.Attrs[key] = value
	return n
}

// Attr returns the attribute value and whether it exists.
func (n *Node) Attr(key string) (string, bool) {
	v, ok := n.Attrs[key]
	return v, ok
}

// Child returns the first direct child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first direct child with the given
// name, or "" if absent. It is the accessor used throughout the mediator
// for record fields.
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenNamed returns all direct children with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and every descendant in document order. Returning false
// from visit prunes the subtree below the visited node.
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil {
		return
	}
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Descendants returns every node in the subtree rooted at n (including n)
// in document order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		out = append(out, m)
		return true
	})
	return out
}

// Path returns the absolute label path of n from its document root, e.g.
// "/patients/patient/dob".
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	var labels []string
	for m := n; m != nil; m = m.Parent {
		labels = append(labels, m.Name)
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// Clone deep-copies the subtree rooted at n. The copy's Parent is nil. The
// mediator clones results before applying preservation techniques so the
// source's canonical data is never mutated.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	} else {
		c.Attrs = map[string]string{}
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Remove detaches n from its parent. It is how suppression-based
// preservation techniques drop sensitive elements.
func (n *Node) Remove() {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
}

// Equal reports deep equality of two subtrees (names, attrs, text,
// children, order-sensitive).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text || len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if bv, ok := b.Attrs[k]; !ok || bv != v {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Parse reads one XML document from r into a Node tree. Character data is
// concatenated (trimmed) onto the containing element; processing
// instructions and comments are skipped.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root, cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElem(t.Name.Local)
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple document roots")
				}
				root = n
			} else {
				cur.Append(n)
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				cur.Text += strings.TrimSpace(string(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if cur != nil {
		return nil, fmt.Errorf("xmltree: unclosed element %q", cur.Name)
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// Encode serializes the subtree rooted at n as XML to w.
func (n *Node) Encode(w io.Writer) error {
	return n.write(w, 0)
}

func (n *Node) write(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var attrs strings.Builder
	for _, k := range keys {
		attrs.WriteString(fmt.Sprintf(" %s=%q", k, escape(n.Attrs[k])))
	}
	if len(n.Children) == 0 && n.Text == "" {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, n.Name, attrs.String())
		return err
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", indent, n.Name, attrs.String(), escape(n.Text), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>", indent, n.Name, attrs.String()); err != nil {
		return err
	}
	if n.Text != "" {
		if _, err := io.WriteString(w, escape(n.Text)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

// String returns the XML serialization of the subtree rooted at n.
func (n *Node) String() string {
	var b strings.Builder
	if err := n.Encode(&b); err != nil {
		return "<!-- serialization error: " + err.Error() + " -->"
	}
	return b.String()
}

func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
