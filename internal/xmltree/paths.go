package xmltree

import (
	"fmt"
	"strings"
)

// PathPattern is a compiled loose path pattern in the XPath-flavoured
// syntax the paper uses for privacy policies and queries, e.g.
// "//patient//dob" or "/patients/patient/*". Supported steps:
//
//   - /name  — child step: the next segment must be exactly name
//   - //name — descendant step: name may appear at any deeper level
//   - *      — wildcard: matches any single segment
//
// Both the privacy-policy languages (internal/policy) and the PIQL query
// language (internal/piql) compile their path expressions to this type, so
// policy enforcement and query evaluation agree exactly on what a path
// expression denotes.
type PathPattern struct {
	src   string
	steps []patternStep
}

type patternStep struct {
	name       string // "*" for wildcard
	descendant bool   // true if this step was introduced by //
}

// CompilePattern parses a path pattern.
func CompilePattern(src string) (*PathPattern, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("xmltree: empty path pattern")
	}
	if !strings.HasPrefix(s, "/") {
		// A bare name is shorthand for a descendant match anywhere.
		s = "//" + s
	}
	p := &PathPattern{src: src}
	i := 0
	for i < len(s) {
		if s[i] != '/' {
			return nil, fmt.Errorf("xmltree: bad pattern %q at offset %d", src, i)
		}
		descendant := false
		i++
		if i < len(s) && s[i] == '/' {
			descendant = true
			i++
		}
		j := i
		for j < len(s) && s[j] != '/' {
			j++
		}
		name := s[i:j]
		if name == "" {
			return nil, fmt.Errorf("xmltree: empty step in pattern %q", src)
		}
		if name != "*" && !validName(name) {
			return nil, fmt.Errorf("xmltree: bad step %q in pattern %q", name, src)
		}
		p.steps = append(p.steps, patternStep{name: name, descendant: descendant})
		i = j
	}
	return p, nil
}

// MustCompilePattern is CompilePattern that panics, for static patterns.
func MustCompilePattern(src string) *PathPattern {
	p, err := CompilePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the original pattern source.
func (p *PathPattern) String() string { return p.src }

// Matches reports whether the absolute label path (e.g.
// "/patients/patient/dob") satisfies the pattern.
func (p *PathPattern) Matches(path string) bool {
	segs := splitPath(path)
	if segs == nil {
		return false
	}
	return matchSteps(p.steps, segs)
}

// MatchesPrefix reports whether the path could be a proper ancestor of
// some path matching the pattern — used by evaluators to decide whether
// descending into a subtree can still produce matches.
func (p *PathPattern) MatchesPrefix(path string) bool {
	segs := splitPath(path)
	if segs == nil {
		return false
	}
	return matchPrefix(p.steps, segs)
}

func splitPath(path string) []string {
	if !strings.HasPrefix(path, "/") || len(path) < 2 {
		return nil
	}
	return strings.Split(path[1:], "/")
}

// matchSteps reports whether segs fully satisfies steps.
func matchSteps(steps []patternStep, segs []string) bool {
	if len(steps) == 0 {
		return len(segs) == 0
	}
	st := steps[0]
	if !st.descendant {
		if len(segs) == 0 || !segMatch(st.name, segs[0]) {
			return false
		}
		return matchSteps(steps[1:], segs[1:])
	}
	// Descendant: the step may match at any depth >= 1 from here.
	for i := 0; i < len(segs); i++ {
		if segMatch(st.name, segs[i]) && matchSteps(steps[1:], segs[i+1:]) {
			return true
		}
	}
	return false
}

// matchPrefix reports whether segs is a (not necessarily proper) prefix of
// some sequence matching steps.
func matchPrefix(steps []patternStep, segs []string) bool {
	if len(segs) == 0 {
		return true
	}
	if len(steps) == 0 {
		return false
	}
	st := steps[0]
	if !st.descendant {
		if !segMatch(st.name, segs[0]) {
			return false
		}
		return matchPrefix(steps[1:], segs[1:])
	}
	for i := 0; i < len(segs); i++ {
		if segMatch(st.name, segs[i]) && matchPrefix(steps[1:], segs[i+1:]) {
			return true
		}
	}
	// The descendant step could also match below the end of segs.
	return true
}

func segMatch(pattern, seg string) bool {
	return pattern == "*" || pattern == seg
}

// SelectNodes returns, in document order, every node in the tree whose
// path matches the pattern.
func (p *PathPattern) SelectNodes(root *Node) []*Node {
	var out []*Node
	root.Walk(func(n *Node) bool {
		path := n.Path()
		if p.Matches(path) {
			out = append(out, n)
		}
		return p.MatchesPrefix(path)
	})
	return out
}

// validName reports whether s is a legal element-name step: letters,
// digits, underscore, hyphen and dot, not starting with a digit, hyphen or
// dot.
func validName(s string) bool {
	for i, r := range s {
		letter := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		punct := r == '-' || r == '.'
		if i == 0 && !letter {
			return false
		}
		if !letter && !digit && !punct {
			return false
		}
	}
	return true
}

// LastStep returns the name of the pattern's final step ("*" for a
// wildcard). Approximate tag matching rewrites this step when a loose
// query names a field the source calls something else.
func (p *PathPattern) LastStep() string {
	return p.steps[len(p.steps)-1].name
}

// WithLastStep returns a copy of the pattern whose final step name is
// replaced. The step keeps its axis (child vs descendant).
func (p *PathPattern) WithLastStep(name string) (*PathPattern, error) {
	if !validName(name) && name != "*" {
		return nil, fmt.Errorf("xmltree: bad step name %q", name)
	}
	cp := &PathPattern{src: p.src + "→" + name, steps: append([]patternStep(nil), p.steps...)}
	cp.steps[len(cp.steps)-1].name = name
	return cp, nil
}
