package xmltree

import (
	"sort"
	"strings"
)

// Summary is a structural summary of a document collection: the set of
// distinct root-to-node label paths, annotated with occurrence counts and a
// leaf flag. It is the "partial structural summary of the remote sources"
// that the paper's Mediated Schema Generation module builds (Section 5) —
// a DataGuide in the TSIMMIS/Lore tradition, which the paper cites as its
// architectural ancestor.
type Summary struct {
	paths map[string]*PathInfo
}

// PathInfo describes one distinct label path in a summary.
type PathInfo struct {
	Path  string // absolute label path, e.g. /patients/patient/dob
	Count int    // number of nodes with this path
	Leaf  bool   // true if at least one node with this path had no children
}

// NewSummary returns an empty structural summary.
func NewSummary() *Summary {
	return &Summary{paths: map[string]*PathInfo{}}
}

// AddDocument folds one document tree into the summary.
func (s *Summary) AddDocument(root *Node) {
	root.Walk(func(n *Node) bool {
		p := n.Path()
		info, ok := s.paths[p]
		if !ok {
			info = &PathInfo{Path: p}
			s.paths[p] = info
		}
		info.Count++
		if len(n.Children) == 0 {
			info.Leaf = true
		}
		return true
	})
}

// Paths returns every distinct path, sorted.
func (s *Summary) Paths() []PathInfo {
	out := make([]PathInfo, 0, len(s.paths))
	for _, info := range s.paths {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Has reports whether the exact path occurs in the summary.
func (s *Summary) Has(path string) bool {
	_, ok := s.paths[path]
	return ok
}

// Len returns the number of distinct paths.
func (s *Summary) Len() int { return len(s.paths) }

// Redact returns a copy of the summary with every path removed for which
// drop returns true. This is how a privacy-aware source publishes only the
// shareable part of its schema: the mediated schema "may not contain
// sufficient information" (Section 5) precisely because of this step.
func (s *Summary) Redact(drop func(path string) bool) *Summary {
	out := NewSummary()
	for p, info := range s.paths {
		if drop(p) {
			continue
		}
		cp := *info
		out.paths[p] = &cp
	}
	return out
}

// Merge folds other into s, summing counts; it is how the mediator
// aggregates the partial summaries of several sources into one mediated
// schema.
func (s *Summary) Merge(other *Summary) {
	for p, info := range other.paths {
		dst, ok := s.paths[p]
		if !ok {
			cp := *info
			s.paths[p] = &cp
			continue
		}
		dst.Count += info.Count
		dst.Leaf = dst.Leaf || info.Leaf
	}
}

// LeafNames returns the distinct final labels of all leaf paths, sorted.
// Schema matching uses these as the vocabulary of candidate field names.
func (s *Summary) LeafNames() []string {
	set := map[string]bool{}
	for p, info := range s.paths {
		if !info.Leaf {
			continue
		}
		segs := strings.Split(strings.TrimPrefix(p, "/"), "/")
		set[segs[len(segs)-1]] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ToNode renders the summary itself as an XML tree so it can be shipped to
// the mediator through the same channel as data.
func (s *Summary) ToNode() *Node {
	root := NewElem("summary")
	for _, info := range s.Paths() {
		e := NewElem("path").SetAttr("p", info.Path)
		if info.Leaf {
			e.SetAttr("leaf", "true")
		}
		root.Append(e)
	}
	return root
}

// SummaryFromNode parses the ToNode encoding back into a Summary.
func SummaryFromNode(n *Node) *Summary {
	s := NewSummary()
	for _, c := range n.ChildrenNamed("path") {
		p, _ := c.Attr("p")
		if p == "" {
			continue
		}
		leaf, _ := c.Attr("leaf")
		s.paths[p] = &PathInfo{Path: p, Count: 1, Leaf: leaf == "true"}
	}
	return s
}
