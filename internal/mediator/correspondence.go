package mediator

import (
	"sort"

	"privateiye/internal/schemamatch"
)

// Correspondence records that two sources' fields denote the same concept
// — the output of Mediated Schema Generation's matching step (Section 5:
// "mapping schemas to generate mediated schemas"). The mediator computes
// these from the sources' shareable field *profiles*; raw values never
// leave a source.
type Correspondence struct {
	SourceA, FieldA string
	SourceB, FieldB string
	Score           float64
}

// refreshCorrespondences matches every pair of sources' profiles. Called
// under m.mu by RefreshSchema's caller path; takes the fetched profiles.
func (m *Mediator) refreshCorrespondences(profiles map[string][]schemamatch.FieldProfile) []Correspondence {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Correspondence
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			for _, c := range m.matcher.Match(profiles[names[i]], profiles[names[j]]) {
				// Identical names are trivially correspondent; record only
				// the informative (non-identical) matches.
				if schemamatch.Normalize(c.Left) == schemamatch.Normalize(c.Right) {
					continue
				}
				out = append(out, Correspondence{
					SourceA: names[i], FieldA: c.Left,
					SourceB: names[j], FieldB: c.Right,
					Score: c.Score,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].SourceA != out[b].SourceA {
			return out[a].SourceA < out[b].SourceA
		}
		return out[a].FieldA < out[b].FieldA
	})
	return out
}

// Correspondences returns the current cross-source field correspondences
// (recomputed by RefreshSchema).
func (m *Mediator) Correspondences() []Correspondence {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]Correspondence(nil), m.correspondences...)
}
