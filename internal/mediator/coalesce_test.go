package mediator

// Tests for in-flight query coalescing (singleflight). The contract
// under test is the plan-cache contract extended to concurrent
// execution: sharing a pipeline run must never let a caller skip a
// per-requester control. Every coalesced caller — leader or follower —
// pays the loss-control check, the release-ledger check, and a history
// entry of its own.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privateiye/internal/clinical"
	"privateiye/internal/obs"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// gatedEndpoint wraps an Endpoint and parks Query calls on a channel so
// a test can hold a leader's execution open while followers arrive. The
// call counter is the test's proof of sharing: callers minus calls is
// the number of executions coalescing saved.
type gatedEndpoint struct {
	source.Endpoint
	calls atomic.Int64
	gate  chan struct{} // nil = pass through; set between phases only
}

func (g *gatedEndpoint) Query(ctx context.Context, piqlText, requester string) (*xmltree.Node, error) {
	g.calls.Add(1)
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.Endpoint.Query(ctx, piqlText, requester)
}

// coalescingMediator is figure1Mediator with Coalesce on, an endpoint
// wrapper, and a registry so tests can watch the leader/follower
// counters to sequence deterministically.
func coalescingMediator(t *testing.T, wrap func(source.Endpoint) source.Endpoint) (*Mediator, *obs.Registry) {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	var endpoint source.Endpoint = ep
	if wrap != nil {
		endpoint = wrap(ep)
	}
	reg := obs.NewRegistry()
	m, err := New(Config{
		Endpoints: []source.Endpoint{endpoint}, MaxDisclosure: 0.9,
		LedgerTolerance: 0.05, PlanCache: 64, Coalesce: true, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

func followerCount(reg *obs.Registry) uint64 {
	return reg.Counter("piye_mediator_coalesce_total", "role", "follower").Value()
}

func ledgerEntries(m *Mediator, requester string) int {
	m.ledger.mu.Lock()
	defer m.ledger.mu.Unlock()
	return len(m.ledger.byRequester[requester])
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceSharesExecutionButEachCallerPaysControls is the pinning
// test: one gated execution, several coalesced callers, and the proof
// that sharing happened (one source call) without any caller skipping a
// control (one ledger release and one history entry per caller).
func TestCoalesceSharesExecutionButEachCallerPaysControls(t *testing.T) {
	g := &gatedEndpoint{gate: make(chan struct{})}
	m, reg := coalescingMediator(t, func(ep source.Endpoint) source.Endpoint {
		g.Endpoint = ep
		return g
	})
	const callers = 4
	var wg sync.WaitGroup
	outs := make([]*Integrated, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = m.Query(perTestQuery, "analyst")
		}(i)
	}
	// The leader is parked inside the endpoint; wait until every other
	// caller has joined its flight, then release.
	waitForCond(t, func() bool { return followerCount(reg) == callers-1 })
	close(g.gate)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(outs[i].Result.Rows) != 3 {
			t.Fatalf("caller %d: rows = %v", i, outs[i].Result.Rows)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("source executed %d times for %d coalesced callers, want 1", got, callers)
	}
	// Per-caller controls: every caller recorded its own release and its
	// own history entry, exactly as if it had run alone.
	if got := ledgerEntries(m, "analyst"); got != callers {
		t.Errorf("ledger holds %d releases, want one per caller (%d)", got, callers)
	}
	hist := m.History()
	if len(hist) != callers {
		t.Errorf("history has %d entries, want one per caller (%d)", len(hist), callers)
	}
	for _, e := range hist {
		if e.Requester != "analyst" {
			t.Errorf("history entry for %q", e.Requester)
		}
	}
}

// TestCoalescedQueryStillRefusedByLedger mirrors
// TestPlanCacheHitStillRefusedByLedger for in-flight sharing: after the
// Figure 1(a) sigma release, a burst of concurrent identical Figure 1(b)
// queries coalesces into one execution — and every one of the callers
// is refused by its own ledger check.
func TestCoalescedQueryStillRefusedByLedger(t *testing.T) {
	g := &gatedEndpoint{}
	m, reg := coalescingMediator(t, func(ep source.Endpoint) source.Endpoint {
		g.Endpoint = ep
		return g
	})
	if _, err := m.Query(perTestQuery, "snooper"); err != nil {
		t.Fatalf("first release (Figure 1a) should pass: %v", err)
	}

	g.gate = make(chan struct{})
	// Two callers suffice for the pin (a leader and a follower) and each
	// refusal runs the full simulated inference attack, which is slow
	// under -race.
	const callers = 2
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Query(perHMOQuery, "snooper")
		}(i)
	}
	waitForCond(t, func() bool { return followerCount(reg) == callers-1 })
	close(g.gate)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: the Figure 1 combination escaped the ledger via coalescing", i)
		}
		if !strings.Contains(err.Error(), "combined") {
			t.Errorf("caller %d: refusal should explain the combination: %v", i, err)
		}
	}
	// The shared execution ran once, but no refused caller left a trace
	// of success: the ledger still holds only the sigma release, and
	// history only the answered query.
	if got := g.calls.Load(); got != 2 {
		t.Errorf("source executed %d times, want 2 (one per distinct query)", got)
	}
	if got := ledgerEntries(m, "snooper"); got != 1 {
		t.Errorf("ledger holds %d releases, want 1 — a refused caller was recorded", got)
	}
	if got := len(m.History()); got != 1 {
		t.Errorf("history has %d entries, want 1 — a refused caller was recorded", got)
	}
}

// TestCoalesceNeverSharesAcrossRequesters pins the key construction:
// identical text from different requesters must run separate executions
// (per-source policy enforcement and the ledger see the true requester).
func TestCoalesceNeverSharesAcrossRequesters(t *testing.T) {
	g := &gatedEndpoint{gate: make(chan struct{})}
	m, reg := coalescingMediator(t, func(ep source.Endpoint) source.Endpoint {
		g.Endpoint = ep
		return g
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, req := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(i int, req string) {
			defer wg.Done()
			_, errs[i] = m.Query(perTestQuery, req)
		}(i, req)
	}
	// Both callers must reach the source concurrently — neither joined
	// the other's flight — before either is released.
	waitForCond(t, func() bool { return g.calls.Load() == 2 })
	close(g.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := followerCount(reg); got != 0 {
		t.Errorf("followers = %d, want 0 — executions were shared across requesters", got)
	}
	if ledgerEntries(m, "alice") != 1 || ledgerEntries(m, "bob") != 1 {
		t.Error("each requester should hold exactly its own release")
	}
}

// TestCoalesceRacesSchemaRefresh hammers coalesced queries while
// RefreshSchema concurrently purges the plan cache and replaces the
// flight map. Run under -race; the assertions are that no caller
// errors, no flight leaks past its execution, and the mediator still
// answers afterwards.
func TestCoalesceRacesSchemaRefresh(t *testing.T) {
	m, _ := coalescingMediator(t, nil)
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := fmt.Sprintf("req-%d", w)
			for i := 0; i < iters; i++ {
				if _, err := m.Query(perTestQuery, req); err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := m.RefreshSchema(); err != nil {
				t.Errorf("refresh %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	m.flightMu.Lock()
	leaked := len(m.flights)
	m.flightMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d flights leaked after all queries returned", leaked)
	}
	if _, err := m.Query(perTestQuery, "after"); err != nil {
		t.Errorf("query after refresh storm: %v", err)
	}
	if got := len(m.History()); got != workers*iters+1 {
		t.Errorf("history has %d entries, want %d — a coalesced caller skipped recording", got, workers*iters+1)
	}
}
