// Package mediator implements the privacy-preserving mediation engine of
// Figure 2(b): mediated schema generation over the sources' partial
// structural summaries, query fragmentation and source routing, result
// integration with private duplicate elimination, the privacy control that
// verifies aggregated privacy loss, and the hybrid warehouse.
package mediator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/linkage"
	"privateiye/internal/obs"
	"privateiye/internal/parallel"
	"privateiye/internal/piql"
	"privateiye/internal/psi"
	"privateiye/internal/qcache"
	"privateiye/internal/refusal"
	"privateiye/internal/replica"
	"privateiye/internal/resilience"
	"privateiye/internal/schemamatch"
	"privateiye/internal/source"
	"privateiye/internal/warehouse"
	"privateiye/internal/xmltree"
)

// Config assembles a mediation engine.
type Config struct {
	// Endpoints are the participating sources.
	Endpoints []source.Endpoint
	// LinkageSalt is the shared linking secret for private dedup; it must
	// equal the sources'.
	LinkageSalt []byte
	// DedupColumn names the result column used for duplicate elimination
	// across sources ("" disables fuzzy dedup; exact-duplicate rows are
	// always removed).
	DedupColumn string
	// DedupThreshold is the Dice similarity above which two rows are the
	// same entity (default 0.85).
	DedupThreshold float64
	// WarehouseCapacity and WarehouseTTL configure the hybrid warehouse;
	// capacity 0 disables warehousing (pure virtual querying).
	WarehouseCapacity int
	WarehouseTTL      int64
	// MaxDisclosure is the Privacy Control threshold: an aggregate
	// release whose simulated snooping attack narrows any hidden cell by
	// more than this fraction is refused (see control.go and ledger.go).
	// Default 0.99 (only near-exact disclosure blocked); Example 1 uses
	// stricter settings.
	MaxDisclosure float64
	// LedgerTolerance is the accuracy the release ledger assumes of
	// published aggregate values when combining a requester's releases
	// (default 0.5: the default mitigations round aggregates to
	// integers).
	LedgerTolerance float64
	// SourceTimeout bounds each individual source call during fan-out
	// and schema refresh (0 = no per-source deadline). A source that
	// misses the deadline is recorded in Denied with a timeout reason;
	// the integrator returns whatever answered in time.
	SourceTimeout time.Duration
	// PSISuite is the preferred PSI group suite (default "p256", the
	// fast elliptic-curve kernel). During every schema refresh the
	// mediator collects each source's supported suites and negotiates:
	// the preferred suite is used iff every answering source advertises
	// it; otherwise the first universally supported suite in the first
	// source's preference order; otherwise the fleet fails closed to
	// "modp2048" — the safe-prime group every deployment predating
	// negotiation runs — rather than letting sources diverge into
	// incomparable groups. PSISuite() reports the outcome.
	PSISuite string
	// Resilience, when non-nil, wraps every endpoint in a
	// resilience.Endpoint: policy-driven retry with backoff plus a
	// per-source circuit breaker that skips known-dead sources instead
	// of re-dialing them on every query.
	Resilience *resilience.EndpointConfig
	// Durability, when non-nil, persists the release ledger and query
	// history to disk and replays them on startup, defeating the
	// restart-amnesia attack on the combination controls (see persist.go).
	Durability *DurabilityConfig
	// Replica, when non-nil, replicates the durable log to/from a peer
	// mediator and arbitrates failover with a persisted fencing epoch
	// (see replicate.go). Requires Durability.
	Replica *ReplicaConfig
	// Workers bounds the mediator's own compute fan-out (Bloom encoding
	// during dedup, the ledger's simulated inference attack): 0 =
	// GOMAXPROCS, 1 = serial.
	Workers int
	// PlanCache is the capacity (entries) of the PIQL parse cache:
	// repeated query texts skip parsing and canonicalization. Privacy
	// controls are NOT cached — routing, per-source policy enforcement,
	// loss aggregation and the release ledger run on every query, cache
	// hit or not. 0 disables caching. Invalidated by RefreshSchema.
	PlanCache int
	// Coalesce merges concurrent identical queries from the same
	// requester into one shared pipeline execution (singleflight):
	// followers wait for the leader's parse/route/fan-out/integrate and
	// share its result, while the controls that consume per-requester
	// state — loss control, the release ledger, history recording — run
	// once per caller, so no query escapes the ledger by arriving while
	// its twin is in flight. Queries from different requesters never
	// share an execution. Invalidated by RefreshSchema like the plan
	// cache.
	Coalesce bool
	// Obs, when non-nil, receives the mediator's metrics (query and
	// refusal counters, per-stage and per-source latencies, cache and
	// warehouse counters, breaker state, WAL counters) under the
	// piye_mediator_* / piye_breaker_* / piye_wal_* families. Trace,
	// when non-nil, records one trace per mediated query with a span
	// per pipeline stage and per source call. Both nil = zero
	// instrumentation cost beyond one nil check per stage.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Admission, when non-nil and enabled, gates QueryContext with an
	// admission controller: per-requester rate limiting, adaptive
	// (AIMD) concurrency limiting with a hard ceiling, and a deadline-
	// aware bounded queue that sheds requests whose estimated wait
	// exceeds the caller's remaining deadline. Sheds surface as
	// *admission.ShedError (HTTP 429/503 with Retry-After), classified
	// as refusal.Overloaded / refusal.RateLimited — never as privacy
	// refusals.
	Admission *admission.Config
	// Shard, when non-nil, places this mediator in a sharded tier: an
	// ownership gate refuses requesters whose ring placement is another
	// shard (fail-closed NotOwnerError, HTTP 503) and the drain/re-route
	// handshake with the piye-router tier is enabled (see shard.go).
	Shard *ShardConfig
	// Brownout degrades overload sheds gracefully: instead of failing
	// an Overloaded shed, the mediator answers from the warehouse even
	// past TTL, marking the response Stale. Rate-limit sheds are never
	// browned out (the point of the token bucket is to make the greedy
	// requester slow down). Requires a warehouse to have any effect.
	Brownout bool
}

// Mediator is a running mediation engine.
type Mediator struct {
	cfg     Config
	matcher *schemamatch.Matcher
	plans   *qcache.Cache         // parse cache; nil when disabled
	obs     *medObs               // metric handles; nil when uninstrumented
	admit   *admission.Controller // nil = admit everything

	// flights are the in-progress shared executions coalesced queries
	// join, keyed by requester + normalized text. Guarded by flightMu
	// (never held across the pipeline — only around map bookkeeping).
	flightMu sync.Mutex
	flights  map[string]*flight

	mu              sync.RWMutex
	schema          *xmltree.Summary            // mediated schema (merged partial summaries)
	bySource        map[string]*xmltree.Summary // per-source shared summaries
	vocab           []string                    // leaf vocabulary of the mediated schema
	psiSuite        string                      // negotiated PSI suite (see RefreshSchemaContext)
	wh              *warehouse.Warehouse
	history         []HistoryEntry
	historyReq      map[string]struct{} // requesters appearing in history (O(1) state checks)
	ledger          *releaseLedger
	correspondences []Correspondence

	// persist is set once in New when Config.Durability is given; nil
	// means process-local state (see persist.go).
	persist *statePersister

	// shard is the tier-membership view; nil means unsharded (see
	// shard.go).
	shard *shardState

	// Replication wiring; all nil without Config.Replica (see
	// replicate.go). node holds role + fencing epoch; repSrv serves the
	// log to standbys; repClient tails the primary on a standby;
	// repCancel stops the client at promotion or Close; fenceCancel
	// (guarded by mu) stops the post-promotion fencer loop.
	node        *replica.Node
	repSrv      *replica.Server
	repClient   *replica.Client
	repCancel   context.CancelFunc
	fenceCancel context.CancelFunc
	fenceAcks   *obs.Counter
}

// HistoryEntry is one integration round in the Query History store.
type HistoryEntry struct {
	Requester string
	Query     string
	Sources   []string
	Denied    []string
	Clock     int64
}

// New builds a mediator and performs the initial mediated schema
// generation.
func New(cfg Config) (*Mediator, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("mediator: no sources")
	}
	if cfg.DedupThreshold == 0 {
		cfg.DedupThreshold = 0.85
	}
	if cfg.DedupThreshold < 0 || cfg.DedupThreshold > 1 {
		return nil, fmt.Errorf("mediator: dedup threshold %v", cfg.DedupThreshold)
	}
	if cfg.MaxDisclosure == 0 {
		cfg.MaxDisclosure = 0.99
	}
	if cfg.LedgerTolerance == 0 {
		cfg.LedgerTolerance = 0.5
	}
	if cfg.PSISuite == "" {
		cfg.PSISuite = psi.DefaultSuiteName
	}
	if _, err := psi.SuiteByName(cfg.PSISuite); err != nil {
		return nil, fmt.Errorf("mediator: %w", err)
	}
	if cfg.Resilience != nil {
		// Wrap a copy: each endpoint gets its own circuit breaker, and
		// the caller's slice stays untouched.
		wrapped := make([]source.Endpoint, len(cfg.Endpoints))
		for i, ep := range cfg.Endpoints {
			rcfg := *cfg.Resilience
			if cfg.Obs != nil && !rcfg.DisableBreaker {
				// Per-source breaker observability: a transition counter
				// and a state gauge (0 closed, 1 half-open, 2 open),
				// updated from the breaker's state-change hook. Any hook
				// the caller installed still runs.
				reg, name, prev := cfg.Obs, ep.Name(), rcfg.Breaker.OnStateChange
				reg.Help("piye_breaker_state", "Circuit state per source: 0 closed, 1 half-open, 2 open.")
				reg.Help("piye_breaker_transitions_total", "Circuit state transitions per source.")
				gauge := reg.Gauge("piye_breaker_state", "source", name)
				gauge.Set(0)
				rcfg.Breaker.OnStateChange = func(from, to string) {
					if prev != nil {
						prev(from, to)
					}
					reg.Counter("piye_breaker_transitions_total", "source", name, "to", to).Inc()
					gauge.Set(breakerStateValue(to))
				}
			}
			wrapped[i] = resilience.WrapEndpoint(ep, rcfg)
		}
		cfg.Endpoints = wrapped
	}
	m := &Mediator{
		cfg:        cfg,
		matcher:    schemamatch.NewMatcher(),
		plans:      qcache.New(cfg.PlanCache),
		flights:    map[string]*flight{},
		bySource:   map[string]*xmltree.Summary{},
		historyReq: map[string]struct{}{},
		ledger:     newReleaseLedger(),
	}
	m.ledger.attackWorkers = cfg.Workers
	names := make([]string, len(cfg.Endpoints))
	for i, ep := range cfg.Endpoints {
		names[i] = ep.Name()
	}
	m.obs = newMedObs(cfg.Obs, cfg.Trace, names)
	if cfg.Admission != nil {
		ctl, err := admission.New(*cfg.Admission)
		if err != nil {
			return nil, fmt.Errorf("mediator: %w", err)
		}
		m.admit = ctl
		ctl.Register(cfg.Obs, "mediator")
	}
	if cfg.Obs != nil {
		// Bridge counters the subsystems already keep, sampled at scrape
		// time; the closures capture m, which outlives the registry's
		// use of them only in the trivial sense that both live for the
		// process.
		cfg.Obs.Help("piye_plan_cache_hits_total", "Plan/parse cache hits.")
		cfg.Obs.Help("piye_plan_cache_misses_total", "Plan/parse cache misses.")
		cfg.Obs.CounterFunc("piye_plan_cache_hits_total", func() float64 {
			h, _ := m.plans.Stats()
			return float64(h)
		}, "scope", "mediator")
		cfg.Obs.CounterFunc("piye_plan_cache_misses_total", func() float64 {
			_, mi := m.plans.Stats()
			return float64(mi)
		}, "scope", "mediator")
		cfg.Obs.GaugeFunc("piye_plan_cache_entries", func() float64 {
			return float64(m.plans.Len())
		}, "scope", "mediator")
		cfg.Obs.Help("piye_plan_cache_hit_ratio", "Plan/parse cache lifetime hit ratio (0 until the first lookup).")
		cfg.Obs.GaugeFunc("piye_plan_cache_hit_ratio", func() float64 {
			return m.plans.HitRate()
		}, "scope", "mediator")
		cfg.Obs.Help("piye_warehouse_hits_total", "Hybrid-warehouse hits.")
		cfg.Obs.CounterFunc("piye_warehouse_hits_total", func() float64 {
			h, _, _ := m.WarehouseStats()
			return float64(h)
		})
		cfg.Obs.CounterFunc("piye_warehouse_misses_total", func() float64 {
			_, mi, _ := m.WarehouseStats()
			return float64(mi)
		})
		cfg.Obs.GaugeFunc("piye_warehouse_entries", func() float64 {
			_, _, n := m.WarehouseStats()
			return float64(n)
		})
		cfg.Obs.GaugeFunc("piye_mediator_history_entries", func() float64 {
			m.mu.RLock()
			defer m.mu.RUnlock()
			return float64(len(m.history))
		})
	}
	if cfg.WarehouseCapacity > 0 {
		wh, err := warehouse.New(cfg.WarehouseCapacity, cfg.WarehouseTTL)
		if err != nil {
			return nil, err
		}
		m.wh = wh
	}
	if cfg.Durability != nil {
		// Recover persisted ledger + history before serving any query:
		// the first answer must already see the full release history.
		if err := m.openDurable(*cfg.Durability); err != nil {
			return nil, err
		}
	}
	if cfg.Replica != nil {
		if err := m.openReplication(*cfg.Replica); err != nil {
			m.Close()
			return nil, err
		}
	}
	if cfg.Shard != nil {
		// After durability replay: the ownership gate's drain decisions
		// consult the recovered history and ledger.
		if err := m.setupShard(*cfg.Shard); err != nil {
			m.Close()
			return nil, err
		}
	}
	if err := m.RefreshSchema(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// RefreshSchema re-runs Mediated Schema Generation with a background
// context; see RefreshSchemaContext.
func (m *Mediator) RefreshSchema() error {
	return m.RefreshSchemaContext(context.Background())
}

// RefreshSchemaContext re-runs Mediated Schema Generation: fetch every
// source's partial summary (concurrently, each under the per-source
// deadline) and merge them. Sources that fail to answer are skipped
// (they simply contribute nothing to the mediated schema).
func (m *Mediator) RefreshSchemaContext(ctx context.Context) error {
	type fetched struct {
		sum      *xmltree.Summary
		profiles []schemamatch.FieldProfile
		suites   []string
	}
	results := make([]fetched, len(m.cfg.Endpoints))
	var wg sync.WaitGroup
	for i, ep := range m.cfg.Endpoints {
		wg.Add(1)
		go func(i int, ep source.Endpoint) {
			defer wg.Done()
			sctx, cancel := m.sourceCtx(ctx)
			defer cancel()
			sum, err := ep.FetchSummary(sctx)
			if err != nil {
				return
			}
			results[i].sum = sum
			if ps, err := ep.FetchProfiles(sctx); err == nil {
				results[i].profiles = ps
			}
			// Suite capability ride-along: a source that answers its
			// summary but not its suites is treated as a legacy MODP-2048
			// node (the HTTP client already maps missing routes there;
			// this covers transport errors too) — fail closed, not open.
			if ss, err := ep.PSISuites(sctx); err == nil && len(ss) > 0 {
				results[i].suites = ss
			} else {
				results[i].suites = []string{psi.SuiteNameModP2048}
			}
		}(i, ep)
	}
	wg.Wait()

	// Merge in endpoint order so the mediated schema is deterministic.
	merged := xmltree.NewSummary()
	bySource := map[string]*xmltree.Summary{}
	profiles := map[string][]schemamatch.FieldProfile{}
	var advertisements [][]string
	okCount := 0
	for i, ep := range m.cfg.Endpoints {
		if results[i].sum == nil {
			continue
		}
		bySource[ep.Name()] = results[i].sum
		merged.Merge(results[i].sum)
		okCount++
		advertisements = append(advertisements, results[i].suites)
		if results[i].profiles != nil {
			profiles[ep.Name()] = results[i].profiles
		}
	}
	if okCount == 0 {
		return fmt.Errorf("mediator: no source produced a summary")
	}
	suite := negotiateSuite(m.cfg.PSISuite, advertisements)
	if m.cfg.Obs != nil {
		m.cfg.Obs.Help("piye_mediator_psi_negotiations_total", "PSI suite negotiation outcomes at schema refresh, by suite.")
		m.cfg.Obs.Counter("piye_mediator_psi_negotiations_total", "suite", suite).Inc()
	}
	correspondences := m.refreshCorrespondences(profiles)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schema = merged
	m.bySource = bySource
	m.vocab = merged.LeafNames()
	m.psiSuite = suite
	m.correspondences = correspondences
	// Materialized results may describe data whose source just changed or
	// disappeared: a schema refresh empties the warehouse. The parse
	// cache goes with it — correspondences feed resolver-expanded
	// routing, so a cached canonicalization may no longer be how the
	// refreshed schema would read the same text.
	if m.wh != nil {
		m.wh.Invalidate("")
	}
	m.plans.Purge()
	// Forget in-flight coalesced executions in the same critical section
	// as the plan purge: a query arriving after the refresh must start a
	// fresh execution against the refreshed schema, never join a flight
	// whose plan was just purged. Leaders still running complete their
	// pre-refresh followers (they all arrived pre-refresh) and find
	// themselves absent from the new map, which is fine.
	m.flightMu.Lock()
	m.flights = map[string]*flight{}
	m.flightMu.Unlock()
	return nil
}

// MediatedSchema returns the current mediated schema.
func (m *Mediator) MediatedSchema() *xmltree.Summary {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.schema
}

// negotiateSuite picks the one PSI suite the whole fleet will run.
// preferred wins iff every source advertises it; otherwise the first
// suite in the first source's preference order that everyone supports;
// otherwise the hard fail-closed floor, modp2048 — a suite nobody
// advertised is still better than two sources running different groups
// and comparing meaningless bytes.
func negotiateSuite(preferred string, advertisements [][]string) string {
	if len(advertisements) == 0 {
		return preferred
	}
	everyone := func(name string) bool {
		for _, adv := range advertisements {
			found := false
			for _, s := range adv {
				if s == name {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if everyone(preferred) {
		return preferred
	}
	for _, candidate := range advertisements[0] {
		if everyone(candidate) {
			return candidate
		}
	}
	return psi.SuiteNameModP2048
}

// PSISuite reports the suite negotiated at the last schema refresh.
func (m *Mediator) PSISuite() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.psiSuite
}

// Overlap is PrivateOverlap between two of this mediator's sources by
// name, pinned to the suite negotiated at the last schema refresh — the
// entry point callers should prefer, because it can never compare
// elements across diverging groups.
func (m *Mediator) Overlap(ctx context.Context, aName, bName, field string) (int, error) {
	suite := m.PSISuite()
	var a, b source.Endpoint
	for _, ep := range m.cfg.Endpoints {
		switch ep.Name() {
		case aName:
			a = ep
		case bName:
			b = ep
		}
	}
	if a == nil || b == nil {
		return 0, fmt.Errorf("mediator: overlap needs two known sources (have %q, %q)", aName, bName)
	}
	return PrivateOverlap(ctx, a, b, field, suite)
}

// Integrated is the result of one integration round.
type Integrated struct {
	// Result is the integrated, deduplicated result.
	Result *piql.Result
	// Answered lists sources that contributed; Denied lists sources that
	// refused with their reasons.
	Answered []string
	Denied   map[string]string
	// Duplicates is the number of rows removed by duplicate elimination.
	Duplicates int
	// AggregatedLoss is the maximum per-source estimated information
	// loss (the integrated answer is at least as distorted as its most
	// distorted contributor).
	AggregatedLoss float64
	// FromWarehouse reports a materialized answer.
	FromWarehouse bool
	// Stale reports a brownout answer: the mediator was shedding load
	// and served a warehouse materialization past its TTL instead of
	// fanning out. StaleAge is its age in warehouse ticks. Callers that
	// cannot tolerate staleness should retry after the overload clears.
	Stale    bool
	StaleAge int64
}

// Query runs the full mediation pipeline with a background context; see
// QueryContext.
func (m *Mediator) Query(piqlText, requester string) (*Integrated, error) {
	return m.QueryContext(context.Background(), piqlText, requester)
}

// sourceCtx derives the per-source call context: the caller's context,
// bounded by the configured per-source deadline.
func (m *Mediator) sourceCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.cfg.SourceTimeout > 0 {
		return context.WithTimeout(ctx, m.cfg.SourceTimeout)
	}
	return context.WithCancel(ctx)
}

// denialReason renders a source failure for the Denied map. Timeouts and
// circuit-breaker skips get distinguishable prefixes so callers (and the
// E17 experiment) can tell a straggler from a policy refusal.
func (m *Mediator) denialReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if m.cfg.SourceTimeout > 0 {
			return fmt.Sprintf("timeout: no answer within %v", m.cfg.SourceTimeout)
		}
		return "timeout: " + err.Error()
	case errors.Is(err, context.Canceled):
		return "canceled: " + err.Error()
	case errors.Is(err, resilience.ErrOpen):
		return "skipped: " + err.Error()
	default:
		return err.Error()
	}
}

// QueryContext runs the full mediation pipeline for a PIQL query text.
// Every source is queried concurrently under its own deadline
// (Config.SourceTimeout); the integrator returns whatever answered in
// time and records stragglers in Denied with a timeout reason.
func (m *Mediator) QueryContext(ctx context.Context, piqlText, requester string) (*Integrated, error) {
	t0 := time.Now()
	trace := m.obs.startTrace(requester, piqlText)
	// Role gate: a standby mirrors the primary's releases but must not
	// grant its own, and a fenced ex-primary must grant nothing at all —
	// its ledger no longer sees what the successor has released.
	if err := m.writeGate(); err != nil {
		m.obs.finish(trace, t0, nil, err)
		return nil, err
	}
	// Ownership gate: before admission, so a misrouted requester never
	// consumes a concurrency slot it was never entitled to.
	if err := m.shardGate(ctx, requester); err != nil {
		m.obs.finish(trace, t0, nil, err)
		return nil, err
	}
	grant, err := m.admit.Acquire(ctx, requester)
	if err != nil {
		var sh *admission.ShedError
		if errors.As(err, &sh) {
			sh.Scope = "mediator"
			// Brownout: an Overloaded shed may still be answered from
			// the warehouse, staleness allowed and marked. Rate-limit
			// sheds always fail — serving the greedy requester stale
			// data would defeat the throttle.
			if m.cfg.Brownout && sh.Reason == refusal.Overloaded {
				if out := m.brownout(piqlText, requester); out != nil {
					m.obs.finish(trace, t0, out, nil)
					return out, nil
				}
			}
		}
		m.obs.finish(trace, t0, nil, err)
		return nil, err
	}
	out, err := m.queryStages(ctx, piqlText, requester, trace)
	grant.Release(err)
	m.obs.finish(trace, t0, out, err)
	return out, err
}

// brownout serves a shed query from the warehouse regardless of TTL.
// It costs one parse (usually a plan-cache hit) and one map lookup —
// nothing that scales with load — and skips history recording: a
// brownout answer discloses only what an earlier admitted query
// already disclosed and recorded. Returns nil when no materialization
// exists, in which case the shed stands.
func (m *Mediator) brownout(piqlText, requester string) *Integrated {
	if m.wh == nil {
		return nil
	}
	_, canonical, err := m.parseCached(piqlText)
	if err != nil {
		return nil
	}
	res, age, ok := m.wh.GetStale(requester + "|" + canonical)
	if !ok {
		return nil
	}
	return &Integrated{
		Result:        res,
		Answered:      []string{"warehouse"},
		FromWarehouse: true,
		Stale:         true,
		StaleAge:      age,
	}
}

// AdmissionStats snapshots the admission controller (zero when the
// mediator runs ungated), for experiments and tests.
func (m *Mediator) AdmissionStats() admission.Stats { return m.admit.Stats() }

// flight is one in-progress shared pipeline execution. The first caller
// of a (requester, normalized text) pair becomes the leader and runs the
// pipeline; identical concurrent callers become followers, wait on done
// and share sh/err. Per-caller controls run in finalize, never here.
type flight struct {
	done chan struct{}
	sh   *sharedExec
	err  error
}

// sharedExec is what one pipeline execution yields before any
// per-caller control has run: the parsed query and the integrated
// (sorted, limited) result. It is immutable once published to a flight.
type sharedExec struct {
	q         *piql.Query
	canonical string
	out       *Integrated
}

// queryStages is the pipeline body: a shared execution phase (possibly
// coalesced across concurrent identical callers) followed by the
// per-caller control phase.
func (m *Mediator) queryStages(ctx context.Context, piqlText, requester string, trace *obs.Trace) (*Integrated, error) {
	sh, err := m.executeCoalesced(ctx, piqlText, requester, trace)
	if err != nil {
		return nil, err
	}
	return m.finalize(sh, requester, trace)
}

// executeCoalesced runs the shared phase through the singleflight group
// when coalescing is enabled. The flight key includes the requester:
// queries from different requesters never share an execution, so
// per-source policy enforcement always sees the true requester.
func (m *Mediator) executeCoalesced(ctx context.Context, piqlText, requester string, trace *obs.Trace) (*sharedExec, error) {
	if !m.cfg.Coalesce {
		return m.execute(ctx, piqlText, requester, trace)
	}
	key := requester + "\x00" + qcache.Normalize(piqlText)
	ts := m.obs.now()
	m.flightMu.Lock()
	if f, ok := m.flights[key]; ok {
		m.flightMu.Unlock()
		m.obs.coalesced(false)
		select {
		case <-f.done:
		case <-ctx.Done():
			m.obs.stage(trace, "coalesce", ts, spanOutcome(ctx.Err()))
			return nil, ctx.Err()
		}
		m.obs.stage(trace, "coalesce", ts, spanOutcome(f.err))
		return f.sh, f.err
	}
	f := &flight{done: make(chan struct{})}
	m.flights[key] = f
	m.flightMu.Unlock()
	m.obs.coalesced(true)
	f.sh, f.err = m.execute(ctx, piqlText, requester, trace)
	m.flightMu.Lock()
	// Delete only our own entry: RefreshSchema may have replaced the map
	// mid-flight, and the key may already belong to a younger flight.
	if m.flights[key] == f {
		delete(m.flights, key)
	}
	m.flightMu.Unlock()
	close(f.done)
	return f.sh, f.err
}

// execute is the shared pipeline phase: parse, warehouse lookup,
// routing, fan-out, integration, global sort/limit. Everything here is
// a pure function of (query, requester, source state) — nothing
// consumes or updates per-requester control state, which is what makes
// sharing the execution across coalesced callers safe.
func (m *Mediator) execute(ctx context.Context, piqlText, requester string, trace *obs.Trace) (*sharedExec, error) {
	ts := m.obs.now()
	q, canonical, err := m.parseCached(piqlText)
	m.obs.stage(trace, "parse", ts, spanOutcome(err))
	if err != nil {
		return nil, err
	}

	// Hybrid path: serve from the warehouse when fresh.
	whKey := requester + "|" + canonical
	if m.wh != nil {
		ts = m.obs.now()
		res, ok := m.wh.Get(whKey)
		if ok {
			m.obs.stage(trace, "warehouse", ts, obs.OutcomeAnswered)
			return &sharedExec{q: q, canonical: canonical, out: &Integrated{
				Result: res, FromWarehouse: true, Answered: []string{"warehouse"},
			}}, nil
		}
		m.obs.stage(trace, "warehouse", ts, obs.OutcomeSkipped)
	}

	// Fragmenter: route to relevant sources only.
	ts = m.obs.now()
	targets := m.route(q)
	if len(targets) == 0 {
		m.obs.stage(trace, "route", ts, obs.RefusedOutcome(refusal.NoSource.String()))
		return nil, fmt.Errorf("mediator: no source holds data matching %s", q.For)
	}
	m.obs.stage(trace, "route", ts, obs.OutcomeAnswered)

	type reply struct {
		name string
		node *xmltree.Node
		err  error
	}
	// Each goroutine sends exactly one reply into the buffered channel,
	// so a source that overruns its deadline cannot stall collection and
	// the goroutine never leaks.
	tsFanout := m.obs.now()
	replies := make(chan reply, len(targets))
	for _, ep := range targets {
		go func(ep source.Endpoint) {
			tsCall := m.obs.now()
			sctx, cancel := m.sourceCtx(ctx)
			defer cancel()
			node, err := ep.Query(sctx, canonical, requester)
			m.obs.sourceCall(trace, ep.Name(), tsCall, err)
			replies <- reply{name: ep.Name(), node: node, err: err}
		}(ep)
	}

	out := &Integrated{Denied: map[string]string{}}
	var answers []*answer
	for range targets {
		r := <-replies
		if r.err != nil {
			out.Denied[r.name] = m.denialReason(r.err)
			continue
		}
		a, err := parseAnswer(r.node)
		if err != nil {
			out.Denied[r.name] = err.Error()
			continue
		}
		answers = append(answers, a)
		out.Answered = append(out.Answered, r.name)
		if a.estLoss > out.AggregatedLoss {
			out.AggregatedLoss = a.estLoss
		}
	}
	sort.Strings(out.Answered)
	if len(answers) == 0 {
		m.obs.stage(trace, "fanout", tsFanout, obs.RefusedOutcome(refusal.NoSource.String()))
		reasons := make([]string, 0, len(out.Denied))
		for s, r := range out.Denied {
			reasons = append(reasons, s+": "+r)
		}
		sort.Strings(reasons)
		return nil, fmt.Errorf("mediator: every source refused: %s", strings.Join(reasons, "; "))
	}
	m.obs.stage(trace, "fanout", tsFanout, obs.OutcomeAnswered)

	// Result Integrator: merge per-source results. Aggregate queries are
	// re-aggregated by group key (each source contributed partial
	// aggregates over its own rows); plain queries are deduplicated.
	ts = m.obs.now()
	integrated := mergeAnswers(answers)
	if q.IsAggregate() {
		integrated, err = reaggregate(q, integrated)
	} else {
		integrated, out.Duplicates, err = m.dedupe(integrated)
	}
	m.obs.stage(trace, "integrate", ts, spanOutcome(err))
	if err != nil {
		return nil, err
	}

	// Global ordering and limit: per-source ORDER BY does not survive
	// merging, and a per-source LIMIT n yields up to n rows per source.
	// Re-apply both on the integrated result. This runs once per shared
	// execution — the result published to coalesced followers is already
	// in its final shape and is read-only from here on.
	if q.OrderBy != "" {
		// Ignore a missing column: a source-side mitigation may have
		// dropped it, in which case order is unspecified, not an error.
		_ = integrated.Sort(q.OrderBy, q.OrderDesc)
	}
	if q.Limit > 0 && len(integrated.Rows) > q.Limit {
		integrated.Rows = integrated.Rows[:q.Limit]
	}

	out.Result = integrated
	return &sharedExec{q: q, canonical: canonical, out: out}, nil
}

// finalize is the per-caller control phase: loss control, the release
// ledger, warehouse materialization and history recording. Coalesced
// followers each pass through here with their own requester and trace,
// so sharing an execution never lets a query skip a control — exactly
// the plan-cache contract, extended to in-flight sharing.
func (m *Mediator) finalize(sh *sharedExec, requester string, trace *obs.Trace) (*Integrated, error) {
	q, out := sh.q, sh.out
	if out.FromWarehouse {
		m.record(HistoryEntry{Requester: requester, Query: sh.canonical, Sources: []string{"warehouse"}})
		m.maybeSnapshot()
		return out, nil
	}

	// Privacy Control: the aggregated loss must respect the requester's
	// budget — integrating cannot launder a violation (Section 5:
	// computed per-source loss "may not hold after the results are
	// integrated").
	ts := m.obs.now()
	if out.AggregatedLoss > q.MaxLoss {
		m.obs.stage(trace, "control", ts, obs.RefusedOutcome(refusal.LossBudget.String()))
		return nil, fmt.Errorf("mediator: integrated information loss %.2f exceeds the requester's MAXLOSS %.2f",
			out.AggregatedLoss, q.MaxLoss)
	}
	m.obs.stage(trace, "control", ts, obs.OutcomeAnswered)

	// Release ledger: a requester's aggregate releases must not combine
	// into a Figure 1 system (second-level enforcement across queries).
	if q.IsAggregate() {
		if rel, ok := classifyRelease(q, out.Result); ok {
			ts = m.obs.now()
			err := m.ledger.checkAndRecord(requester, rel, m.cfg.MaxDisclosure, m.cfg.LedgerTolerance)
			m.obs.stage(trace, "ledger", ts, spanOutcome(err))
			if err != nil {
				return nil, err
			}
		}
	}

	if m.wh != nil {
		m.wh.Put(requester+"|"+sh.canonical, out.Result)
		m.wh.Tick()
	}
	m.record(HistoryEntry{
		Requester: requester,
		Query:     sh.canonical,
		Sources:   out.Answered,
		Denied:    sortedKeys(out.Denied),
	})
	m.maybeSnapshot()
	return out, nil
}

// Observability exposes the mediator's metrics registry and tracer (nil
// when not configured); the HTTP handler mounts them.
func (m *Mediator) Observability() (*obs.Registry, *obs.Tracer) {
	return m.cfg.Obs, m.cfg.Trace
}

// parsedQuery is one parse-cache entry: the parsed (immutable) query
// and its canonical rendering, which everything downstream keys on.
type parsedQuery struct {
	q         *piql.Query
	canonical string
}

// parseCached resolves PIQL text to a parsed query through the plan
// cache, keyed by whitespace-normalized text. Parsed queries are never
// mutated after Parse, so a shared hit is safe across concurrent
// queries. Only the parse is skipped on a hit — routing, fan-out,
// privacy control and the release ledger all run per query.
func (m *Mediator) parseCached(piqlText string) (*piql.Query, string, error) {
	key := qcache.Normalize(piqlText)
	if v, ok := m.plans.Get(key); ok {
		pq := v.(*parsedQuery)
		return pq.q, pq.canonical, nil
	}
	q, err := piql.Parse(strings.TrimSpace(piqlText))
	if err != nil {
		return nil, "", fmt.Errorf("mediator: %w", err)
	}
	pq := &parsedQuery{q: q, canonical: q.String()}
	m.plans.Put(key, pq)
	return pq.q, pq.canonical, nil
}

// PlanCacheStats exposes the parse/plan cache counters (zeroes when the
// cache is disabled): lifetime hits and misses plus the current entry
// count.
func (m *Mediator) PlanCacheStats() (hits, misses uint64, size int) {
	h, mi := m.plans.Stats()
	return h, mi, m.plans.Len()
}

// route implements the Fragmenter's source selection: a source is
// relevant when its shared summary has any path the FOR pattern (or a
// resolver-expanded variant) can reach.
func (m *Mediator) route(q *piql.Query) []source.Endpoint {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []source.Endpoint
	for _, ep := range m.cfg.Endpoints {
		sum, ok := m.bySource[ep.Name()]
		if !ok {
			// Never summarized (e.g. joined after refresh): try it anyway.
			out = append(out, ep)
			continue
		}
		if summaryReaches(sum, q.For) {
			out = append(out, ep)
		}
	}
	return out
}

// summaryReaches reports whether any summarized path satisfies the FOR
// pattern. Summaries contain every intermediate path, so an exact match
// against some path is necessary and sufficient — MatchesPrefix would
// declare every source reachable whenever the pattern starts with a
// descendant step.
func summaryReaches(sum *xmltree.Summary, pat *xmltree.PathPattern) bool {
	for _, info := range sum.Paths() {
		if pat.Matches(info.Path) {
			return true
		}
	}
	return false
}

// answer is a parsed tagged source answer.
type answer struct {
	source  string
	result  *piql.Result
	estLoss float64
}

func parseAnswer(node *xmltree.Node) (*answer, error) {
	if node.Name != "answer" {
		return nil, fmt.Errorf("mediator: expected <answer>, got <%s>", node.Name)
	}
	src, _ := node.Attr("source")
	resNode := node.Child("result")
	if resNode == nil {
		return nil, fmt.Errorf("mediator: answer from %s has no result", src)
	}
	res, err := piql.ResultFromNode(resNode)
	if err != nil {
		return nil, err
	}
	a := &answer{source: src, result: res}
	if v, ok := node.Attr("estloss"); ok {
		fmt.Sscanf(v, "%g", &a.estLoss)
	}
	return a, nil
}

// mergeAnswers unions result rows over the union of columns; cells a
// source did not produce are empty.
func mergeAnswers(answers []*answer) *piql.Result {
	var cols []string
	seen := map[string]bool{}
	for _, a := range answers {
		for _, c := range a.result.Columns {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	out := &piql.Result{Columns: cols}
	idx := map[string]int{}
	for i, c := range cols {
		idx[c] = i
	}
	for _, a := range answers {
		for _, row := range a.result.Rows {
			nr := make([]string, len(cols))
			for i, c := range a.result.Columns {
				nr[idx[c]] = row[i]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// dedupe removes exact-duplicate rows always, and fuzzy duplicates on the
// configured column via Bloom-encoded similarity.
func (m *Mediator) dedupe(res *piql.Result) (*piql.Result, int, error) {
	out := &piql.Result{Columns: res.Columns}
	removed := 0

	// Exact pass.
	seen := map[string]bool{}
	for _, row := range res.Rows {
		key := strings.Join(row, "\x00")
		if seen[key] {
			removed++
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}

	// Fuzzy pass on the dedup column.
	col := -1
	for i, c := range out.Columns {
		if c == m.cfg.DedupColumn {
			col = i
			break
		}
	}
	if m.cfg.DedupColumn == "" || col < 0 || len(m.cfg.LinkageSalt) == 0 {
		return out, removed, nil
	}
	enc, err := linkage.NewEncoder(1000, 20, 2, m.cfg.LinkageSalt)
	if err != nil {
		return nil, 0, err
	}
	type keyed struct {
		block  string
		filter *linkage.Bitset
	}
	// The Bloom encoding of each row is independent, so it fans out
	// across the worker pool — one task per contiguous chunk of rows,
	// since a single encoding is too cheap to justify per-row dispatch.
	// The greedy keep/drop scan below stays serial because each decision
	// depends on every row kept before it.
	keys := make([]keyed, len(out.Rows))
	err = parallel.ForEachChunk(context.Background(), len(out.Rows), m.cfg.Workers, 0, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			v := out.Rows[i][col]
			keys[i] = keyed{block: linkage.BlockKey(m.cfg.LinkageSalt, v), filter: enc.Encode(v)}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var kept []([]string)
	var keptKeys []keyed
	for ri, row := range out.Rows {
		k := keys[ri]
		dup := false
		for i := range keptKeys {
			if keptKeys[i].block != k.block {
				continue
			}
			sim, err := linkage.Dice(keptKeys[i].filter, k.filter)
			if err != nil {
				return nil, 0, err
			}
			if sim >= m.cfg.DedupThreshold {
				dup = true
				break
			}
			_ = kept[i]
		}
		if dup {
			removed++
			continue
		}
		kept = append(kept, row)
		keptKeys = append(keptKeys, k)
	}
	out.Rows = kept
	return out, removed, nil
}

// History returns a copy of the query history.
func (m *Mediator) History() []HistoryEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]HistoryEntry(nil), m.history...)
}

func (m *Mediator) record(e HistoryEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wh != nil {
		e.Clock = m.wh.Now()
	}
	m.history = append(m.history, e)
	m.historyReq[e.Requester] = struct{}{}
	if m.persist != nil {
		m.persist.persistHistory(e)
	}
}

// WarehouseStats exposes hybrid-mode statistics (zeroes when disabled).
func (m *Mediator) WarehouseStats() (hits, misses, size int) {
	if m.wh == nil {
		return 0, 0, 0
	}
	return m.wh.Stats()
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
