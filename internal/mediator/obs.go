package mediator

// Observability hooks for the mediation pipeline. Handles resolve once
// in New; a mediator built without a Registry or Tracer carries a nil
// *medObs whose methods are no-ops, so QueryContext's instrumentation
// is unconditional and the uninstrumented hot path pays one nil check
// per stage.

import (
	"context"
	"errors"
	"time"

	"privateiye/internal/admission"
	"privateiye/internal/obs"
	"privateiye/internal/refusal"
	"privateiye/internal/resilience"
)

// mediatorStages are the per-stage span and histogram names of the
// Figure 2(b) pipeline. "source" spans (one per fanned-out source call)
// additionally carry the source name.
var mediatorStages = []string{"parse", "coalesce", "warehouse", "route", "fanout", "integrate", "control", "ledger"}

// srcCallObs are the per-source fan-out handles.
type srcCallObs struct {
	answered *obs.Counter
	denied   *obs.Counter
	seconds  *obs.Histogram
}

// medObs holds the mediator's pre-resolved metric handles.
type medObs struct {
	tracer *obs.Tracer
	// shard is the shard id stamped on every trace ("" unsharded); set
	// by setupShard after construction.
	shard string

	answered  *obs.Counter
	warehouse *obs.Counter
	brownout  *obs.Counter
	shedded   *obs.Counter
	refused   *obs.Counter
	latency   *obs.Histogram
	refusals  map[refusal.Reason]*obs.Counter
	stages    map[string]*obs.Histogram
	sources   map[string]*srcCallObs

	// Coalescing counters: leaders ran the pipeline, followers shared a
	// leader's execution. followers/(leaders+followers) is the in-flight
	// hit rate.
	coalLeader   *obs.Counter
	coalFollower *obs.Counter
}

func newMedObs(reg *obs.Registry, tracer *obs.Tracer, sourceNames []string) *medObs {
	if reg == nil && tracer == nil {
		return nil
	}
	reg.Help("piye_mediator_queries_total", "Mediated queries by outcome (warehouse = served materialized).")
	reg.Help("piye_mediator_refusals_total", "Refused queries by normalized reason.")
	reg.Help("piye_mediator_query_seconds", "Full mediation latency per query.")
	reg.Help("piye_mediator_stage_seconds", "Per-stage latency of the mediation pipeline.")
	reg.Help("piye_mediator_source_calls_total", "Fan-out calls per source by outcome.")
	reg.Help("piye_mediator_source_seconds", "Fan-out call latency per source.")
	reg.Help("piye_mediator_coalesce_total", "Coalesced query executions: leaders ran the pipeline, followers joined one in flight.")
	o := &medObs{
		tracer:    tracer,
		answered:  reg.Counter("piye_mediator_queries_total", "outcome", "answered"),
		warehouse: reg.Counter("piye_mediator_queries_total", "outcome", "warehouse"),
		brownout:  reg.Counter("piye_mediator_queries_total", "outcome", "brownout"),
		shedded:   reg.Counter("piye_mediator_queries_total", "outcome", "shed"),
		refused:   reg.Counter("piye_mediator_queries_total", "outcome", "refused"),
		latency:   reg.Histogram("piye_mediator_query_seconds", nil),
		refusals:  map[refusal.Reason]*obs.Counter{},
		stages:    map[string]*obs.Histogram{},
		sources:   map[string]*srcCallObs{},

		coalLeader:   reg.Counter("piye_mediator_coalesce_total", "role", "leader"),
		coalFollower: reg.Counter("piye_mediator_coalesce_total", "role", "follower"),
	}
	// Pre-register every refusal reason so /metrics shows zero counts
	// instead of absent series.
	for _, rs := range refusal.All() {
		o.refusals[rs] = reg.Counter("piye_mediator_refusals_total", "reason", rs.String())
	}
	for _, st := range mediatorStages {
		o.stages[st] = reg.Histogram("piye_mediator_stage_seconds", nil, "stage", st)
	}
	for _, name := range sourceNames {
		o.sources[name] = &srcCallObs{
			answered: reg.Counter("piye_mediator_source_calls_total", "source", name, "outcome", "answered"),
			denied:   reg.Counter("piye_mediator_source_calls_total", "source", name, "outcome", "denied"),
			seconds:  reg.Histogram("piye_mediator_source_seconds", nil, "source", name),
		}
	}
	return o
}

// startTrace begins a per-query trace (nil when tracing is disabled).
func (o *medObs) startTrace(requester, query string) *obs.Trace {
	if o == nil || o.tracer == nil {
		return nil
	}
	t := o.tracer.Start(requester, query)
	t.SetShard(o.shard)
	return t
}

// now returns the stage start time (zero when observability is off, so
// disabled pipelines skip even the clock read).
func (o *medObs) now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// stage records one finished pipeline stage: the stage histogram and the
// trace span, off a single clock read. A direct method rather than a
// returned closure: closures capturing the stage state escape to the
// heap, and this runs twice on the warehouse-served hot path.
func (o *medObs) stage(trace *obs.Trace, name string, t0 time.Time, outcome string) {
	if o == nil {
		return
	}
	d := time.Since(t0)
	o.stages[name].Observe(d.Seconds())
	trace.Record(name, "", t0, d, outcome)
}

// coalesced counts one coalesced-execution participant by role.
func (o *medObs) coalesced(leader bool) {
	if o == nil {
		return
	}
	if leader {
		o.coalLeader.Inc()
	} else {
		o.coalFollower.Inc()
	}
}

// sourceCall records one fanned-out source call; called from the fan-out
// goroutine (Trace spans and counters are concurrency-safe).
func (o *medObs) sourceCall(trace *obs.Trace, name string, t0 time.Time, err error) {
	if o == nil {
		return
	}
	d := time.Since(t0)
	if sc := o.sources[name]; sc != nil {
		sc.seconds.Observe(d.Seconds())
		if err == nil {
			sc.answered.Inc()
		} else {
			sc.denied.Inc()
		}
	}
	trace.Record("source", name, t0, d, spanOutcome(err))
}

// finish closes the query: outcome counters, total latency, trace
// outcome.
func (o *medObs) finish(trace *obs.Trace, t0 time.Time, out *Integrated, err error) {
	if o == nil {
		return
	}
	o.latency.Observe(time.Since(t0).Seconds())
	switch {
	case err != nil:
		// Admission sheds are capacity decisions, not privacy refusals:
		// they get their own outcome so overload never inflates the
		// refusal rate an auditor watches. The reason series
		// (overloaded/ratelimited) still records why.
		reason := refusal.Classify(err)
		if admission.IsShed(err) {
			o.shedded.Inc()
		} else {
			o.refused.Inc()
		}
		o.refusals[reason].Inc()
		trace.Finish(obs.RefusedOutcome(reason.String()))
	case out != nil && out.Stale:
		// Brownout answers get their own outcome: they are successes,
		// but capacity planning must see how often the system is
		// degraded rather than fresh.
		o.brownout.Inc()
		trace.Finish(obs.OutcomeAnswered)
	case out != nil && out.FromWarehouse:
		o.warehouse.Inc()
		trace.Finish(obs.OutcomeAnswered)
	default:
		o.answered.Inc()
		trace.Finish(obs.OutcomeAnswered)
	}
}

// spanOutcome renders a stage or source-call error as a span outcome:
// timeouts and breaker skips keep their dedicated outcomes, everything
// else reuses the refusal vocabulary.
func spanOutcome(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeAnswered
	case errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeTimeout
	case errors.Is(err, resilience.ErrOpen):
		return obs.OutcomeSkipped
	default:
		return obs.RefusedOutcome(refusal.Classify(err).String())
	}
}

// breakerStateValue maps a breaker state name to the exported gauge
// value: 0 closed, 1 half-open, 2 open.
func breakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	}
	return 0
}
