package mediator

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"privateiye/internal/obs"
	"privateiye/internal/piql"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// IntegratedToNode renders an integration result for the wire:
//
//	<integrated duplicates="3" loss="0.12" warehouse="false">
//	  <answered>hospitalA</answered>
//	  <denied source="labB">…reason…</denied>
//	  <result>…</result>
//	</integrated>
func IntegratedToNode(in *Integrated) *xmltree.Node {
	root := xmltree.NewElem("integrated").
		SetAttr("duplicates", strconv.Itoa(in.Duplicates)).
		SetAttr("loss", strconv.FormatFloat(in.AggregatedLoss, 'g', -1, 64)).
		SetAttr("warehouse", strconv.FormatBool(in.FromWarehouse))
	if in.Stale {
		// Only brownout answers carry the marker: absence means fresh.
		root.SetAttr("stale", "true").
			SetAttr("stale-age", strconv.FormatInt(in.StaleAge, 10))
	}
	for _, s := range in.Answered {
		root.Append(xmltree.NewText("answered", s))
	}
	for src, reason := range in.Denied {
		root.Append(xmltree.NewText("denied", reason).SetAttr("source", src))
	}
	root.Append(in.Result.ToNode())
	return root
}

// IntegratedFromNode parses IntegratedToNode output.
func IntegratedFromNode(n *xmltree.Node) (*Integrated, error) {
	if n.Name != "integrated" {
		return nil, fmt.Errorf("mediator: expected <integrated>, got <%s>", n.Name)
	}
	out := &Integrated{Denied: map[string]string{}}
	if v, ok := n.Attr("duplicates"); ok {
		out.Duplicates, _ = strconv.Atoi(v)
	}
	if v, ok := n.Attr("loss"); ok {
		out.AggregatedLoss, _ = strconv.ParseFloat(v, 64)
	}
	if v, ok := n.Attr("warehouse"); ok {
		out.FromWarehouse = v == "true"
	}
	if v, ok := n.Attr("stale"); ok {
		out.Stale = v == "true"
	}
	if v, ok := n.Attr("stale-age"); ok {
		out.StaleAge, _ = strconv.ParseInt(v, 10, 64)
	}
	for _, a := range n.ChildrenNamed("answered") {
		out.Answered = append(out.Answered, a.Text)
	}
	for _, d := range n.ChildrenNamed("denied") {
		src, _ := d.Attr("source")
		out.Denied[src] = d.Text
	}
	resNode := n.Child("result")
	if resNode == nil {
		return nil, fmt.Errorf("mediator: integrated answer missing result")
	}
	res, err := piql.ResultFromNode(resNode)
	if err != nil {
		return nil, err
	}
	out.Result = res
	return out, nil
}

// NewHandler exposes the mediator over HTTP (cmd/piye-mediator).
func NewHandler(m *Mediator) http.Handler {
	mux := http.NewServeMux()

	writeNode := func(w http.ResponseWriter, n *xmltree.Node) {
		w.Header().Set("Content-Type", "application/xml")
		_ = n.Encode(w)
	}

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		requester := r.Header.Get("X-Requester")
		if requester == "" {
			http.Error(w, "mediator: missing X-Requester header", http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		// A router re-routing around a drain asserts the drained set in
		// this header; the ownership gate verifies the assertion against
		// its own ring rather than trusting it (see shardGate).
		if h := r.Header.Get("X-Shard-Rerouted-From"); h != "" {
			ctx = WithReroutedFrom(ctx, strings.Split(h, ","))
		}
		in, err := m.QueryContext(ctx, string(body), requester)
		if err != nil {
			// Admission sheds are 429/503 with Retry-After so clients
			// can distinguish "back off" from "forbidden".
			if source.WriteShed(w, err) {
				return
			}
			// Role and ownership refusals are 503, not 403: the query is
			// fine, it just reached the wrong node — retry against the
			// primary, or let the router re-route to the owning shard.
			var np *NotPrimaryError
			var fe *FencedError
			var no *NotOwnerError
			var dr *DrainingError
			if errors.As(err, &np) || errors.As(err, &fe) ||
				errors.As(err, &no) || errors.As(err, &dr) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		writeNode(w, IntegratedToNode(in))
	})

	mux.HandleFunc("GET /schema", func(w http.ResponseWriter, r *http.Request) {
		writeNode(w, m.MediatedSchema().ToNode())
	})

	mux.HandleFunc("GET /history", func(w http.ResponseWriter, r *http.Request) {
		root := xmltree.NewElem("history")
		for _, e := range m.History() {
			item := xmltree.NewElem("entry").
				SetAttr("requester", e.Requester).
				SetAttr("clock", strconv.FormatInt(e.Clock, 10))
			item.Append(xmltree.NewText("query", e.Query))
			for _, s := range e.Sources {
				item.Append(xmltree.NewText("source", s))
			}
			root.Append(item)
		}
		writeNode(w, root)
	})

	mux.HandleFunc("GET /correspondences", func(w http.ResponseWriter, r *http.Request) {
		root := xmltree.NewElem("correspondences")
		for _, c := range m.Correspondences() {
			root.Append(xmltree.NewElem("match").
				SetAttr("sourceA", c.SourceA).SetAttr("fieldA", c.FieldA).
				SetAttr("sourceB", c.SourceB).SetAttr("fieldB", c.FieldB).
				SetAttr("score", strconv.FormatFloat(c.Score, 'g', 3, 64)))
		}
		writeNode(w, root)
	})

	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		if err := m.RefreshSchemaContext(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// Replication surface, when configured: the stream standbys tail,
	// the fence endpoint a promoted successor posts to, operator-driven
	// promotion, and a status view for runbooks and tests.
	if m.repSrv != nil {
		mux.HandleFunc("GET /replica/stream", m.repSrv.ServeStream)
		mux.HandleFunc("POST /replica/fence", m.repSrv.ServeFence)
		mux.HandleFunc("POST /replica/promote", func(w http.ResponseWriter, r *http.Request) {
			epoch, err := m.Promote()
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"promoted": true, "epoch": epoch})
		})
	}
	mux.HandleFunc("GET /replica/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.ReplicationStatus())
	})

	// Shard drain/undrain admin and the membership view, when sharded.
	// Drain is what the router's admin surface propagates: the shard
	// keeps serving requesters whose state lives here and starts
	// refusing new ones for the router to re-route.
	if m.shard != nil {
		mux.HandleFunc("POST /shard/drain", func(w http.ResponseWriter, r *http.Request) {
			if err := m.Drain(); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
		// Undrain refuses (409) while a peer holds re-routed requester
		// state the full ring would reclaim here; ?force=1 overrides
		// after the operator migrates the state or accepts the loss.
		mux.HandleFunc("POST /shard/undrain", func(w http.ResponseWriter, r *http.Request) {
			force, _ := strconv.ParseBool(r.URL.Query().Get("force"))
			if err := m.Undrain(r.Context(), force); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
		// ?misplaced=1 adds the requesters whose state lives here but
		// whose full-ring owner is another shard — O(state), so only on
		// request (undrain's strand check asks for it; the router's
		// poller and the drain verifiers do not).
		mux.HandleFunc("GET /shard/status", func(w http.ResponseWriter, r *http.Request) {
			st := m.ShardInfo()
			if wantMisplaced, _ := strconv.ParseBool(r.URL.Query().Get("misplaced")); wantMisplaced {
				st.Misplaced = m.ShardMisplaced()
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st)
		})
	}

	// Liveness/readiness (readiness gates on WAL replay — implied by a
	// constructed mediator — and, for a standby, replication lag).
	obs.AttachHealth(mux, m.Ready)

	// /metrics and /debug/trace, when the mediator was built with a
	// registry or tracer.
	obs.Attach(mux, m.cfg.Obs, m.cfg.Trace)

	return mux
}
