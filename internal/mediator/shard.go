package mediator

// The mediator's side of the sharded tier (see internal/shard for the
// ring and the router). Every inference-control store the paper's
// second-level controls consume — the release ledger, the query
// history, the loss budgets — is keyed by requester, so the tier
// decomposes shared-nothing along that key. The invariant this file
// enforces, fail-closed, is OWNERSHIP: a shard answers a requester only
// when the ring says the requester's control state lives here. A shard
// that has not seen a requester's releases cannot refuse their
// combination, so answering a misrouted requester could only ever
// weaken a refusal — the gate turns that into a retryable 503
// (NotOwner), never a silent grant and never a 403.

import (
	"context"
	"fmt"
	"sync/atomic"

	"privateiye/internal/obs"
	"privateiye/internal/refusal"
	"privateiye/internal/shard"
)

// ShardConfig places one mediator in a sharded tier. Every shard and
// every router in the tier must be configured with the same Peers, Seed
// and Vnodes, or their rings disagree on ownership and the gate refuses
// traffic the router believed well-placed.
type ShardConfig struct {
	// ID is this shard's name in the ring; it must appear in Peers.
	ID string
	// Peers are the names of every shard in the tier, this one included.
	Peers []string
	// Seed is the ring placement seed (shard.DefaultSeed when 0 is
	// meant, set it explicitly — 0 is a valid seed).
	Seed uint64
	// Vnodes is the virtual-node count per member (<= 0 takes
	// shard.DefaultVnodes).
	Vnodes int
}

// NotOwnerError refuses a query that reached a shard other than the
// requester's ring owner. Fail-closed and retryable: the query is fine,
// it knocked on the wrong door, and the router should re-route it. The
// phrase "is not the owner of requester" is wire contract for
// refusal.ClassifyString.
type NotOwnerError struct {
	Shard     string
	Requester string
	Owner     string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("mediator: shard %s is not the owner of requester %s (owner %s)", e.Shard, e.Requester, e.Owner)
}

// RefusalReason implements refusal.Reasoner.
func (e *NotOwnerError) RefusalReason() refusal.Reason { return refusal.NotOwner }

// DrainingError refuses a NEW requester (one with no durable state
// here) on a draining shard: the shard is shedding ownership, and the
// router should place the requester with the drain-adjusted owner. A
// requester that already has state here keeps being served through the
// drain — moving it would strand the very ledger the refusals need.
// The phrase "draining: not accepting" is wire contract for
// refusal.ClassifyString.
type DrainingError struct {
	Shard string
}

func (e *DrainingError) Error() string {
	return fmt.Sprintf("mediator: shard %s draining: not accepting new requesters", e.Shard)
}

// RefusalReason implements refusal.Reasoner. A drain refusal is a
// routing fact, not a privacy verdict, so it shares the retryable
// NotOwner reason (503, never 403).
func (e *DrainingError) RefusalReason() refusal.Reason { return refusal.NotOwner }

// shardState is the mediator's membership view, set once in New.
type shardState struct {
	id       string
	ring     *shard.Ring
	draining atomic.Bool

	// Shard metric handles (nil when the mediator runs unobserved).
	drainingGauge *obs.Gauge
	notOwner      *obs.Counter
	drainRefused  *obs.Counter
	rerouted      *obs.Counter
}

// reroutedKey carries the router's drain assertion through the request
// context (see WithReroutedFrom).
type reroutedKey struct{}

// WithReroutedFrom attaches the router's drain assertion to a query
// context: the names of the draining shards the router routed around.
// The HTTP handler populates it from the X-Shard-Rerouted-From header.
func WithReroutedFrom(ctx context.Context, drained []string) context.Context {
	if len(drained) == 0 {
		return ctx
	}
	return context.WithValue(ctx, reroutedKey{}, drained)
}

// ReroutedFrom reads the router's drain assertion back (nil when the
// query arrived unrouted or undrained).
func ReroutedFrom(ctx context.Context) []string {
	v, _ := ctx.Value(reroutedKey{}).([]string)
	return v
}

// setupShard validates the config and builds the ring. Called from New
// after durability replay so the gate's first ownership answers already
// see the recovered requester state.
func (m *Mediator) setupShard(cfg ShardConfig) error {
	if cfg.ID == "" {
		return fmt.Errorf("mediator: shard id must be non-empty")
	}
	ring := shard.New(cfg.Seed, cfg.Vnodes)
	self := false
	for _, p := range cfg.Peers {
		if err := ring.Add(p); err != nil {
			return fmt.Errorf("mediator: shard peer: %w", err)
		}
		if p == cfg.ID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("mediator: shard peers %v do not include this shard's id %q", cfg.Peers, cfg.ID)
	}
	s := &shardState{id: cfg.ID, ring: ring}
	if reg := m.cfg.Obs; reg != nil {
		reg.Help("piye_shard_info", "Shard membership: one series per known peer, value 1; the self label marks this shard.")
		reg.Help("piye_shard_draining", "1 while this shard is draining (refusing new requesters), else 0.")
		reg.Help("piye_shard_not_owner_total", "Queries refused because the requester hashes to a different shard.")
		reg.Help("piye_shard_draining_refusals_total", "New requesters refused while draining (re-routed by the router).")
		reg.Help("piye_shard_rerouted_accepted_total", "Queries accepted as the drain-adjusted owner on a router re-route.")
		for _, p := range cfg.Peers {
			selfLabel := "false"
			if p == cfg.ID {
				selfLabel = "true"
			}
			reg.Gauge("piye_shard_info", "shard", cfg.ID, "peer", p, "self", selfLabel).Set(1)
		}
		s.drainingGauge = reg.Gauge("piye_shard_draining", "shard", cfg.ID)
		s.drainingGauge.Set(0)
		s.notOwner = reg.Counter("piye_shard_not_owner_total", "shard", cfg.ID)
		s.drainRefused = reg.Counter("piye_shard_draining_refusals_total", "shard", cfg.ID)
		s.rerouted = reg.Counter("piye_shard_rerouted_accepted_total", "shard", cfg.ID)
	}
	m.shard = s
	if m.obs != nil {
		m.obs.shard = cfg.ID
	}
	return nil
}

// shardGate is the ownership check, run on every query after the role
// gate and before admission (a misrouted query must not consume a
// concurrency slot). Unsharded mediators pay one nil check.
//
// The decision table:
//
//	full-ring owner, not draining          -> serve
//	full-ring owner, draining, has state   -> serve (finish what we own)
//	full-ring owner, draining, new         -> DrainingError (router re-routes)
//	not owner, router asserted a drain and
//	  we are the drain-adjusted owner      -> serve (take ownership)
//	anything else                          -> NotOwnerError
//
// The drain re-route is verified, not trusted: the router's
// X-Shard-Rerouted-From header only names which shards to exclude, and
// the gate recomputes ownership over the remainder with the same pure
// placement function the router used. A forged or stale header can make
// this shard refuse (fail-closed), never make it serve a requester the
// ring places elsewhere among the live shards it knows.
func (m *Mediator) shardGate(ctx context.Context, requester string) error {
	s := m.shard
	if s == nil {
		return nil
	}
	owner, err := s.ring.Lookup(requester)
	if err != nil {
		// Unreachable in a validated config (the ring always holds self),
		// but fail closed rather than serve unowned.
		return &NotOwnerError{Shard: s.id, Requester: requester, Owner: "?"}
	}
	if owner == s.id {
		if s.draining.Load() && !m.hasRequesterState(requester) {
			if s.drainRefused != nil {
				s.drainRefused.Inc()
			}
			return &DrainingError{Shard: s.id}
		}
		return nil
	}
	if drained := ReroutedFrom(ctx); len(drained) > 0 {
		if adj, err := s.ring.LookupExcluding(requester, drained); err == nil && adj == s.id {
			if s.rerouted != nil {
				s.rerouted.Inc()
			}
			return nil
		}
	}
	if s.notOwner != nil {
		s.notOwner.Inc()
	}
	return &NotOwnerError{Shard: s.id, Requester: requester, Owner: owner}
}

// hasRequesterState reports whether this shard holds durable control
// state for the requester — a query history or ledgered releases, both
// rebuilt from snapshot+WAL replay at startup. This is what makes a
// drain safe: requesters with state stay until the operator retires the
// shard, requesters without state lose nothing by being placed
// elsewhere.
func (m *Mediator) hasRequesterState(requester string) bool {
	m.mu.RLock()
	for _, e := range m.history {
		if e.Requester == requester {
			m.mu.RUnlock()
			return true
		}
	}
	m.mu.RUnlock()
	m.ledger.mu.Lock()
	_, ok := m.ledger.byRequester[requester]
	m.ledger.mu.Unlock()
	return ok
}

// Drain marks this shard draining: in-flight and stateful requesters
// keep being served, new requesters are refused with DrainingError for
// the router to re-route. Idempotent. No-op error when unsharded.
func (m *Mediator) Drain() error {
	if m.shard == nil {
		return fmt.Errorf("mediator: not sharded")
	}
	m.shard.draining.Store(true)
	if m.shard.drainingGauge != nil {
		m.shard.drainingGauge.Set(1)
	}
	return nil
}

// Undrain clears the drain mark.
func (m *Mediator) Undrain() error {
	if m.shard == nil {
		return fmt.Errorf("mediator: not sharded")
	}
	m.shard.draining.Store(false)
	if m.shard.drainingGauge != nil {
		m.shard.drainingGauge.Set(0)
	}
	return nil
}

// ShardStatus is the admin view of this shard's membership.
type ShardStatus struct {
	ID       string         `json:"id"`
	Draining bool           `json:"draining"`
	Seed     uint64         `json:"seed"`
	Peers    []shard.Member `json:"peers"`
}

// ShardInfo reports the shard view (nil when unsharded).
func (m *Mediator) ShardInfo() *ShardStatus {
	s := m.shard
	if s == nil {
		return nil
	}
	return &ShardStatus{
		ID:       s.id,
		Draining: s.draining.Load(),
		Seed:     s.ring.Seed(),
		Peers:    s.ring.Members(),
	}
}
