package mediator

// The mediator's side of the sharded tier (see internal/shard for the
// ring and the router). Every inference-control store the paper's
// second-level controls consume — the release ledger, the query
// history, the loss budgets — is keyed by requester, so the tier
// decomposes shared-nothing along that key. The invariant this file
// enforces, fail-closed, is OWNERSHIP: a shard answers a requester only
// when the ring says the requester's control state lives here. A shard
// that has not seen a requester's releases cannot refuse their
// combination, so answering a misrouted requester could only ever
// weaken a refusal — the gate turns that into a retryable 503
// (NotOwner), never a silent grant and never a 403.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateiye/internal/obs"
	"privateiye/internal/refusal"
	"privateiye/internal/shard"
)

// ShardConfig places one mediator in a sharded tier. Every shard and
// every router in the tier must be configured with the same Peers, Seed
// and Vnodes, or their rings disagree on ownership and the gate refuses
// traffic the router believed well-placed.
type ShardConfig struct {
	// ID is this shard's name in the ring; it must appear in Peers.
	ID string
	// Peers are the names of every shard in the tier, this one included.
	Peers []string
	// Seed is the ring placement seed (shard.DefaultSeed when 0 is
	// meant, set it explicitly — 0 is a valid seed).
	Seed uint64
	// Vnodes is the virtual-node count per member (<= 0 takes
	// shard.DefaultVnodes).
	Vnodes int
	// PeerURLs maps peer names to their base URLs. The gate needs them
	// for the drain handshake: a router's X-Shard-Rerouted-From header
	// is a CLAIM that some shards are draining, and this shard confirms
	// the claim against each named peer's own /shard/status before
	// taking ownership of a re-routed requester. Without URLs the claim
	// is unverifiable and every re-route is refused, fail-closed; plain
	// routing and the ownership gate work regardless. Undrain uses the
	// same URLs to check peers for stranded re-routed state. Set them
	// late with SetShardPeerURLs when they are not known at build time.
	PeerURLs map[string]string
	// DrainVerifyTTL caches a peer's drain-status verdict so a burst of
	// re-routed queries costs one status fetch, not one per query
	// (<= 0 = default 2s). The TTL bounds how long a stale "draining"
	// verdict can outlive the peer's undrain.
	DrainVerifyTTL time.Duration
	// Client is the outbound HTTP client for peer status checks (nil =
	// a default with a 2s timeout).
	Client *http.Client
}

// NotOwnerError refuses a query that reached a shard other than the
// requester's ring owner. Fail-closed and retryable: the query is fine,
// it knocked on the wrong door, and the router should re-route it. The
// phrase "is not the owner of requester" is wire contract for
// refusal.ClassifyString.
type NotOwnerError struct {
	Shard     string
	Requester string
	Owner     string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("mediator: shard %s is not the owner of requester %s (owner %s)", e.Shard, e.Requester, e.Owner)
}

// RefusalReason implements refusal.Reasoner.
func (e *NotOwnerError) RefusalReason() refusal.Reason { return refusal.NotOwner }

// DrainingError refuses a NEW requester (one with no durable state
// here) on a draining shard: the shard is shedding ownership, and the
// router should place the requester with the drain-adjusted owner. A
// requester that already has state here keeps being served through the
// drain — moving it would strand the very ledger the refusals need.
// The phrase "draining: not accepting" is wire contract for
// refusal.ClassifyString.
type DrainingError struct {
	Shard string
}

func (e *DrainingError) Error() string {
	return fmt.Sprintf("mediator: shard %s draining: not accepting new requesters", e.Shard)
}

// RefusalReason implements refusal.Reasoner. A drain refusal is a
// routing fact, not a privacy verdict, so it shares the retryable
// NotOwner reason (503, never 403).
func (e *DrainingError) RefusalReason() refusal.Reason { return refusal.NotOwner }

// drainVerdict is one cached peer drain-status answer.
type drainVerdict struct {
	draining bool
	at       time.Time
}

// shardState is the mediator's membership view, set once in New.
type shardState struct {
	id        string
	ring      *shard.Ring
	draining  atomic.Bool
	client    *http.Client
	verifyTTL time.Duration

	// mu guards the peer URL table (settable late via
	// SetShardPeerURLs) and the drain-verdict cache.
	mu       sync.Mutex
	peerURLs map[string]string
	verdicts map[string]drainVerdict

	// Shard metric handles (nil when the mediator runs unobserved).
	drainingGauge *obs.Gauge
	notOwner      *obs.Counter
	drainRefused  *obs.Counter
	rerouted      *obs.Counter
	rerouteDenied *obs.Counter
}

// reroutedKey carries the router's drain assertion through the request
// context (see WithReroutedFrom).
type reroutedKey struct{}

// WithReroutedFrom attaches the router's drain assertion to a query
// context: the names of the draining shards the router routed around.
// The HTTP handler populates it from the X-Shard-Rerouted-From header.
func WithReroutedFrom(ctx context.Context, drained []string) context.Context {
	if len(drained) == 0 {
		return ctx
	}
	return context.WithValue(ctx, reroutedKey{}, drained)
}

// ReroutedFrom reads the router's drain assertion back (nil when the
// query arrived unrouted or undrained).
func ReroutedFrom(ctx context.Context) []string {
	v, _ := ctx.Value(reroutedKey{}).([]string)
	return v
}

// setupShard validates the config and builds the ring. Called from New
// after durability replay so the gate's first ownership answers already
// see the recovered requester state.
func (m *Mediator) setupShard(cfg ShardConfig) error {
	if cfg.ID == "" {
		return fmt.Errorf("mediator: shard id must be non-empty")
	}
	ring := shard.New(cfg.Seed, cfg.Vnodes)
	self := false
	for _, p := range cfg.Peers {
		if err := ring.Add(p); err != nil {
			return fmt.Errorf("mediator: shard peer: %w", err)
		}
		if p == cfg.ID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("mediator: shard peers %v do not include this shard's id %q", cfg.Peers, cfg.ID)
	}
	s := &shardState{
		id:        cfg.ID,
		ring:      ring,
		client:    cfg.Client,
		verifyTTL: cfg.DrainVerifyTTL,
		peerURLs:  map[string]string{},
		verdicts:  map[string]drainVerdict{},
	}
	if s.client == nil {
		s.client = &http.Client{Timeout: 2 * time.Second}
	}
	if s.verifyTTL <= 0 {
		s.verifyTTL = 2 * time.Second
	}
	for name, u := range cfg.PeerURLs {
		s.peerURLs[name] = strings.TrimRight(u, "/")
	}
	if reg := m.cfg.Obs; reg != nil {
		reg.Help("piye_shard_info", "Shard membership: one series per known peer, value 1; the self label marks this shard.")
		reg.Help("piye_shard_draining", "1 while this shard is draining (refusing new requesters), else 0.")
		reg.Help("piye_shard_not_owner_total", "Queries refused because the requester hashes to a different shard.")
		reg.Help("piye_shard_draining_refusals_total", "New requesters refused while draining (re-routed by the router).")
		reg.Help("piye_shard_rerouted_accepted_total", "Queries accepted as the drain-adjusted owner on a verified router re-route.")
		reg.Help("piye_shard_reroute_denied_total", "Router drain assertions refused: the claimed shard was not verifiably draining, or placement disagreed.")
		for _, p := range cfg.Peers {
			selfLabel := "false"
			if p == cfg.ID {
				selfLabel = "true"
			}
			reg.Gauge("piye_shard_info", "shard", cfg.ID, "peer", p, "self", selfLabel).Set(1)
		}
		s.drainingGauge = reg.Gauge("piye_shard_draining", "shard", cfg.ID)
		s.drainingGauge.Set(0)
		s.notOwner = reg.Counter("piye_shard_not_owner_total", "shard", cfg.ID)
		s.drainRefused = reg.Counter("piye_shard_draining_refusals_total", "shard", cfg.ID)
		s.rerouted = reg.Counter("piye_shard_rerouted_accepted_total", "shard", cfg.ID)
		s.rerouteDenied = reg.Counter("piye_shard_reroute_denied_total", "shard", cfg.ID)
	}
	m.shard = s
	if m.obs != nil {
		m.obs.shard = cfg.ID
	}
	return nil
}

// SetShardPeerURLs installs (or replaces) the peer base-URL table after
// construction, for deployments where peer addresses are not known when
// the mediator is built. Until URLs are set, drain re-routes are
// refused fail-closed (the router's drain claim cannot be verified).
func (m *Mediator) SetShardPeerURLs(urls map[string]string) error {
	s := m.shard
	if s == nil {
		return fmt.Errorf("mediator: not sharded")
	}
	cp := make(map[string]string, len(urls))
	for name, u := range urls {
		cp[name] = strings.TrimRight(u, "/")
	}
	s.mu.Lock()
	s.peerURLs = cp
	s.verdicts = map[string]drainVerdict{}
	s.mu.Unlock()
	return nil
}

// shardGate is the ownership check, run on every query after the role
// gate and before admission (a misrouted query must not consume a
// concurrency slot). Unsharded mediators pay one nil check.
//
// The decision table:
//
//	full-ring owner, not draining          -> serve
//	full-ring owner, draining, has state   -> serve (finish what we own)
//	full-ring owner, draining, new         -> DrainingError (router re-routes)
//	not owner, router asserted a drain,
//	  every shard ranked ahead of us is in
//	  the assertion AND confirmed draining
//	  by its own /shard/status             -> serve (take ownership)
//	anything else                          -> NotOwnerError
//
// The drain re-route is verified, not trusted, in two parts. Placement:
// the X-Shard-Rerouted-From header only names which shards to exclude,
// and the gate recomputes ownership over the remainder with the same
// pure placement function the router used. Drain truth: each excluded
// shard that actually ranks ahead of this one must CONFIRM it is
// draining via its own /shard/status (verdicts cached briefly, see
// DrainVerifyTTL) — the header is a claim, not a credential, and any
// HTTP client can send it. A forged, stale, or unverifiable assertion
// can only cause a refusal (fail-closed), never make this shard serve
// a requester whose control state lives on a live, non-draining owner.
func (m *Mediator) shardGate(ctx context.Context, requester string) error {
	s := m.shard
	if s == nil {
		return nil
	}
	owner, err := s.ring.Lookup(requester)
	if err != nil {
		// Unreachable in a validated config (the ring always holds self),
		// but fail closed rather than serve unowned.
		return &NotOwnerError{Shard: s.id, Requester: requester, Owner: "?"}
	}
	if owner == s.id {
		if s.draining.Load() && !m.hasRequesterState(requester) {
			if s.drainRefused != nil {
				s.drainRefused.Inc()
			}
			return &DrainingError{Shard: s.id}
		}
		return nil
	}
	if drained := ReroutedFrom(ctx); len(drained) > 0 {
		if m.verifyReroute(ctx, requester, drained) {
			if s.rerouted != nil {
				s.rerouted.Inc()
			}
			return nil
		}
		if s.rerouteDenied != nil {
			s.rerouteDenied.Inc()
		}
	}
	if s.notOwner != nil {
		s.notOwner.Inc()
	}
	return &NotOwnerError{Shard: s.id, Requester: requester, Owner: owner}
}

// verifyReroute decides whether this shard may take ownership of a
// requester the full ring places elsewhere, given the router's asserted
// drained set. It walks the requester's preference chain: every shard
// ranked ahead of this one must be named in the assertion AND confirmed
// draining by that shard itself. Only load-bearing exclusions are
// checked — names in the assertion that never rank ahead of us are
// irrelevant and cost nothing.
func (m *Mediator) verifyReroute(ctx context.Context, requester string, asserted []string) bool {
	s := m.shard
	claimed := make(map[string]bool, len(asserted))
	for _, name := range asserted {
		claimed[strings.TrimSpace(name)] = true
	}
	var excluded []string
	for i := 0; i < s.ring.Len(); i++ {
		owner, err := s.ring.LookupExcluding(requester, excluded)
		if err != nil {
			return false
		}
		if owner == s.id {
			return true
		}
		if !claimed[owner] || !s.peerDraining(ctx, owner) {
			return false
		}
		excluded = append(excluded, owner)
	}
	return false
}

// peerDraining confirms a drain claim with the claimed shard itself:
// GET its /shard/status and read the draining flag. Verdicts (including
// failures, recorded as not-draining) are cached for verifyTTL so a
// re-route burst costs one fetch and a dead peer is not hammered once
// per query. No URL, unreachable, or non-200 all answer false —
// unverifiable means refused.
func (s *shardState) peerDraining(ctx context.Context, name string) bool {
	s.mu.Lock()
	if v, ok := s.verdicts[name]; ok && time.Since(v.at) < s.verifyTTL {
		s.mu.Unlock()
		return v.draining
	}
	url, ok := s.peerURLs[name]
	s.mu.Unlock()
	if !ok {
		return false
	}
	draining := false
	if req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/shard/status", nil); err == nil {
		if resp, err := s.client.Do(req); err == nil {
			var st struct {
				Draining bool `json:"draining"`
			}
			if resp.StatusCode == http.StatusOK &&
				json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) == nil {
				draining = st.Draining
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	s.mu.Lock()
	s.verdicts[name] = drainVerdict{draining: draining, at: time.Now()}
	s.mu.Unlock()
	return draining
}

// hasRequesterState reports whether this shard holds durable control
// state for the requester — a query history or ledgered releases, both
// rebuilt from snapshot+WAL replay at startup. This is what makes a
// drain safe: requesters with state stay until the operator retires the
// shard, requesters without state lose nothing by being placed
// elsewhere. O(1): the history keeps a requester index (historyReq)
// alongside the entries, and the ledger is already keyed by requester.
func (m *Mediator) hasRequesterState(requester string) bool {
	m.mu.RLock()
	_, inHistory := m.historyReq[requester]
	m.mu.RUnlock()
	if inHistory {
		return true
	}
	m.ledger.mu.Lock()
	_, ok := m.ledger.byRequester[requester]
	m.ledger.mu.Unlock()
	return ok
}

// Drain marks this shard draining: in-flight and stateful requesters
// keep being served, new requesters are refused with DrainingError for
// the router to re-route. Idempotent. No-op error when unsharded.
func (m *Mediator) Drain() error {
	if m.shard == nil {
		return fmt.Errorf("mediator: not sharded")
	}
	m.shard.draining.Store(true)
	if m.shard.drainingGauge != nil {
		m.shard.drainingGauge.Set(1)
	}
	return nil
}

// Undrain clears the drain mark — but only after confirming no peer
// holds control state this shard would reclaim. A requester re-routed
// during the drain built their ledger and history on the drain-adjusted
// owner; once the full ring applies again, THIS shard would serve them
// from a fresh ledger while their real release history sits elsewhere —
// exactly the refusal-weakening sharding exists to prevent. So undrain
// asks every peer for its misplaced-state view (/shard/status?
// misplaced=1) and refuses, fail-closed, when any peer reports state
// owned here, when a peer cannot be reached, or when no peer URLs are
// configured (other shards may still have verified re-routes against
// this one). force skips the check: for the operator who has migrated
// the stranded state by hand, or accepts the loss knowingly.
func (m *Mediator) Undrain(ctx context.Context, force bool) error {
	s := m.shard
	if s == nil {
		return fmt.Errorf("mediator: not sharded")
	}
	if !force {
		if err := m.strandedByUndrain(ctx); err != nil {
			return err
		}
	}
	s.draining.Store(false)
	if s.drainingGauge != nil {
		s.drainingGauge.Set(0)
	}
	return nil
}

// strandedByUndrain is Undrain's safety check: an error describes the
// re-routed requester state that undraining would strand (or why it
// could not be ruled out). The phrase "undrain refused" is part of the
// admin wire surface — runbooks grep for it.
func (m *Mediator) strandedByUndrain(ctx context.Context) error {
	s := m.shard
	s.mu.Lock()
	peers := make(map[string]string, len(s.peerURLs))
	for name, u := range s.peerURLs {
		peers[name] = u
	}
	s.mu.Unlock()
	if len(peers) == 0 {
		return fmt.Errorf("mediator: undrain refused: no shard peer URLs configured, so re-routed requester state stranded on the drain-adjusted owners cannot be ruled out (migrate state or force)")
	}
	for _, mem := range s.ring.Members() {
		if mem.Name == s.id {
			continue
		}
		url, ok := peers[mem.Name]
		if !ok {
			return fmt.Errorf("mediator: undrain refused: no URL configured for peer %s, cannot confirm it holds no re-routed state for this shard (migrate state or force)", mem.Name)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/shard/status?misplaced=1", nil)
		if err != nil {
			return fmt.Errorf("mediator: undrain refused: peer %s: %w", mem.Name, err)
		}
		resp, err := s.client.Do(req)
		if err != nil {
			return fmt.Errorf("mediator: undrain refused: cannot confirm peer %s holds no re-routed state: %v (migrate state or force)", mem.Name, err)
		}
		var st ShardStatus
		decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			return fmt.Errorf("mediator: undrain refused: peer %s status unreadable (HTTP %d): cannot confirm it holds no re-routed state (migrate state or force)", mem.Name, resp.StatusCode)
		}
		if stranded := st.Misplaced[s.id]; len(stranded) > 0 {
			return fmt.Errorf("mediator: undrain refused: peer %s holds control state for requester(s) %s that the full ring places on this shard; undraining would serve them from a fresh ledger (migrate state or force)",
				mem.Name, strings.Join(stranded, ", "))
		}
	}
	return nil
}

// ShardStatus is the admin view of this shard's membership.
type ShardStatus struct {
	ID       string         `json:"id"`
	Draining bool           `json:"draining"`
	Seed     uint64         `json:"seed"`
	Peers    []shard.Member `json:"peers"`
	// Misplaced maps full-ring owner -> requesters whose control state
	// lives HERE although the full ring places them on that owner
	// (state adopted through drain re-routes, or left behind by a
	// membership change). Populated only on request
	// (/shard/status?misplaced=1) — computing it walks every requester
	// with state, which the hot path must never pay.
	Misplaced map[string][]string `json:"misplaced,omitempty"`
}

// ShardInfo reports the shard view (nil when unsharded).
func (m *Mediator) ShardInfo() *ShardStatus {
	s := m.shard
	if s == nil {
		return nil
	}
	return &ShardStatus{
		ID:       s.id,
		Draining: s.draining.Load(),
		Seed:     s.ring.Seed(),
		Peers:    s.ring.Members(),
	}
}

// ShardMisplaced computes the misplaced-state view for ShardStatus:
// every requester with durable control state here whose full-ring owner
// is another shard, grouped by that owner. Nil when unsharded; empty
// when all local state is owned here. O(requesters with state) — admin
// surface only.
func (m *Mediator) ShardMisplaced() map[string][]string {
	s := m.shard
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	m.mu.RLock()
	for r := range m.historyReq {
		seen[r] = true
	}
	m.mu.RUnlock()
	for _, r := range m.ledger.requesters() {
		seen[r] = true
	}
	out := map[string][]string{}
	for r := range seen {
		owner, err := s.ring.Lookup(r)
		if err != nil || owner == s.id {
			continue
		}
		out[owner] = append(out[owner], r)
	}
	for _, rs := range out {
		sort.Strings(rs)
	}
	return out
}
