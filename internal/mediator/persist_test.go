package mediator

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"privateiye/internal/clinical"
	"privateiye/internal/durable"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// durableFigure1Mediator is figure1Mediator over a persistent state
// directory: same Example 1 deployment, but the release ledger and query
// history survive a Close/New cycle.
func durableFigure1Mediator(t *testing.T, dur *DurabilityConfig) *Mediator {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Endpoints:       []source.Endpoint{ep},
		MaxDisclosure:   0.9,
		LedgerTolerance: 0.05,
		Durability:      dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The restart-amnesia attack, end to end: a snooper who holds the
// Figure 1(a) sigma release induces a mediator restart and asks the
// fresh process for the Figure 1(b) means. With a state directory
// configured, the restarted mediator must refuse the combination
// exactly as the unrestarted one would.
func TestRestartAmnesiaDefeated(t *testing.T) {
	dir := t.TempDir()

	m := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir})
	if _, err := m.Query(perTestQuery, "snooper"); err != nil {
		t.Fatalf("first release (Figure 1a) should pass: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Control: without durability the same restart forgets the sigma
	// release and the attack succeeds.
	amnesiac := figure1Mediator(t, 0.9)
	if _, err := amnesiac.Query(perHMOQuery, "snooper"); err != nil {
		t.Fatalf("control: an amnesiac mediator should (wrongly) answer: %v", err)
	}

	m2 := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir})
	defer m2.Close()
	_, err := m2.Query(perHMOQuery, "snooper")
	if err == nil {
		t.Fatal("restarted mediator must still refuse the Figure 1 combination")
	}
	if !strings.Contains(err.Error(), "combined") {
		t.Errorf("refusal should explain the combination: %v", err)
	}
	// Query history was replayed too.
	if h := m2.History(); len(h) < 1 || h[0].Requester != "snooper" {
		t.Errorf("recovered history = %+v, want the pre-restart query first", h)
	}
	// A requester with no prior releases is unaffected.
	if _, err := m2.Query(perHMOQuery, "bystander"); err != nil {
		t.Errorf("bystander: %v", err)
	}
}

// Releases keep being refused correctly across snapshot + compaction
// cycles: many requesters, small cadence, restart, every sigma-holder
// still blocked.
func TestLedgerSurvivesSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	m := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir, SnapshotEvery: 4})
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := m.Query(perTestQuery, fmt.Sprintf("req%d", i)); err != nil {
			t.Fatalf("req%d: %v", i, err)
		}
	}
	hist := len(m.History())
	m.Close()

	m2 := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir, SnapshotEvery: 4})
	defer m2.Close()
	if got := len(m2.History()); got != hist {
		t.Errorf("recovered %d history entries, want %d", got, hist)
	}
	for i := 0; i < n; i++ {
		if _, err := m2.Query(perHMOQuery, fmt.Sprintf("req%d", i)); err == nil {
			t.Errorf("req%d: combination must still be refused after compaction + restart", i)
		}
	}
}

// Group commit must not weaken fail-closed persistence: a crash inside
// a group-commit batch (after records are staged, before any byte is
// synced) must refuse every release in the batch, and recovery over the
// same directory must not replay any of them as granted — while the
// release acknowledged before the crash is still remembered.
func TestGroupCommitInBatchCrashFailsClosed(t *testing.T) {
	dir := t.TempDir()
	fp := durable.NewFailpoints()
	m := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir, GroupCommit: true, GroupMaxBatch: 8, Failpoints: fp})
	if _, err := m.Query(perTestQuery, "early"); err != nil {
		t.Fatalf("pre-crash release should pass: %v", err)
	}
	fp.Arm(durable.FPGroupCommit)
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Query(perTestQuery, fmt.Sprintf("doomed%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("doomed%d: a release in a never-synced batch was served", i)
		}
		if !strings.Contains(err.Error(), "unrecordable") {
			t.Errorf("doomed%d: refusal should explain persistence failure: %v", i, err)
		}
	}
	if got := fp.Tripped(); len(got) != 1 || got[0] != durable.FPGroupCommit {
		t.Fatalf("tripped = %v", got)
	}
	m.Close()

	m2 := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir, GroupCommit: true})
	defer m2.Close()
	// The release acknowledged before the crash was recovered: its holder
	// is still blocked from completing the Figure 1 combination.
	if _, err := m2.Query(perHMOQuery, "early"); err == nil {
		t.Error("early's sigma release was lost in recovery")
	}
	// No refused batch member was replayed as granted: each doomed
	// requester holds no sigma release and may take the per-HMO means.
	for i := 0; i < writers; i++ {
		if _, err := m2.Query(perHMOQuery, fmt.Sprintf("doomed%d", i)); err != nil {
			t.Errorf("doomed%d: refused release was replayed as granted: %v", i, err)
		}
	}
}

// A release the ledger cannot durably record must be refused, and a
// crash at any append failpoint must leave the state directory
// recoverable with the refused release absent or present-but-unserved —
// never a served-but-forgotten release.
func TestUnrecordableReleaseRefused(t *testing.T) {
	for _, point := range []string{durable.FPAppendBuffer, durable.FPAppendWrite, durable.FPAppendSync} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			fp := durable.NewFailpoints()
			m := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir, Failpoints: fp})
			fp.Arm(point)
			_, err := m.Query(perTestQuery, "snooper")
			if err == nil {
				t.Fatal("release over a dead log must be refused")
			}
			if !strings.Contains(err.Error(), "unrecordable") {
				t.Errorf("refusal should explain persistence failure: %v", err)
			}
			// Fail-closed also in memory: the refused release must not be
			// remembered as granted, and the dead log refuses everything
			// that follows.
			if _, err := m.Query(perHMOQuery, "snooper"); err == nil {
				t.Error("queries after a persistence crash must keep failing closed")
			}
			// The death is sticky and node-wide: a requester with no
			// prior releases is refused too, on every retry.
			for i := 0; i < 3; i++ {
				if _, err := m.Query(perTestQuery, "bystander"); err == nil {
					t.Fatalf("retry %d: a dead log must keep refusing every requester", i)
				}
			}
			m.Close()

			// Reboot over the same directory: recovery must succeed. The
			// crashed release may or may not have reached the disk
			// (durable-but-unacknowledged), but either way it was never
			// served, so both remembering and forgetting it are safe.
			m2 := durableFigure1Mediator(t, &DurabilityConfig{Dir: dir})
			defer m2.Close()
			if _, err := m2.Query(perTestQuery, "fresh"); err != nil {
				t.Errorf("recovered mediator must serve: %v", err)
			}
		})
	}
}
