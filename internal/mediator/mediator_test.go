package mediator

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privateiye/internal/clinical"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

var salt = []byte("integration-salt")

// twoHospitals builds two sources with overlapping patients (by name) and
// open policies for ages, plus denied identifiers at hospital B.
func twoHospitals(t *testing.T) []source.Endpoint {
	t.Helper()
	mk := func(name string, seed uint64, n int, denyAge bool) source.Endpoint {
		g := clinical.NewGenerator(seed)
		cat := relational.NewCatalog()
		patients, err := g.Patients("patients", n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(patients); err != nil {
			t.Fatal(err)
		}
		rules := []policy.Rule{
			{Item: "//patients/row/age", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
			{Item: "//patients/row/sex", Purpose: "any", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
			{Item: "//patients/row/name", Purpose: "research", Form: policy.Exact, Effect: policy.Allow, MaxLoss: 0.9},
		}
		if denyAge {
			rules = append(rules, policy.Rule{Item: "//patients/row/age", Purpose: "any", Effect: policy.Deny})
		}
		pol, err := policy.NewPolicy(name, policy.Deny, rules...)
		if err != nil {
			t.Fatal(err)
		}
		src, err := source.New(source.Config{Name: name, Catalog: cat, Policy: pol, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(src, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	return []source.Endpoint{
		mk("hospitalA", 1, 60, false),
		mk("hospitalB", 2, 40, true),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no endpoints should fail")
	}
	eps := twoHospitals(t)
	if _, err := New(Config{Endpoints: eps, DedupThreshold: 2}); err == nil {
		t.Error("bad threshold should fail")
	}
}

func TestMediatedSchemaMergesSources(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	schema := m.MediatedSchema()
	if !schema.Has("/patients/row/age") {
		t.Errorf("mediated schema missing age: %v", schema.Paths())
	}
}

func TestQueryIntegratesAcrossSources(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Age is allowed at A, denied at B: partial integration with the
	// denial recorded.
	in, err := m.Query("FOR //patients/row WHERE //age > 40 RETURN //age PURPOSE research MAXLOSS 0.9", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 1 || in.Answered[0] != "hospitalA" {
		t.Errorf("answered = %v", in.Answered)
	}
	if _, denied := in.Denied["hospitalB"]; !denied {
		t.Errorf("hospitalB denial missing: %v", in.Denied)
	}
	if len(in.Result.Rows) == 0 {
		t.Error("no integrated rows")
	}
}

func TestQueryAllSourcesContribute(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Query("FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 0.9", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Errorf("answered = %v (denied %v)", in.Answered, in.Denied)
	}
	// 60 + 40 rows, minus exact duplicates (sex values collapse to
	// distinct rows after exact dedup!). Row content here is a single
	// column, so exact dedup collapses to at most 2 rows.
	if len(in.Result.Rows) > 2 {
		t.Errorf("exact dedup should collapse single-column duplicates: %d rows", len(in.Result.Rows))
	}
	if in.Duplicates < 96 {
		t.Errorf("duplicates = %d", in.Duplicates)
	}
}

func TestQueryFullyDeniedEverywhere(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query("FOR //patients/row RETURN //id PURPOSE research", "r1"); err == nil {
		t.Error("id denied at every source should fail")
	}
	if _, err := m.Query("FOR //nonexistent/row RETURN //x PURPOSE research", "r1"); err == nil {
		t.Error("unroutable query should fail")
	}
	if _, err := m.Query("not piql", "r1"); err == nil {
		t.Error("unparseable query should fail")
	}
}

func TestFuzzyDedupOnNameColumn(t *testing.T) {
	// Two XML sources sharing a patient whose name is misspelled at one.
	mk := func(name, patient string) source.Endpoint {
		doc, err := xmltree.ParseString("<reg><patient><name>" + patient + "</name><age>50</age></patient></reg>")
		if err != nil {
			t.Fatal(err)
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		s, err := source.New(source.Config{Name: name, Docs: []*xmltree.Node{doc}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(s, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	m, err := New(Config{
		Endpoints:      []source.Endpoint{mk("A", "Jonathan Smith"), mk("B", "Jonathon Smith")},
		LinkageSalt:    salt,
		DedupColumn:    "name",
		DedupThreshold: 0.75,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Query("FOR //patient RETURN //name, //age PURPOSE research MAXLOSS 1", "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Result.Rows) != 1 {
		t.Errorf("fuzzy dedup should collapse the misspelled duplicate: %v", in.Result.Rows)
	}
	if in.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", in.Duplicates)
	}
}

func TestWarehouseHybridMode(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t), WarehouseCapacity: 16, WarehouseTTL: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := "FOR //patients/row WHERE //age > 40 RETURN //age PURPOSE research MAXLOSS 0.9"
	first, err := m.Query(q, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if first.FromWarehouse {
		t.Error("first query cannot be warehoused")
	}
	second, err := m.Query(q, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromWarehouse {
		t.Error("repeat query should hit the warehouse")
	}
	if len(second.Result.Rows) != len(first.Result.Rows) {
		t.Error("warehoused result differs")
	}
	// Different requester does not share the materialization (scope is
	// requester-keyed: budgets and policies differ per requester).
	third, err := m.Query(q, "r2")
	if err != nil {
		t.Fatal(err)
	}
	if third.FromWarehouse {
		t.Error("warehouse must be requester-scoped")
	}
	hits, misses, size := m.WarehouseStats()
	if hits != 1 || size < 1 || misses < 1 {
		t.Errorf("warehouse stats = %d/%d/%d", hits, misses, size)
	}
}

func TestHistoryRecords(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query("FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1", "alice"); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	if len(h) != 1 || h[0].Requester != "alice" {
		t.Errorf("history = %+v", h)
	}
	if !strings.Contains(h[0].Query, "//sex") {
		t.Errorf("history query = %q", h[0].Query)
	}
}

func TestCheckAggregateReleaseFigure1(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	matrix := clinical.Figure1GroundTruth()
	// Figure 1's release pins cells to ~1-5 points of 100: enormous
	// disclosure. A 0.9 threshold must refuse it.
	dec, err := m.CheckAggregateRelease(matrix, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Errorf("Figure 1 release should be refused: worst disclosure %v", dec.WorstDisclosure)
	}
	if len(dec.Breaches) == 0 || dec.WorstSnooper < 0 {
		t.Errorf("decision lacks detail: %+v", dec)
	}
	// A fully permissive threshold lets it through.
	dec, err = m.CheckAggregateRelease(matrix, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed {
		t.Errorf("threshold 1.0 should allow: %+v", dec)
	}
	if _, err := m.CheckAggregateRelease(matrix, 1, 0); err == nil {
		t.Error("zero threshold should be invalid")
	}
}

func TestPrivateOverlap(t *testing.T) {
	mk := func(name string, names []string) source.Endpoint {
		root := xmltree.NewElem("reg")
		for _, n := range names {
			root.Append(xmltree.NewElem("patient").Append(xmltree.NewText("name", n)))
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		s, err := source.New(source.Config{Name: name, Docs: []*xmltree.Node{root}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(s, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	a := mk("A", []string{"alice", "bob", "carol", "dave"})
	b := mk("B", []string{"carol", "erin", "alice", "alice"}) // duplicate alice
	n, err := PrivateOverlap(context.Background(), a, b, "name", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("overlap = %d, want 2 (duplicates must not inflate)", n)
	}
}

func TestHTTPHandlerRoundTrip(t *testing.T) {
	m, err := New(Config{Endpoints: twoHospitals(t)})
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(NewHandler(m))
	defer server.Close()

	// Query via HTTP.
	client := server.Client()
	httpReq, err := http.NewRequest("POST", server.URL+"/query",
		strings.NewReader("FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1"))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("X-Requester", "alice")
	resp, err := client.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %s", resp.Status)
	}
	node, err := xmltree.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	in, err := IntegratedFromNode(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Errorf("integrated over HTTP: %+v", in)
	}

	// Schema endpoint.
	sresp, err := client.Get(server.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	snode, err := xmltree.Parse(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if xmltree.SummaryFromNode(snode).Len() == 0 {
		t.Error("schema over HTTP empty")
	}

	// Missing requester rejected.
	bad, _ := http.NewRequest("POST", server.URL+"/query", strings.NewReader("FOR //x RETURN //y"))
	bresp, err := client.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != 400 {
		t.Errorf("missing requester status = %d", bresp.StatusCode)
	}
}

func TestIntegratedNodeRoundTrip(t *testing.T) {
	in := &Integrated{
		Result:         &piql.Result{Columns: []string{"a"}, Rows: [][]string{{"1"}}},
		Answered:       []string{"s1"},
		Denied:         map[string]string{"s2": "denied"},
		Duplicates:     3,
		AggregatedLoss: 0.25,
		FromWarehouse:  true,
	}
	back, err := IntegratedFromNode(IntegratedToNode(in))
	if err != nil {
		t.Fatal(err)
	}
	if back.Duplicates != 3 || back.AggregatedLoss != 0.25 || !back.FromWarehouse {
		t.Errorf("round trip = %+v", back)
	}
	if back.Denied["s2"] != "denied" || len(back.Answered) != 1 {
		t.Errorf("round trip lists = %+v", back)
	}
	if _, err := IntegratedFromNode(xmltree.NewElem("x")); err == nil {
		t.Error("wrong root should fail")
	}
}

func TestReaggregateAcrossSources(t *testing.T) {
	// Two sources each hold part of an events stream; grouped SUM/COUNT/
	// AVG must fold across them.
	mk := func(name string, rows [][2]string) source.Endpoint {
		doc := xmltree.NewElem("events")
		for _, r := range rows {
			doc.Append(xmltree.NewElem("event").Append(
				xmltree.NewText("region", r[0]),
				xmltree.NewText("cases", r[1]),
			))
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		s, err := source.New(source.Config{Name: name, Docs: []*xmltree.Node{doc}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(s, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	// Each group needs >= 3 rows per source or the default aggregate-
	// inference mitigation (small-count suppression) correctly drops it.
	a := mk("A", [][2]string{
		{"north", "10"}, {"north", "20"}, {"north", "30"},
		{"south", "6"}, {"south", "12"}, {"south", "18"},
	})
	b := mk("B", [][2]string{
		{"north", "40"}, {"north", "50"}, {"north", "60"},
		{"south", "12"}, {"south", "24"}, {"south", "36"},
	})
	m, err := New(Config{Endpoints: []source.Endpoint{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Query("FOR //event GROUP BY //region RETURN SUM(//cases) AS total, COUNT(*) AS n, AVG(//cases) AS mean PURPOSE surveillance MAXLOSS 1", "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Result.Rows) != 2 {
		t.Fatalf("groups = %v", in.Result.Rows)
	}
	byRegion := map[string][]string{}
	for _, row := range in.Result.Rows {
		byRegion[row[0]] = row
	}
	north := byRegion["north"]
	if north[1] != "210" || north[2] != "6" {
		t.Errorf("north sum/count = %v", north)
	}
	// Count-weighted mean: (10+...+60)/6 = 35.
	if north[3] != "35" {
		t.Errorf("north mean = %q, want 35", north[3])
	}
	south := byRegion["south"]
	if south[1] != "108" || south[2] != "6" || south[3] != "18" {
		t.Errorf("south = %v", south)
	}
}

func TestGlobalOrderByAndLimitAcrossSources(t *testing.T) {
	mk := func(name string, ages []string) source.Endpoint {
		doc := xmltree.NewElem("reg")
		for _, a := range ages {
			doc.Append(xmltree.NewElem("patient").Append(xmltree.NewText("age", a)))
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		reg := preserve.NewRegistry() // keep ages exact for the assertion
		s, err := source.New(source.Config{Name: name, Docs: []*xmltree.Node{doc}, Policy: pol, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(s, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	// Interleaved values across sources: global top-3 descending must be
	// 90, 85, 70 — which no single source can produce alone.
	m, err := New(Config{Endpoints: []source.Endpoint{
		mk("A", []string{"40", "85", "55"}),
		mk("B", []string{"90", "30", "70"}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.Query("FOR //patient RETURN //age ORDER BY age DESC LIMIT 3 PURPOSE research MAXLOSS 1", "r")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"90", "85", "70"}
	if len(in.Result.Rows) != 3 {
		t.Fatalf("rows = %v", in.Result.Rows)
	}
	for i, w := range want {
		if in.Result.Rows[i][0] != w {
			t.Errorf("row %d = %v, want %s", i, in.Result.Rows[i], w)
		}
	}
}

func TestCorrespondencesAcrossHeterogeneousSchemas(t *testing.T) {
	mk := func(name, xml string) source.Endpoint {
		doc, err := xmltree.ParseString(xml)
		if err != nil {
			t.Fatal(err)
		}
		pol, _ := policy.NewPolicy(name, policy.Allow)
		s, err := source.New(source.Config{Name: name, Docs: []*xmltree.Node{doc}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := source.NewLocal(s, salt, psi.TestGroup())
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	a := mk("A", `<reg><patient><dob>1971-03-05</dob><name>Ana</name></patient></reg>`)
	b := mk("B", `<reg><patient><dateOfBirth>1980-11-30</dateOfBirth><patient_name>Ben</patient_name></patient></reg>`)
	m, err := New(Config{Endpoints: []source.Endpoint{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	cs := m.Correspondences()
	got := map[string]string{}
	for _, c := range cs {
		got[c.FieldA] = c.FieldB
	}
	if got["dob"] != "dateOfBirth" {
		t.Errorf("dob correspondence missing: %+v", cs)
	}
	if got["name"] != "patient_name" {
		t.Errorf("name correspondence missing: %+v", cs)
	}
	// Identical names are not reported (trivial).
	for _, c := range cs {
		if c.FieldA == c.FieldB {
			t.Errorf("trivial correspondence reported: %+v", c)
		}
	}
}
