package mediator

import (
	"strings"
	"testing"

	"privateiye/internal/clinical"
	"privateiye/internal/piql"
	"privateiye/internal/policy"
	"privateiye/internal/preserve"
	"privateiye/internal/psi"
	"privateiye/internal/relational"
	"privateiye/internal/source"
)

// figure1Mediator builds a mediator over the paper's Example 1
// deployment: an integrator source that holds the pooled compliance table
// (the HMOs deposited their rows with it) and shares it only in aggregate
// form. Cross-HMO statistics are therefore computable at the source —
// exactly the Figure 1(a)/(b) publications — and the mediator's ledger is
// the only thing standing between a snooper and the combination attack.
// The identity preservation registry keeps the aggregates exact so the
// ledger check sees the Figure 1 numbers.
func figure1Mediator(t *testing.T, maxDisclosure float64) *Mediator {
	t.Helper()
	tab, err := clinical.ComplianceTable("compliance", clinical.HMOs, clinical.Tests, clinical.Figure1GroundTruth())
	if err != nil {
		t.Fatal(err)
	}
	cat := relational.NewCatalog()
	if err := cat.Add(tab); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy("integrator", policy.Deny,
		policy.Rule{Item: "//compliance//*", Purpose: "research", Form: policy.Aggregate, Effect: policy.Allow, MaxLoss: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{Name: "integrator", Catalog: cat, Policy: pol, Registry: preserve.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := source.NewLocal(src, salt, psi.TestGroup())
	if err != nil {
		t.Fatal(err)
	}
	// PlanCache is on so every ledger test also covers the cached-parse
	// path: a hit must change nothing about what gets refused.
	m, err := New(Config{Endpoints: []source.Endpoint{ep}, MaxDisclosure: maxDisclosure, LedgerTolerance: 0.05, PlanCache: 64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const (
	perTestQuery = "FOR //compliance/row GROUP BY //test RETURN AVG(//rate) AS avg_rate, STDDEV(//rate) AS sd_rate, COUNT(*) AS n PURPOSE research MAXLOSS 0.9"
	perHMOQuery  = "FOR //compliance/row GROUP BY //hmo RETURN AVG(//rate) AS avg_rate PURPOSE research MAXLOSS 0.9"
)

// The paper's Figure 1 as a query sequence: the per-test statistics
// (Figure 1(a)) and per-HMO means (Figure 1(b)) are each individually
// authorized aggregate queries; together they admit the interval
// inference attack. The ledger must refuse the second.
func TestLedgerBlocksFigure1QueryPair(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	in, err := m.Query(perTestQuery, "snooper")
	if err != nil {
		t.Fatalf("first release (Figure 1a) should pass: %v", err)
	}
	if len(in.Result.Rows) != 3 {
		t.Fatalf("per-test groups = %v", in.Result.Rows)
	}
	_, err = m.Query(perHMOQuery, "snooper")
	if err == nil {
		t.Fatal("the Figure 1 combination must be refused")
	}
	if !strings.Contains(err.Error(), "combined") {
		t.Errorf("refusal should explain the combination: %v", err)
	}
}

// The same pair in the other order: per-HMO means first (harmless alone),
// then the sigma-bearing per-test release closes the system.
func TestLedgerBlocksFigure1PairEitherOrder(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	if _, err := m.Query(perHMOQuery, "snooper"); err != nil {
		t.Fatalf("per-HMO means alone should pass: %v", err)
	}
	if _, err := m.Query(perTestQuery, "snooper"); err == nil {
		t.Fatal("sigma release after party means must be refused")
	}
}

// Different requesters do not share ledgers (collusion is the audit
// layer's Merge concern, not the ledger default).
func TestLedgerIsPerRequester(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	if _, err := m.Query(perTestQuery, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(perHMOQuery, "bob"); err != nil {
		t.Errorf("bob holds no sigma release; his query should pass: %v", err)
	}
}

// A permissive threshold lets the pair through (the operator's choice).
func TestLedgerThresholdRespected(t *testing.T) {
	m := figure1Mediator(t, 1.0)
	if _, err := m.Query(perTestQuery, "snooper"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(perHMOQuery, "snooper"); err != nil {
		t.Errorf("threshold 1.0 should allow the pair: %v", err)
	}
}

// Unrelated aggregate releases (different value columns or the same axis
// again) are not flagged.
func TestLedgerIgnoresUnrelatedReleases(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	if _, err := m.Query(perTestQuery, "snooper"); err != nil {
		t.Fatal(err)
	}
	// Same axis again: refreshes nothing, combines with nothing.
	if _, err := m.Query(perTestQuery+" ", "snooper"); err != nil {
		t.Errorf("same-axis repeat should pass: %v", err)
	}
}

func TestClassifyRelease(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	in, err := m.Query(perTestQuery, "x")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := parseForTest(perTestQuery)
	rel, ok := classifyRelease(q, in.Result)
	if !ok {
		t.Fatal("per-test release should classify")
	}
	if rel.axis != "test" || rel.valueCol != "rate" || len(rel.means) != 3 || rel.sigmas == nil {
		t.Errorf("classified = %+v", rel)
	}
	// Non-ledger shapes.
	q2, _ := parseForTest("FOR //compliance/row RETURN COUNT(*) AS n PURPOSE research")
	if _, ok := classifyRelease(q2, in.Result); ok {
		t.Error("no group-by should not classify")
	}
}

func parseForTest(src string) (*piql.Query, *piql.Result) {
	return piql.MustParse(src), nil
}
