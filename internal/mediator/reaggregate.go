package mediator

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"privateiye/internal/piql"
)

// aggSpec pairs a result column with the return item it carries.
type aggSpec struct {
	idx  int
	item piql.ReturnItem
}

// reaggregate combines per-source partial aggregates into global ones:
// each source computed COUNT/SUM/AVG/... over its own rows, so the
// integrator must fold rows with equal group keys together. Combination
// rules per aggregate:
//
//	COUNT, SUM       sum of the partials
//	MIN, MAX         min / max of the partials
//	AVG              count-weighted mean when a COUNT return item exists
//	                 in the query, unweighted mean of partials otherwise
//	STDDEV           count-weighted root-mean-square of the partials when
//	                 counts exist (a within-source pooled estimate that
//	                 ignores between-source mean spread), plain RMS
//	                 otherwise
//
// Empty cells (a source suppressed the group, or had no values) are
// skipped. Columns are matched to return items by name, so results whose
// preservation dropped or renamed columns still fold correctly; columns
// matching no aggregate item act as group keys.
func reaggregate(q *piql.Query, res *piql.Result) (*piql.Result, error) {
	itemByName := map[string]piql.ReturnItem{}
	for _, ri := range q.Return {
		itemByName[ri.Name()] = ri
	}
	var keyIdx []int
	var aggCols []aggSpec
	for i, c := range res.Columns {
		if ri, ok := itemByName[c]; ok && ri.Agg != piql.AggNone {
			aggCols = append(aggCols, aggSpec{i, ri})
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	return foldGroups(res, keyIdx, aggCols)
}

func foldGroups(res *piql.Result, keyIdx []int, aggCols []aggSpec) (*piql.Result, error) {
	type accum struct {
		key  []string
		sums []float64 // running sum; for AVG/STDDEV weighted by count
		ns   []float64 // accumulated weights
		mins []float64
		maxs []float64
		seen []bool
	}
	// Locate a count column to use as the weight for AVG/STDDEV.
	countCol := -1
	for _, a := range aggCols {
		if a.item.Agg == piql.AggCount {
			countCol = a.idx
			break
		}
	}

	groups := map[string]*accum{}
	var order []string
	for _, row := range res.Rows {
		var kb strings.Builder
		key := make([]string, len(keyIdx))
		for i, k := range keyIdx {
			key[i] = row[k]
			kb.WriteString(row[k])
			kb.WriteByte('\x00')
		}
		id := kb.String()
		acc, ok := groups[id]
		if !ok {
			acc = &accum{
				key:  key,
				sums: make([]float64, len(aggCols)),
				ns:   make([]float64, len(aggCols)),
				mins: make([]float64, len(aggCols)),
				maxs: make([]float64, len(aggCols)),
				seen: make([]bool, len(aggCols)),
			}
			groups[id] = acc
			order = append(order, id)
		}
		weight := 1.0
		if countCol >= 0 {
			if w, err := strconv.ParseFloat(strings.TrimSpace(row[countCol]), 64); err == nil && w > 0 {
				weight = w
			}
		}
		for i, a := range aggCols {
			cell := strings.TrimSpace(row[a.idx])
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("mediator: non-numeric aggregate cell %q in column %s", cell, res.Columns[a.idx])
			}
			switch a.item.Agg {
			case piql.AggCount, piql.AggSum:
				acc.sums[i] += v
			case piql.AggAvg:
				acc.sums[i] += v * weight
				acc.ns[i] += weight
			case piql.AggStdDev:
				acc.sums[i] += v * v * weight
				acc.ns[i] += weight
			case piql.AggMin:
				if !acc.seen[i] || v < acc.mins[i] {
					acc.mins[i] = v
				}
			case piql.AggMax:
				if !acc.seen[i] || v > acc.maxs[i] {
					acc.maxs[i] = v
				}
			}
			acc.seen[i] = true
		}
	}
	sort.Strings(order)

	out := &piql.Result{Columns: res.Columns}
	for _, id := range order {
		acc := groups[id]
		row := make([]string, len(res.Columns))
		for i, k := range keyIdx {
			row[k] = acc.key[i]
		}
		for i, a := range aggCols {
			if !acc.seen[i] {
				continue
			}
			var v float64
			switch a.item.Agg {
			case piql.AggCount, piql.AggSum:
				v = acc.sums[i]
			case piql.AggAvg:
				if acc.ns[i] == 0 {
					continue
				}
				v = acc.sums[i] / acc.ns[i]
			case piql.AggStdDev:
				if acc.ns[i] == 0 {
					continue
				}
				v = math.Sqrt(acc.sums[i] / acc.ns[i])
			case piql.AggMin:
				v = acc.mins[i]
			case piql.AggMax:
				v = acc.maxs[i]
			}
			row[a.idx] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
