package mediator

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privateiye/internal/admission"
	"privateiye/internal/refusal"
)

const admitQuery = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 0.9"

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	m, err := New(Config{
		Endpoints: twoHospitals(t),
		Admission: &admission.Config{MaxConcurrent: 1, QueueCapacity: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot directly, then query: the query must be
	// shed, not queued.
	g, err := m.admit.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Query(admitQuery, "r1")
	var sh *admission.ShedError
	if !errors.As(err, &sh) {
		t.Fatalf("saturated query = %v, want ShedError", err)
	}
	if sh.Reason != refusal.Overloaded {
		t.Fatalf("reason = %v", sh.Reason)
	}
	if !strings.Contains(err.Error(), "mediator: overloaded") {
		t.Fatalf("message = %q", err)
	}
	g.Release(nil)
	// Capacity freed: normal service resumes.
	if _, err := m.Query(admitQuery, "r1"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	if s := m.AdmissionStats(); s.ShedQueueFull != 1 || s.Admitted != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionRateLimitPerRequester(t *testing.T) {
	m, err := New(Config{
		Endpoints: twoHospitals(t),
		Admission: &admission.Config{RatePerSec: 0.001, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(admitQuery, "greedy"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	_, err = m.Query(admitQuery, "greedy")
	var sh *admission.ShedError
	if !errors.As(err, &sh) || sh.Reason != refusal.RateLimited {
		t.Fatalf("second query = %v, want ratelimited shed", err)
	}
	if hint, ok := sh.RetryAfterHint(); !ok || hint <= 0 {
		t.Fatalf("hint = %v %v", hint, ok)
	}
	// The bucket is per requester: others are unaffected.
	if _, err := m.Query(admitQuery, "polite"); err != nil {
		t.Fatalf("other requester: %v", err)
	}
}

func TestBrownoutServesStaleWarehouse(t *testing.T) {
	m, err := New(Config{
		Endpoints:         twoHospitals(t),
		WarehouseCapacity: 8,
		WarehouseTTL:      1,
		Admission:         &admission.Config{MaxConcurrent: 1, QueueCapacity: -1},
		Brownout:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Admitted query materializes the result; the TTL of 1 tick makes
	// it stale immediately after the round's Tick.
	if _, err := m.Query(admitQuery, "steady"); err != nil {
		t.Fatal(err)
	}
	g, err := m.admit.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release(nil)

	// Saturated + brownout + materialization present: stale answer.
	in, err := m.Query(admitQuery, "steady")
	if err != nil {
		t.Fatalf("brownout query: %v", err)
	}
	if !in.Stale || !in.FromWarehouse {
		t.Fatalf("response not marked stale: %+v", in)
	}
	if len(in.Answered) != 1 || in.Answered[0] != "warehouse" {
		t.Fatalf("answered = %v", in.Answered)
	}
	if in.StaleAge < 1 {
		t.Fatalf("stale age = %d", in.StaleAge)
	}
	if len(in.Result.Rows) == 0 {
		t.Fatal("stale answer carries no rows")
	}

	// The stale marker survives the wire.
	rt, err := IntegratedFromNode(IntegratedToNode(in))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Stale || rt.StaleAge != in.StaleAge {
		t.Fatalf("roundtrip lost staleness: %+v", rt)
	}

	// No materialization for this (requester, query): the shed stands.
	_, err = m.Query(admitQuery, "stranger")
	var sh *admission.ShedError
	if !errors.As(err, &sh) || sh.Reason != refusal.Overloaded {
		t.Fatalf("unmaterialized brownout = %v, want overloaded shed", err)
	}

	// A rate-limited requester is never browned out.
	m2, err := New(Config{
		Endpoints:         twoHospitals(t),
		WarehouseCapacity: 8,
		WarehouseTTL:      1,
		Admission:         &admission.Config{RatePerSec: 0.001, Burst: 1},
		Brownout:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Query(admitQuery, "greedy"); err != nil {
		t.Fatal(err)
	}
	_, err = m2.Query(admitQuery, "greedy")
	if !errors.As(err, &sh) || sh.Reason != refusal.RateLimited {
		t.Fatalf("rate-limited query = %v, want ratelimited shed (no brownout)", err)
	}
}

func TestHandlerMapsShedsToHTTP(t *testing.T) {
	m, err := New(Config{
		Endpoints: twoHospitals(t),
		Admission: &admission.Config{MaxConcurrent: 1, QueueCapacity: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	g, err := m.admit.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(admitQuery))
	req.Header.Set("X-Requester", "r1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("body = %s", body)
	}

	g.Release(nil)
	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(admitQuery))
	req2.Header.Set("X-Requester", "r1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-flood status = %d", resp2.StatusCode)
	}
}
