package mediator

import (
	"errors"
	"testing"

	"privateiye/internal/schemamatch"
	"privateiye/internal/source"
	"privateiye/internal/xmltree"
)

// flakyEndpoint wraps a working endpoint and fails on command — the dead
// or partitioned source node every federation eventually has.
type flakyEndpoint struct {
	source.Endpoint
	down *bool
}

var errDown = errors.New("connection refused")

func (f flakyEndpoint) FetchSummary() (*xmltree.Summary, error) {
	if *f.down {
		return nil, errDown
	}
	return f.Endpoint.FetchSummary()
}

func (f flakyEndpoint) FetchProfiles() ([]schemamatch.FieldProfile, error) {
	if *f.down {
		return nil, errDown
	}
	return f.Endpoint.FetchProfiles()
}

func (f flakyEndpoint) Query(piqlText, requester string) (*xmltree.Node, error) {
	if *f.down {
		return nil, errDown
	}
	return f.Endpoint.Query(piqlText, requester)
}

func TestIntegrationSurvivesDeadSource(t *testing.T) {
	eps := twoHospitals(t)
	down := false
	eps[1] = flakyEndpoint{Endpoint: eps[1], down: &down}

	m, err := New(Config{Endpoints: eps})
	if err != nil {
		t.Fatal(err)
	}
	const q = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1"

	// Healthy: both answer.
	in, err := m.Query(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Fatalf("healthy answered = %v", in.Answered)
	}

	// Source B dies: integration continues with A, and B's failure is
	// reported, not fatal.
	down = true
	in, err = m.Query(q, "r")
	if err != nil {
		t.Fatalf("one dead source must not kill integration: %v", err)
	}
	if len(in.Answered) != 1 || in.Answered[0] != "hospitalA" {
		t.Errorf("answered = %v", in.Answered)
	}
	if _, failed := in.Denied["hospitalB"]; !failed {
		t.Errorf("dead source should appear in Denied: %v", in.Denied)
	}

	// Both dead: the query fails with the collected reasons. Construct
	// while A is still up (New needs at least one summary), then kill it.
	aDown := false
	eps[0] = flakyEndpoint{Endpoint: eps[0], down: &aDown}
	m2, err := New(Config{Endpoints: []source.Endpoint{eps[0], eps[1]}})
	if err != nil {
		t.Fatal(err)
	}
	aDown = true
	if _, err := m2.Query(q, "r"); err == nil {
		t.Error("all sources dead should fail the query")
	}
}

func TestRefreshSchemaSkipsDeadSources(t *testing.T) {
	eps := twoHospitals(t)
	down := false
	eps[1] = flakyEndpoint{Endpoint: eps[1], down: &down}
	m, err := New(Config{Endpoints: eps})
	if err != nil {
		t.Fatal(err)
	}
	before := m.MediatedSchema().Len()
	down = true
	if err := m.RefreshSchema(); err != nil {
		t.Fatalf("refresh with one dead source should succeed: %v", err)
	}
	if m.MediatedSchema().Len() == 0 || m.MediatedSchema().Len() > before {
		t.Errorf("schema after partial refresh = %d paths", m.MediatedSchema().Len())
	}
}

func TestNewFailsWhenNoSourceSummarizes(t *testing.T) {
	eps := twoHospitals(t)
	down := true
	dead := []source.Endpoint{
		flakyEndpoint{Endpoint: eps[0], down: &down},
		flakyEndpoint{Endpoint: eps[1], down: &down},
	}
	if _, err := New(Config{Endpoints: dead}); err == nil {
		t.Error("mediator over only dead sources should fail to start")
	}
}
