package mediator

import (
	"context"
	"strings"
	"testing"
	"time"

	"privateiye/internal/resilience"
	"privateiye/internal/source"
)

// The federation's failure modes: dead nodes, hanging nodes, flapping
// nodes, and callers that give up. All injected deterministically via
// resilience.Chaos — the same wrapper E17 uses.

func TestIntegrationSurvivesDeadSource(t *testing.T) {
	eps := twoHospitals(t)
	chaosB := resilience.NewChaos(eps[1], resilience.ChaosConfig{})
	eps[1] = chaosB

	m, err := New(Config{Endpoints: eps})
	if err != nil {
		t.Fatal(err)
	}
	const q = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1"

	// Healthy: both answer.
	in, err := m.Query(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Fatalf("healthy answered = %v", in.Answered)
	}

	// Source B dies: integration continues with A, and B's failure is
	// reported, not fatal.
	chaosB.SetDown(true)
	in, err = m.Query(q, "r")
	if err != nil {
		t.Fatalf("one dead source must not kill integration: %v", err)
	}
	if len(in.Answered) != 1 || in.Answered[0] != "hospitalA" {
		t.Errorf("answered = %v", in.Answered)
	}
	if _, failed := in.Denied["hospitalB"]; !failed {
		t.Errorf("dead source should appear in Denied: %v", in.Denied)
	}

	// Both dead: the query fails with the collected reasons. Construct
	// while A is still up (New needs at least one summary), then kill it.
	chaosA := resilience.NewChaos(eps[0], resilience.ChaosConfig{})
	m2, err := New(Config{Endpoints: []source.Endpoint{chaosA, chaosB}})
	if err != nil {
		t.Fatal(err)
	}
	chaosA.SetDown(true)
	if _, err := m2.Query(q, "r"); err == nil {
		t.Error("all sources dead should fail the query")
	}
}

func TestRefreshSchemaSkipsDeadSources(t *testing.T) {
	eps := twoHospitals(t)
	chaosB := resilience.NewChaos(eps[1], resilience.ChaosConfig{})
	eps[1] = chaosB
	m, err := New(Config{Endpoints: eps})
	if err != nil {
		t.Fatal(err)
	}
	before := m.MediatedSchema().Len()
	chaosB.SetDown(true)
	if err := m.RefreshSchema(); err != nil {
		t.Fatalf("refresh with one dead source should succeed: %v", err)
	}
	if m.MediatedSchema().Len() == 0 || m.MediatedSchema().Len() > before {
		t.Errorf("schema after partial refresh = %d paths", m.MediatedSchema().Len())
	}
}

func TestNewFailsWhenNoSourceSummarizes(t *testing.T) {
	eps := twoHospitals(t)
	a := resilience.NewChaos(eps[0], resilience.ChaosConfig{})
	b := resilience.NewChaos(eps[1], resilience.ChaosConfig{})
	a.SetDown(true)
	b.SetDown(true)
	if _, err := New(Config{Endpoints: []source.Endpoint{a, b}}); err == nil {
		t.Error("mediator over only dead sources should fail to start")
	}
}

func TestHangingSourceReturnsPartialWithinDeadline(t *testing.T) {
	eps := twoHospitals(t)
	chaosB := resilience.NewChaos(eps[1], resilience.ChaosConfig{})
	eps[1] = chaosB

	m, err := New(Config{Endpoints: eps, SourceTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	chaosB.SetHang(true)

	start := time.Now()
	in, err := m.Query("FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1", "r")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("a hanging source must not kill integration: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("query took %v; the 200ms per-source deadline did not bound it", elapsed)
	}
	if len(in.Answered) != 1 || in.Answered[0] != "hospitalA" {
		t.Errorf("answered = %v", in.Answered)
	}
	reason, hung := in.Denied["hospitalB"]
	if !hung {
		t.Fatalf("hung source should appear in Denied: %v", in.Denied)
	}
	if !strings.HasPrefix(reason, "timeout:") {
		t.Errorf("hang denial should be a distinguishable timeout, got %q", reason)
	}
}

func TestCircuitBreakerSkipsDeadSourceThenRecovers(t *testing.T) {
	eps := twoHospitals(t)
	chaosB := resilience.NewChaos(eps[1], resilience.ChaosConfig{})
	eps[1] = chaosB

	m, err := New(Config{
		Endpoints:     eps,
		SourceTimeout: time.Second,
		Resilience: &resilience.EndpointConfig{
			Policy:  resilience.Policy{MaxAttempts: 1},
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1"

	chaosB.SetDown(true)
	// Two failing queries open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := m.Query(q, "r"); err != nil {
			t.Fatal(err)
		}
	}
	dialsWhenOpen := chaosB.Calls()
	// While open, B is skipped without dialing and the denial says so.
	for i := 0; i < 3; i++ {
		in, err := m.Query(q, "r")
		if err != nil {
			t.Fatal(err)
		}
		reason, skipped := in.Denied["hospitalB"]
		if !skipped || !strings.Contains(reason, "circuit open") {
			t.Fatalf("open breaker should skip with a circuit-open reason: %v", in.Denied)
		}
	}
	if got := chaosB.Calls(); got != dialsWhenOpen {
		t.Errorf("open breaker dialed the dead source: %d dials, want %d", got, dialsWhenOpen)
	}

	// The node recovers; after the cool-down a half-open probe
	// re-admits it.
	chaosB.SetDown(false)
	time.Sleep(70 * time.Millisecond)
	in, err := m.Query(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Answered) != 2 {
		t.Errorf("recovered source should answer again: answered=%v denied=%v", in.Answered, in.Denied)
	}
}

func TestFlappingSourceBreakerHoldsPartialAnswers(t *testing.T) {
	eps := twoHospitals(t)
	// Flap every 3 calls: the schedule is deterministic, so whatever the
	// phase, every query either integrates both sources or returns a
	// partial answer — never an error.
	chaosB := resilience.NewChaos(eps[1], resilience.ChaosConfig{FlapEvery: 3})
	eps[1] = chaosB
	m, err := New(Config{
		Endpoints:     eps,
		SourceTimeout: time.Second,
		Resilience: &resilience.EndpointConfig{
			Policy:  resilience.Policy{MaxAttempts: 1},
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 10 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1"
	sawPartial, sawFull := false, false
	for i := 0; i < 12; i++ {
		in, err := m.Query(q, "r")
		if err != nil {
			t.Fatalf("query %d: flapping source must degrade, not fail: %v", i, err)
		}
		if len(in.Answered) == 2 {
			sawFull = true
		} else {
			sawPartial = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawPartial || !sawFull {
		t.Errorf("flap should produce both full and partial rounds (full=%v partial=%v)", sawFull, sawPartial)
	}
}

func TestContextCancellationMidFanout(t *testing.T) {
	eps := twoHospitals(t)
	a := resilience.NewChaos(eps[0], resilience.ChaosConfig{})
	b := resilience.NewChaos(eps[1], resilience.ChaosConfig{})

	// No per-source deadline: only the caller's cancellation can
	// unblock the hung fan-out.
	m, err := New(Config{Endpoints: []source.Endpoint{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	a.SetHang(true)
	b.SetHang(true)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.QueryContext(ctx, "FOR //patients/row RETURN //sex PURPOSE research MAXLOSS 1", "r")
	if err == nil {
		t.Fatal("cancellation with every source hung should fail the query")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error should surface the cancellation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}
