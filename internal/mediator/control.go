package mediator

import (
	"context"
	"fmt"

	"privateiye/internal/attack"
	"privateiye/internal/clinical"
	"privateiye/internal/psi"
	"privateiye/internal/source"
)

// This file is the Privacy Control module of Figure 2(b): the mediator's
// second-level enforcement. A release that passed every per-source check
// can still violate privacy once integrated — Figure 1 is exactly that
// case — so before publishing integrated aggregates the mediator runs the
// snooping attack against its own release and refuses when it discloses
// too much.

// ReleaseDecision is the outcome of checking a proposed aggregate release.
type ReleaseDecision struct {
	// Allowed reports whether the release respects the threshold.
	Allowed bool
	// WorstDisclosure is the highest disclosure any party could achieve
	// about any other party's hidden cell (0..1).
	WorstDisclosure float64
	// WorstSnooper is the party index whose knowledge achieves it.
	WorstSnooper int
	// Breaches lists (snooper, victim, attribute) triples above the
	// threshold.
	Breaches [][3]int
}

// CheckAggregateRelease simulates Figure 1 defensively: the mediator holds
// the full confidential matrix (it computed the aggregates), so for every
// party h it constructs the knowledge h would have — the published
// aggregates plus h's own row — and bounds how tightly h could pin any
// other party's hidden cells. The release is refused when any such bound
// beats the threshold.
//
// The closed-form QuickBounds screen keeps this cheap enough to run on
// every release; EXPERIMENTS.md E4/E11 validate it against the full NLP
// attack.
func (m *Mediator) CheckAggregateRelease(matrix [][]float64, places int, threshold float64) (*ReleaseDecision, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("mediator: disclosure threshold %v out of (0,1]", threshold)
	}
	pub, err := clinical.PublishFromMatrix(matrix, places)
	if err != nil {
		return nil, err
	}
	dec := &ReleaseDecision{Allowed: true, WorstSnooper: -1}
	for h := range matrix {
		k := attack.FromPublished(pub, h, matrix[h])
		bounds, err := k.QuickBounds()
		if err != nil {
			return nil, fmt.Errorf("mediator: release check for snooper %d: %w", h, err)
		}
		prior := k.Hi - k.Lo
		for victim, row := range bounds {
			if victim == h {
				continue
			}
			for attr, iv := range row {
				d := 1 - iv.Width()/prior
				if d > dec.WorstDisclosure {
					dec.WorstDisclosure = d
					dec.WorstSnooper = h
				}
				if d >= threshold {
					dec.Breaches = append(dec.Breaches, [3]int{h, victim, attr})
				}
			}
		}
	}
	if dec.WorstDisclosure >= threshold {
		dec.Allowed = false
	}
	return dec, nil
}

// PrivateOverlap computes |A ∩ B| of two sources' values for a field
// without any party revealing its set: the mediator relays the PSI
// messages (blind at the owner, exponentiate at the peer) and compares
// only double-blinded group elements. The mediator learns the overlap
// size; each source learns only the other's set size. The Result
// Integrator uses this to estimate duplication before deciding whether a
// fuzzy dedup pass is worth its cost, and Example 2 uses it to count
// shared patients across jurisdictions.
//
// suite names the group both sources must use ("" lets each source pick
// its preferred suite — safe only when the fleet is homogeneous; the
// mediator's Overlap method passes the suite it negotiated at schema
// refresh). The relay cross-checks the envelopes' suite attributes and
// refuses to compare elements from diverging groups.
func PrivateOverlap(ctx context.Context, a, b source.Endpoint, field, suite string) (int, error) {
	aBlind, err := a.PSIBlinded(ctx, field, suite)
	if err != nil {
		return 0, fmt.Errorf("mediator: psi blind %s: %w", a.Name(), err)
	}
	aDouble, err := b.PSIExponentiate(ctx, aBlind)
	if err != nil {
		return 0, fmt.Errorf("mediator: psi exponentiate at %s: %w", b.Name(), err)
	}
	bBlind, err := b.PSIBlinded(ctx, field, suite)
	if err != nil {
		return 0, fmt.Errorf("mediator: psi blind %s: %w", b.Name(), err)
	}
	bDouble, err := a.PSIExponentiate(ctx, bBlind)
	if err != nil {
		return 0, fmt.Errorf("mediator: psi exponentiate at %s: %w", a.Name(), err)
	}
	// Comparing double-blinded encodings is only meaningful inside one
	// group: a mixed fleet that slipped past negotiation must fail
	// loudly, not report a bogus zero overlap.
	if sa, sb := psi.WireSuiteName(aDouble), psi.WireSuiteName(bDouble); sa != sb {
		return 0, fmt.Errorf("mediator: psi suites diverge between %s (%q) and %s (%q)",
			b.Name(), sa, a.Name(), sb)
	}
	inA := map[string]bool{}
	for _, e := range aDouble.ChildrenNamed("e") {
		inA[e.Text] = true
	}
	// Count distinct double-blinded values of B present in A's set, so
	// duplicates within one source do not inflate the overlap.
	counted := map[string]bool{}
	n := 0
	for _, e := range bDouble.ChildrenNamed("e") {
		if inA[e.Text] && !counted[e.Text] {
			counted[e.Text] = true
			n++
		}
	}
	return n, nil
}
