package mediator

// Unit tests for the ownership gate's trust boundary. The router's
// X-Shard-Rerouted-From header is a claim any HTTP client can send, so
// the gate must verify BOTH halves before adopting a requester:
// placement (recomputed on its own ring) and drain truth (confirmed
// against the claimed shard's own /shard/status). And the reverse
// operation — undrain — must refuse while a peer holds re-routed
// requester state the full ring would reclaim here.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privateiye/internal/shard"
)

const shardTestQuery = "FOR //patients/row WHERE //age > 40 RETURN //age PURPOSE research MAXLOSS 0.9"

// fakePeerShard is an httptest stand-in for a peer mediator's admin
// surface: a settable /shard/status answer.
type fakePeerShard struct {
	srv *httptest.Server

	mu        sync.Mutex
	draining  bool
	misplaced map[string][]string
}

func newFakePeerShard(t *testing.T, id string) *fakePeerShard {
	t.Helper()
	f := &fakePeerShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /shard/status", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		st := ShardStatus{ID: id, Draining: f.draining}
		if f.misplaced != nil {
			st.Misplaced = f.misplaced
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakePeerShard) setDraining(v bool) {
	f.mu.Lock()
	f.draining = v
	f.mu.Unlock()
}

func (f *fakePeerShard) setMisplaced(m map[string][]string) {
	f.mu.Lock()
	f.misplaced = m
	f.mu.Unlock()
}

// newShardedMediator builds a mediator as shard `id` of a two-shard
// tier {shard-a, shard-b}, with the given peer URL table.
func newShardedMediator(t *testing.T, id string, peerURLs map[string]string) *Mediator {
	t.Helper()
	m, err := New(Config{
		Endpoints:   twoHospitals(t),
		LinkageSalt: salt,
		Shard: &ShardConfig{
			ID:    id,
			Peers: []string{"shard-a", "shard-b"},
			Seed:  shard.DefaultSeed,
			// Effectively uncached: each sub-case's status flip must be
			// seen immediately.
			DrainVerifyTTL: time.Nanosecond,
			PeerURLs:       peerURLs,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// ownedByShard finds a requester the two-shard reference ring places on
// the given shard.
func ownedByShard(t *testing.T, owner, prefix string) string {
	t.Helper()
	ring := shard.New(shard.DefaultSeed, 0)
	for _, p := range []string{"shard-a", "shard-b"} {
		if err := ring.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("%s-%04d", prefix, i)
		if o, err := ring.Lookup(cand); err != nil {
			t.Fatal(err)
		} else if o == owner {
			return cand
		}
	}
	t.Fatalf("no requester owned by %s in 10000 candidates", owner)
	return ""
}

// TestShardGateVerifiesDrainClaim: a re-routed requester is served only
// when the claimed-draining owner CONFIRMS it is draining. The header
// alone — forgeable by any client that can reach the shard directly —
// must never be enough.
func TestShardGateVerifiesDrainClaim(t *testing.T) {
	peerA := newFakePeerShard(t, "shard-a")
	m := newShardedMediator(t, "shard-b", map[string]string{"shard-a": peerA.srv.URL})
	requester := ownedByShard(t, "shard-a", "req")
	rerouted := WithReroutedFrom(context.Background(), []string{"shard-a"})

	// The attack from the review: shard-a is NOT draining, the client
	// forges the header straight at shard-b. Before the fix this served
	// the requester from a fresh ledger; it must refuse not-owner.
	var no *NotOwnerError
	if _, err := m.QueryContext(rerouted, shardTestQuery, requester); !errors.As(err, &no) {
		t.Fatalf("forged drain claim (owner not draining) answered err=%v, want NotOwnerError — a fresh-ledger serve weakens every refusal", err)
	}

	// A claim naming the wrong shard entirely never even reaches the
	// status check: placement is recomputed, not trusted.
	forged := WithReroutedFrom(context.Background(), []string{"shard-nonexistent"})
	if _, err := m.QueryContext(forged, shardTestQuery, requester); !errors.As(err, &no) {
		t.Fatalf("claim naming a non-owner answered err=%v, want NotOwnerError", err)
	}

	// The legitimate case: shard-a really is draining, and says so.
	peerA.setDraining(true)
	if _, err := m.QueryContext(rerouted, shardTestQuery, requester); err != nil {
		t.Fatalf("verified drain re-route refused: %v", err)
	}

	// Stale claim after undrain: shard-a stops draining, the same
	// header must stop working (TTL here is effectively zero).
	peerA.setDraining(false)
	if _, err := m.QueryContext(rerouted, shardTestQuery, requester); !errors.As(err, &no) {
		t.Fatalf("stale drain claim after undrain answered err=%v, want NotOwnerError", err)
	}
}

// TestShardGateRefusesUnverifiableClaim: no peer URLs, or an
// unreachable peer, means the claim cannot be confirmed — refuse,
// fail-closed. Weakened service, never a weakened refusal.
func TestShardGateRefusesUnverifiableClaim(t *testing.T) {
	requester := ownedByShard(t, "shard-a", "req")
	rerouted := WithReroutedFrom(context.Background(), []string{"shard-a"})
	var no *NotOwnerError

	t.Run("no peer URLs", func(t *testing.T) {
		m := newShardedMediator(t, "shard-b", nil)
		if _, err := m.QueryContext(rerouted, shardTestQuery, requester); !errors.As(err, &no) {
			t.Fatalf("unverifiable claim answered err=%v, want NotOwnerError", err)
		}
	})

	t.Run("peer unreachable", func(t *testing.T) {
		peerA := newFakePeerShard(t, "shard-a")
		peerA.setDraining(true)
		m := newShardedMediator(t, "shard-b", map[string]string{"shard-a": peerA.srv.URL})
		peerA.srv.Close()
		if _, err := m.QueryContext(rerouted, shardTestQuery, requester); !errors.As(err, &no) {
			t.Fatalf("claim against a dead peer answered err=%v, want NotOwnerError", err)
		}
	})
}

// TestUndrainStrandCheck: undrain is NOT the safe reverse of drain once
// a re-route was accepted — a peer may hold ledger state the full ring
// would reclaim here. Undrain must refuse until the operator migrates
// that state or forces.
func TestUndrainStrandCheck(t *testing.T) {
	ctx := context.Background()

	t.Run("stranded state refuses, force overrides", func(t *testing.T) {
		peerB := newFakePeerShard(t, "shard-b")
		peerB.setMisplaced(map[string][]string{"shard-a": {"stranded-req"}})
		m := newShardedMediator(t, "shard-a", map[string]string{"shard-b": peerB.srv.URL})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		err := m.Undrain(ctx, false)
		if err == nil || !strings.Contains(err.Error(), "undrain refused") || !strings.Contains(err.Error(), "stranded-req") {
			t.Fatalf("undrain with stranded peer state: err=%v, want refusal naming stranded-req", err)
		}
		if !m.ShardInfo().Draining {
			t.Fatal("refused undrain cleared the drain mark")
		}
		if err := m.Undrain(ctx, true); err != nil {
			t.Fatalf("forced undrain: %v", err)
		}
		if m.ShardInfo().Draining {
			t.Fatal("forced undrain left the drain mark set")
		}
	})

	t.Run("clean peers undrain", func(t *testing.T) {
		peerB := newFakePeerShard(t, "shard-b")
		m := newShardedMediator(t, "shard-a", map[string]string{"shard-b": peerB.srv.URL})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := m.Undrain(ctx, false); err != nil {
			t.Fatalf("undrain with clean peers: %v", err)
		}
	})

	t.Run("unverifiable peers refuse", func(t *testing.T) {
		peerB := newFakePeerShard(t, "shard-b")
		m := newShardedMediator(t, "shard-a", map[string]string{"shard-b": peerB.srv.URL})
		peerB.srv.Close()
		if err := m.Undrain(ctx, false); err == nil || !strings.Contains(err.Error(), "undrain refused") {
			t.Fatalf("undrain with unreachable peer: err=%v, want refusal", err)
		}
		mNoURLs := newShardedMediator(t, "shard-a", nil)
		if err := mNoURLs.Undrain(ctx, false); err == nil || !strings.Contains(err.Error(), "undrain refused") {
			t.Fatalf("undrain without peer URLs: err=%v, want refusal", err)
		}
	})
}

// TestShardMisplacedView: the /shard/status?misplaced=1 payload behind
// the strand check — requesters with local state whose full-ring owner
// is another shard, grouped by owner — and the O(1) requester-state
// index feeding it.
func TestShardMisplacedView(t *testing.T) {
	m := newShardedMediator(t, "shard-b", nil)
	adopted := ownedByShard(t, "shard-a", "adopted")
	local := ownedByShard(t, "shard-b", "local")
	m.record(HistoryEntry{Requester: adopted, Query: "q", Sources: []string{"hospitalA"}})
	m.record(HistoryEntry{Requester: local, Query: "q", Sources: []string{"hospitalA"}})

	mis := m.ShardMisplaced()
	if got := mis["shard-a"]; len(got) != 1 || got[0] != adopted {
		t.Fatalf("misplaced view: %v, want shard-a -> [%s]", mis, adopted)
	}
	if _, ok := mis["shard-b"]; ok {
		t.Fatal("locally-owned state reported as misplaced")
	}
	for _, r := range []string{adopted, local} {
		if !m.hasRequesterState(r) {
			t.Fatalf("hasRequesterState(%s) = false after record", r)
		}
	}
	if m.hasRequesterState("never-seen") {
		t.Fatal("hasRequesterState invented state for an unseen requester")
	}
}
