package mediator

// Hot-standby replication of the inference-control state. The WAL that
// persist.go writes beneath the release ledger and query history is
// exactly the state that must not be forgotten across a node loss, so
// replication ships that WAL: a standby mediator tails the primary's
// durable log over /replica/stream, replays every record into its own
// state dir, and refuses queries until it is caught up. Failover is a
// durable epoch bump (replica.Node) — by the time the standby grants
// anything, any write the old primary attempts carries a provably
// smaller epoch and fails closed, the same way PR 2 refuses an
// unrecordable release.

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"privateiye/internal/refusal"
	"privateiye/internal/replica"
)

// ReplicaConfig enables replication on a mediator. Requires Durability:
// replication ships the durable log, so there must be one.
type ReplicaConfig struct {
	// PrimaryURL, when non-empty, makes this node a standby tailing the
	// mediator at that base URL. Empty = this node starts as primary.
	PrimaryURL string
	// EpochDir is where the fencing epoch is persisted (default: the
	// durability state dir).
	EpochDir string
	// LagMax is the standby readiness threshold in records (default 0:
	// fully caught up).
	LagMax uint64
	// Heartbeat is the stream keepalive period served to standbys;
	// Reconnect the standby's delay between stream attempts. Zero values
	// take the replica package defaults (500ms / 200ms).
	Heartbeat time.Duration
	Reconnect time.Duration
}

// NotPrimaryError refuses a query that reached a standby (or a node
// mid-promotion): the caller should retry against the primary. The
// phrase "not primary" is wire contract for refusal.ClassifyString.
type NotPrimaryError struct {
	Role  replica.Role
	Epoch uint64
}

func (e *NotPrimaryError) Error() string {
	return fmt.Sprintf("mediator: not primary (role %s, epoch %d): this node mirrors the primary and does not grant releases", e.Role, e.Epoch)
}

// RefusalReason implements refusal.Reasoner.
func (e *NotPrimaryError) RefusalReason() refusal.Reason { return refusal.NotPrimary }

// FencedError is the fail-closed refusal of a deposed primary: a newer
// epoch exists, so granting anything here could double-grant what the
// successor's ledger does not know about. The word "fenced" is wire
// contract for refusal.ClassifyString.
type FencedError struct {
	Epoch uint64
	Err   error
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("mediator: fenced at epoch %d: a newer primary exists; refusing to grant releases", e.Epoch)
}

// Unwrap exposes the underlying check error, if any.
func (e *FencedError) Unwrap() error { return e.Err }

// RefusalReason implements refusal.Reasoner.
func (e *FencedError) RefusalReason() refusal.Reason { return refusal.Fenced }

// openReplication wires the replica node, stream server and (for a
// standby) the tailing client. Called from New after openDurable.
func (m *Mediator) openReplication(cfg ReplicaConfig) error {
	if m.persist == nil {
		return fmt.Errorf("mediator: replication requires durability (set Config.Durability)")
	}
	dir := cfg.EpochDir
	if dir == "" {
		dir = m.cfg.Durability.Dir
	}
	role := replica.RolePrimary
	if cfg.PrimaryURL != "" {
		role = replica.RoleStandby
	}
	node, err := replica.OpenNode(dir, role, m.cfg.Obs)
	if err != nil {
		return err
	}
	m.node = node

	// Fence the ledger's write path: every release persists through this
	// guard (under the ledger lock, before the answer leaves), and the
	// WAL record is stamped with the epoch that granted it.
	m.persist.guard = func() error {
		if err := node.CheckWrite(); err != nil {
			return &FencedError{Epoch: node.Epoch(), Err: err}
		}
		return nil
	}
	m.persist.epoch = node.Epoch

	m.repSrv = replica.NewServer(m.persist.dlog, node, m.cfg.Obs)
	if cfg.Heartbeat > 0 {
		m.repSrv.Heartbeat = cfg.Heartbeat
	}
	if m.cfg.Obs != nil {
		m.cfg.Obs.Help("piye_replica_fence_acks_total", "Old-primary fence acknowledgements received after promotion.")
		m.fenceAcks = m.cfg.Obs.Counter("piye_replica_fence_acks_total")
	}
	if role == replica.RoleStandby {
		c := replica.NewClient(cfg.PrimaryURL, mediatorApplier{m}, node, m.cfg.Obs)
		c.LagMax = cfg.LagMax
		if cfg.Reconnect > 0 {
			c.Reconnect = cfg.Reconnect
		}
		m.repClient = c
		ctx, cancel := context.WithCancel(context.Background())
		m.repCancel = cancel
		go c.Run(ctx)
	}
	return nil
}

// writeGate refuses the query path on any node that may not grant
// releases: standbys, promoting nodes and fenced ex-primaries.
func (m *Mediator) writeGate() error {
	if m.node == nil {
		return nil
	}
	switch role := m.node.Role(); role {
	case replica.RolePrimary:
		return nil
	case replica.RoleFenced:
		return &FencedError{Epoch: m.node.Epoch()}
	default:
		return &NotPrimaryError{Role: role, Epoch: m.node.Epoch()}
	}
}

// Promote turns this standby into the primary: the epoch is durably
// bumped before the role flips, and a background fencer keeps posting
// the new epoch to the old primary until it acknowledges — so a revived
// old primary learns it has been deposed even though nothing streams
// from it anymore.
func (m *Mediator) Promote() (uint64, error) {
	if m.node == nil {
		return 0, fmt.Errorf("mediator: replication not configured")
	}
	if m.repCancel != nil {
		m.repCancel() // stop tailing: from here on this log is authoritative
	}
	epoch, err := m.node.Promote()
	if err != nil {
		return 0, err
	}
	if m.cfg.Replica != nil && m.cfg.Replica.PrimaryURL != "" {
		fctx, cancel := context.WithCancel(context.Background())
		m.mu.Lock()
		if m.fenceCancel != nil {
			m.fenceCancel()
		}
		m.fenceCancel = cancel
		m.mu.Unlock()
		peer := m.cfg.Replica.PrimaryURL
		acks := m.fenceAcks
		go func() {
			if replica.FencePeer(fctx, nil, peer, epoch, 0) == nil {
				acks.Inc()
			}
		}()
	}
	return epoch, nil
}

// Ready implements the /readyz contract: a constructed mediator has
// finished WAL replay by definition; a standby is additionally ready
// only when its replication lag is within threshold; fenced and
// promoting nodes are never ready.
func (m *Mediator) Ready() error {
	if m.node == nil {
		return nil
	}
	switch role := m.node.Role(); role {
	case replica.RolePrimary:
		return nil
	case replica.RoleStandby:
		if m.repClient == nil {
			return fmt.Errorf("mediator: standby has no replication client")
		}
		if st := m.repClient.Status(); !st.CaughtUp {
			return fmt.Errorf("mediator: standby lag %d (applied %d of %d): %w",
				st.Lag, st.Applied, st.PrimaryLast, replica.ErrNotCaughtUp)
		}
		return nil
	default:
		return fmt.Errorf("mediator: role %s is not ready to serve", role)
	}
}

// ReplicaStatus is the /replica/status view of this node.
type ReplicaStatus struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	LastSeq uint64 `json:"last_seq"`
	// Standby-only replication progress (zero for a primary).
	Replication *replica.Status `json:"replication,omitempty"`
}

// ReplicationStatus reports role, epoch and (for a standby) progress.
// Without replication configured it reports a plain primary.
func (m *Mediator) ReplicationStatus() ReplicaStatus {
	st := ReplicaStatus{Role: replica.RolePrimary.String()}
	if m.persist != nil {
		st.LastSeq = m.persist.dlog.LastSeq()
	}
	if m.node != nil {
		st.Role = m.node.Role().String()
		st.Epoch = m.node.Epoch()
		if m.repClient != nil {
			cs := m.repClient.Status()
			st.Replication = &cs
		}
	}
	return st
}

// mediatorApplier adapts the mediator's persisted state to
// replica.Applier: every frame the standby receives is validated,
// appended to the local durable log at the primary's sequence number,
// and only then applied to the in-memory ledger/history — so the
// standby's disk never claims records its memory does not have.
type mediatorApplier struct{ m *Mediator }

// ApplyEntry replays one primary WAL record.
func (a mediatorApplier) ApplyEntry(seq uint64, payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("mediator: decoding replicated record %d: %w", seq, err)
	}
	isRelease := rec.Kind == kindRelease && rec.Release != nil
	isHistory := rec.Kind == kindHistory && rec.History != nil
	if !isRelease && !isHistory {
		return fmt.Errorf("mediator: malformed replicated record %d (kind %q)", seq, rec.Kind)
	}
	m := a.m
	if err := m.persist.dlog.AppendEntry(seq, payload); err != nil {
		return err
	}
	if isRelease {
		m.ledger.restore(rec.Requester, fromWire(*rec.Release))
	} else {
		m.mu.Lock()
		m.history = append(m.history, *rec.History)
		m.mu.Unlock()
	}
	m.maybeSnapshot()
	return nil
}

// ApplySnapshot resets all inference-control state to the primary's
// snapshot covering seq.
func (a mediatorApplier) ApplySnapshot(seq uint64, state []byte) error {
	var s stateSnapshot
	if err := json.Unmarshal(state, &s); err != nil {
		return fmt.Errorf("mediator: decoding replicated snapshot: %w", err)
	}
	m := a.m
	if err := m.persist.dlog.InstallSnapshot(seq, state); err != nil {
		return err
	}
	byReq := map[string][]ledgerRelease{}
	for req, rels := range s.Releases {
		for _, w := range rels {
			byReq[req] = append(byReq[req], fromWire(w))
		}
	}
	m.ledger.replaceAll(byReq)
	m.mu.Lock()
	m.history = append([]HistoryEntry(nil), s.History...)
	m.mu.Unlock()
	return nil
}

// LastSeq is the standby's resume point.
func (a mediatorApplier) LastSeq() uint64 { return a.m.persist.dlog.LastSeq() }
