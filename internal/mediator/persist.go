package mediator

// This file makes the mediator's inference-control state survive
// restarts. The release ledger (ledger.go) and the Query History store
// are the second-level privacy controls of Figure 2(b): they only work
// if they remember. An in-memory ledger invites the restart-amnesia
// attack — obtain the Figure 1(a) sigma release, induce a mediator
// restart, obtain the Figure 1(b) means from the fresh process, and
// combine the two offline. With durability configured, every ledgered
// release is write-ahead-logged before the answer leaves the mediator
// (fail-closed), history entries are logged best-effort, and startup
// replays snapshot + WAL so a restarted mediator refuses exactly what
// the unrestarted one would have.

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"privateiye/internal/durable"
)

// DurabilityConfig enables crash-safe persistence of the release ledger
// and query history under Dir. Zero values take the durable package
// defaults (FsyncAlways, 100ms interval, snapshot every 256 appends).
type DurabilityConfig struct {
	// Dir is the state directory (created if missing).
	Dir string
	// Fsync selects the sync policy for WAL appends.
	Fsync durable.FsyncPolicy
	// FsyncInterval applies under FsyncInterval policy.
	FsyncInterval time.Duration
	// SnapshotEvery is the compaction cadence in WAL appends.
	SnapshotEvery int
	// GroupCommit batches concurrent WAL appends into one fsync under
	// FsyncAlways (see durable.Options.GroupCommit). The fail-closed
	// contract is unchanged: a release is granted only after the fsync
	// covering its batch returns.
	GroupCommit bool
	// GroupMaxBatch caps the appends per batched fsync (default 64).
	GroupMaxBatch int
	// GroupMaxHold is how long the committer may hold a batch open for
	// stragglers (default 0: commit as soon as the committer runs).
	GroupMaxHold time.Duration
	// Failpoints injects crash sites for recovery testing.
	Failpoints *durable.Failpoints
}

const (
	kindRelease = "release"
	kindHistory = "history"
)

// wireRelease is the JSON shape of one ledgered release.
type wireRelease struct {
	Target   string             `json:"t"`
	ValueCol string             `json:"v"`
	Axis     string             `json:"a"`
	Means    map[string]float64 `json:"m"`
	Sigmas   map[string]float64 `json:"s,omitempty"`
}

func toWire(rel ledgerRelease) wireRelease {
	return wireRelease{
		Target:   rel.target,
		ValueCol: rel.valueCol,
		Axis:     rel.axis,
		Means:    rel.means,
		Sigmas:   rel.sigmas,
	}
}

func fromWire(w wireRelease) ledgerRelease {
	return ledgerRelease{
		target:   w.Target,
		valueCol: w.ValueCol,
		axis:     w.Axis,
		means:    w.Means,
		sigmas:   w.Sigmas,
	}
}

// walRecord is one WAL entry: a ledgered release or a history entry.
// Epoch is the fencing epoch of the node that wrote it (0 when the
// mediator runs unreplicated) — the release-ledger half of the fencing
// invariant: every granted release names the generation that granted
// it, so a post-failover audit can prove no stale-epoch write slipped
// into the history.
type walRecord struct {
	Kind      string        `json:"k"`
	Requester string        `json:"req,omitempty"`
	Epoch     uint64        `json:"e,omitempty"`
	Release   *wireRelease  `json:"rel,omitempty"`
	History   *HistoryEntry `json:"h,omitempty"`
}

// stateSnapshot is the full persisted state at a compaction point.
type stateSnapshot struct {
	Releases map[string][]wireRelease `json:"releases"`
	History  []HistoryEntry           `json:"history"`
}

// statePersister owns the durable log beneath one mediator.
type statePersister struct {
	dlog *durable.Log
	mu   sync.Mutex // guards inSnapshot
	// inSnapshot keeps concurrent queries from stampeding SaveSnapshot.
	inSnapshot bool
	// guard, when set (see replicate.go), runs before every release
	// append: a node that is not the primary at its own epoch must fail
	// the write closed rather than record a release its successor's
	// ledger will never see.
	guard func() error
	// epoch, when set, stamps each WAL record with the writing node's
	// fencing epoch.
	epoch func() uint64
}

// openDurable opens (or recovers) the state directory, replays the
// recovered snapshot and WAL into the ledger and history, and only then
// arms the persist hooks so replayed state is not re-logged. Corrupt
// state refuses to open: a mediator that cannot prove its release
// history intact must not grant releases against it.
func (m *Mediator) openDurable(cfg DurabilityConfig) error {
	dl, err := durable.Open(durable.Options{
		Dir:           cfg.Dir,
		Fsync:         cfg.Fsync,
		FsyncInterval: cfg.FsyncInterval,
		SnapshotEvery: cfg.SnapshotEvery,
		GroupCommit:   cfg.GroupCommit,
		GroupMaxBatch: cfg.GroupMaxBatch,
		GroupMaxHold:  cfg.GroupMaxHold,
		Failpoints:    cfg.Failpoints,
		Obs:           m.cfg.Obs,
		ObsScope:      "mediator",
	})
	if err != nil {
		return fmt.Errorf("mediator: opening state dir: %w", err)
	}
	if snap := dl.RecoveredSnapshot(); snap != nil {
		var s stateSnapshot
		if err := json.Unmarshal(snap, &s); err != nil {
			dl.Close()
			return fmt.Errorf("mediator: decoding state snapshot: %w", err)
		}
		for req, rels := range s.Releases {
			for _, w := range rels {
				m.ledger.restore(req, fromWire(w))
			}
		}
		m.history = append(m.history, s.History...)
		for _, e := range s.History {
			m.historyReq[e.Requester] = struct{}{}
		}
	}
	for _, e := range dl.RecoveredEntries() {
		var rec walRecord
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			dl.Close()
			return fmt.Errorf("mediator: decoding wal record %d: %w", e.Seq, err)
		}
		switch {
		case rec.Kind == kindRelease && rec.Release != nil:
			m.ledger.restore(rec.Requester, fromWire(*rec.Release))
		case rec.Kind == kindHistory && rec.History != nil:
			m.history = append(m.history, *rec.History)
			m.historyReq[rec.History.Requester] = struct{}{}
		default:
			dl.Close()
			return fmt.Errorf("mediator: malformed wal record %d (kind %q)", e.Seq, rec.Kind)
		}
	}
	p := &statePersister{dlog: dl}
	m.persist = p
	m.ledger.persist = p.persistRelease
	return nil
}

// persistRelease is the ledger's fail-closed hook: called (under the
// ledger lock) before a release becomes visible.
func (p *statePersister) persistRelease(requester string, rel ledgerRelease) error {
	if p.guard != nil {
		if err := p.guard(); err != nil {
			return err
		}
	}
	w := toWire(rel)
	rec := walRecord{Kind: kindRelease, Requester: requester, Release: &w}
	if p.epoch != nil {
		rec.Epoch = p.epoch()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = p.dlog.Append(b)
	return err
}

// persistHistory logs a history entry best-effort: history is
// observability, and by the time record runs the answer is already out —
// refusing it retroactively is not possible, so a write failure here
// must not fail the query.
func (p *statePersister) persistHistory(e HistoryEntry) {
	rec := walRecord{Kind: kindHistory, History: &e}
	if p.epoch != nil {
		rec.Epoch = p.epoch()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_, _ = p.dlog.Append(b)
}

// maybeSnapshot compacts the WAL when the cadence is reached. The
// snapshot is built and installed while both the mediator and ledger
// locks are held: the durable log stamps the snapshot with its current
// sequence number, so any release appended between building the state
// and installing it would be marked covered-but-absent and lost on
// recovery. Snapshots are rare (every SnapshotEvery appends) and the
// pause is one marshal + fsync + rename.
func (m *Mediator) maybeSnapshot() {
	p := m.persist
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.inSnapshot || p.dlog.AppendsSinceSnapshot() < p.dlog.SnapshotEvery() {
		p.mu.Unlock()
		return
	}
	p.inSnapshot = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.inSnapshot = false
		p.mu.Unlock()
	}()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ledger.mu.Lock()
	defer m.ledger.mu.Unlock()
	s := stateSnapshot{
		Releases: map[string][]wireRelease{},
		History:  append([]HistoryEntry(nil), m.history...),
	}
	for req, rels := range m.ledger.byRequester {
		for _, rel := range rels {
			s.Releases[req] = append(s.Releases[req], toWire(rel))
		}
	}
	state, err := json.Marshal(s)
	if err != nil {
		return
	}
	// Best-effort: a failed compaction leaves a longer WAL, not lost state.
	_ = p.dlog.SaveSnapshot(state)
}

// Close flushes and closes the durable state, if configured, and stops
// any replication goroutines. The mediator must not be queried
// afterwards.
func (m *Mediator) Close() error {
	if m.repCancel != nil {
		m.repCancel()
	}
	m.mu.Lock()
	if m.fenceCancel != nil {
		m.fenceCancel()
		m.fenceCancel = nil
	}
	m.mu.Unlock()
	if m.persist == nil {
		return nil
	}
	return m.persist.dlog.Close()
}
