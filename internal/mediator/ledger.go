package mediator

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privateiye/internal/attack"
	"privateiye/internal/piql"
	"privateiye/internal/refusal"
)

// CombinationRefusal is the ledger's typed refusal: the new release,
// combined with the requester's earlier releases, would disclose hidden
// values beyond the threshold. Keeping it typed (instead of a bare
// formatted string) gives the refusal-reason counters a stable label
// via refusal.Reasoner.
type CombinationRefusal struct {
	// ValueCol is the measured column; PriorAxis the axis of the earlier
	// release that closes the constraint system.
	ValueCol  string
	PriorAxis string
	// Disclosure is the fraction of the prior range the combination
	// would pin; Threshold the configured refusal bound.
	Disclosure float64
	Threshold  float64
}

// Error implements error. The wording is wire contract: the restart-
// amnesia tests and refusal.ClassifyString match on "combined with your
// earlier".
func (e *CombinationRefusal) Error() string {
	return fmt.Sprintf(
		"mediator: refusing release: combined with your earlier %s-by-%s statistics it would pin hidden %s values to %.1f%% of their prior range (threshold %.1f%%)",
		e.ValueCol, e.PriorAxis, e.ValueCol, 100*e.Disclosure, 100*e.Threshold)
}

// RefusalReason implements refusal.Reasoner.
func (e *CombinationRefusal) RefusalReason() refusal.Reason { return refusal.LedgerCombination }

// UnrecordableRefusal is the fail-closed refusal when the durable store
// cannot log a disclosure before it is released.
type UnrecordableRefusal struct {
	Scope string // "mediator" or "audit"
	Err   error
}

// Error implements error; refusal.ClassifyString matches on "refusing
// unrecordable release".
func (e *UnrecordableRefusal) Error() string {
	return fmt.Sprintf("%s: refusing unrecordable release: %v", e.Scope, e.Err)
}

// Unwrap exposes the underlying storage error.
func (e *UnrecordableRefusal) Unwrap() error { return e.Err }

// RefusalReason implements refusal.Reasoner.
func (e *UnrecordableRefusal) RefusalReason() refusal.Reason { return refusal.Unrecordable }

// The release ledger is the mediator's answer to the paper's hardest open
// problem — "how do we ensure that a set of query results from a set of
// queries ... cannot be combined together to violate data privacy?"
// (Section 4) — for the query class Figure 1 exemplifies: aggregate
// statistics over the two axes of one confidential matrix.
//
// Each requester's aggregate releases are remembered by (target, value
// column, group axis). When a requester who already holds mean+sigma
// statistics along one axis asks for means along a *different* axis of
// the same data (or vice versa), the two releases jointly form exactly
// the Figure 1 constraint system. Before answering, the mediator mounts
// the inference attack an outsider could mount with the combined
// releases; if any cell of the underlying matrix would be pinned more
// tightly than the configured threshold, the new release is refused —
// even though, per source, each query was individually authorized.

// ledgerRelease is one remembered aggregate release.
type ledgerRelease struct {
	target   string             // canonical FOR pattern
	valueCol string             // measured column (last step of the AVG path)
	axis     string             // group-by column name
	means    map[string]float64 // group -> mean
	sigmas   map[string]float64 // group -> sample stddev (nil if not released)
}

// releaseLedger tracks releases per requester.
type releaseLedger struct {
	mu          sync.Mutex
	byRequester map[string][]ledgerRelease
	// attackWorkers sizes the worker pool the combination-attack solver
	// uses (0 = GOMAXPROCS, 1 = serial). The check sits on the answer
	// path of every ledgered aggregate, so it inherits the mediator's
	// parallelism setting.
	attackWorkers int
	// persist, when set (see persist.go), durably records a release before
	// it is remembered; recording fails closed. Without it the ledger is
	// process-local and a restart grants every requester a blank history.
	persist func(requester string, rel ledgerRelease) error
}

func newReleaseLedger() *releaseLedger {
	return &releaseLedger{byRequester: map[string][]ledgerRelease{}}
}

// classifyRelease extracts the ledger shape of an integrated aggregate
// result, or ok=false when the query is not of the ledgered class
// (single GROUP BY axis with an AVG over one value column).
func classifyRelease(q *piql.Query, res *piql.Result) (ledgerRelease, bool) {
	if len(q.GroupBy) != 1 {
		return ledgerRelease{}, false
	}
	var avgItem, sdItem *piql.ReturnItem
	for i := range q.Return {
		ri := &q.Return[i]
		switch ri.Agg {
		case piql.AggAvg:
			if avgItem != nil {
				return ledgerRelease{}, false // multiple value columns: out of class
			}
			avgItem = ri
		case piql.AggStdDev:
			sdItem = ri
		}
	}
	if avgItem == nil || avgItem.Path == nil {
		return ledgerRelease{}, false
	}
	if sdItem != nil && (sdItem.Path == nil || sdItem.Path.LastStep() != avgItem.Path.LastStep()) {
		sdItem = nil // sigma over a different column: ignore it
	}

	colIdxOf := func(name string) int {
		for i, c := range res.Columns {
			if c == name {
				return i
			}
		}
		return -1
	}
	axisName := lastSegment(q.GroupBy[0].String())
	axisIdx := colIdxOf(axisName)
	avgIdx := colIdxOf(avgItem.Name())
	if axisIdx < 0 || avgIdx < 0 {
		return ledgerRelease{}, false
	}
	sdIdx := -1
	if sdItem != nil {
		sdIdx = colIdxOf(sdItem.Name())
	}

	rel := ledgerRelease{
		target:   q.For.String(),
		valueCol: avgItem.Path.LastStep(),
		axis:     axisName,
		means:    map[string]float64{},
	}
	if sdIdx >= 0 {
		rel.sigmas = map[string]float64{}
	}
	for _, row := range res.Rows {
		m, err := strconv.ParseFloat(strings.TrimSpace(row[avgIdx]), 64)
		if err != nil {
			continue
		}
		rel.means[row[axisIdx]] = m
		if sdIdx >= 0 {
			if s, err := strconv.ParseFloat(strings.TrimSpace(row[sdIdx]), 64); err == nil {
				rel.sigmas[row[axisIdx]] = s
			}
		}
	}
	if len(rel.means) < 2 {
		return ledgerRelease{}, false
	}
	return rel, true
}

func lastSegment(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkAndRecord runs the combination check for a new release and, if it
// passes, records it. It returns an error when the combined releases
// would disclose beyond the threshold.
func (l *releaseLedger) checkAndRecord(requester string, rel ledgerRelease, threshold, tolerance float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, prior := range l.byRequester[requester] {
		if prior.target != rel.target || prior.valueCol != rel.valueCol || prior.axis == rel.axis {
			continue
		}
		// One release carries sigmas (the attribute axis), the other the
		// party means; either order works.
		attrRel, partyRel := prior, rel
		if attrRel.sigmas == nil {
			attrRel, partyRel = rel, prior
		}
		if attrRel.sigmas == nil {
			continue // neither released sigmas: means alone do not close the system
		}
		d, err := combinedDisclosure(attrRel, partyRel, tolerance, l.attackWorkers)
		if err != nil {
			// Inconsistent as one matrix (e.g. the releases cover
			// different populations): no combination attack applies.
			continue
		}
		if d >= threshold {
			return &CombinationRefusal{
				ValueCol:   rel.valueCol,
				PriorAxis:  prior.axis,
				Disclosure: d,
				Threshold:  threshold,
			}
		}
	}
	// Durable-before-visible: once the statistics leave the mediator they
	// cannot be recalled, so a release the ledger cannot record must not
	// be released at all. A persist error that already carries its own
	// refusal reason (a fenced ex-primary's guard) passes through — it
	// is a sharper diagnosis than "unrecordable".
	if l.persist != nil {
		if err := l.persist(requester, rel); err != nil {
			var rr refusal.Reasoner
			if errors.As(err, &rr) {
				return err
			}
			return &UnrecordableRefusal{Scope: "mediator", Err: err}
		}
	}
	l.byRequester[requester] = append(l.byRequester[requester], rel)
	return nil
}

// restore re-adds a recovered release without re-running the combination
// check or re-persisting: the statistics were already released, and an
// auditor that forgets them is exactly the failure persistence exists to
// prevent.
func (l *releaseLedger) restore(requester string, rel ledgerRelease) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byRequester[requester] = append(l.byRequester[requester], rel)
}

// replaceAll swaps in a complete release map — a replication standby
// installing the primary's snapshot. Like restore, no checks re-run.
func (l *releaseLedger) replaceAll(byRequester map[string][]ledgerRelease) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byRequester = byRequester
}

// requesters lists every requester with ledgered releases (the shard
// misplaced-state view walks it; admin surface, not the hot path).
func (l *releaseLedger) requesters() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.byRequester))
	for r := range l.byRequester {
		out = append(out, r)
	}
	return out
}

// combinedDisclosure mounts the outsider attack on the pair of releases:
// attributes from the sigma-bearing release, parties from the other.
func combinedDisclosure(attrRel, partyRel ledgerRelease, tolerance float64, workers int) (float64, error) {
	attrs := sortedKeysF(attrRel.means)
	parties := sortedKeysF(partyRel.means)
	k := &attack.Knowledge{
		OwnIndex:    -1,
		Tolerance:   tolerance,
		SampleSigma: true,
		Lo:          0,
		Hi:          100,
	}
	for _, a := range attrs {
		k.AttrMean = append(k.AttrMean, attrRel.means[a])
		sigma, ok := attrRel.sigmas[a]
		if !ok {
			return 0, fmt.Errorf("mediator: attribute %q lacks a sigma", a)
		}
		k.AttrSigma = append(k.AttrSigma, sigma)
	}
	for _, p := range parties {
		k.PartyMean = append(k.PartyMean, partyRel.means[p])
	}
	if err := k.Validate(); err != nil {
		return 0, err
	}
	opt := attack.FastOptions()
	opt.Workers = workers
	inf, err := k.Infer(opt)
	if err != nil {
		return 0, err
	}
	return inf.MaxDisclosure(), nil
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
