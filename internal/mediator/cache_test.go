package mediator

import (
	"strings"
	"testing"
)

// The plan cache must never become a privacy bypass: a cache hit skips
// only the parse, while the release ledger (and every other control)
// runs on each query. This is the E15 invariant under caching — the
// Figure 1 combination is refused on the first ask AND on every cached
// re-ask, including whitespace variants that normalize to the same key.
func TestPlanCacheHitStillRefusedByLedger(t *testing.T) {
	m := figure1Mediator(t, 0.9)

	if _, err := m.Query(perTestQuery, "snooper"); err != nil {
		t.Fatalf("first release (Figure 1a) should pass: %v", err)
	}
	if _, err := m.Query(perHMOQuery, "snooper"); err == nil {
		t.Fatal("the Figure 1 combination must be refused")
	}

	// The refused query's parse is now cached (the parse succeeded; the
	// ledger refused downstream). Re-asking must hit the cache and still
	// be refused.
	h0, _, _ := m.PlanCacheStats()
	_, err := m.Query(perHMOQuery, "snooper")
	if err == nil {
		t.Fatal("cached re-ask of the Figure 1 combination must still be refused")
	}
	if !strings.Contains(err.Error(), "combined") {
		t.Errorf("refusal should still explain the combination: %v", err)
	}
	h1, _, _ := m.PlanCacheStats()
	if h1 <= h0 {
		t.Fatalf("re-ask should be a plan-cache hit: hits %d -> %d", h0, h1)
	}

	// Whitespace games normalize to the same cache key and change nothing.
	if _, err := m.Query("  "+perHMOQuery+"\n", "snooper"); err == nil {
		t.Fatal("whitespace variant of a refused query must still be refused")
	}
	h2, _, _ := m.PlanCacheStats()
	if h2 <= h1 {
		t.Fatalf("whitespace variant should be a plan-cache hit: hits %d -> %d", h1, h2)
	}
}

// A schema refresh invalidates the plan cache: cached canonicalizations
// may not survive a correspondence change.
func TestPlanCachePurgedOnRefreshSchema(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	if _, err := m.Query(perTestQuery, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, size := m.PlanCacheStats(); size == 0 {
		t.Fatal("query should have populated the plan cache")
	}
	if err := m.RefreshSchema(); err != nil {
		t.Fatal(err)
	}
	if _, _, size := m.PlanCacheStats(); size != 0 {
		t.Fatalf("RefreshSchema should purge the plan cache, %d entries remain", size)
	}
}

// With the cache disabled (PlanCache 0) the stats stay zero and queries
// still work — the nil cache is a no-op, not an error.
func TestPlanCacheDisabledIsNoop(t *testing.T) {
	m := figure1Mediator(t, 0.9)
	m.plans = nil // simulate PlanCache: 0 without rebuilding the fixture
	if _, err := m.Query(perTestQuery, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(perTestQuery, "alice"); err != nil {
		t.Fatal(err)
	}
	hits, misses, size := m.PlanCacheStats()
	if hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("disabled cache should report zeroes, got hits=%d misses=%d size=%d", hits, misses, size)
	}
}
