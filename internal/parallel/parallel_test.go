package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachZeroItems(t *testing.T) {
	called := false
	for _, workers := range []int{0, 1, 8} {
		if err := ForEach(context.Background(), 0, workers, func(int) error {
			called = true
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	if called {
		t.Fatal("fn must not run for n=0")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkersExceedItems(t *testing.T) {
	// More workers than items must neither deadlock nor duplicate work.
	var ran atomic.Int32
	if err := ForEach(context.Background(), 3, 50, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran = %d, want 3", ran.Load())
	}
}

func TestForEachDeterministicOutputOrdering(t *testing.T) {
	const n = 500
	serial, err := Map(context.Background(), n, 1, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), n, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], par[i])
		}
	}
}

func TestForEachFirstErrorStopsDispatch(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 10_000, 4, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachContextCancelMidIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 100_000, 4, func(i int) error {
		if ran.Add(1) == 10 {
			cancel() // cancel from inside a worker, mid-iteration
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 100_000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestForEachSerialPathHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 10, 1, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d items", ran.Load())
	}
}

func TestForEachPanicPropagatesWithoutDeadlock(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic was swallowed")
		}
		s, ok := v.(string)
		if !ok || !strings.Contains(s, "kernel exploded") {
			t.Fatalf("recovered %v, want wrapped worker panic", v)
		}
		if !strings.Contains(s, "parallel_test.go") {
			t.Errorf("panic should carry the worker stack: %q", s)
		}
	}()
	_ = ForEach(context.Background(), 1000, 4, func(i int) error {
		if i == 3 {
			panic("kernel exploded")
		}
		return nil
	})
	t.Fatal("unreachable: ForEach must re-panic")
}

func TestMapError(t *testing.T) {
	if _, err := Map(context.Background(), 10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, fmt.Errorf("bad index %d", i)
		}
		return i, nil
	}); err == nil {
		t.Fatal("want error")
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to at least 1")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker counts pass through")
	}
}

func TestChunkSizeClamps(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{10, 4, 16},    // below min: clamp up
		{1024, 4, 256}, // above max: clamp down
		{400, 4, 100},  // in range: one chunk per worker
		{1, 1, 16},     // tiny input still min-clamped
	}
	for _, c := range cases {
		if got := ChunkSize(c.n, c.workers); got != c.want {
			t.Errorf("ChunkSize(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, chunk := range []int{0, 1, 7, 16, 1000} {
		const n = 237
		var hit [n]atomic.Int64
		err := ForEachChunk(context.Background(), n, 8, chunk, func(lo, hi int) error {
			if lo >= hi || hi > n {
				return fmt.Errorf("bad range [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hit[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		for i := range hit {
			if hit[i].Load() != 1 {
				t.Fatalf("chunk %d: index %d ran %d times", chunk, i, hit[i].Load())
			}
		}
	}
}

func TestForEachChunkPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachChunk(context.Background(), 100, 4, 10, func(lo, hi int) error {
		if lo == 50 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Errorf("err = %v, want boom", err)
	}
}
