// Package parallel is the shared bounded worker pool under every
// compute kernel with per-item independent work: PSI blinding and
// exponentiation (one 2048-bit modexp per item), the NLP solver's
// multi-starts, and Bloom-filter q-gram encoding for private linkage.
//
// The contract is deliberately narrow. ForEach(ctx, n, workers, fn)
// runs fn(0..n-1) across at most `workers` goroutines and returns when
// every index has run (or the work was abandoned). Determinism is the
// caller's: fn(i) writes only to slot i of a pre-sized output, so the
// result is bit-identical to the serial loop regardless of scheduling.
// workers <= 0 means GOMAXPROCS; workers == 1 runs inline on the
// calling goroutine with no pool overhead, which keeps the serial
// baselines of E19 honest.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 select GOMAXPROCS
// (the "as fast as the hardware allows" default), anything else is
// returned unchanged. Kernels call this so a zero-value config works.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicError carries a recovered worker panic across the pool boundary
// so it can be re-raised on the calling goroutine instead of killing
// the process from inside the pool (or deadlocking the dispatcher).
type panicError struct {
	value any
	stack []byte
}

func (p *panicError) String() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.value, p.stack)
}

// ForEach runs fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines (GOMAXPROCS when workers <= 0).
//
//   - Output ordering is deterministic by construction: fn receives its
//     index and must write results only to that index.
//   - The first error stops the dispatch of further indices and is
//     returned; indices already running complete.
//   - Context cancellation stops dispatch likewise and returns ctx.Err().
//   - A panic inside fn is recovered, the pool drains, and the panic is
//     re-raised on the caller's goroutine with the worker's stack — a
//     crashing worker must crash the caller, not deadlock it.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Inline serial path: identical semantics, zero pool overhead.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next undispatched index
		stopped  atomic.Bool  // set on first error/cancel/panic
		firstErr error
		firstPan *panicError
		errOnce  sync.Once
		panOnce  sync.Once
		wg       sync.WaitGroup
	)
	stop := func() { stopped.Store(true) }

	worker := func() {
		defer wg.Done()
		defer func() {
			if v := recover(); v != nil {
				panOnce.Do(func() {
					firstPan = &panicError{value: v, stack: stack()}
				})
				stop()
			}
		}()
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				errOnce.Do(func() { firstErr = err })
				stop()
				return
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if firstPan != nil {
		panic(firstPan.String())
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ChunkSize picks a contiguous batch width for n independent items
// fanned across `workers`: roughly one chunk per worker, clamped to
// [16, 256] so tiny inputs do not pay one dispatch (and one cache-lock
// round trip) per item while huge inputs still split finely enough to
// rebalance across stragglers.
func ChunkSize(n, workers int) int {
	w := Workers(workers)
	c := (n + w - 1) / w
	if c < 16 {
		c = 16
	}
	if c > 256 {
		c = 256
	}
	return c
}

// ForEachChunk runs fn(lo, hi) over contiguous half-open ranges
// covering [0, n), at most `workers` ranges concurrently. chunk <= 0
// selects ChunkSize(n, workers). It is the batched sibling of ForEach:
// kernels whose per-item work is cheap relative to dispatch (or that
// want to amortize a lock acquisition over a run of items) process a
// slice per task instead of an index per task. Error, cancellation and
// panic semantics are ForEach's; determinism is likewise the caller's
// (fn writes only to [lo, hi) of a pre-sized output).
func ForEachChunk(ctx context.Context, n, workers, chunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = ChunkSize(n, workers)
	}
	nchunks := (n + chunk - 1) / chunk
	return ForEach(ctx, nchunks, workers, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// Map applies fn to every index of a length-n input and collects the
// results in order: out[i] = fn(i). It is ForEach plus the pre-sized
// output slice every kernel otherwise writes by hand.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
