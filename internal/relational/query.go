package relational

import (
	"fmt"
	"math"
	"strings"
)

// AggFunc enumerates aggregate functions. The statistical-database
// machinery (Section 2 "Statistical Databases") operates on exactly these.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
	StdDev
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case StdDev:
		return "STDDEV"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Aggregate is one aggregate output column.
type Aggregate struct {
	Func AggFunc
	Col  string // input column ("" allowed for COUNT)
	As   string // output column name
}

// JoinSpec describes an equi-join with a second table.
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is a logical query plan over a catalog: an (optionally joined)
// scan, a selection, then either a plain projection or a grouped
// aggregation, then ordering and an optional limit. It deliberately covers
// the query classes the paper's privacy machinery reasons about:
// exact-value retrieval, range selection, and aggregate publication.
type Query struct {
	From       string
	Join       *JoinSpec
	Where      Expr
	GroupBy    []string
	Aggregates []Aggregate
	Select     []string // ignored when Aggregates are present
	OrderBy    []string
	Limit      int // 0 means no limit
}

// IsAggregate reports whether the query produces aggregate output.
func (q *Query) IsAggregate() bool { return len(q.Aggregates) > 0 }

// SQL renders the query as SQL-ish text, the form in which the Query
// Transformer hands it to a relational destination source.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.IsAggregate():
		parts := make([]string, 0, len(q.GroupBy)+len(q.Aggregates))
		parts = append(parts, q.GroupBy...)
		for _, a := range q.Aggregates {
			col := a.Col
			if col == "" {
				col = "*"
			}
			parts = append(parts, fmt.Sprintf("%s(%s) AS %s", a.Func, col, a.As))
		}
		b.WriteString(strings.Join(parts, ", "))
	case len(q.Select) > 0:
		b.WriteString(strings.Join(q.Select, ", "))
	default:
		b.WriteString("*")
	}
	b.WriteString(" FROM " + q.From)
	if q.Join != nil {
		fmt.Fprintf(&b, " JOIN %s ON %s.%s = %s.%s",
			q.Join.Table, q.From, q.Join.LeftCol, q.Join.Table, q.Join.RightCol)
	}
	if q.Where != nil {
		if w := q.Where.SQL(); w != "TRUE" {
			b.WriteString(" WHERE " + w)
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY " + strings.Join(q.OrderBy, ", "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Execute evaluates the query against the catalog.
func (q *Query) Execute(c *Catalog) (*Result, error) {
	base, err := c.Table(q.From)
	if err != nil {
		return nil, err
	}
	schema := base.Schema()
	rows := base.Rows()

	if q.Join != nil {
		schema, rows, err = hashJoin(c, q.From, schema, rows, q.Join)
		if err != nil {
			return nil, err
		}
	}

	if q.Where != nil {
		filtered := rows[:0:0]
		for _, r := range rows {
			v, err := q.Where.Eval(schema, r)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	var res *Result
	if q.IsAggregate() {
		res, err = aggregate(schema, rows, q.GroupBy, q.Aggregates)
	} else {
		res, err = project(schema, rows, q.Select)
	}
	if err != nil {
		return nil, err
	}

	if len(q.OrderBy) > 0 {
		if err := res.SortBy(q.OrderBy...); err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func hashJoin(c *Catalog, leftName string, leftSchema *Schema, leftRows []Row, js *JoinSpec) (*Schema, []Row, error) {
	right, err := c.Table(js.Table)
	if err != nil {
		return nil, nil, err
	}
	li := leftSchema.Index(js.LeftCol)
	if li < 0 {
		return nil, nil, fmt.Errorf("relational: join: %s has no column %q", leftName, js.LeftCol)
	}
	ri := right.Schema().Index(js.RightCol)
	if ri < 0 {
		return nil, nil, fmt.Errorf("relational: join: %s has no column %q", js.Table, js.RightCol)
	}
	// Joined schema: left columns, then right columns; collisions get the
	// right table's name as a prefix.
	cols := append([]Column(nil), leftSchema.Columns...)
	for _, rc := range right.Schema().Columns {
		name := rc.Name
		if leftSchema.Index(name) >= 0 {
			name = js.Table + "." + name
		}
		cols = append(cols, Column{Name: name, Type: rc.Type})
	}
	joined, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	// Build on the right, probe from the left.
	index := map[string][]Row{}
	for _, rr := range right.Rows() {
		k := rr[ri].String()
		index[k] = append(index[k], rr)
	}
	var out []Row
	for _, lr := range leftRows {
		if lr[li].IsNull {
			continue
		}
		for _, rr := range index[lr[li].String()] {
			row := make(Row, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out = append(out, row)
		}
	}
	return joined, out, nil
}

func project(schema *Schema, rows []Row, names []string) (*Result, error) {
	if len(names) == 0 {
		return &Result{Schema: schema, Rows: rows}, nil
	}
	ps, err := schema.Project(names)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = schema.Index(n)
	}
	out := make([]Row, len(rows))
	for j, r := range rows {
		row := make(Row, len(idx))
		for i, k := range idx {
			row[i] = r[k]
		}
		out[j] = row
	}
	return &Result{Schema: ps, Rows: out}, nil
}

type aggState struct {
	key    Row
	count  int64
	sums   []float64
	sqsums []float64
	ns     []int64
	mins   []Value
	maxs   []Value
}

func aggregate(schema *Schema, rows []Row, groupBy []string, aggs []Aggregate) (*Result, error) {
	gidx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gidx[i] = schema.Index(g)
		if gidx[i] < 0 {
			return nil, fmt.Errorf("relational: group by unknown column %q", g)
		}
	}
	aidx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("relational: %s requires a column", a.Func)
			}
			aidx[i] = -1
			continue
		}
		aidx[i] = schema.Index(a.Col)
		if aidx[i] < 0 {
			return nil, fmt.Errorf("relational: aggregate on unknown column %q", a.Col)
		}
	}

	groups := map[string]*aggState{}
	var order []string
	for _, r := range rows {
		var kb strings.Builder
		key := make(Row, len(gidx))
		for i, gi := range gidx {
			key[i] = r[gi]
			kb.WriteString(r[gi].String())
			kb.WriteByte('\x00')
		}
		k := kb.String()
		st, ok := groups[k]
		if !ok {
			st = &aggState{
				key:    key,
				sums:   make([]float64, len(aggs)),
				sqsums: make([]float64, len(aggs)),
				ns:     make([]int64, len(aggs)),
				mins:   make([]Value, len(aggs)),
				maxs:   make([]Value, len(aggs)),
			}
			for i := range st.mins {
				st.mins[i] = Value{IsNull: true}
				st.maxs[i] = Value{IsNull: true}
			}
			groups[k] = st
			order = append(order, k)
		}
		st.count++
		for i, ai := range aidx {
			if ai < 0 {
				continue
			}
			v := r[ai]
			if v.IsNull {
				continue
			}
			st.ns[i]++
			if f, ok := v.AsFloat(); ok {
				st.sums[i] += f
				st.sqsums[i] += f * f
			}
			if st.mins[i].IsNull || Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if st.maxs[i].IsNull || Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		}
	}
	// Empty input with no GROUP BY still yields one row of aggregates
	// (COUNT = 0), matching SQL.
	if len(order) == 0 && len(groupBy) == 0 {
		st := &aggState{
			sums:   make([]float64, len(aggs)),
			sqsums: make([]float64, len(aggs)),
			ns:     make([]int64, len(aggs)),
			mins:   make([]Value, len(aggs)),
			maxs:   make([]Value, len(aggs)),
		}
		for i := range st.mins {
			st.mins[i] = Value{IsNull: true}
			st.maxs[i] = Value{IsNull: true}
		}
		groups[""] = st
		order = append(order, "")
	}

	cols := make([]Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, Column{Name: g, Type: schema.Columns[gidx[i]].Type})
	}
	for _, a := range aggs {
		t := TFloat
		if a.Func == Count {
			t = TInt
		}
		if (a.Func == Min || a.Func == Max) && a.Col != "" {
			t = schema.Columns[schema.Index(a.Col)].Type
		}
		cols = append(cols, Column{Name: a.As, Type: t})
	}
	outSchema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}

	out := make([]Row, 0, len(order))
	for _, k := range order {
		st := groups[k]
		row := make(Row, 0, len(cols))
		row = append(row, st.key...)
		for i, a := range aggs {
			switch a.Func {
			case Count:
				if a.Col == "" {
					row = append(row, Int(st.count))
				} else {
					row = append(row, Int(st.ns[i]))
				}
			case Sum:
				if st.ns[i] == 0 {
					row = append(row, Null(TFloat))
				} else {
					row = append(row, Float(st.sums[i]))
				}
			case Avg:
				if st.ns[i] == 0 {
					row = append(row, Null(TFloat))
				} else {
					row = append(row, Float(st.sums[i]/float64(st.ns[i])))
				}
			case Min:
				row = append(row, st.mins[i])
			case Max:
				row = append(row, st.maxs[i])
			case StdDev:
				if st.ns[i] == 0 {
					row = append(row, Null(TFloat))
				} else {
					n := float64(st.ns[i])
					mean := st.sums[i] / n
					v := st.sqsums[i]/n - mean*mean
					if v < 0 {
						v = 0
					}
					row = append(row, Float(math.Sqrt(v)))
				}
			}
		}
		out = append(out, row)
	}
	return &Result{Schema: outSchema, Rows: out}, nil
}
