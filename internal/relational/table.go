package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, rejecting duplicate column names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: empty column name at index %d", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema with just the named columns, in the given
// order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("relational: unknown column %q", n)
		}
		cols = append(cols, s.Columns[i])
	}
	return NewSchema(cols...)
}

// Row is one tuple; len(Row) always equals the schema arity.
type Row []Value

// Table is a named relation: schema plus rows. Tables are safe for
// concurrent readers with a single writer guarded by the embedded mutex —
// the HTTP source node serves queries concurrently.
type Table struct {
	mu     sync.RWMutex
	Name   string
	schema *Schema
	rows   []Row
}

// NewTable returns an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Insert appends rows after checking arity and types. Null values may have
// any declared kind.
func (t *Table) Insert(rows ...Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.schema.Columns) {
			return fmt.Errorf("relational: %s: row arity %d, want %d", t.Name, len(r), len(t.schema.Columns))
		}
		for i, v := range r {
			if !v.IsNull && v.Kind != t.schema.Columns[i].Type {
				return fmt.Errorf("relational: %s.%s: value kind %v, want %v",
					t.Name, t.schema.Columns[i].Name, v.Kind, t.schema.Columns[i].Type)
			}
		}
	}
	t.rows = append(t.rows, rows...)
	return nil
}

// InsertStrings parses and appends one row given as strings in schema
// order.
func (t *Table) InsertStrings(fields ...string) error {
	if len(fields) != len(t.schema.Columns) {
		return fmt.Errorf("relational: %s: %d fields, want %d", t.Name, len(fields), len(t.schema.Columns))
	}
	row := make(Row, len(fields))
	for i, f := range fields {
		v, err := ParseValue(t.schema.Columns[i].Type, f)
		if err != nil {
			return err
		}
		row[i] = v
	}
	return t.Insert(row)
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns a snapshot copy of the rows. The copy is shallow per-row but
// rows are value slices, so callers may keep it.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// Get returns cell (row, col-name).
func (t *Table) Get(row int, col string) (Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row < 0 || row >= len(t.rows) {
		return Value{}, fmt.Errorf("relational: %s: row %d out of range", t.Name, row)
	}
	i := t.schema.Index(col)
	if i < 0 {
		return Value{}, fmt.Errorf("relational: %s: unknown column %q", t.Name, col)
	}
	return t.rows[row][i], nil
}

// Result is an anonymous relation produced by query evaluation.
type Result struct {
	Schema *Schema
	Rows   []Row
}

// Column extracts one column of the result as values.
func (r *Result) Column(name string) ([]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("relational: result has no column %q", name)
	}
	out := make([]Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out, nil
}

// Floats extracts one numeric column as float64s, skipping nulls.
func (r *Result) Floats(name string) ([]float64, error) {
	vals, err := r.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if f, ok := v.AsFloat(); ok {
			out = append(out, f)
		}
	}
	return out, nil
}

// SortBy orders the result rows by the named columns, ascending.
func (r *Result) SortBy(names ...string) error {
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = r.Schema.Index(n)
		if idx[i] < 0 {
			return fmt.Errorf("relational: sort on unknown column %q", n)
		}
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for _, i := range idx {
			c := Compare(r.Rows[a][i], r.Rows[b][i])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// String renders the result as an aligned text table for the CLI tools.
func (r *Result) String() string {
	var b strings.Builder
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.Rows))
	for j, row := range r.Rows {
		cells[j] = make([]string, len(row))
		for i, v := range row {
			cells[j][i] = v.String()
			if len(cells[j][i]) > widths[i] {
				widths[i] = len(cells[j][i])
			}
		}
	}
	for i, n := range names {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], n)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Catalog is a named collection of tables — one per source database.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Add registers a table; it fails on duplicate names.
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("relational: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("relational: no table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
