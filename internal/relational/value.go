// Package relational implements the in-memory relational engine that
// PRIVATE-IYE remote sources wrap. The paper's Query Transformer turns
// mediator query fragments into "an appropriate query language for the
// destination source — for example, if an RDBMS is being queried, then it
// generates SQL" (Section 4). This package is that destination: typed
// tables, predicate expressions, select/project/join/group-aggregate
// evaluation, and a catalog, all deterministic and dependency-free.
package relational

import (
	"fmt"
	"strconv"
)

// Type enumerates column types.
type Type int

const (
	// TString is a UTF-8 string column.
	TString Type = iota
	// TFloat is a float64 column.
	TFloat
	// TInt is an int64 column.
	TInt
	// TBool is a boolean column.
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TString:
		return "TEXT"
	case TFloat:
		return "REAL"
	case TInt:
		return "INTEGER"
	case TBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is one typed cell. Null is represented by IsNull; the zero Value is
// a null string.
type Value struct {
	Kind   Type
	IsNull bool
	S      string
	F      float64
	I      int64
	B      bool
}

// Null returns a null value of the given type.
func Null(t Type) Value { return Value{Kind: t, IsNull: true} }

// S returns a string value.
func Str(s string) Value { return Value{Kind: TString, S: s} }

// F returns a float value.
func Float(f float64) Value { return Value{Kind: TFloat, F: f} }

// I returns an integer value.
func Int(i int64) Value { return Value{Kind: TInt, I: i} }

// B returns a boolean value.
func Bool(b bool) Value { return Value{Kind: TBool, B: b} }

// String renders the value for display and XML shipping.
func (v Value) String() string {
	if v.IsNull {
		return ""
	}
	switch v.Kind {
	case TString:
		return v.S
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TBool:
		return strconv.FormatBool(v.B)
	}
	return ""
}

// AsFloat coerces numeric values to float64; strings parse if possible.
func (v Value) AsFloat() (float64, bool) {
	if v.IsNull {
		return 0, false
	}
	switch v.Kind {
	case TFloat:
		return v.F, true
	case TInt:
		return float64(v.I), true
	case TString:
		f, err := strconv.ParseFloat(v.S, 64)
		return f, err == nil
	case TBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// ParseValue parses s as a value of type t. Empty string parses to null.
func ParseValue(t Type, s string) (Value, error) {
	if s == "" {
		return Null(t), nil
	}
	switch t {
	case TString:
		return Str(s), nil
	case TFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parse %q as REAL: %w", s, err)
		}
		return Float(f), nil
	case TInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parse %q as INTEGER: %w", s, err)
		}
		return Int(i), nil
	case TBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parse %q as BOOLEAN: %w", s, err)
		}
		return Bool(b), nil
	}
	return Value{}, fmt.Errorf("relational: unknown type %v", t)
}

// Compare orders two values of the same kind: -1, 0, +1. Nulls sort first.
// Comparing values of different kinds compares their float coercions when
// both are numeric, otherwise their string forms.
func Compare(a, b Value) int {
	switch {
	case a.IsNull && b.IsNull:
		return 0
	case a.IsNull:
		return -1
	case b.IsNull:
		return 1
	}
	if a.Kind == b.Kind {
		switch a.Kind {
		case TString:
			switch {
			case a.S < b.S:
				return -1
			case a.S > b.S:
				return 1
			}
			return 0
		case TFloat:
			return cmpFloat(a.F, b.F)
		case TInt:
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		case TBool:
			switch {
			case !a.B && b.B:
				return -1
			case a.B && !b.B:
				return 1
			}
			return 0
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		return cmpFloat(af, bf)
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equalv reports value equality under Compare semantics.
func Equalv(a, b Value) bool { return Compare(a, b) == 0 }
